//! The digital TV director: the Pegasus project's flagship application.
//!
//! Three studio cameras stream live to the control room; the director
//! cuts between them every 400 ms. A cut is one window-descriptor write
//! — no media is copied, re-routed or touched by a CPU.
//!
//! Run with: `cargo run --example tv_director`

use pegasus_system::core::director::TvDirector;
use pegasus_system::devices::video::Scene;
use pegasus_system::sim::time::MS;

fn main() {
    let mut director = TvDirector::new(3, &[Scene::TestCard, Scene::MovingGradient, Scene::Noise]);
    println!(
        "on air with {} cameras; cutting every 400 ms...",
        director.source_count()
    );

    let rundown = [0usize, 1, 2, 1, 0, 2];
    for (i, &source) in rundown.iter().enumerate() {
        director.cut(source);
        director.run_until((i as u64 + 1) * 400 * MS);
        println!(
            "  t={:>4} ms  program = camera {}  (program-monitor pixel: {})",
            (i + 1) * 400,
            director.program(),
            director.program_pixel(0, 0)
        );
    }
    director.shutdown();

    println!(
        "\ncuts performed: {:?}",
        director.cuts.iter().map(|(_, s)| s).collect::<Vec<_>>()
    );
    println!(
        "tiles painted on the control-room display: {}",
        director.tiles_blitted()
    );
    println!(
        "media bytes any CPU touched: {}",
        director.cpu_media_bytes()
    );
    assert_eq!(director.cpu_media_bytes(), 0);
    println!("every cut was pure control: a descriptor raise in the display.");
}
