//! Adaptive QoS: the manager re-weights shares while the scheduler runs.
//!
//! The QoS manager observes per-epoch demand, smooths it, water-fills
//! capacity by user weight (§3.3), and the resulting shares drive the
//! EDF+shares scheduler. Crucially, per the paper, "applications will
//! not always get what they want; they will have to adapt to the
//! resources they are given" — so each application scales its per-period
//! work to its grant (a cheaper algorithm, a smaller picture), and the
//! *delivered quality* (grant ÷ demand) is the interesting output.
//!
//! Run with: `cargo run --example adaptive_qos`

use pegasus_system::nemesis::qosmgr::QosManager;
use pegasus_system::nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_system::sim::time::MS;

fn main() {
    let mut mgr = QosManager::new(0.9, 0.4);
    let video = mgr.add_app("video", 2.0);
    let batch = mgr.add_app("batch", 1.0);
    let mut audio = None;

    println!("epoch  video_grant  batch_grant  audio_grant  video_quality  misses(v,a)");
    for epoch in 0..24u32 {
        // Demand: video steps from 30% to 60% at epoch 8; batch always
        // wants everything; audio (20% + margin) arrives at epoch 16.
        let video_demand = if epoch < 8 { 0.30 } else { 0.60 };
        mgr.observe(video, video_demand);
        mgr.observe(batch, 1.0);
        if epoch == 16 && audio.is_none() {
            audio = Some(mgr.add_app("audio", 4.0));
        }
        if let Some(a) = audio {
            mgr.observe(a, 0.20);
        }
        mgr.rebalance();

        // Run one 2-second epoch under the granted shares. Each
        // application *adapts*: its per-period work is whatever its
        // grant affords (never more than its demand).
        let period = 10 * MS;
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        let v_share = mgr.share_for(video, period);
        let v_work = v_share.slice.min((period as f64 * video_demand) as u64);
        sim.add_task(TaskSpec {
            name: "video".into(),
            share: v_share,
            priority: 2,
            period,
            work: v_work,
            use_slack: false,
            phase: 0,
        });
        let b_share = mgr.share_for(batch, period);
        sim.add_task(TaskSpec {
            name: "batch".into(),
            share: b_share,
            priority: 1,
            period,
            work: period, // wants the whole CPU; lives off slack too
            use_slack: true,
            phase: 0,
        });
        let mut audio_idx = None;
        if let Some(a) = audio {
            let a_share = mgr.share_for(a, period);
            audio_idx = Some(sim.add_task(TaskSpec {
                name: "audio".into(),
                share: a_share,
                priority: 3,
                period,
                work: a_share.slice.min(period / 5),
                use_slack: false,
                phase: 0,
            }));
        }
        let result = sim.run(2_000 * MS);
        let audio_grant = audio.map(|a| mgr.granted(a)).unwrap_or(0.0);
        let audio_miss = audio_idx
            .map(|i| format!("{:.1}%", result.tasks[i].miss_rate() * 100.0))
            .unwrap_or_else(|| "-".into());
        let quality = (mgr.granted(video) / video_demand).min(1.0);
        println!(
            "{epoch:>5}  {:>11.3}  {:>11.3}  {:>11.3}  {:>12.0}%  ({:.1}%, {})",
            mgr.granted(video),
            mgr.granted(batch),
            audio_grant,
            quality * 100.0,
            result.tasks[0].miss_rate() * 100.0,
            audio_miss,
        );
    }
    println!("\nvideo's grant follows its demand step with EWMA smoothing; audio's arrival");
    println!("reclaims capacity from batch; adapted applications never miss — they degrade");
    println!("gracefully instead, exactly the contract §3.3 describes.");
}
