//! Quickstart: one camera, one remote display, zero CPU bytes.
//!
//! Builds the Figure-1 architecture — a camera and a display hanging off
//! workstation switches joined by a backbone — opens a guaranteed VC,
//! streams half a second of video and prints what happened.
//!
//! Run with: `cargo run --example quickstart`

use pegasus_system::atm::signalling::QosSpec;
use pegasus_system::core::system::System;
use pegasus_system::devices::camera::{Camera, CameraConfig};
use pegasus_system::devices::display::{Rect, WindowManager};
use pegasus_system::devices::video::Scene;
use pegasus_system::sim::time::{fmt_ns, MS};
use pegasus_system::sim::Simulator;

fn main() {
    // Two multimedia workstations on the backbone.
    let mut sys = System::new();
    let studio = sys.add_workstation("studio", 40);
    let lounge = sys.add_workstation("lounge", 40);

    // Signalling: a guaranteed 20 Mbit/s circuit, camera → display.
    let vc = sys
        .net
        .open_vc(
            studio.camera_ep,
            lounge.display_ep,
            QosSpec::guaranteed(20_000_000),
        )
        .expect("admission");
    println!(
        "virtual circuit open: camera vci {} → display vci {}",
        vc.src_vci, vc.dst_vci
    );

    // The window manager gives the stream a window by writing one
    // descriptor — that is all the "window system" there is.
    let mut wm = WindowManager::new(lounge.display.clone(), 1);
    wm.create(vc.dst_vci, Rect::new(100, 80, 176, 144));

    // Roll half a second of 25 fps video.
    let cam = sys.build_camera(
        &studio,
        Scene::MovingGradient,
        CameraConfig::default(),
        vc.src_vci,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam, &mut sim);
    sim.run_until(500 * MS);
    cam.borrow_mut().stop();
    sim.run();

    let c = cam.borrow();
    println!(
        "camera: {} frames, {} tiles, {:.2}x compression",
        c.stats.frames_captured,
        c.stats.tiles_sent,
        c.stats.compression_ratio()
    );
    let mut d = lounge.display.borrow_mut();
    let (blitted, pixels) = (d.stats.tiles_blitted, d.stats.pixels_written);
    let p50 = d
        .stats
        .latency
        .percentile(50.0)
        .map(fmt_ns)
        .unwrap_or_default();
    drop(d);
    println!("display: {blitted} tiles blitted, {pixels} pixels painted, scan→display p50 {p50}");
    println!(
        "media bytes touched by any CPU: {}",
        studio.host_nic.borrow().bytes_touched + lounge.host_nic.borrow().bytes_touched
    );
    assert_eq!(studio.host_nic.borrow().bytes_touched, 0);
    println!("— the DAN property holds: processors only managed the connection.");
}
