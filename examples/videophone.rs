//! The video phone: the paper's motivating application (§2), in both the
//! DAN configuration and the conventional bus-attached baseline.
//!
//! Run with: `cargo run --example videophone`

use pegasus_system::core::videophone::{VideoPath, VideoPhone, VideoPhoneConfig};
use pegasus_system::sim::time::{fmt_ns, MS};

fn main() {
    println!("placing a 1-second bidirectional audio+video call, twice...\n");
    for (label, path) in [
        ("DAN: devices on the switch", VideoPath::Dan),
        (
            "baseline: media through the host CPUs",
            VideoPath::BusAttached,
        ),
    ] {
        let report = VideoPhone::run(VideoPhoneConfig {
            path,
            duration: 1_000 * MS,
            ..VideoPhoneConfig::default()
        });
        println!("{label}");
        println!("  tiles on each display:   {:?}", report.tiles_blitted);
        println!(
            "  video scan→display:      p50 {} / p99 {}",
            fmt_ns(report.video_latency_p50.0),
            fmt_ns(report.video_latency_p99.0)
        );
        println!("  audio drop-outs:         {:?}", report.audio_underruns);
        println!("  CPU media bytes (A, B):  {:?}", report.cpu_bytes);
        println!(
            "  CPU time moving media:   {}",
            fmt_ns(report.cpu_time.0 + report.cpu_time.1)
        );
        println!();
    }
    println!("the call is identical to the user; only the data path — and the CPU bill — differs.");
}
