//! The example workloads, re-expressed as declarative scenarios.
//!
//! `videophone.rs`, `tv_director.rs` and `vcr.rs` each hand-wire one
//! instance of a workload; the scenario harness runs the same three
//! workloads as presets — a wall of calls, a bank of studios, a rack of
//! VoD streams — then the whole city at once, from nothing but a spec.
//!
//! Run with: `cargo run --release --example scenarios`

use pegasus_system::scenario::{presets, run};

fn main() {
    for name in ["videophone-wall", "tv-studio", "vod-rack"] {
        let spec = presets::by_name(name).expect("preset");
        let r = run(&spec);
        println!(
            "{name}: {} sessions / {} switches — p50 video latency {} µs, \
             {} cells delivered, {} deadline misses",
            r.sessions.0 + r.sessions.1 + r.sessions.2,
            r.switches,
            r.video.latency.p50 / 1_000,
            r.cells.delivered,
            r.deadline_misses,
        );
    }

    // The city, CI-sized (5% of the sessions, same 16-switch mesh).
    let spec = presets::metropolis_1k().scale_sessions(0.05);
    let r = run(&spec);
    println!(
        "metropolis-1k @5%: {} sessions / {} switches — video jitter p99 {} µs, \
         pfs {} Mbit/s, {} deadline misses",
        r.sessions.0 + r.sessions.1 + r.sessions.2,
        r.switches,
        r.video.jitter.p99 / 1_000,
        r.pfs.throughput_bps / 1_000_000,
        r.deadline_misses,
    );
    assert_eq!(r.deadline_misses, 0, "the scaled city must run clean");
    println!("\none harness, every workload: the spec is the experiment.");
}
