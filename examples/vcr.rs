//! VCR: record a camera into the Pegasus File Server, then seek,
//! play, fast-forward and reverse through the control-stream index
//! (§2.2, §5).
//!
//! Run with: `cargo run --example vcr`

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_system::atm::signalling::QosSpec;
use pegasus_system::core::recorder::{MediaPlayer, RecorderSink};
use pegasus_system::core::system::System;
use pegasus_system::devices::camera::{Camera, CameraConfig};
use pegasus_system::devices::video::Scene;
use pegasus_system::pfs::disk::DiskConfig;
use pegasus_system::pfs::log::LogFs;
use pegasus_system::sim::time::{fmt_ns, MS};
use pegasus_system::sim::Simulator;

fn main() {
    let mut sys = System::new();
    let studio = sys.add_workstation("studio", 40);

    // The storage server is just another device on the network.
    let fs = Rc::new(RefCell::new(LogFs::new(DiskConfig::hp_1994())));
    let recorder = RecorderSink::shared(fs.clone());
    let storage_ep = sys.add_backbone_endpoint(recorder.clone());
    let vc = sys
        .net
        .open_vc(
            studio.camera_ep,
            storage_ep,
            QosSpec::guaranteed(20_000_000),
        )
        .expect("admission");

    // Record one second.
    let cam = sys.build_camera(
        &studio,
        Scene::MovingGradient,
        CameraConfig::default(),
        vc.src_vci,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam, &mut sim);
    sim.run_until(1_000 * MS);
    cam.borrow_mut().stop();
    sim.run();

    let (file, index, stored) = {
        let r = recorder.borrow();
        (r.file, r.index.clone(), r.frames_stored)
    };
    let size = fs.borrow().pnode(file).unwrap().size;
    println!(
        "recorded: {stored} tile-frames, {size} bytes, {} index marks",
        index.len()
    );

    // Play from the beginning.
    let all = {
        let mut f = fs.borrow_mut();
        MediaPlayer::read_from_offset(&mut f, file, 0).unwrap()
    };
    println!("play:          {} tile-frames from t=0", all.len());

    // Seek to t = 600 ms.
    let late = {
        let mut f = fs.borrow_mut();
        MediaPlayer::play_from(&mut f, file, &index, 600 * MS).unwrap()
    };
    println!(
        "seek 600ms:    {} tile-frames, first captured at {}",
        late.len(),
        fmt_ns(late[0].timestamp)
    );

    // Fast-forward: every 5th mark.
    let ff = index.fast_forward(0, 5);
    println!(
        "fast-forward:  {} key points: {:?}...",
        ff.len(),
        ff.iter()
            .take(4)
            .map(|(t, _)| fmt_ns(*t))
            .collect::<Vec<_>>()
    );

    // Reverse play from 500 ms.
    let rev = index.reverse(500 * MS);
    println!(
        "reverse:       {} marks walking back from {}",
        rev.len(),
        fmt_ns(500 * MS)
    );
}
