//! Cross-crate integration: naming + RPC + events + scheduling — the
//! control side of the system (§3, §4).

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_system::naming::invoke::{DomainRelation, ObjectHandle, Service};
use pegasus_system::naming::maillon::ObjectRef;
use pegasus_system::naming::namespace::NameWorld;
use pegasus_system::naming::rpc::{CallMsg, RpcClient, RpcServer};
use pegasus_system::nemesis::events::{EventConfig, EventSystem, SignalMode};
use pegasus_system::nemesis::qosmgr::QosManager;
use pegasus_system::nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_system::sim::time::MS;
use pegasus_system::sim::Simulator;

struct Echo;
impl Service for Echo {
    fn invoke(&mut self, method: u32, args: &[u8]) -> Vec<u8> {
        let mut out = method.to_be_bytes().to_vec();
        out.extend_from_slice(args);
        out
    }
}

#[test]
fn resolve_then_invoke_across_the_relation_spectrum() {
    // A name resolves to an object ref; the handle binds it at three
    // different distances; calls work identically at all three.
    let mut world = NameWorld::new();
    let app = world.create_space();
    world.bind(app, "/srv/echo", ObjectRef(5)).unwrap();
    let r = world.resolve(app, "/srv/echo").unwrap();
    assert_eq!(r.object, ObjectRef(5));
    for rel in [
        DomainRelation::SameDomain,
        DomainRelation::SameMachine,
        DomainRelation::Remote,
    ] {
        let mut h = ObjectHandle::new(Rc::new(RefCell::new(Echo)), rel);
        let out = h.invoke(9, b"pegasus");
        assert_eq!(&out[4..], b"pegasus");
    }
}

#[test]
fn rpc_through_lossy_network_keeps_at_most_once() {
    let server = Rc::new(RefCell::new(RpcServer::new()));
    struct Incr(u32);
    impl Service for Incr {
        fn invoke(&mut self, _m: u32, _a: &[u8]) -> Vec<u8> {
            self.0 += 1;
            self.0.to_be_bytes().to_vec()
        }
    }
    let state = Rc::new(RefCell::new(Incr(0)));
    server.borrow_mut().export(1, state.clone());
    let mut client = RpcClient::new(1);
    // Every message (request or reply) has a 50% deterministic loss
    // pattern; at-most-once must still hold.
    let mut tick = 0u32;
    let server2 = server.clone();
    let mut transport = move |wire: &[u8]| {
        tick += 1;
        if tick.is_multiple_of(2) {
            return None;
        }
        let call = CallMsg::decode(wire).ok()?;
        let reply = server2.borrow_mut().handle(&call)?;
        Some(reply.encode())
    };
    for expect in 1..=10u32 {
        let r = client.call(&mut transport, 0, &[]).unwrap();
        assert_eq!(u32::from_be_bytes(r.try_into().unwrap()), expect);
    }
    assert_eq!(
        state.borrow().0,
        10,
        "exactly ten increments despite losses"
    );
}

#[test]
fn qos_manager_drives_scheduler_to_zero_misses() {
    // Manager grants from observed demand; scheduler runs the grants.
    let mut mgr = QosManager::new(0.9, 1.0);
    let a = mgr.add_app("audio", 1.0);
    let v = mgr.add_app("video", 1.0);
    mgr.observe(a, 0.2);
    mgr.observe(v, 0.5);
    mgr.rebalance();
    let period = 10 * MS;
    let mut sim = CpuSim::new(Policy::NemesisEdf);
    sim.add_task(TaskSpec {
        name: "audio".into(),
        share: mgr.share_for(a, period),
        priority: 0,
        period,
        work: 2 * MS,
        use_slack: false,
        phase: 0,
    });
    sim.add_task(TaskSpec {
        name: "video".into(),
        share: mgr.share_for(v, period),
        priority: 0,
        period,
        work: 5 * MS,
        use_slack: false,
        phase: 0,
    });
    let r = sim.run(2_000 * MS);
    assert_eq!(r.tasks[0].misses, 0);
    assert_eq!(r.tasks[1].misses, 0);
}

#[test]
fn events_wake_a_domain_that_schedules_work() {
    // A device-driver-ish domain receives async interrupts (coalesced),
    // then issues a sync IDC-style notification downstream.
    let sys = EventSystem::shared(EventConfig::default());
    let mut sim = Simulator::new();
    let driver = sys.borrow_mut().add_domain("driver");
    let app = sys.borrow_mut().add_domain("app");
    let irq = sys.borrow_mut().open_channel(driver);
    let notify = sys.borrow_mut().open_channel(app);
    let delivered: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    {
        let sys2 = sys.clone();
        let _ = &sys2;
        sys.borrow_mut().set_handler(
            driver,
            Box::new(move |sim, sys, _c, n| {
                // Batch of n interrupts → one downstream notification.
                let _ = n;
                EventSystem::send(sys, sim, notify, SignalMode::Synchronous);
            }),
        );
    }
    let d2 = delivered.clone();
    sys.borrow_mut()
        .set_handler(app, Box::new(move |_s, _y, _c, n| *d2.borrow_mut() += n));
    for i in 0..50u64 {
        let sys = sys.clone();
        sim.schedule_at(i * 1_000, move |sim| {
            EventSystem::send(&sys, sim, irq, SignalMode::Asynchronous);
        });
    }
    sim.run();
    assert!(*delivered.borrow() >= 1);
    let acked = sys.borrow().acked_count(irq);
    assert_eq!(acked, 50, "all interrupts eventually acknowledged");
    assert!(
        sys.borrow().activations(driver) < 10,
        "async coalescing kept driver activations low: {}",
        sys.borrow().activations(driver)
    );
}
