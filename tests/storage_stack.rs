//! Cross-crate integration: camera → network → file server → playback,
//! plus the storage-reliability story (§5) end to end.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_system::atm::signalling::QosSpec;
use pegasus_system::core::recorder::{MediaPlayer, RecorderSink};
use pegasus_system::core::system::System;
use pegasus_system::devices::camera::{Camera, CameraConfig};
use pegasus_system::devices::video::Scene;
use pegasus_system::pfs::cleaner::clean_garbage_file;
use pegasus_system::pfs::disk::DiskConfig;
use pegasus_system::pfs::log::{FileClass, LogFs};
use pegasus_system::sim::time::MS;
use pegasus_system::sim::Simulator;

fn record_session(ms: u64) -> (Rc<RefCell<LogFs>>, Rc<RefCell<RecorderSink>>) {
    let mut sys = System::new();
    let studio = sys.add_workstation("studio", 40);
    let fs = Rc::new(RefCell::new(LogFs::new(DiskConfig::hp_1994())));
    let rec = RecorderSink::shared(fs.clone());
    let ep = sys.add_backbone_endpoint(rec.clone());
    let vc = sys
        .net
        .open_vc(studio.camera_ep, ep, QosSpec::guaranteed(20_000_000))
        .unwrap();
    let cam = sys.build_camera(
        &studio,
        Scene::MovingGradient,
        CameraConfig::default(),
        vc.src_vci,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam, &mut sim);
    sim.run_until(ms * MS);
    cam.borrow_mut().stop();
    sim.run();
    (fs, rec)
}

#[test]
fn recording_survives_a_disk_failure() {
    let (fs, rec) = record_session(300);
    let file = rec.borrow().file;
    {
        let mut f = fs.borrow_mut();
        f.sync().unwrap();
        // Lose a data disk: RAID reconstructs through parity.
        f.raid_mut().disk_mut(2).fail();
    }
    let frames = {
        let mut f = fs.borrow_mut();
        MediaPlayer::read_from_offset(&mut f, file, 0).unwrap()
    };
    assert_eq!(frames.len() as u64, rec.borrow().frames_stored);
    // Frames decode: tiles intact through reconstruction.
    assert!(frames.iter().all(|f| !f.tiles.is_empty()));
}

#[test]
fn deleted_recordings_are_cleaned_without_touching_the_keeper() {
    let (fs, rec) = record_session(300);
    let keeper = rec.borrow().file;
    // A second, unwanted recording directly into the same store.
    let junk = {
        let mut f = fs.borrow_mut();
        let id = f.create(FileClass::Continuous);
        f.append(id, &vec![0u8; 2 << 20]).unwrap();
        f.sync().unwrap();
        id
    };
    let before = {
        let mut f = fs.borrow_mut();
        f.delete(junk).unwrap();
        f.used_segments()
    };
    let report = {
        let mut f = fs.borrow_mut();
        clean_garbage_file(&mut f).unwrap()
    };
    assert!(report.segments_cleaned >= 2);
    assert!(fs.borrow().used_segments() < before);
    // The kept recording still plays.
    let frames = {
        let mut f = fs.borrow_mut();
        MediaPlayer::read_from_offset(&mut f, keeper, 0).unwrap()
    };
    assert_eq!(frames.len() as u64, rec.borrow().frames_stored);
}

#[test]
fn index_seek_matches_linear_scan() {
    let (fs, rec) = record_session(500);
    let file = rec.borrow().file;
    let index = rec.borrow().index.clone();
    let mut f = fs.borrow_mut();
    let all = MediaPlayer::read_from_offset(&mut f, file, 0).unwrap();
    for ts in [0u64, 100 * MS, 250 * MS, 400 * MS] {
        let via_index = MediaPlayer::play_from(&mut f, file, &index, ts).unwrap();
        // The index result must be a suffix of the linear scan.
        let skip = all.len() - via_index.len();
        assert_eq!(&all[skip..], &via_index[..], "seek to {ts}");
    }
}
