//! Golden-trace regression for the event-engine rearchitecture.
//!
//! The `GOLDEN_*` constants below were captured by running these exact
//! scenarios on the pre-rearchitecture engine (commit 9822aa3: boxed
//! closures, `Rc<Cell<bool>>` cancel flags, linear-scan cancel). The
//! slab-queue engine must reproduce them bit-for-bit: same executed
//! event count, same final clock, and an identical per-cell arrival-time
//! trace — proving that the slab queue, seq-generation cancellation and
//! cell-train batching changed the cost of the simulation, not its
//! meaning.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_system::atm::cell::Cell;
use pegasus_system::atm::link::{CaptureSink, CellSink, Link};
use pegasus_system::atm::signalling::QosSpec;
use pegasus_system::core::system::System;
use pegasus_system::devices::camera::{Camera, CameraConfig};
use pegasus_system::devices::display::{Rect, WindowManager};
use pegasus_system::devices::video::Scene;
use pegasus_system::sim::time::{Ns, MS};
use pegasus_system::sim::Simulator;

/// FNV-1a over the `(time, vci)` arrival sequence: a whole-trace
/// fingerprint that any reordering or retiming perturbs.
fn trace_hash(trace: &[(Ns, u16)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(t, vci) in trace {
        for b in t.to_le_bytes().into_iter().chain(vci.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A cell sink that records arrivals through the default (per-cell)
/// delivery path — deliberately *not* batch-capable, so it observes the
/// engine's per-event clock exactly as every timing-sensitive device
/// model does.
#[derive(Default)]
struct TimingProbe {
    trace: Vec<(Ns, u16)>,
}

impl CellSink for TimingProbe {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        self.trace.push((sim.now(), cell.vci()));
    }
}

/// Drives one deterministic gap/burst cell pattern into a fresh link.
/// Returns the arrival trace plus `(events_executed, final_clock)`.
fn drive_pattern<S: CellSink + 'static>(sink: Rc<RefCell<S>>) -> (u64, Ns) {
    let mut link = Link::new(155_000_000, 700, sink);
    let mut sim = Simulator::new();
    let mut rng: u64 = 42;
    for burst in 0..40u64 {
        let burst_len = 1 + (burst % 7);
        for i in 0..burst_len {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            link.send(&mut sim, Cell::new(((rng >> 33) % 997) as u16 + i as u16));
        }
        // Alternate draining mid-burst and over-draining past idle.
        if burst % 3 == 0 {
            sim.run_until(sim.now() + 5_000);
        } else {
            sim.run();
            sim.run_until(sim.now() + 11_000 * (burst % 2 + 1));
        }
    }
    sim.run();
    (sim.events_executed(), sim.now())
}

// ---------------------------------------------------------------------
// Scenario A: camera → switch → display, all per-cell (timing-sensitive)
// sinks. Captured on the seed engine.
// ---------------------------------------------------------------------

const GOLDEN_A_EVENTS: u64 = 3_314;
const GOLDEN_A_CLOCK: Ns = 80_091_708;
const GOLDEN_A_TILES: u64 = 792;
const GOLDEN_A_SWITCHED: u64 = 468;

#[test]
fn full_stack_event_count_and_clock_match_seed_engine() {
    let mut sys = System::new();
    let a = sys.add_workstation("a", 40);
    let b = sys.add_workstation("b", 40);
    let vc = sys
        .net
        .open_vc(a.camera_ep, b.display_ep, QosSpec::guaranteed(20_000_000))
        .unwrap();
    let mut wm = WindowManager::new(b.display.clone(), 1);
    wm.create(vc.dst_vci, Rect::new(0, 0, 176, 144));
    let cam = sys.build_camera(
        &a,
        Scene::MovingGradient,
        CameraConfig::default(),
        vc.src_vci,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam, &mut sim);
    sim.run_until(60 * MS);
    cam.borrow_mut().stop();
    sim.run();

    let tiles = b.display.borrow().stats.tiles_blitted;
    let switched = sys.net.switch(sys.backbone).borrow().stats.switched;
    println!(
        "scenario A actuals: events={} clock={} tiles={} switched={}",
        sim.events_executed(),
        sim.now(),
        tiles,
        switched
    );
    assert_eq!(
        sim.events_executed(),
        GOLDEN_A_EVENTS,
        "executed event count drifted"
    );
    assert_eq!(sim.now(), GOLDEN_A_CLOCK, "final clock drifted");
    assert_eq!(tiles, GOLDEN_A_TILES, "tiles blitted drifted");
    assert_eq!(
        switched, GOLDEN_A_SWITCHED,
        "backbone forward count drifted"
    );
}

// ---------------------------------------------------------------------
// Scenario B: raw link arrival-time trace, per-cell probe vs batched
// capture sink. Captured on the seed engine.
// ---------------------------------------------------------------------

const GOLDEN_B_LEN: usize = 155;
const GOLDEN_B_HASH: u64 = 0x829a_4e96_ca7c_89f5;
const GOLDEN_B_FIRST: (Ns, u16) = (3_436, 145);
const GOLDEN_B_LAST: (Ns, u16) = (876_508, 675);
const GOLDEN_B_PROBE_EVENTS: u64 = 155;
const GOLDEN_B_CLOCK: Ns = 876_508;

#[test]
fn arrival_trace_matches_seed_engine_on_both_delivery_paths() {
    // Per-cell path: the probe uses default `deliver`, one event per cell.
    let probe = Rc::new(RefCell::new(TimingProbe::default()));
    let (probe_events, probe_clock) = drive_pattern(probe.clone());
    let probe_trace = probe.borrow().trace.clone();

    println!(
        "scenario B actuals: len={} hash={:#018x} first={:?} last={:?} events={} clock={}",
        probe_trace.len(),
        trace_hash(&probe_trace),
        probe_trace.first().unwrap(),
        probe_trace.last().unwrap(),
        probe_events,
        probe_clock
    );
    assert_eq!(probe_trace.len(), GOLDEN_B_LEN);
    assert_eq!(*probe_trace.first().unwrap(), GOLDEN_B_FIRST);
    assert_eq!(*probe_trace.last().unwrap(), GOLDEN_B_LAST);
    assert_eq!(
        trace_hash(&probe_trace),
        GOLDEN_B_HASH,
        "arrival-time trace drifted"
    );
    assert_eq!(
        probe_events, GOLDEN_B_PROBE_EVENTS,
        "per-cell event count drifted"
    );
    assert_eq!(probe_clock, GOLDEN_B_CLOCK, "final clock drifted");

    // Batched path: CaptureSink consumes whole cell trains, yet must
    // record exactly the same per-cell arrival times in the same order.
    let capture = CaptureSink::shared();
    let (_capture_events, capture_clock) = drive_pattern(capture.clone());
    let capture_trace: Vec<(Ns, u16)> = capture
        .borrow()
        .arrivals
        .iter()
        .map(|(t, c)| (*t, c.vci()))
        .collect();
    assert_eq!(
        capture_trace, probe_trace,
        "batched delivery changed the observable trace"
    );
    assert_eq!(
        capture_clock, probe_clock,
        "batched delivery changed the final clock"
    );
}
