//! Cross-crate integration: the whole media path at once.
//!
//! These tests span sim + atm + devices + streams + core: a camera's
//! tiles cross a multi-switch network into a display under a window
//! manager, with admission control, synchronization and the DAN
//! zero-CPU property checked end to end.

use pegasus_system::atm::signalling::{AdmissionError, QosSpec};
use pegasus_system::core::system::System;
use pegasus_system::core::videophone::{VideoPath, VideoPhone, VideoPhoneConfig};
use pegasus_system::devices::camera::{Camera, CameraConfig, VideoMode};
use pegasus_system::devices::display::{Rect, WindowManager};
use pegasus_system::devices::video::Scene;
use pegasus_system::sim::time::MS;
use pegasus_system::sim::Simulator;

#[test]
fn two_cameras_share_one_display() {
    let mut sys = System::new();
    let s1 = sys.add_workstation("studio1", 40);
    let s2 = sys.add_workstation("studio2", 40);
    let viewer = sys.add_workstation("viewer", 40);
    let vc1 = sys
        .net
        .open_vc(
            s1.camera_ep,
            viewer.display_ep,
            QosSpec::guaranteed(15_000_000),
        )
        .unwrap();
    let vc2 = sys
        .net
        .open_vc(
            s2.camera_ep,
            viewer.display_ep,
            QosSpec::guaranteed(15_000_000),
        )
        .unwrap();
    let mut wm = WindowManager::new(viewer.display.clone(), 1);
    wm.create(vc1.dst_vci, Rect::new(0, 0, 176, 144));
    wm.create(vc2.dst_vci, Rect::new(200, 0, 176, 144));
    let cam1 = sys.build_camera(&s1, Scene::TestCard, CameraConfig::default(), vc1.src_vci);
    let cam2 = sys.build_camera(
        &s2,
        Scene::MovingGradient,
        CameraConfig::default(),
        vc2.src_vci,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam1, &mut sim);
    Camera::start(&cam2, &mut sim);
    sim.run_until(300 * MS);
    cam1.borrow_mut().stop();
    cam2.borrow_mut().stop();
    sim.run();
    let d = viewer.display.borrow();
    // Both windows painted; no cross-talk: test card's band-0 value at
    // window 1's origin.
    assert!(d.stats.tiles_blitted > 1_000);
    assert_eq!(d.pixel(0, 0), 16);
    assert_eq!(viewer.host_nic.borrow().bytes_touched, 0);
}

#[test]
fn admission_control_protects_the_backbone() {
    let mut sys = System::new();
    let a = sys.add_workstation("a", 40);
    let b = sys.add_workstation("b", 40);
    // The backbone link is 100 Mbit/s with 95% reservable.
    sys.net
        .open_vc(a.camera_ep, b.display_ep, QosSpec::guaranteed(60_000_000))
        .unwrap();
    let err = sys
        .net
        .open_vc(
            a.audio_src_ep,
            b.audio_sink_ep,
            QosSpec::guaranteed(40_000_000),
        )
        .unwrap_err();
    assert!(matches!(err, AdmissionError::InsufficientBandwidth { .. }));
}

#[test]
fn raw_and_compressed_coexist_on_one_display() {
    let mut sys = System::new();
    let s1 = sys.add_workstation("s1", 40);
    let s2 = sys.add_workstation("s2", 40);
    let v = sys.add_workstation("v", 40);
    let vc1 = sys
        .net
        .open_vc(s1.camera_ep, v.display_ep, QosSpec::guaranteed(20_000_000))
        .unwrap();
    let vc2 = sys
        .net
        .open_vc(s2.camera_ep, v.display_ep, QosSpec::guaranteed(20_000_000))
        .unwrap();
    let mut wm = WindowManager::new(v.display.clone(), 1);
    wm.create(vc1.dst_vci, Rect::new(0, 0, 176, 144));
    wm.create(vc2.dst_vci, Rect::new(0, 200, 176, 144));
    let raw_cfg = CameraConfig {
        mode: VideoMode::Raw,
        ..CameraConfig::default()
    };
    let jpeg_cfg = CameraConfig {
        mode: VideoMode::Mjpeg(75),
        ..CameraConfig::default()
    };
    let cam1 = sys.build_camera(&s1, Scene::TestCard, raw_cfg, vc1.src_vci);
    let cam2 = sys.build_camera(&s2, Scene::TestCard, jpeg_cfg, vc2.src_vci);
    let mut sim = Simulator::new();
    Camera::start(&cam1, &mut sim);
    Camera::start(&cam2, &mut sim);
    sim.run_until(120 * MS);
    cam1.borrow_mut().stop();
    cam2.borrow_mut().stop();
    sim.run();
    let d = v.display.borrow();
    assert_eq!(d.stats.frames_bad, 0);
    // Raw window exact; compressed window within codec tolerance.
    assert_eq!(d.pixel(0, 0), 16);
    let jpeg_pixel = d.pixel(0, 200) as i32;
    assert!((jpeg_pixel - 16).abs() <= 6, "jpeg pixel {jpeg_pixel}");
}

#[test]
fn videophone_reports_are_deterministic() {
    let cfg = VideoPhoneConfig {
        path: VideoPath::Dan,
        duration: 300 * MS,
        ..VideoPhoneConfig::default()
    };
    let a = VideoPhone::run(cfg);
    let b = VideoPhone::run(cfg);
    assert_eq!(a.tiles_blitted, b.tiles_blitted);
    assert_eq!(a.video_latency_p50, b.video_latency_p50);
    assert_eq!(a.cpu_bytes, b.cpu_bytes);
}

/// The workloads above, re-expressed through the declarative scenario
/// harness: the same claims (delivery, shared displays, admission
/// protection, determinism) must hold when the system is assembled from
/// a spec instead of by hand.
mod scenario_harness {
    use pegasus_system::atm::network::TopologyShape;
    use pegasus_system::scenario::spec::TopologySpec;
    use pegasus_system::scenario::{presets, run, ScenarioSpec, SessionMix};
    use pegasus_system::sim::time::MS;

    /// `two_cameras_share_one_display`, spec-driven: a TV group is
    /// exactly N cameras into one window stack.
    #[test]
    fn tv_group_shares_one_display() {
        let mut spec = ScenarioSpec::base("shared-display");
        spec.sessions = 2;
        spec.mix = SessionMix::new(0.0, 0.0, 1.0);
        spec.tv_group = 2;
        spec.duration = 150 * MS;
        let r = run(&spec);
        assert_eq!(r.sessions.2, 2);
        // Two feeds, one display endpoint: endpoints = 2 cameras + 1 display.
        assert_eq!(r.endpoints, 3);
        assert!(
            r.tiles_blitted > 500,
            "both feeds painted: {}",
            r.tiles_blitted
        );
        assert_eq!(r.cells.dropped_unroutable, 0);
    }

    /// `admission_control_protects_the_backbone`, spec-driven: ask for
    /// more guaranteed bandwidth than the fabric has; the QoS broker
    /// must renegotiate the surplus down or reject it, never overbook a
    /// link.
    #[test]
    fn oversubscription_renegotiates_instead_of_overbooking() {
        let mut spec = ScenarioSpec::base("oversub");
        // Two switches: every session crosses the one 100 Mbit/s trunk.
        spec.topology = TopologySpec {
            switches: 2,
            ..spec.topology
        };
        spec.sessions = 24;
        spec.mix = SessionMix::new(1.0, 0.0, 0.0);
        spec.video_bps = 30_000_000; // 24 × 30M across one 100M backbone
        spec.duration = 50 * MS;
        let r = run(&spec);
        assert!(
            r.broker.degraded + r.broker.rejected > 0,
            "surplus sessions must renegotiate or be refused"
        );
        assert!(
            r.broker.admitted > 0,
            "the trunk fits at least one full-rate call"
        );
        assert_eq!(
            r.broker.admitted + r.broker.degraded + r.broker.rejected,
            24
        );
        let budget = 0.95;
        assert!(
            r.max_link_utilization <= budget + 1e-9,
            "reserved {} over budget {}",
            r.max_link_utilization,
            budget
        );
    }

    /// `videophone_reports_are_deterministic`, spec-driven, through the
    /// umbrella crate's re-export path.
    #[test]
    fn spec_runs_are_deterministic_end_to_end() {
        let spec = presets::smoke().with_seed(3);
        assert_eq!(run(&spec).to_json(), run(&spec).to_json());
    }

    /// The full-stack claim at fabric scale: a multi-switch ring still
    /// delivers every class with zero deadline misses.
    #[test]
    fn ring_fabric_carries_the_mixed_workload() {
        let mut spec = ScenarioSpec::base("ring-mixed");
        spec.topology = TopologySpec {
            shape: TopologyShape::Ring,
            switches: 4,
            ..spec.topology
        };
        spec.sessions = 8;
        spec.duration = 150 * MS;
        let r = run(&spec);
        assert_eq!(r.switches, 4);
        assert_eq!(r.deadline_misses, 0);
        assert!(r.cells.delivered > 1_000);
    }
}
