//! Umbrella crate for the Pegasus reproduction.
//!
//! Re-exports the eight system crates under one roof so that integration
//! tests in `tests/` and the runnable examples in `examples/` can reach
//! the whole system through a single dependency. (The bench helpers in
//! `crates/bench` and the offline stand-ins under `vendor/` are build
//! tooling, not part of the system, and are not re-exported.)

pub use pegasus as core;
pub use pegasus_atm as atm;
pub use pegasus_devices as devices;
pub use pegasus_hostile as hostile;
pub use pegasus_naming as naming;
pub use pegasus_nemesis as nemesis;
pub use pegasus_pfs as pfs;
pub use pegasus_scenario as scenario;
pub use pegasus_sim as sim;
pub use pegasus_streams as streams;
