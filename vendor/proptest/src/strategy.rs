//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, by rejection.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Boxes a strategy as a trait object (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`]: rejection sampling, bounded.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}`: rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Weighted union of strategies over one value type.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: total weight must be positive");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed incorrectly")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "range strategy: empty range");
                let span = (hi - lo) as u64;
                // span + 1 would overflow for a full-width u64/usize range,
                // where every value is valid anyway.
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                // Wrapping arithmetic: end - start as a two's-complement
                // u64 is the correct span even when the range is wider
                // than i64::MAX (e.g. i64::MIN..i64::MAX).
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "range strategy: empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::deterministic("full_width_inclusive");
        for _ in 0..100 {
            // Spans the entire u64 domain: span + 1 must not be computed.
            let _: u64 = (0u64..=u64::MAX).new_value(&mut rng);
        }
    }

    #[test]
    fn signed_range_wider_than_i64_max() {
        let mut rng = TestRng::deterministic("signed_wide");
        for _ in 0..100 {
            let v: i64 = (i64::MIN..i64::MAX).new_value(&mut rng);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn signed_range_respects_bounds() {
        let mut rng = TestRng::deterministic("signed_bounds");
        for _ in 0..1000 {
            let v: i32 = (-7i32..9).new_value(&mut rng);
            assert!((-7..9).contains(&v), "{v}");
        }
    }

    #[test]
    fn union_weights_reach_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![(1, boxed(Just(0u8))), (3, boxed(Just(1u8)))]);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = TestRng::deterministic("map_filter");
        let s = (1u64..100)
            .prop_map(|v| v * 2)
            .prop_filter("multiple of 4", |v| v % 4 == 0);
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut rng) % 4, 0);
        }
    }
}
