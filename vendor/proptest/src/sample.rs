//! Sampling helpers (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An index into a collection whose length is only known at use time.
///
/// Generated unconstrained; [`Index::index`] maps it uniformly into
/// `0..len`.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Maps this sample into `0..len`. Panics if `len == 0`, matching
    /// real proptest.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index called with empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
