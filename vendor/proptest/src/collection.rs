//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range must be non-empty");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
