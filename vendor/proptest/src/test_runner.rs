//! Test-runner plumbing: config, case errors, and the deterministic RNG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the deterministic
        // stand-in fast while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded and retried.
    Reject(&'static str),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// The RNG handed to strategies: deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeds from a test name so every run of a given test explores the
    /// same case sequence.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.inner.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}
