//! `any::<T>()` — the default strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}
