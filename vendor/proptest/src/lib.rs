//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its property tests use: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`prop_oneof!`], [`arbitrary::any`],
//! [`collection::vec`], [`sample::Index`], and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   assertion message; re-running is deterministic (the RNG seed is derived
//!   from the test name), so the failure reproduces exactly.
//! * **Fixed seeding.** There is no `PROPTEST_CASES`/persistence machinery;
//!   every run explores the same deterministic sequence of cases, which is
//!   what this repository's reproducible-experiment policy wants anyway.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirrors the `prop` re-export module from the real prelude.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs `cases` instances of a property, regenerating inputs each time.
///
/// This is the engine behind the [`proptest!`] macro; `body` returns
/// `Err(TestCaseError::Reject)` for `prop_assume!` failures (the case is
/// retried with fresh inputs) and `Err(TestCaseError::Fail)` for assertion
/// failures (the run panics).
pub fn run_cases<F>(test_name: &str, config: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::deterministic(test_name);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while executed < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest stand-in: `{test_name}` rejected too many cases \
                 ({attempts} attempts for {executed} accepted)"
            );
        }
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => continue,
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest stand-in: `{test_name}` failed at case {executed}: {msg}")
            }
        }
    }
}

/// The macro behind proptest-style property tests.
///
/// Supports the two shapes this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy, (a, b) in other) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Built once, outside the per-case closure: the tuple of
            // strategies is itself a strategy (see strategy.rs).
            let __proptest_strategies = ($($strat,)+);
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::new_value(
                    &__proptest_strategies,
                    __proptest_rng,
                );
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (1u8..10, 10u8..20), v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
