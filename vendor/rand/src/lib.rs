//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this reproduction has no network access, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] methods.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic,
//! fast, and more than adequate for workload generation and property tests.
//! It is **not** the real `rand` crate: distributions are implemented with
//! plain modulo / scaling (bias on the order of 2⁻⁵³ for the ranges used
//! here), and only the types this workspace needs implement [`Sample`].

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // span + 1 would overflow for a full-width u64/usize range,
                // where every value is valid anyway.
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing RNG trait: a subset of `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed: a subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators ([`SmallRng`]).

    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
