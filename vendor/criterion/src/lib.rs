//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the criterion API that `benches/micro.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain two-phase measurement (calibrating warm-up, then a
//! fixed measurement window) reporting the mean ns/iter — no statistics
//! engine, no HTML reports. Good enough to spot order-of-magnitude
//! regressions in the micro-benchmarks; the real experiment benches
//! (`e01`–`e17`) are self-contained `harness = false` binaries that do not
//! go through this crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name` and prints the mean time per
    /// iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<40} {per_iter:>12.1} ns/iter  ({} iters)", b.iters);
        self
    }
}

/// Runs the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up to pick an iteration batch size.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: count how many iterations fit in the warm-up window.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        // Measurement: run roughly a MEASURE window's worth, timed as one
        // batch to keep clock-read overhead out of the figure.
        let target =
            (warm_iters.max(1) * MEASURE.as_millis() as u64 / WARMUP.as_millis() as u64).max(1);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += target;
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
