//! The cross-layer QoS broker: end-to-end admission and renegotiation.
//!
//! The paper's thesis is that a multimedia OS must reserve resources on
//! *every* layer a session touches — CPU in the Nemesis kernel, peak
//! bandwidth on each ATM hop, and streaming capacity at the Pegasus
//! file server — and that under overload the system should renegotiate
//! sessions down gracefully rather than let everything degrade at once.
//! The broker is that policy in one place:
//!
//! * a session presents a [`ResourceVector`] — CPU share (micro-CPUs),
//!   guaranteed video bandwidth (bits/second) and file-server stream
//!   slots — as a [`SessionRequest`];
//! * the broker checks the vector against three capacity ledgers: the
//!   Nemesis [`CpuLedger`], the per-link admission controllers inside
//!   the ATM [`Network`] (via [`Network::probe_vcs`], a joint
//!   feasibility check over all the session's flows), and the
//!   per-server [`StreamSlots`] ledgers of the PFS;
//! * the outcome is three-way: **admit** at the full vector, **admit
//!   degraded** at a renegotiated-down vector (the single degrade rung,
//!   `degrade_milli` thousandths of the request — bitrate, frame rate
//!   and CPU all scale down, slots never scale up), or **reject** with
//!   the layer that refused.
//!
//! Checks run in a fixed order — CPU, then PFS slots, then bandwidth —
//! and nothing is committed until every layer has said yes, so a
//! refused session leaves all three ledgers untouched. Everything is
//! integer accounting over a deterministic network, which makes the
//! admit/degrade/reject boundary a pure function of the request
//! sequence: the property tests in `crates/scenario` hold the broker to
//! exactly that.

use pegasus_atm::network::{EndpointId, Network, VcHandle};
use pegasus_atm::signalling::QosSpec;
use pegasus_nemesis::qosmgr::CpuLedger;
use pegasus_pfs::cm::StreamSlots;

/// The traffic classes the broker distinguishes (for reporting; the
/// admission arithmetic is class-blind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionClass {
    /// Two-party call: video plus a fixed-rate audio flow.
    Videophone,
    /// File-server playback: video flow plus one CM stream slot.
    Vod,
    /// One studio feed into a control-room stack.
    Tv,
}

/// A session's demand (or grant) on every layer at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceVector {
    /// Nemesis CPU share, in micro-CPUs (millionths of one processor).
    pub cpu_micro: u64,
    /// Guaranteed bandwidth per media flow, bits/second.
    pub video_bps: u64,
    /// Concurrent stream slots at the session's file server.
    pub pfs_slots: u32,
}

impl ResourceVector {
    /// Component-wise `<=`: renegotiation must only ever move a
    /// session's vector down, and this is the order it moves down in.
    pub fn le(&self, other: &ResourceVector) -> bool {
        self.cpu_micro <= other.cpu_micro
            && self.video_bps <= other.video_bps
            && self.pfs_slots <= other.pfs_slots
    }

    /// The vector scaled to `milli` thousandths (floor), slots kept:
    /// a degraded session still occupies one server slot.
    fn scaled(&self, milli: u64) -> ResourceVector {
        ResourceVector {
            cpu_micro: self.cpu_micro * milli / 1000,
            video_bps: self.video_bps * milli / 1000,
            pfs_slots: self.pfs_slots,
        }
    }
}

/// One media flow a session wants opened as a guaranteed VC.
#[derive(Debug, Clone, Copy)]
pub struct FlowRequest {
    /// Transmitting endpoint.
    pub src: EndpointId,
    /// Receiving endpoint.
    pub dst: EndpointId,
    /// Peak rate to reserve, bits/second. For media flows this is the
    /// request's `video_bps` (the broker scales it when degrading); for
    /// fixed flows it is reserved as-is.
    pub bps: u64,
}

/// Everything a session asks the broker for.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Class, for per-class reporting.
    pub class: SessionClass,
    /// Degradable media flows (video): reserved at the granted rate.
    pub media_flows: Vec<FlowRequest>,
    /// Non-degradable flows (audio, control): reserved at their stated
    /// rate on both rungs — a call with unintelligible audio is not a
    /// lower-quality call, it is a failed one.
    pub fixed_flows: Vec<FlowRequest>,
    /// CPU demand at full quality, micro-CPUs.
    pub cpu_micro: u64,
    /// File server whose slot ledger the session draws on, if any.
    pub pfs_server: Option<usize>,
}

impl SessionRequest {
    /// The request's full-quality resource vector.
    pub fn requested(&self) -> ResourceVector {
        ResourceVector {
            cpu_micro: self.cpu_micro,
            video_bps: self.media_flows.iter().map(|f| f.bps).max().unwrap_or(0),
            pfs_slots: if self.pfs_server.is_some() { 1 } else { 0 },
        }
    }
}

/// The layer that refused a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectLayer {
    /// The Nemesis CPU ledger was exhausted.
    Cpu,
    /// Some ATM link lacked unreserved bandwidth.
    Bandwidth,
    /// The session's file server had no free stream slot.
    PfsSlots,
}

/// The broker's three-way verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Admitted at the full requested vector.
    Admitted,
    /// Admitted at the renegotiated-down vector.
    Degraded,
    /// Refused outright; the layer is the one that refused the
    /// *degraded* rung (the binding constraint).
    Rejected(RejectLayer),
}

/// One live quality transition in a session's contract history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renegotiation {
    /// Simulation time of the transition, nanoseconds.
    pub at_ns: u64,
    /// Quality before, thousandths of the request.
    pub from_milli: u64,
    /// Quality after.
    pub to_milli: u64,
}

/// What the broker returns: the verdict, the contract, and the opened
/// circuits (media flows first, then fixed flows, in request order).
#[derive(Debug)]
pub struct SessionGrant {
    /// The verdict.
    pub outcome: Outcome,
    /// Current quality in thousandths of the request: starts at 1000
    /// (admitted) or the broker's `degrade_milli` (degraded), 0 when
    /// rejected; live renegotiation moves it afterwards.
    pub quality_milli: u64,
    /// Quality at admission time — the contract ceiling. Live
    /// renegotiation never raises a session above this.
    pub admitted_milli: u64,
    /// What the session asked for.
    pub requested: ResourceVector,
    /// What it holds now (all zeros when rejected).
    pub granted: ResourceVector,
    /// The file server whose slot ledger was charged, when one was:
    /// [`QosBroker::release`] returns the slot there.
    pub pfs_server: Option<usize>,
    /// Guaranteed VCs opened on the session's behalf; empty when
    /// rejected. Media flows come first, then fixed flows.
    pub vcs: Vec<VcHandle>,
    /// The media flows' *full-quality* rates, in [`SessionGrant::vcs`]
    /// order — the basis live renegotiation rescales from, so repeated
    /// down/up transitions never accumulate rounding error.
    pub media_full_bps: Vec<u64>,
    /// Every live quality transition, in order — the contract history.
    pub history: Vec<Renegotiation>,
}

impl SessionGrant {
    /// Whether the session runs (admitted or degraded).
    pub fn is_admitted(&self) -> bool {
        !matches!(self.outcome, Outcome::Rejected(_))
    }

    /// The disk playback rate this grant actually buys: `nominal_bps`
    /// scaled by the admitted quality, floored at one byte/second so a
    /// degraded-but-admitted stream still progresses. Both the CM
    /// scheduler's reservation and the content cache's sequential
    /// prefetch horizon take *this* rate — the broker's contract, not
    /// the request — so prefetch never races ahead of what admission
    /// promised the array could sustain.
    pub fn disk_rate_hint(&self, nominal_bps: u64) -> u64 {
        (nominal_bps * self.quality_milli / 1000).max(1)
    }
}

/// The cross-layer QoS broker: one CPU ledger, one slot ledger per file
/// server, and the network's own per-link controllers (borrowed per
/// call — the [`Network`] stays the single owner of its bandwidth
/// books).
#[derive(Debug)]
pub struct QosBroker {
    /// Nemesis CPU capacity ledger.
    pub cpu: CpuLedger,
    /// One stream-slot ledger per file server.
    pub pfs: Vec<StreamSlots>,
    /// The single degrade rung, in thousandths of the requested vector.
    pub degrade_milli: u64,
}

impl QosBroker {
    /// Creates a broker with `cpu_capacity_micro` micro-CPUs, `servers`
    /// slot ledgers of `slots_per_server` each, and the given degrade
    /// rung (0 < `degrade_milli` <= 1000).
    pub fn new(
        cpu_capacity_micro: u64,
        servers: usize,
        slots_per_server: usize,
        degrade_milli: u64,
    ) -> Self {
        assert!(
            degrade_milli > 0 && degrade_milli <= 1000,
            "degrade rung must be in (0, 1000]"
        );
        QosBroker {
            cpu: CpuLedger::new(cpu_capacity_micro),
            pfs: vec![StreamSlots::new(slots_per_server); servers],
            degrade_milli,
        }
    }

    /// Decides a session: admit at full quality, degrade to the broker's
    /// rung, or reject. On admit/degrade every ledger is charged and the
    /// session's guaranteed VCs are opened; on reject nothing changes.
    pub fn admit(&mut self, net: &mut Network, req: &SessionRequest) -> SessionGrant {
        let requested = req.requested();
        match self.try_rung(net, req, 1000) {
            Ok(grant) => grant,
            Err(_) if self.degrade_milli < 1000 => {
                match self.try_rung(net, req, self.degrade_milli) {
                    Ok(grant) => grant,
                    Err(layer) => Self::rejection(requested, layer),
                }
            }
            Err(layer) => Self::rejection(requested, layer),
        }
    }

    /// Returns a session's resources: closes its VCs and releases its
    /// CPU and slot reservations. The grant itself records which server
    /// (if any) its slot was charged to.
    pub fn release(&mut self, net: &mut Network, grant: SessionGrant) {
        for vc in grant.vcs {
            net.close_vc(vc);
        }
        self.cpu.release(grant.granted.cpu_micro);
        if let Some(s) = grant.pfs_server {
            self.pfs[s].release();
        }
    }

    /// Free CPU capacity, micro-CPUs.
    pub fn cpu_headroom_micro(&self) -> u64 {
        self.cpu.available_micro()
    }

    /// Free stream slots across all servers.
    pub fn pfs_headroom_slots(&self) -> u64 {
        self.pfs.iter().map(|s| s.available() as u64).sum()
    }

    fn rejection(requested: ResourceVector, layer: RejectLayer) -> SessionGrant {
        SessionGrant {
            outcome: Outcome::Rejected(layer),
            quality_milli: 0,
            admitted_milli: 0,
            requested,
            granted: ResourceVector::default(),
            pfs_server: None,
            vcs: Vec::new(),
            media_full_bps: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Moves a *live* session to `new_milli` thousandths of its request
    /// — the congestion loop's actuator. Media VCs are resized in place
    /// (routes and VCIs untouched, so cells in flight are unaffected),
    /// the CPU ledger is recharged at the new rate, and the transition
    /// is appended to the grant's contract history. Fixed flows (audio)
    /// and stream slots never change — a degraded call is a lower-rate
    /// call, not a broken one.
    ///
    /// `new_milli` is clamped to the session's `admitted_milli`: live
    /// renegotiation restores, it never exceeds the admitted contract.
    /// Fails without side effects if some layer cannot carry the new
    /// rate (only possible on the way up).
    pub fn renegotiate_live(
        &mut self,
        net: &mut Network,
        grant: &mut SessionGrant,
        new_milli: u64,
        at_ns: u64,
    ) -> Result<(), RejectLayer> {
        assert!(grant.is_admitted(), "only live sessions renegotiate");
        let target = new_milli.min(grant.admitted_milli);
        let from = grant.quality_milli;
        if target == from {
            return Ok(());
        }
        let new = grant.requested.scaled(target);
        let old_cpu = grant.granted.cpu_micro;

        // CPU first: the only ledger whose reserve can refuse here.
        if new.cpu_micro >= old_cpu {
            if self.cpu.reserve(new.cpu_micro - old_cpu).is_err() {
                return Err(RejectLayer::Cpu);
            }
        } else {
            self.cpu.release(old_cpu - new.cpu_micro);
        }

        // Resize each media VC; on a refusal (possible only going up),
        // restore the ones already moved and the CPU delta.
        for i in 0..grant.media_full_bps.len() {
            let new_bps = grant.media_full_bps[i] * target / 1000;
            if net.resize_vc(&mut grant.vcs[i], new_bps).is_err() {
                for j in 0..i {
                    let old_bps = grant.media_full_bps[j] * from / 1000;
                    net.resize_vc(&mut grant.vcs[j], old_bps)
                        .expect("shrinking back always fits");
                }
                if new.cpu_micro >= old_cpu {
                    self.cpu.release(new.cpu_micro - old_cpu);
                } else {
                    self.cpu
                        .reserve(old_cpu - new.cpu_micro)
                        .expect("released capacity restores");
                }
                return Err(RejectLayer::Bandwidth);
            }
        }

        grant.granted = new;
        grant.quality_milli = target;
        grant.history.push(Renegotiation {
            at_ns,
            from_milli: from,
            to_milli: target,
        });
        Ok(())
    }

    /// Attempts one rung: all-or-nothing across the three layers, in
    /// the fixed order CPU → PFS slots → bandwidth. Commits only after
    /// every layer has passed.
    fn try_rung(
        &mut self,
        net: &mut Network,
        req: &SessionRequest,
        milli: u64,
    ) -> Result<SessionGrant, RejectLayer> {
        let requested = req.requested();
        let granted = requested.scaled(milli);

        if granted.cpu_micro > self.cpu.available_micro() {
            return Err(RejectLayer::Cpu);
        }
        if let Some(s) = req.pfs_server {
            assert!(s < self.pfs.len(), "request names a known file server");
            if self.pfs[s].available() == 0 {
                return Err(RejectLayer::PfsSlots);
            }
        }
        // Joint bandwidth feasibility over every flow of the session:
        // media flows at the rung's rate, fixed flows as stated.
        let flows: Vec<(EndpointId, EndpointId, u64)> = req
            .media_flows
            .iter()
            .map(|f| (f.src, f.dst, f.bps * milli / 1000))
            .chain(req.fixed_flows.iter().map(|f| (f.src, f.dst, f.bps)))
            .collect();
        if net.probe_vcs(&flows).is_err() {
            return Err(RejectLayer::Bandwidth);
        }

        // Every layer said yes: commit. The probe guarantees the opens
        // succeed (signalling is single-threaded).
        self.cpu
            .reserve(granted.cpu_micro)
            .expect("checked against the ledger above");
        if let Some(s) = req.pfs_server {
            self.pfs[s].take().expect("checked for a free slot above");
        }
        let vcs = flows
            .iter()
            .map(|&(src, dst, bps)| {
                net.open_vc(src, dst, QosSpec::guaranteed(bps))
                    .expect("probe_vcs accepted this flow set")
            })
            .collect();
        Ok(SessionGrant {
            outcome: if milli == 1000 {
                Outcome::Admitted
            } else {
                Outcome::Degraded
            },
            quality_milli: milli,
            admitted_milli: milli,
            requested,
            granted,
            pfs_server: req.pfs_server.filter(|_| granted.pfs_slots > 0),
            vcs,
            media_full_bps: req.media_flows.iter().map(|f| f.bps).collect(),
            history: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_atm::link::CaptureSink;
    use pegasus_atm::network::LinkConfig;

    /// Two switches joined by one 100 Mbit/s trunk; every session
    /// crosses it.
    fn two_site() -> (Network, EndpointId, EndpointId) {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let a = net.add_switch("a", 8, 0);
        let b = net.add_switch("b", 8, 0);
        net.connect_switches(a, 0, b, 0, cfg);
        let src = net.add_endpoint_auto(a, cfg, CaptureSink::shared());
        let dst = net.add_endpoint_auto(b, cfg, CaptureSink::shared());
        (net, src, dst)
    }

    fn video_request(src: EndpointId, dst: EndpointId, bps: u64, cpu: u64) -> SessionRequest {
        SessionRequest {
            class: SessionClass::Videophone,
            media_flows: vec![FlowRequest { src, dst, bps }],
            fixed_flows: Vec::new(),
            cpu_micro: cpu,
            pfs_server: None,
        }
    }

    #[test]
    fn admits_at_full_quality_when_everything_fits() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        let grant = broker.admit(&mut net, &video_request(src, dst, 10_000_000, 300));
        assert_eq!(grant.outcome, Outcome::Admitted);
        assert_eq!(grant.quality_milli, 1000);
        assert_eq!(grant.granted, grant.requested);
        assert_eq!(grant.vcs.len(), 1);
        assert_eq!(broker.cpu.reserved_micro(), 300);
    }

    #[test]
    fn degrades_when_full_rate_does_not_fit() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        // 95 Mbit/s reservable: one 60M session fits, the second only
        // at the 30M degraded rung.
        let g1 = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        assert_eq!(g1.outcome, Outcome::Admitted);
        let g2 = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        assert_eq!(g2.outcome, Outcome::Degraded);
        assert_eq!(g2.quality_milli, 500);
        assert_eq!(g2.granted.video_bps, 30_000_000);
        assert!(g2.granted.le(&g2.requested));
        // A third cannot fit even degraded: 60+30+30 > 95.
        let g3 = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        assert_eq!(g3.outcome, Outcome::Rejected(RejectLayer::Bandwidth));
        assert!(g3.vcs.is_empty());
        assert_eq!(g3.granted, ResourceVector::default());
    }

    #[test]
    fn cpu_exhaustion_rejects_and_charges_nothing() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(500, 0, 0, 500);
        let g1 = broker.admit(&mut net, &video_request(src, dst, 1_000_000, 400));
        assert_eq!(g1.outcome, Outcome::Admitted);
        // 100 µCPU left: full (400) fails, degraded (200) fails too.
        let g2 = broker.admit(&mut net, &video_request(src, dst, 1_000_000, 400));
        assert_eq!(g2.outcome, Outcome::Rejected(RejectLayer::Cpu));
        assert_eq!(broker.cpu.reserved_micro(), 400);
        assert_eq!(net.max_reservation_utilization(), 0.01);
        // A cheap-enough session still degrades in on CPU: 160 µCPU
        // requested, 80 at the rung.
        let g3 = broker.admit(&mut net, &video_request(src, dst, 1_000_000, 160));
        assert_eq!(g3.outcome, Outcome::Degraded);
        assert_eq!(g3.granted.cpu_micro, 80);
    }

    #[test]
    fn pfs_slot_exhaustion_rejects() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 1, 1, 500);
        let mut vod = video_request(src, dst, 1_000_000, 100);
        vod.class = SessionClass::Vod;
        vod.pfs_server = Some(0);
        let g1 = broker.admit(&mut net, &vod);
        assert_eq!(g1.outcome, Outcome::Admitted);
        assert_eq!(g1.granted.pfs_slots, 1);
        let g2 = broker.admit(&mut net, &vod);
        assert_eq!(g2.outcome, Outcome::Rejected(RejectLayer::PfsSlots));
        assert_eq!(broker.pfs_headroom_slots(), 0);
        assert_eq!(broker.pfs[0].used(), 1);
    }

    #[test]
    fn fixed_flows_are_not_degraded_but_count_against_links() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        let mut req = video_request(src, dst, 90_000_000, 100);
        req.fixed_flows.push(FlowRequest {
            src,
            dst,
            bps: 20_000_000,
        });
        // Full: 90 + 20 > 95 fails. Degraded: 45 + 20 = 65 fits, and
        // the fixed flow keeps its whole 20M.
        let g = broker.admit(&mut net, &req);
        assert_eq!(g.outcome, Outcome::Degraded);
        assert_eq!(g.vcs.len(), 2);
        assert_eq!(g.vcs[0].qos.peak_bps, 45_000_000);
        assert_eq!(g.vcs[1].qos.peak_bps, 20_000_000);
    }

    #[test]
    fn release_returns_every_resource() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(1_000, 1, 1, 500);
        let mut req = video_request(src, dst, 90_000_000, 800);
        req.pfs_server = Some(0);
        let g = broker.admit(&mut net, &req);
        assert_eq!(g.outcome, Outcome::Admitted);
        assert_eq!(g.pfs_server, Some(0));
        broker.release(&mut net, g);
        assert_eq!(broker.cpu.reserved_micro(), 0);
        assert_eq!(broker.pfs[0].used(), 0);
        assert_eq!(net.max_reservation_utilization(), 0.0);
        // The capacity is genuinely reusable.
        let g2 = broker.admit(&mut net, &req);
        assert_eq!(g2.outcome, Outcome::Admitted);
    }

    #[test]
    fn live_renegotiation_moves_down_and_back_never_above_admitted() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        let mut g = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        assert_eq!(g.outcome, Outcome::Admitted);
        let (src_vci, dst_vci) = (g.vcs[0].src_vci, g.vcs[0].dst_vci);

        broker
            .renegotiate_live(&mut net, &mut g, 500, 1_000)
            .unwrap();
        assert_eq!(g.quality_milli, 500);
        assert_eq!(g.granted.video_bps, 30_000_000);
        assert_eq!(g.vcs[0].qos.peak_bps, 30_000_000);
        assert_eq!(broker.cpu.reserved_micro(), 150);
        assert_eq!(
            (g.vcs[0].src_vci, g.vcs[0].dst_vci),
            (src_vci, dst_vci),
            "renegotiation must not disturb the circuit"
        );

        // Asking for more than admitted clamps to the admitted contract.
        broker
            .renegotiate_live(&mut net, &mut g, 1500, 2_000)
            .unwrap();
        assert_eq!(g.quality_milli, 1000);
        assert_eq!(g.granted, g.requested);
        assert_eq!(broker.cpu.reserved_micro(), 300);
        assert_eq!(g.history.len(), 2);
        assert_eq!(
            g.history[1],
            Renegotiation {
                at_ns: 2_000,
                from_milli: 500,
                to_milli: 1000
            }
        );
    }

    #[test]
    fn failed_renegotiation_up_restores_every_ledger() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        let mut g = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        broker.renegotiate_live(&mut net, &mut g, 500, 0).unwrap();
        // A newcomer takes the freed bandwidth; the way back up is shut.
        let squatter = broker.admit(&mut net, &video_request(src, dst, 50_000_000, 100));
        assert_eq!(squatter.outcome, Outcome::Admitted);
        let cpu_before = broker.cpu.reserved_micro();
        let util_before = net.max_reservation_utilization();
        let err = broker
            .renegotiate_live(&mut net, &mut g, 1000, 0)
            .unwrap_err();
        assert_eq!(err, RejectLayer::Bandwidth);
        assert_eq!(g.quality_milli, 500, "failed up keeps the current rung");
        assert_eq!(broker.cpu.reserved_micro(), cpu_before);
        assert_eq!(net.max_reservation_utilization(), util_before);
        assert_eq!(g.history.len(), 1, "a refused transition is not history");
    }

    #[test]
    fn degraded_admission_caps_the_live_ceiling() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 500);
        let _g1 = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        let mut g2 = broker.admit(&mut net, &video_request(src, dst, 60_000_000, 300));
        assert_eq!(g2.outcome, Outcome::Degraded);
        assert_eq!(g2.admitted_milli, 500);
        // Even with capacity to spare, up-renegotiation stops at the
        // admitted contract, not the original request.
        broker.renegotiate_live(&mut net, &mut g2, 1000, 0).unwrap();
        assert_eq!(g2.quality_milli, 500);
        assert!(g2.history.is_empty(), "clamped no-op records nothing");
    }

    #[test]
    fn degrade_rung_of_1000_means_no_second_attempt() {
        let (mut net, src, dst) = two_site();
        let mut broker = QosBroker::new(10_000, 0, 0, 1000);
        let _ = broker.admit(&mut net, &video_request(src, dst, 90_000_000, 100));
        let g = broker.admit(&mut net, &video_request(src, dst, 90_000_000, 100));
        assert_eq!(g.outcome, Outcome::Rejected(RejectLayer::Bandwidth));
    }

    #[test]
    #[should_panic(expected = "degrade rung")]
    fn zero_degrade_rung_rejected() {
        QosBroker::new(1, 0, 0, 0);
    }
}
