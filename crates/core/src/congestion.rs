//! The congestion feedback loop: epoch signals in, renegotiation
//! verdicts out, with hysteresis so quality never flaps.
//!
//! Credit windows (`pegasus_atm::credit`) make overload *visible*
//! instead of letting queues grow: a congested circuit shows up as
//! failed acquires at the producer, not as drops in the fabric. Every
//! epoch the scenario samples those stalls, the switches' epoch-peak
//! queue depth, and the file servers' slot headroom into a
//! [`CongestionSignal`] and shows it to a [`CongestionController`].
//! The controller answers with a [`Verdict`]:
//!
//! * [`Verdict::Down`] after `down_after` *consecutive* pressured
//!   epochs — sustained pressure, not a transient burst, triggers the
//!   one degrade rung;
//! * [`Verdict::Up`] only after `up_after` consecutive epochs that are
//!   clear **and** show real queue headroom (`headroom_cells`). The
//!   headroom condition is what prevents flapping: degrading a session
//!   stops its stalls immediately, but while the underlying cause (a
//!   best-effort blast, a failing line) still holds the queue deep, the
//!   controller keeps holding — quality returns only when the fabric
//!   itself has drained;
//! * [`Verdict::Hold`] otherwise.
//!
//! The controller is a pure integer state machine — no clocks, no
//! randomness — so the whole feedback loop stays a deterministic
//! function of the event schedule, and the hostile control front can
//! walk it exhaustively.

/// One epoch's worth of congestion evidence, sampled by the scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestionSignal {
    /// Failed credit acquires across the media circuits this epoch
    /// (each one is a whole frame held at its source).
    pub credit_stalls: u64,
    /// Deepest switch output backlog seen this epoch, in cells (the
    /// resettable gauge, not the run-long high-water mark).
    pub peak_queue_cells: u64,
    /// The file servers' CM slot ledgers are exhausted — stream
    /// pressure from `crates/pfs` counts as congestion evidence too.
    pub cm_slot_pressure: bool,
}

/// A shard-mergeable congestion sample: the same evidence as
/// [`CongestionSignal`], but built so that partial samples taken on
/// different executor shards combine into exactly the signal a
/// single-shard run would have sampled globally.
///
/// [`EpochSignal::merge`] is associative and commutative (sum of
/// stalls, max of peaks, OR of slot pressure), so every shard can fold
/// the per-shard samples in shard order at the epoch barrier and all
/// replicas of the [`CongestionController`] observe an identical
/// signal — which is what keeps renegotiation verdicts deterministic
/// at any `--shards`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochSignal {
    /// Failed credit acquires on circuits whose producer this shard owns.
    pub credit_stalls: u64,
    /// Deepest backlog among this shard's switch replicas, in cells.
    pub peak_queue_cells: u64,
    /// Slot-ledger exhaustion as observed by this shard's replica of
    /// the broker ledgers (replicated state, so identical everywhere).
    pub cm_slot_pressure: bool,
}

impl EpochSignal {
    /// Folds another shard's sample into this one.
    pub fn merge(&mut self, other: &EpochSignal) {
        self.credit_stalls += other.credit_stalls;
        self.peak_queue_cells = self.peak_queue_cells.max(other.peak_queue_cells);
        self.cm_slot_pressure |= other.cm_slot_pressure;
    }

    /// The merged sample as the controller's input type.
    pub fn into_signal(self) -> CongestionSignal {
        CongestionSignal {
            credit_stalls: self.credit_stalls,
            peak_queue_cells: self.peak_queue_cells,
            cm_slot_pressure: self.cm_slot_pressure,
        }
    }
}

/// What the controller tells the broker to do this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No change.
    Hold,
    /// Sustained pressure: renegotiate live sessions down one rung.
    Down,
    /// Sustained clearance with headroom: restore admitted quality.
    Up,
}

/// The hysteresis state machine between congestion signals and QoS
/// renegotiation.
#[derive(Debug)]
pub struct CongestionController {
    /// Consecutive pressured epochs required before a Down.
    pub down_after: u32,
    /// Consecutive clear epochs required before an Up.
    pub up_after: u32,
    /// Stalls per epoch at or above which the epoch counts as pressured.
    pub stall_threshold: u64,
    /// An epoch is clear only if the peak queue stayed at or below this
    /// (the anti-flap condition — see the module docs).
    pub headroom_cells: u64,
    pressured_epochs: u32,
    clear_epochs: u32,
    degraded: bool,
    downs: u64,
    ups: u64,
}

impl CongestionController {
    /// A controller with the given hysteresis constants.
    pub fn new(down_after: u32, up_after: u32, stall_threshold: u64, headroom_cells: u64) -> Self {
        assert!(
            down_after > 0 && up_after > 0,
            "hysteresis must be positive"
        );
        assert!(
            stall_threshold > 0,
            "a zero threshold would trip on nothing"
        );
        CongestionController {
            down_after,
            up_after,
            stall_threshold,
            headroom_cells,
            pressured_epochs: 0,
            clear_epochs: 0,
            degraded: false,
            downs: 0,
            ups: 0,
        }
    }

    /// Feeds one epoch's signal; returns the verdict for this epoch.
    pub fn observe(&mut self, sig: &CongestionSignal) -> Verdict {
        let pressured = sig.credit_stalls >= self.stall_threshold
            || (sig.cm_slot_pressure && sig.credit_stalls > 0);
        if self.degraded {
            let clear = sig.credit_stalls == 0 && sig.peak_queue_cells <= self.headroom_cells;
            if clear {
                self.clear_epochs += 1;
                if self.clear_epochs >= self.up_after {
                    self.degraded = false;
                    self.clear_epochs = 0;
                    self.ups += 1;
                    return Verdict::Up;
                }
            } else {
                self.clear_epochs = 0;
            }
        } else if pressured {
            self.pressured_epochs += 1;
            if self.pressured_epochs >= self.down_after {
                self.degraded = true;
                self.pressured_epochs = 0;
                self.clear_epochs = 0;
                self.downs += 1;
                return Verdict::Down;
            }
        } else {
            self.pressured_epochs = 0;
        }
        Verdict::Hold
    }

    /// Whether the controller currently holds sessions degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Down verdicts issued so far.
    pub fn downs(&self) -> u64 {
        self.downs
    }

    /// Up verdicts issued so far.
    pub fn ups(&self) -> u64 {
        self.ups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressured() -> CongestionSignal {
        CongestionSignal {
            credit_stalls: 10,
            peak_queue_cells: 500,
            cm_slot_pressure: false,
        }
    }

    fn clear() -> CongestionSignal {
        CongestionSignal::default()
    }

    fn deep_but_quiet() -> CongestionSignal {
        CongestionSignal {
            credit_stalls: 0,
            peak_queue_cells: 500,
            cm_slot_pressure: false,
        }
    }

    #[test]
    fn transient_pressure_never_degrades() {
        let mut c = CongestionController::new(3, 2, 1, 64);
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert_eq!(c.observe(&clear()), Verdict::Hold, "streak broken");
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert!(!c.is_degraded());
        assert_eq!(c.downs(), 0);
    }

    #[test]
    fn sustained_pressure_downs_exactly_once() {
        let mut c = CongestionController::new(3, 2, 1, 64);
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert_eq!(c.observe(&pressured()), Verdict::Down);
        // Still pressured: no second Down, no Up.
        assert_eq!(c.observe(&pressured()), Verdict::Hold);
        assert_eq!(c.downs(), 1);
        assert!(c.is_degraded());
    }

    #[test]
    fn deep_queue_blocks_the_up_even_without_stalls() {
        let mut c = CongestionController::new(1, 2, 1, 64);
        assert_eq!(c.observe(&pressured()), Verdict::Down);
        // Degrading stopped the stalls, but the blast still holds the
        // queue deep: quality must not flap back.
        for _ in 0..10 {
            assert_eq!(c.observe(&deep_but_quiet()), Verdict::Hold);
        }
        assert!(c.is_degraded());
        // The cause ends, the queue drains: two clear epochs restore.
        assert_eq!(c.observe(&clear()), Verdict::Hold);
        assert_eq!(c.observe(&clear()), Verdict::Up);
        assert!(!c.is_degraded());
        assert_eq!((c.downs(), c.ups()), (1, 1));
    }

    #[test]
    fn cm_slot_pressure_counts_only_alongside_stalls() {
        let mut c = CongestionController::new(1, 1, 100, 64);
        let sig = CongestionSignal {
            credit_stalls: 0,
            peak_queue_cells: 0,
            cm_slot_pressure: true,
        };
        assert_eq!(
            c.observe(&sig),
            Verdict::Hold,
            "slots alone are not congestion"
        );
        let sig = CongestionSignal {
            credit_stalls: 2, // below the stall threshold on its own
            cm_slot_pressure: true,
            peak_queue_cells: 0,
        };
        assert_eq!(c.observe(&sig), Verdict::Down);
    }

    #[test]
    fn epoch_signal_merge_is_associative_and_commutative() {
        let a = EpochSignal {
            credit_stalls: 3,
            peak_queue_cells: 10,
            cm_slot_pressure: false,
        };
        let b = EpochSignal {
            credit_stalls: 0,
            peak_queue_cells: 40,
            cm_slot_pressure: true,
        };
        let c = EpochSignal {
            credit_stalls: 7,
            peak_queue_cells: 5,
            cm_slot_pressure: false,
        };
        let fold = |xs: &[EpochSignal]| {
            let mut acc = EpochSignal::default();
            for x in xs {
                acc.merge(x);
            }
            acc
        };
        let abc = fold(&[a, b, c]);
        assert_eq!(abc, fold(&[c, b, a]), "commutative");
        let mut ab = a;
        ab.merge(&b);
        let mut bc = b;
        bc.merge(&c);
        let mut left = ab;
        left.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "associative");
        let sig = abc.into_signal();
        assert_eq!(sig.credit_stalls, 10);
        assert_eq!(sig.peak_queue_cells, 40);
        assert!(sig.cm_slot_pressure);
    }

    #[test]
    fn full_cycle_is_monotone_one_down_one_up() {
        let mut c = CongestionController::new(2, 3, 1, 64);
        let mut downs = 0;
        let mut ups = 0;
        // Pressure for 10 epochs, then clear for 10: exactly one of each.
        for _ in 0..10 {
            match c.observe(&pressured()) {
                Verdict::Down => downs += 1,
                Verdict::Up => ups += 1,
                Verdict::Hold => {}
            }
        }
        for _ in 0..10 {
            match c.observe(&clear()) {
                Verdict::Down => downs += 1,
                Verdict::Up => ups += 1,
                Verdict::Hold => {}
            }
        }
        assert_eq!((downs, ups), (1, 1));
    }
}
