//! The digital TV director — the Pegasus project's flagship application.
//!
//! The project brief: "the design and implementation of an application
//! for the system — a digital TV director". Several studio cameras feed
//! live streams to a control-room display; the director cuts between
//! them. In the Pegasus architecture a cut is *pure control*: every
//! camera already streams to the program monitor's window stack, and
//! cutting is one window-descriptor manipulation (a raise) — no media
//! data is touched, copied or re-routed.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_atm::signalling::QosSpec;
use pegasus_devices::camera::{Camera, CameraConfig, VideoMode};
use pegasus_devices::display::{Rect, WindowManager};
use pegasus_devices::video::Scene;
use pegasus_sim::time::Ns;
use pegasus_sim::Simulator;

use crate::system::{System, Workstation};

/// One studio source.
struct Source {
    camera: Rc<RefCell<Camera>>,
    /// VCI of this source's stream at the control-room display.
    display_vci: u16,
}

/// The control room: cameras, program window stack, and the cut log.
pub struct TvDirector {
    /// The underlying system.
    pub sys: System,
    /// The simulator driving it.
    pub sim: Simulator,
    control_room: Workstation,
    wm: WindowManager,
    sources: Vec<Source>,
    program: usize,
    /// `(time, source)` log of cuts performed.
    pub cuts: Vec<(Ns, usize)>,
    /// Screen rectangle of the program monitor.
    pub program_rect: Rect,
}

impl TvDirector {
    /// Builds a studio with `n_cameras` cameras on their own
    /// workstations, all streaming into the program window stack of a
    /// control-room display. Camera `0` starts as program.
    pub fn new(n_cameras: usize, scenes: &[Scene]) -> TvDirector {
        assert!(n_cameras >= 1 && n_cameras == scenes.len());
        let mut sys = System::new();
        let control_room = sys.add_workstation("control-room", 40);
        let mut wm = WindowManager::new(control_room.display.clone(), 1);
        let program_rect = Rect::new(200, 100, 176, 144);
        let mut sim = Simulator::new();
        let mut sources = Vec::new();
        for (i, &scene) in scenes.iter().enumerate() {
            let studio = sys.add_workstation(&format!("studio-{i}"), 40);
            let vc = sys
                .net
                .open_vc(
                    studio.camera_ep,
                    control_room.display_ep,
                    QosSpec::guaranteed(15_000_000),
                )
                .expect("program stream admission");
            wm.create(vc.dst_vci, program_rect);
            let camera = sys.build_camera(
                &studio,
                scene,
                CameraConfig {
                    mode: VideoMode::Raw,
                    ..CameraConfig::default()
                },
                vc.src_vci,
            );
            Camera::start(&camera, &mut sim);
            sources.push(Source {
                camera,
                display_vci: vc.dst_vci,
            });
        }
        // Camera 0 on program.
        wm.raise(sources[0].display_vci);
        TvDirector {
            sys,
            sim,
            control_room,
            wm,
            sources,
            program: 0,
            cuts: Vec::new(),
            program_rect,
        }
    }

    /// The current program source.
    pub fn program(&self) -> usize {
        self.program
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Cuts the program to `source`: one descriptor raise, nothing else.
    pub fn cut(&mut self, source: usize) {
        assert!(source < self.sources.len());
        self.wm.raise(self.sources[source].display_vci);
        self.program = source;
        self.cuts.push((self.sim.now(), source));
    }

    /// Runs the studio until `t` (absolute virtual time).
    pub fn run_until(&mut self, t: Ns) {
        self.sim.run_until(t);
    }

    /// Stops all cameras and drains the network.
    pub fn shutdown(&mut self) {
        for s in &self.sources {
            s.camera.borrow_mut().stop();
        }
        self.sim.run();
    }

    /// Reads a program-monitor pixel (for verification).
    pub fn program_pixel(&self, dx: i32, dy: i32) -> u8 {
        self.control_room
            .display
            .borrow()
            .pixel(self.program_rect.x + dx, self.program_rect.y + dy)
    }

    /// Tiles painted on the control-room display so far.
    pub fn tiles_blitted(&self) -> u64 {
        self.control_room.display.borrow().stats.tiles_blitted
    }

    /// Media bytes any host CPU has touched (must stay zero).
    pub fn cpu_media_bytes(&self) -> u64 {
        self.control_room.host_nic.borrow().bytes_touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_sim::time::MS;

    /// Test card luminance at (0,0) is band 0 = 16; a gradient scene's
    /// pixel wanders. Cutting between them must switch what the program
    /// monitor shows.
    #[test]
    fn cuts_switch_the_program_monitor() {
        let mut d = TvDirector::new(2, &[Scene::TestCard, Scene::MovingGradient]);
        d.run_until(200 * MS);
        assert_eq!(d.program(), 0);
        let test_card_pixel = d.program_pixel(0, 0);
        assert_eq!(test_card_pixel, 16, "test card band 0");
        d.cut(1);
        d.run_until(400 * MS);
        assert_eq!(d.program(), 1);
        // The gradient has painted over the card by now.
        let after = d.program_pixel(0, 0);
        assert_ne!(after, 16, "program switched to the gradient camera");
        // Cut back.
        d.cut(0);
        d.run_until(600 * MS);
        assert_eq!(d.program_pixel(0, 0), 16, "back to the test card");
        d.shutdown();
        assert_eq!(d.cuts.len(), 2);
    }

    #[test]
    fn cutting_never_touches_media_with_a_cpu() {
        let mut d = TvDirector::new(3, &[Scene::TestCard, Scene::MovingGradient, Scene::Noise]);
        for i in 0..6 {
            d.cut(i % 3);
            let t = (i as u64 + 1) * 100 * MS;
            d.run_until(t);
        }
        d.shutdown();
        assert!(d.tiles_blitted() > 1000);
        assert_eq!(d.cpu_media_bytes(), 0, "cuts are descriptor writes only");
        assert_eq!(d.cuts.len(), 6);
    }

    #[test]
    fn all_sources_stream_concurrently() {
        let mut d = TvDirector::new(2, &[Scene::TestCard, Scene::TestCard]);
        d.run_until(300 * MS);
        d.shutdown();
        for (i, s) in d.sources.iter().enumerate() {
            let f = s.camera.borrow().stats.frames_captured;
            assert!(f >= 5, "camera {i} captured only {f} frames");
        }
    }

    #[test]
    #[should_panic]
    fn cut_to_unknown_source_panics() {
        let mut d = TvDirector::new(1, &[Scene::TestCard]);
        d.cut(5);
    }
}
