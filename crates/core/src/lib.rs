//! Pegasus: the integrated distributed-multimedia system.
//!
//! This crate assembles the substrates — ATM network ([`pegasus_atm`]),
//! Nemesis kernel ([`pegasus_nemesis`]), multimedia devices
//! ([`pegasus_devices`]), stream control ([`pegasus_streams`]), naming
//! ([`pegasus_naming`]) and the file server ([`pegasus_pfs`]) — into the
//! architecture of Figure 4: multimedia workstations whose devices hang
//! off local ATM switches, joined by a backbone, with storage and Unix
//! nodes alongside.
//!
//! * [`system`] — topology building: workstations with camera, display
//!   and audio endpoints; the CPU-bytes-touched accounting behind the
//!   "no processors need to process any video data" claim.
//! * [`broker`] — the cross-layer QoS broker: per-session resource
//!   contracts admitted against the Nemesis CPU ledger, the per-link
//!   ATM bandwidth books and the PFS stream-slot ledgers, with
//!   admit / admit-degraded / reject outcomes.
//! * [`congestion`] — the feedback half of the contract model: epoch
//!   congestion signals (credit stalls, queue depth, CM slot pressure)
//!   driven through a hysteresis controller whose verdicts make the
//!   broker renegotiate *live* sessions down a rung and back up.
//! * [`videophone`] — the paper's motivating application, in both the
//!   DAN configuration and a bus-attached baseline where the host CPU
//!   forwards every media byte.
//! * [`recorder`] — recording camera output into the Pegasus File
//!   Server with a control-stream-derived index; playback with seek.
//! * [`director`] — the "digital TV director": a monitor wall of live
//!   camera windows and program cuts done purely by window-descriptor
//!   manipulation.

pub mod broker;
pub mod congestion;
pub mod director;
pub mod recorder;
pub mod system;
pub mod videophone;

pub use broker::{
    FlowRequest, Outcome, QosBroker, RejectLayer, Renegotiation, ResourceVector, SessionClass,
    SessionGrant, SessionRequest,
};
pub use congestion::{CongestionController, CongestionSignal, Verdict};
pub use system::{System, SystemBuilder, Workstation};
pub use videophone::{VideoPath, VideoPhone, VideoPhoneConfig, VideoPhoneReport};
