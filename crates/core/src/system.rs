//! System topology: workstations, servers, and the backbone.
//!
//! Figure 1's end-system architecture: "a conventional workstation and
//! its network interface connected to an ATM switch. However, also
//! connected to the switch we see a camera device, a display device, an
//! audio device, and then the rest of the ATM network. ... the switch is
//! under control of the workstation." The host CPU owns a network
//! interface endpoint of its own; whether media data flows through it
//! (bus-attached baseline) or switch-to-switch (the DAN way) is the
//! difference experiment E4 measures via [`HostNic`]'s byte counter.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_atm::cell::Cell;
use pegasus_atm::link::{CellSink, Link, SinkRef};
use pegasus_atm::network::{EndpointId, LinkConfig, Network, SwitchId, TopologyShape};
use pegasus_devices::audio::{AudioConfig, AudioSink, AudioSource};
use pegasus_devices::camera::{Camera, CameraConfig};
use pegasus_devices::display::Display;
use pegasus_devices::video::{Scene, SyntheticVideo};
use pegasus_sim::Simulator;

/// The host CPU's network interface: any media cell delivered here was
/// touched by a processor, which is precisely what the DAN architecture
/// avoids. It can also re-transmit (the bus-attached forwarding path).
pub struct HostNic {
    /// Media payload bytes the CPU has had to handle.
    pub bytes_touched: u64,
    /// Cells handled.
    pub cells: u64,
    /// Optional forwarding: (re-stamped VCI, transmit link).
    pub forward: Option<(u16, Rc<RefCell<Link>>)>,
    /// Per-cell CPU cost of touching the data (copy in + copy out).
    pub per_cell_cpu: u64,
    /// Accumulated CPU time burned on forwarding.
    pub cpu_time: u64,
}

impl HostNic {
    /// Creates an idle NIC.
    pub fn shared() -> Rc<RefCell<HostNic>> {
        Rc::new(RefCell::new(HostNic {
            bytes_touched: 0,
            cells: 0,
            forward: None,
            per_cell_cpu: 2_000, // ~2 µs to receive, inspect and resend a cell
            cpu_time: 0,
        }))
    }
}

impl CellSink for HostNic {
    fn deliver(&mut self, sim: &mut Simulator, mut cell: Cell) {
        self.bytes_touched += cell.payload().len() as u64;
        self.cells += 1;
        self.cpu_time += self.per_cell_cpu;
        if let Some((vci, link)) = &self.forward {
            cell.set_vci(*vci);
            link.borrow_mut().send(sim, cell);
        }
    }

    /// A NIC that only counts (no forwarding) is pure accounting and may
    /// take whole cell trains in one event. Once `forward` is set, each
    /// cell must be re-transmitted at its own arrival instant, so the
    /// link reverts to per-cell delivery at the next train.
    fn batch_capable(&self) -> bool {
        self.forward.is_none()
    }

    fn deliver_batch(&mut self, sim: &mut Simulator, cells: &mut Vec<(u64, Cell)>) {
        // Batching was negotiated while `forward` was unset; flipping it
        // with a train in flight would retransmit the backlog late and
        // compressed into one burst. Fail loudly instead of skewing the
        // experiment: configure forwarding before traffic flows.
        assert!(
            self.forward.is_none(),
            "HostNic::forward set while a batched cell train was in flight; \
             configure forwarding before traffic reaches this NIC"
        );
        for (_, cell) in cells.drain(..) {
            self.deliver(sim, cell);
        }
    }
}

/// One multimedia workstation: a local switch with camera, display,
/// audio-in/out and host-NIC endpoints.
pub struct Workstation {
    /// Name for reports.
    pub name: String,
    /// The workstation's local switch.
    pub switch: SwitchId,
    /// Camera endpoint (device → network).
    pub camera_ep: EndpointId,
    /// Display endpoint (network → device).
    pub display_ep: EndpointId,
    /// Audio-source endpoint.
    pub audio_src_ep: EndpointId,
    /// Audio-sink endpoint.
    pub audio_sink_ep: EndpointId,
    /// Host CPU endpoint.
    pub host_ep: EndpointId,
    /// The display device.
    pub display: Rc<RefCell<Display>>,
    /// The audio play-out device.
    pub audio_sink: Rc<RefCell<AudioSink>>,
    /// The host network interface.
    pub host_nic: Rc<RefCell<HostNic>>,
}

/// Fluent constructor for a [`System`] — the one entry point replacing
/// the accreted `with_topology` + piecewise assembly calls.
///
/// ```
/// use pegasus::system::SystemBuilder;
/// use pegasus_atm::network::{LinkConfig, TopologyShape};
///
/// let sys = SystemBuilder::new()
///     .topology(TopologyShape::Ring, 4)
///     .link(LinkConfig::pegasus_default())
///     .build();
/// assert_eq!(sys.fabric.len(), 4);
/// ```
///
/// Devices then attach with [`System::device`] and come alive with
/// [`System::camera_on`] / [`System::audio_source_on`]; sessions go
/// through [`System::admit_session`].
pub struct SystemBuilder {
    shape: TopologyShape,
    switches: usize,
    link: LinkConfig,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// Starts from the classic single-backbone shape on default links.
    pub fn new() -> Self {
        SystemBuilder {
            shape: TopologyShape::Star,
            switches: 1,
            link: LinkConfig::pegasus_default(),
        }
    }

    /// Sets the fabric shape and switch count.
    pub fn topology(mut self, shape: TopologyShape, switches: usize) -> Self {
        self.shape = shape;
        self.switches = switches;
        self
    }

    /// Sets the link parameters used for every trunk and endpoint link.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Wires the fabric and returns the assembled [`System`].
    pub fn build(self) -> System {
        let mut net = Network::new();
        let fabric = net.build_topology(self.shape, self.switches, "backbone", 16, 500, self.link);
        System {
            net,
            backbone: fabric[0],
            fabric,
            link: self.link,
            next_site: 0,
        }
    }
}

/// The whole Pegasus installation (Figure 4).
///
/// The default [`System::new`] is the classic single-backbone shape; a
/// scenario assembles larger installations with [`SystemBuilder`], then
/// hangs devices off the fabric with [`System::device`] — so city-scale
/// fabrics and hand-wired two-site experiments share one construction
/// path.
pub struct System {
    /// The ATM network.
    pub net: Network,
    /// The fabric switches joining sites; `fabric[0]` is the backbone of
    /// the single-switch default.
    pub fabric: Vec<SwitchId>,
    /// The first fabric switch (kept for the single-backbone callers).
    pub backbone: SwitchId,
    /// Link parameters used throughout.
    pub link: LinkConfig,
    /// Round-robin cursor for site placement.
    next_site: usize,
}

impl Default for System {
    fn default() -> Self {
        Self::new()
    }
}

impl System {
    /// Creates a system with an empty backbone switch.
    pub fn new() -> Self {
        SystemBuilder::new().build()
    }

    /// Starts a [`SystemBuilder`].
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Creates a system whose backbone is a multi-switch fabric in the
    /// given shape, all inter-switch links at `link` parameters.
    #[deprecated(
        since = "0.8.0",
        note = "use System::builder().topology(..).link(..).build()"
    )]
    pub fn with_topology(shape: TopologyShape, switches: usize, link: LinkConfig) -> Self {
        SystemBuilder::new()
            .topology(shape, switches)
            .link(link)
            .build()
    }

    /// Adds a multimedia workstation: local switch uplinked to the
    /// fabric (round-robin across fabric switches), with the full device
    /// complement attached.
    pub fn add_workstation(&mut self, name: &str, audio_jitter_buffer: usize) -> Workstation {
        let at = self.next_site % self.fabric.len();
        self.next_site += 1;
        self.add_workstation_at(at, name, audio_jitter_buffer)
    }

    /// Adds a workstation uplinked to fabric switch `fabric_idx`.
    pub fn add_workstation_at(
        &mut self,
        fabric_idx: usize,
        name: &str,
        audio_jitter_buffer: usize,
    ) -> Workstation {
        let up = self.fabric[fabric_idx];
        let sw = self.net.add_switch(&format!("{name}-fairisle"), 8, 500);
        self.net.connect_switches_auto(up, sw, self.link);

        // Camera transmits only; its receive side is a host-side stub.
        let camera_ep = self.net.add_endpoint(sw, 1, self.link, HostNic::shared());
        let display = Display::shared(640, 480);
        let display_ep = self.net.add_endpoint(sw, 2, self.link, display.clone());
        let audio_src_ep = self.net.add_endpoint(sw, 3, self.link, HostNic::shared());
        let audio_sink = AudioSink::shared(AudioConfig::telephony(), audio_jitter_buffer);
        let audio_sink_ep = self.net.add_endpoint(sw, 4, self.link, audio_sink.clone());
        let host_nic = HostNic::shared();
        let host_ep = self.net.add_endpoint(sw, 5, self.link, host_nic.clone());

        Workstation {
            name: name.to_string(),
            switch: sw,
            camera_ep,
            display_ep,
            audio_src_ep,
            audio_sink_ep,
            host_ep,
            display,
            audio_sink,
            host_nic,
        }
    }

    /// Adds a plain endpoint on the backbone (storage servers, compute
    /// servers, Unix nodes).
    pub fn add_backbone_endpoint(&mut self, sink: SinkRef) -> EndpointId {
        self.add_server_at(0, sink)
    }

    /// Adds a server endpoint behind its own edge switch on fabric
    /// switch `fabric_idx`.
    pub fn add_server_at(&mut self, fabric_idx: usize, sink: SinkRef) -> EndpointId {
        // A private edge switch would be equivalent; servers sit directly
        // on a backbone port here.
        let sw = self.net.add_switch("srv-edge", 2, 0);
        self.net
            .connect_switches_auto(self.fabric[fabric_idx], sw, self.link);
        self.net.add_endpoint(sw, 1, self.link, sink)
    }

    /// Attaches a bare device endpoint directly to fabric switch
    /// `fabric_idx` — the bulk path scenarios use to hang hundreds of
    /// cameras, displays and audio nodes off a city fabric without an
    /// edge switch per device. In a sharded run the endpoint is owned
    /// by whichever shard owns its fabric switch.
    pub fn device(&mut self, fabric_idx: usize, sink: SinkRef) -> EndpointId {
        self.net
            .add_endpoint_auto(self.fabric[fabric_idx], self.link, sink)
    }

    /// Deprecated name for [`System::device`].
    #[deprecated(since = "0.8.0", note = "use System::device")]
    pub fn attach_device(&mut self, fabric_idx: usize, sink: SinkRef) -> EndpointId {
        self.device(fabric_idx, sink)
    }

    /// Builds a camera on `ws`, producing `scene` with `cfg`, stamped
    /// with the VCI of an already-opened connection.
    pub fn build_camera(
        &self,
        ws: &Workstation,
        scene: Scene,
        cfg: CameraConfig,
        vci: u16,
    ) -> Rc<RefCell<Camera>> {
        self.camera_on(ws.camera_ep, scene, cfg, vci)
    }

    /// Builds a camera transmitting from an arbitrary endpoint — the
    /// spec-driven path where the endpoint came from [`System::device`]
    /// rather than a [`Workstation`].
    pub fn camera_on(
        &self,
        ep: EndpointId,
        scene: Scene,
        cfg: CameraConfig,
        vci: u16,
    ) -> Rc<RefCell<Camera>> {
        let video = SyntheticVideo::qcif(scene);
        Camera::new(video, cfg, vci, self.net.endpoint_tx(ep))
    }

    /// Deprecated name for [`System::camera_on`].
    #[deprecated(since = "0.8.0", note = "use System::camera_on")]
    pub fn build_camera_on(
        &self,
        ep: EndpointId,
        scene: Scene,
        cfg: CameraConfig,
        vci: u16,
    ) -> Rc<RefCell<Camera>> {
        self.camera_on(ep, scene, cfg, vci)
    }

    /// Builds an audio source on `ws` for an already-opened connection.
    pub fn build_audio_source(&self, ws: &Workstation, vci: u16) -> Rc<RefCell<AudioSource>> {
        self.audio_source_on(ws.audio_src_ep, AudioConfig::telephony(), vci)
    }

    /// Builds an audio source transmitting from an arbitrary endpoint.
    pub fn audio_source_on(
        &self,
        ep: EndpointId,
        cfg: AudioConfig,
        vci: u16,
    ) -> Rc<RefCell<AudioSource>> {
        AudioSource::new(cfg, vci, self.net.endpoint_tx(ep))
    }

    /// Deprecated name for [`System::audio_source_on`].
    #[deprecated(since = "0.8.0", note = "use System::audio_source_on")]
    pub fn build_audio_source_on(
        &self,
        ep: EndpointId,
        cfg: AudioConfig,
        vci: u16,
    ) -> Rc<RefCell<AudioSource>> {
        self.audio_source_on(ep, cfg, vci)
    }

    /// Runs a session request through the QoS broker against this
    /// system's network: the broker checks its CPU and stream-slot
    /// ledgers plus every ATM hop the session's flows cross, then
    /// admits (opening the guaranteed VCs), admits degraded, or
    /// rejects. This is the one gate all spec-driven session setup goes
    /// through — see [`crate::broker`] for the contract model.
    pub fn admit_session(
        &mut self,
        broker: &mut crate::broker::QosBroker,
        req: &crate::broker::SessionRequest,
    ) -> crate::broker::SessionGrant {
        broker.admit(&mut self.net, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_atm::signalling::QosSpec;
    use pegasus_devices::display::Rect;
    use pegasus_devices::display::WindowManager;
    use pegasus_sim::time::MS;

    #[test]
    fn workstations_join_the_backbone() {
        let mut sys = System::new();
        let a = sys.add_workstation("a", 40);
        let b = sys.add_workstation("b", 40);
        // Camera on A can reach display on B.
        let vc = sys
            .net
            .open_vc(a.camera_ep, b.display_ep, QosSpec::guaranteed(10_000_000))
            .unwrap();
        assert_ne!(vc.src_vci, 0);
        assert_eq!(sys.net.endpoint_count(), 10);
    }

    #[test]
    fn camera_to_remote_display_paints_pixels_with_zero_cpu_bytes() {
        let mut sys = System::new();
        let a = sys.add_workstation("a", 40);
        let b = sys.add_workstation("b", 40);
        let vc = sys
            .net
            .open_vc(a.camera_ep, b.display_ep, QosSpec::guaranteed(20_000_000))
            .unwrap();
        let mut wm = WindowManager::new(b.display.clone(), 1);
        wm.create(vc.dst_vci, Rect::new(0, 0, 176, 144));
        let cam = sys.build_camera(
            &a,
            Scene::MovingGradient,
            CameraConfig::default(),
            vc.src_vci,
        );
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(100 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let d = b.display.borrow();
        assert!(
            d.stats.tiles_blitted > 100,
            "blitted {}",
            d.stats.tiles_blitted
        );
        // The DAN property: no host CPU saw a single media byte.
        assert_eq!(a.host_nic.borrow().bytes_touched, 0);
        assert_eq!(b.host_nic.borrow().bytes_touched, 0);
    }

    #[test]
    fn host_nic_counts_and_forwards() {
        let mut sys = System::new();
        let a = sys.add_workstation("a", 40);
        let b = sys.add_workstation("b", 40);
        // Bus-attached path: camera → host A, host A forwards → display B.
        let vc_cam_host = sys
            .net
            .open_vc(a.camera_ep, a.host_ep, QosSpec::guaranteed(20_000_000))
            .unwrap();
        let vc_host_disp = sys
            .net
            .open_vc(a.host_ep, b.display_ep, QosSpec::guaranteed(20_000_000))
            .unwrap();
        a.host_nic.borrow_mut().forward =
            Some((vc_host_disp.src_vci, sys.net.endpoint_tx(a.host_ep)));
        let mut wm = WindowManager::new(b.display.clone(), 1);
        wm.create(vc_host_disp.dst_vci, Rect::new(0, 0, 176, 144));
        let cam = sys.build_camera(
            &a,
            Scene::TestCard,
            CameraConfig::default(),
            vc_cam_host.src_vci,
        );
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(50 * MS);
        cam.borrow_mut().stop();
        sim.run();
        assert!(b.display.borrow().stats.tiles_blitted > 0);
        assert!(
            a.host_nic.borrow().bytes_touched > 0,
            "the CPU paid for every byte"
        );
        assert!(a.host_nic.borrow().cpu_time > 0);
    }

    #[test]
    fn multi_switch_fabric_carries_video_between_sites() {
        use pegasus_atm::network::TopologyShape;
        let mut sys = System::builder()
            .topology(TopologyShape::Ring, 4)
            .link(LinkConfig::pegasus_default())
            .build();
        assert_eq!(sys.fabric.len(), 4);
        let a = sys.add_workstation_at(0, "north", 40);
        let b = sys.add_workstation_at(2, "south", 40);
        // Two ring hops between the sites.
        let vc = sys
            .net
            .open_vc(a.camera_ep, b.display_ep, QosSpec::guaranteed(15_000_000))
            .unwrap();
        let mut wm = WindowManager::new(b.display.clone(), 1);
        wm.create(vc.dst_vci, Rect::new(0, 0, 176, 144));
        let cam = sys.build_camera(&a, Scene::TestCard, CameraConfig::default(), vc.src_vci);
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(100 * MS);
        cam.borrow_mut().stop();
        sim.run();
        assert!(b.display.borrow().stats.tiles_blitted > 100);
        assert_eq!(b.host_nic.borrow().bytes_touched, 0);
    }

    #[test]
    fn attach_device_puts_endpoints_on_the_fabric() {
        use pegasus_atm::link::CaptureSink;
        let mut sys = System::new();
        let cam_ep = sys.device(0, HostNic::shared());
        let sink = CaptureSink::shared();
        let dst_ep = sys.device(0, sink.clone());
        let vc = sys
            .net
            .open_vc(cam_ep, dst_ep, QosSpec::guaranteed(5_000_000))
            .unwrap();
        let mut sim = Simulator::new();
        sys.net
            .endpoint_tx(cam_ep)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 1);
    }

    #[test]
    fn admit_session_brokered_end_to_end() {
        use crate::broker::{
            FlowRequest, Outcome, QosBroker, RejectLayer, SessionClass, SessionRequest,
        };
        let mut sys = System::new();
        let a = sys.add_workstation("a", 40);
        let b = sys.add_workstation("b", 40);
        let mut broker = QosBroker::new(1_000, 0, 0, 500);
        let req = SessionRequest {
            class: SessionClass::Videophone,
            media_flows: vec![FlowRequest {
                src: a.camera_ep,
                dst: b.display_ep,
                bps: 60_000_000,
            }],
            fixed_flows: vec![FlowRequest {
                src: a.audio_src_ep,
                dst: b.audio_sink_ep,
                bps: 128_000,
            }],
            cpu_micro: 300,
            pfs_server: None,
        };
        let g1 = sys.admit_session(&mut broker, &req);
        assert_eq!(g1.outcome, Outcome::Admitted);
        assert_eq!(g1.vcs.len(), 2);
        // The shared backbone forces the second call down a rung, the
        // third out entirely — renegotiation, not collapse.
        let g2 = sys.admit_session(&mut broker, &req);
        assert_eq!(g2.outcome, Outcome::Degraded);
        let g3 = sys.admit_session(&mut broker, &req);
        assert_eq!(g3.outcome, Outcome::Rejected(RejectLayer::Bandwidth));
        // The books agree: two sessions' CPU and the degraded rate.
        assert_eq!(broker.cpu.reserved_micro(), 300 + 150);
        assert_eq!(g2.granted.video_bps, 30_000_000);
        assert!(g2.granted.le(&g2.requested));
    }

    #[test]
    fn backbone_endpoint_receives() {
        use pegasus_atm::link::CaptureSink;
        let mut sys = System::new();
        let a = sys.add_workstation("a", 40);
        let sink = CaptureSink::shared();
        let server = sys.add_backbone_endpoint(sink.clone());
        let vc = sys
            .net
            .open_vc(a.camera_ep, server, QosSpec::best_effort(0))
            .unwrap();
        let mut sim = Simulator::new();
        sys.net
            .endpoint_tx(a.camera_ep)
            .borrow_mut()
            .send(&mut sim, Cell::new(vc.src_vci));
        sim.run();
        assert_eq!(sink.borrow().arrivals.len(), 1);
    }
}
