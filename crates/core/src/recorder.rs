//! Recording and playback through the Pegasus File Server.
//!
//! "The Pegasus File Server, which can also be viewed as a multimedia
//! device in this context, uses the control stream associated with an
//! incoming data stream to generate index information that can later be
//! used to go to specific time offsets into a media file" (§2.2); the
//! continuous-media service stack then supports "reading synchronized
//! streams from a particular point, and fast forward, reverse play,
//! etc." (§5).
//!
//! [`RecorderSink`] is the storage server's ingest endpoint: it
//! reassembles the camera's AAL5 frames, appends them (length-prefixed)
//! to a continuous-media file, and drops an index mark per video frame.
//! [`MediaPlayer`] reads frames back from any indexed time offset.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_atm::aal5::Reassembler;
use pegasus_atm::cell::Cell;
use pegasus_atm::link::CellSink;
use pegasus_devices::tile::TileFrame;
use pegasus_pfs::cm::StreamIndex;
use pegasus_pfs::log::{FileClass, FileId, FsError, LogFs};
use pegasus_sim::time::Ns;
use pegasus_sim::Simulator;

/// The storage server's ingest endpoint for one media stream.
pub struct RecorderSink {
    /// The backing file system (shared with the player).
    pub fs: Rc<RefCell<LogFs>>,
    /// The file being recorded.
    pub file: FileId,
    /// Timestamp → byte-offset index, one mark per video frame.
    pub index: StreamIndex,
    reasm: Reassembler,
    offset: u64,
    last_indexed_frame: Option<u32>,
    /// Length-prefix + frame scratch, reused so steady-state ingest
    /// performs one file-system append and no allocations per frame.
    rec_scratch: Vec<u8>,
    /// AAL5 frames stored.
    pub frames_stored: u64,
    /// Reassembly/parse failures.
    pub frames_bad: u64,
}

impl RecorderSink {
    /// Creates a recorder appending to a fresh continuous-media file in
    /// `fs`.
    pub fn shared(fs: Rc<RefCell<LogFs>>) -> Rc<RefCell<RecorderSink>> {
        let file = fs.borrow_mut().create(FileClass::Continuous);
        Rc::new(RefCell::new(RecorderSink {
            fs,
            file,
            index: StreamIndex::new(),
            reasm: Reassembler::new(),
            offset: 0,
            last_indexed_frame: None,
            rec_scratch: Vec::new(),
            frames_stored: 0,
            frames_bad: 0,
        }))
    }

    fn store(&mut self, bytes: &[u8]) -> Result<(), FsError> {
        // Index on the first tile-frame of each video frame.
        if let Ok(tf) = TileFrame::decode(bytes) {
            if self.last_indexed_frame != Some(tf.frame_seq) {
                self.index.add_mark(tf.timestamp, self.offset);
                self.last_indexed_frame = Some(tf.frame_seq);
            }
        }
        self.rec_scratch.clear();
        self.rec_scratch
            .extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        self.rec_scratch.extend_from_slice(bytes);
        self.fs.borrow_mut().append(self.file, &self.rec_scratch)?;
        self.offset += self.rec_scratch.len() as u64;
        self.frames_stored += 1;
        Ok(())
    }
}

impl CellSink for RecorderSink {
    fn deliver(&mut self, _sim: &mut Simulator, cell: Cell) {
        // Zero-copy ingest: a clean camera frame arrives as a view of
        // the producer's arena buffer and goes straight to the log.
        match self.reasm.push_frame(&cell) {
            None => {}
            Some(Ok(lease)) => self.frames_bad += u64::from(self.store(&lease).is_err()),
            Some(Err(_)) => self.frames_bad += 1,
        }
    }

    /// Storage ingest never reads the clock per cell (the index uses the
    /// timestamps carried *inside* the stream), so a busy camera link may
    /// hand the recorder whole cell trains in one delivery event.
    fn batch_capable(&self) -> bool {
        true
    }
}

/// Reads recorded streams back out of the file server.
pub struct MediaPlayer;

impl MediaPlayer {
    /// Reads every stored tile frame from byte `offset` to the end.
    ///
    /// Record bodies come back as arena leases ([`LogFs::read_leased`])
    /// recycled record-to-record, so a long playback scan reuses two
    /// buffers instead of allocating two `Vec`s per stored frame.
    pub fn read_from_offset(
        fs: &mut LogFs,
        file: FileId,
        offset: u64,
    ) -> Result<Vec<TileFrame>, FsError> {
        let arena = pegasus_sim::arena::Arena::new();
        let size = fs.pnode(file).ok_or(FsError::NoSuchFile)?.size;
        let mut out = Vec::new();
        let mut pos = offset;
        while pos + 4 <= size {
            let lenb = fs.read_leased(file, pos, 4, &arena)?;
            let len = u32::from_be_bytes(lenb[..4].try_into().expect("4 bytes")) as u64;
            drop(lenb);
            if pos + 4 + len > size {
                break; // torn tail record
            }
            let body = fs.read_leased(file, pos + 4, len as usize, &arena)?;
            if let Ok(tf) = TileFrame::decode(&body) {
                out.push(tf);
            }
            pos += 4 + len;
        }
        Ok(out)
    }

    /// Seeks by timestamp through the index, then reads to the end.
    pub fn play_from(
        fs: &mut LogFs,
        file: FileId,
        index: &StreamIndex,
        ts: Ns,
    ) -> Result<Vec<TileFrame>, FsError> {
        let offset = index.offset_for(ts).unwrap_or(0);
        Self::read_from_offset(fs, file, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use pegasus_atm::signalling::QosSpec;
    use pegasus_devices::camera::{Camera, CameraConfig};
    use pegasus_devices::video::Scene;
    use pegasus_pfs::disk::DiskConfig;
    use pegasus_sim::time::MS;

    fn record_for(duration: Ns) -> (Rc<RefCell<RecorderSink>>, u64) {
        let mut sys = System::new();
        let ws = sys.add_workstation("studio", 40);
        let fs = Rc::new(RefCell::new(LogFs::new(DiskConfig::hp_1994())));
        let rec = RecorderSink::shared(fs);
        let storage_ep = sys.add_backbone_endpoint(rec.clone());
        let vc = sys
            .net
            .open_vc(ws.camera_ep, storage_ep, QosSpec::guaranteed(20_000_000))
            .unwrap();
        let cam = sys.build_camera(
            &ws,
            Scene::MovingGradient,
            CameraConfig::default(),
            vc.src_vci,
        );
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(duration);
        cam.borrow_mut().stop();
        sim.run();
        let frames = cam.borrow().stats.frames_captured;
        (rec, frames)
    }

    #[test]
    fn recording_lands_in_the_file_server() {
        let (rec, _) = record_for(200 * MS);
        let r = rec.borrow();
        assert!(r.frames_stored > 50, "stored {}", r.frames_stored);
        assert_eq!(r.frames_bad, 0);
        let size = {
            let fs = r.fs.borrow();
            fs.pnode(r.file).unwrap().size
        };
        assert!(size > 10_000, "file size {size}");
    }

    #[test]
    fn index_has_one_mark_per_video_frame() {
        let (rec, cam_frames) = record_for(400 * MS);
        let r = rec.borrow();
        let marks = r.index.len() as u64;
        assert!(
            marks >= cam_frames - 1 && marks <= cam_frames + 1,
            "marks {marks} vs frames {cam_frames}"
        );
    }

    #[test]
    fn playback_from_start_returns_all_frames() {
        let (rec, _) = record_for(200 * MS);
        let (file, stored) = (rec.borrow().file, rec.borrow().frames_stored);
        let fs = rec.borrow().fs.clone();
        let frames = {
            let mut fs = fs.borrow_mut();
            MediaPlayer::read_from_offset(&mut fs, file, 0).unwrap()
        };
        assert_eq!(frames.len() as u64, stored);
        // Frames come back in capture order.
        let mut last = 0;
        for f in &frames {
            assert!(f.frame_seq >= last);
            last = f.frame_seq;
        }
    }

    #[test]
    fn seek_by_timestamp_skips_early_frames() {
        let (rec, _) = record_for(400 * MS);
        let file = rec.borrow().file;
        let fs = rec.borrow().fs.clone();
        let index = rec.borrow().index.clone();
        let mut fs = fs.borrow_mut();
        let all = MediaPlayer::play_from(&mut fs, file, &index, 0).unwrap();
        let late = MediaPlayer::play_from(&mut fs, file, &index, 200 * MS).unwrap();
        assert!(late.len() < all.len());
        assert!(!late.is_empty());
        // Every returned frame was captured at or after (roughly) the
        // seek point — the index floors to the previous mark.
        let first_ts = late[0].timestamp;
        assert!(first_ts <= 200 * MS + 40 * MS);
        assert!(late.iter().all(|f| f.timestamp >= first_ts));
    }

    #[test]
    fn reverse_marks_walk_backward() {
        let (rec, _) = record_for(300 * MS);
        let index = rec.borrow().index.clone();
        let rev = index.reverse(250 * MS);
        assert!(rev.len() > 2);
        for pair in rev.windows(2) {
            assert!(pair[0].0 >= pair[1].0);
        }
    }
}
