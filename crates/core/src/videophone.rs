//! The video-phone application.
//!
//! "When video flows from a camera in one system to a display in another
//! — as is the case in video-phone and video-conferencing applications —
//! no processors need to process any video data. This goes for the audio
//! data too, of course. Hence the processors in the workstations, at
//! both the camera and display, only need to manage the connections and
//! devices." (§2)
//!
//! [`VideoPhone`] sets up the bidirectional audio + video call either
//! the DAN way ([`VideoPath::Dan`]) or through the host CPUs
//! ([`VideoPath::BusAttached`], the conventional-workstation baseline),
//! and reports end-to-end latency and the bytes each CPU had to touch.

use pegasus_atm::signalling::QosSpec;
use pegasus_devices::camera::{Camera, CameraConfig};
use pegasus_devices::display::{Rect, WindowManager};
use pegasus_devices::video::Scene;
use pegasus_sim::time::{Ns, MS};
use pegasus_sim::Simulator;

use crate::system::{System, Workstation};

/// How media travels between the parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoPath {
    /// Device → switch → switch → device; CPUs only signal.
    Dan,
    /// Device → host CPU → network → host CPU → device, as on a
    /// bus-attached workstation.
    BusAttached,
}

/// Call parameters.
#[derive(Debug, Clone, Copy)]
pub struct VideoPhoneConfig {
    /// Media path.
    pub path: VideoPath,
    /// Camera settings (rate, coding, granularity).
    pub camera: CameraConfig,
    /// Bandwidth reserved per video stream.
    pub video_bps: u64,
    /// Call duration.
    pub duration: Ns,
}

impl Default for VideoPhoneConfig {
    fn default() -> Self {
        VideoPhoneConfig {
            path: VideoPath::Dan,
            camera: CameraConfig::default(),
            video_bps: 20_000_000,
            duration: 1_000 * MS,
        }
    }
}

/// What a call measured.
#[derive(Debug, Clone)]
pub struct VideoPhoneReport {
    /// Tiles painted on each party's display.
    pub tiles_blitted: (u64, u64),
    /// Median scan-to-display latency (ns) per direction.
    pub video_latency_p50: (u64, u64),
    /// 99th-percentile latency per direction.
    pub video_latency_p99: (u64, u64),
    /// Audio drop-outs per direction.
    pub audio_underruns: (u64, u64),
    /// Media bytes the two host CPUs touched.
    pub cpu_bytes: (u64, u64),
    /// CPU time the hosts burned moving media.
    pub cpu_time: (Ns, Ns),
}

/// A two-party audio + video call.
pub struct VideoPhone;

impl VideoPhone {
    /// Places the call between two fresh workstations and runs it to
    /// completion, returning the measurements.
    pub fn run(cfg: VideoPhoneConfig) -> VideoPhoneReport {
        let mut sys = System::new();
        let a = sys.add_workstation("alice", 60);
        let b = sys.add_workstation("bob", 60);
        let mut sim = Simulator::new();

        let (wm_a, wm_b) = (
            WindowManager::new(a.display.clone(), 1),
            WindowManager::new(b.display.clone(), 1),
        );
        Self::one_direction(&mut sys, &mut sim, &a, &b, wm_b, &cfg);
        Self::one_direction(&mut sys, &mut sim, &b, &a, wm_a, &cfg);

        sim.run_until(cfg.duration);
        // Let in-flight cells drain.
        sim.run_until(cfg.duration + 100 * MS);

        let tiles_blitted = (
            a.display.borrow().stats.tiles_blitted,
            b.display.borrow().stats.tiles_blitted,
        );
        let video_latency_p50 = (
            a.display
                .borrow_mut()
                .stats
                .latency
                .percentile(50.0)
                .unwrap_or(0),
            b.display
                .borrow_mut()
                .stats
                .latency
                .percentile(50.0)
                .unwrap_or(0),
        );
        let video_latency_p99 = (
            a.display
                .borrow_mut()
                .stats
                .latency
                .percentile(99.0)
                .unwrap_or(0),
            b.display
                .borrow_mut()
                .stats
                .latency
                .percentile(99.0)
                .unwrap_or(0),
        );
        let audio_underruns = (
            a.audio_sink.borrow().stats.underruns,
            b.audio_sink.borrow().stats.underruns,
        );
        let cpu_bytes = (
            a.host_nic.borrow().bytes_touched,
            b.host_nic.borrow().bytes_touched,
        );
        let cpu_time = (a.host_nic.borrow().cpu_time, b.host_nic.borrow().cpu_time);
        VideoPhoneReport {
            tiles_blitted,
            video_latency_p50,
            video_latency_p99,
            audio_underruns,
            cpu_bytes,
            cpu_time,
        }
    }

    /// Wires camera+audio of `from` to display+audio-sink of `to`.
    fn one_direction(
        sys: &mut System,
        sim: &mut Simulator,
        from: &Workstation,
        to: &Workstation,
        mut wm: WindowManager,
        cfg: &VideoPhoneConfig,
    ) {
        // Audio goes device-to-device either way (its bandwidth is
        // negligible; the interesting contrast is video).
        let audio_vc = sys
            .net
            .open_vc(
                from.audio_src_ep,
                to.audio_sink_ep,
                QosSpec::guaranteed(128_000),
            )
            .expect("audio admission");
        let audio = sys.build_audio_source(from, audio_vc.src_vci);
        pegasus_devices::audio::AudioSource::start(&audio, sim);
        pegasus_devices::audio::AudioSink::start_playout(&to.audio_sink, sim, cfg.duration);

        let cam_vci = match cfg.path {
            VideoPath::Dan => {
                let vc = sys
                    .net
                    .open_vc(
                        from.camera_ep,
                        to.display_ep,
                        QosSpec::guaranteed(cfg.video_bps),
                    )
                    .expect("video admission");
                wm.create(vc.dst_vci, Rect::new(0, 0, 176, 144));
                vc.src_vci
            }
            VideoPath::BusAttached => {
                // Camera → own host; host forwards → remote display.
                let vc_in = sys
                    .net
                    .open_vc(
                        from.camera_ep,
                        from.host_ep,
                        QosSpec::guaranteed(cfg.video_bps),
                    )
                    .expect("camera-to-host admission");
                let vc_out = sys
                    .net
                    .open_vc(
                        from.host_ep,
                        to.display_ep,
                        QosSpec::guaranteed(cfg.video_bps),
                    )
                    .expect("host-to-display admission");
                from.host_nic.borrow_mut().forward =
                    Some((vc_out.src_vci, sys.net.endpoint_tx(from.host_ep)));
                wm.create(vc_out.dst_vci, Rect::new(0, 0, 176, 144));
                vc_in.src_vci
            }
        };
        let cam = sys.build_camera(from, Scene::MovingGradient, cfg.camera, cam_vci);
        Camera::start(&cam, sim);
        let cam2 = cam.clone();
        sim.schedule_at(cfg.duration, move |_| cam2.borrow_mut().stop());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_devices::camera::Granularity;

    fn quick_cfg(path: VideoPath) -> VideoPhoneConfig {
        VideoPhoneConfig {
            path,
            duration: 500 * MS,
            ..VideoPhoneConfig::default()
        }
    }

    #[test]
    fn dan_call_delivers_video_both_ways_with_zero_cpu_bytes() {
        let r = VideoPhone::run(quick_cfg(VideoPath::Dan));
        assert!(
            r.tiles_blitted.0 > 1000,
            "alice blitted {}",
            r.tiles_blitted.0
        );
        assert!(
            r.tiles_blitted.1 > 1000,
            "bob blitted {}",
            r.tiles_blitted.1
        );
        assert_eq!(r.cpu_bytes, (0, 0), "DAN: CPUs only manage connections");
        assert_eq!(r.audio_underruns, (0, 0));
    }

    #[test]
    fn bus_attached_call_burns_cpu_on_every_byte() {
        let r = VideoPhone::run(quick_cfg(VideoPath::BusAttached));
        assert!(r.tiles_blitted.0 > 1000);
        assert!(r.cpu_bytes.0 > 100_000, "cpu bytes {}", r.cpu_bytes.0);
        assert!(r.cpu_bytes.1 > 100_000);
        assert!(r.cpu_time.0 > 0);
    }

    #[test]
    fn tile_granularity_beats_frame_granularity_on_latency() {
        let mut tile_cfg = quick_cfg(VideoPath::Dan);
        tile_cfg.camera.granularity = Granularity::TileRow;
        let mut frame_cfg = quick_cfg(VideoPath::Dan);
        frame_cfg.camera.granularity = Granularity::Frame;
        let tile = VideoPhone::run(tile_cfg);
        let frame = VideoPhone::run(frame_cfg);
        // Tile pipelining: p50 well under half a frame time. Frame
        // granularity: rows wait up to a full frame scan (median half a
        // frame, p99 nearly a whole one).
        assert!(
            tile.video_latency_p50.0 < 10 * MS,
            "tile p50 {}",
            tile.video_latency_p50.0
        );
        assert!(
            frame.video_latency_p50.0 > 15 * MS,
            "frame p50 {}",
            frame.video_latency_p50.0
        );
        assert!(
            frame.video_latency_p99.0 > 30 * MS,
            "frame p99 {}",
            frame.video_latency_p99.0
        );
        assert!(frame.video_latency_p50.0 > 3 * tile.video_latency_p50.0);
    }

    #[test]
    fn bus_attached_adds_latency() {
        let dan = VideoPhone::run(quick_cfg(VideoPath::Dan));
        let bus = VideoPhone::run(quick_cfg(VideoPath::BusAttached));
        assert!(
            bus.video_latency_p50.0 > dan.video_latency_p50.0,
            "bus {} !> dan {}",
            bus.video_latency_p50.0,
            dan.video_latency_p50.0
        );
    }
}
