//! Property tests: the log-structured core against a trivial in-memory
//! model, under arbitrary operation sequences — including cleaning.

use proptest::prelude::*;
use std::collections::HashMap;

use pegasus_pfs::cleaner::clean_garbage_file;
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs};

/// An operation against both the real FS and the model.
#[derive(Debug, Clone)]
enum Op {
    Create,
    Append { file: usize, len: usize, tag: u8 },
    Overwrite { file: usize, len: usize, tag: u8 },
    Delete { file: usize },
    Sync,
    Clean,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Create),
        4 => (any::<usize>(), 1usize..60_000, any::<u8>())
            .prop_map(|(file, len, tag)| Op::Append { file, len, tag }),
        2 => (any::<usize>(), 1usize..60_000, any::<u8>())
            .prop_map(|(file, len, tag)| Op::Overwrite { file, len, tag }),
        2 => any::<usize>().prop_map(|file| Op::Delete { file }),
        1 => Just(Op::Sync),
        1 => Just(Op::Clean),
    ]
}

fn content(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn log_matches_in_memory_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let mut model: HashMap<FileId, Vec<u8>> = HashMap::new();
        let mut handles: Vec<FileId> = Vec::new();

        for op in ops {
            match op {
                Op::Create => {
                    let id = fs.create(FileClass::Normal);
                    handles.push(id);
                    model.insert(id, Vec::new());
                }
                Op::Append { file, len, tag } if !handles.is_empty() => {
                    let id = handles[file % handles.len()];
                    if model.contains_key(&id) {
                        let data = content(len, tag);
                        fs.append(id, &data).unwrap();
                        model.get_mut(&id).unwrap().extend_from_slice(&data);
                    }
                }
                Op::Overwrite { file, len, tag } if !handles.is_empty() => {
                    let id = handles[file % handles.len()];
                    if model.contains_key(&id) {
                        let data = content(len, tag);
                        fs.overwrite(id, &data).unwrap();
                        model.insert(id, data);
                    }
                }
                Op::Delete { file } if !handles.is_empty() => {
                    let id = handles[file % handles.len()];
                    if model.remove(&id).is_some() {
                        fs.delete(id).unwrap();
                    }
                }
                Op::Sync => fs.sync().unwrap(),
                Op::Clean => {
                    clean_garbage_file(&mut fs).unwrap();
                }
                _ => {}
            }
        }

        // Every surviving file reads back exactly; deleted files error.
        for (&id, expected) in &model {
            let got = fs.read(id, 0, expected.len()).unwrap();
            prop_assert_eq!(&got, expected, "file {:?}", id);
            prop_assert_eq!(fs.pnode(id).unwrap().size, expected.len() as u64);
        }
        for id in &handles {
            if !model.contains_key(id) {
                prop_assert!(fs.read(*id, 0, 1).is_err());
            }
        }
        prop_assert_eq!(fs.file_count(), model.len());
    }

    #[test]
    fn live_byte_accounting_is_conservative(
        sizes in proptest::collection::vec(1usize..300_000, 1..12),
        kill in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let mut live_expected: u64 = 0;
        let mut ids = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let id = fs.create(FileClass::Normal);
            fs.append(id, &content(sz, i as u8)).unwrap();
            ids.push((id, sz));
        }
        fs.sync().unwrap();
        for (i, &(id, sz)) in ids.iter().enumerate() {
            if kill.get(i).copied().unwrap_or(false) {
                fs.delete(id).unwrap();
            } else {
                live_expected += sz as u64;
            }
        }
        let live_tracked: u64 = fs
            .segment_info()
            .values()
            .map(|s| s.live_bytes as u64)
            .sum();
        prop_assert_eq!(live_tracked, live_expected);
    }
}
