//! Property tests: the tiered content cache's shared-lease economy.
//!
//! The §5 flash-crowd claim is a conservation law: once a chunk is
//! resident, serving it to any number of additional viewers hands out
//! shared leases on the *same* arena buffer — the number of fresh
//! arena allocations depends only on which chunks were touched, never
//! on how many viewers touched them.

use proptest::prelude::*;

use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs, SEGMENT_BYTES};
use pegasus_pfs::tier::{TierConfig, TieredCache};

const CHUNK: u64 = 1 << 16;

fn fs_with_titles(titles: usize, segments: usize) -> (LogFs, Vec<FileId>) {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    fs.raid_mut().set_store(false);
    let mut files = Vec::with_capacity(titles);
    for _ in 0..titles {
        let id = fs.create(FileClass::Continuous);
        for _ in 0..segments {
            fs.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
        }
        files.push(id);
    }
    fs.sync().unwrap();
    (fs, files)
}

fn cache() -> TieredCache {
    TieredCache::new(TierConfig {
        hot_chunks: 8,
        warm_chunks: 16,
        chunk_bytes: CHUNK as usize,
        warm_chunk_ns: 50_000,
        prefetch_chunks: 0,
    })
}

/// Replays `accesses` (title, chunk) pairs, each fanned out to
/// `viewers` concurrent readers, and returns the arena ledger.
fn run(fs: &mut LogFs, files: &[FileId], accesses: &[(usize, u64)], viewers: usize) -> (u64, u64) {
    let mut cache = cache();
    let mut out = Vec::new();
    for &(title, chunk) in accesses {
        let file = files[title % files.len()];
        for _ in 0..viewers {
            cache
                .read(fs, file, chunk * CHUNK, CHUNK, &mut out)
                .unwrap();
        }
        out.clear();
    }
    let a = cache.arena().stats();
    (a.fresh_allocs, a.shared_attaches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fresh_allocs_independent_of_viewer_count(
        accesses in proptest::collection::vec((0usize..3, 0u64..16), 1..24),
        viewers in 2usize..12,
    ) {
        // Two identical access sequences, one viewer vs. N viewers per
        // access. Same chunks touched in the same order → the arena
        // grants the same number of fresh buffers; the extra viewers
        // surface only as shared leases.
        let (mut fs_a, files_a) = fs_with_titles(3, 1);
        let (solo_fresh, _) = run(&mut fs_a, &files_a, &accesses, 1);

        let (mut fs_b, files_b) = fs_with_titles(3, 1);
        let (crowd_fresh, crowd_shared) = run(&mut fs_b, &files_b, &accesses, viewers);

        prop_assert_eq!(
            crowd_fresh, solo_fresh,
            "viewer fan-out changed the fresh-allocation count"
        );
        // Every access beyond each chunk's first service is a shared
        // lease: (viewers − 1) per access at minimum, plus repeat
        // accesses the solo run also shares.
        let min_shared = accesses.len() as u64 * (viewers as u64 - 1);
        prop_assert!(
            crowd_shared >= min_shared,
            "expected at least {} shared leases, saw {}",
            min_shared,
            crowd_shared
        );
    }
}
