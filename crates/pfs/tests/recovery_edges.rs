//! Recovery edge cases for the log-structured core: empty logs, logs
//! ending exactly on a segment boundary, and cleaner passes racing a
//! crash/recovery cycle. Table-driven where the cases share a shape —
//! each case prepares a file system, crashes it (amnesia), recovers
//! from the last checkpoint, and verifies every surviving file
//! byte-exact.

use pegasus_pfs::checkpoint::{recover, write_checkpoint, Checkpoint, CheckpointError};
use pegasus_pfs::cleaner::{clean_garbage_file, clean_sprite};
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs, SEGMENT_BYTES};

fn fresh() -> LogFs {
    LogFs::new(DiskConfig::hp_1994())
}

fn patterned(n: usize, tag: u8) -> Vec<u8> {
    (0..n).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
}

/// What a prepared file system expects to survive the crash.
struct Expectation {
    /// Files (and their full contents) the checkpoint acknowledged.
    live: Vec<(FileId, Vec<u8>)>,
    /// Files that must be *gone* after recovery (deleted pre-checkpoint).
    dead: Vec<FileId>,
}

/// One table entry: a name and a preparation step that leaves the file
/// system checkpoint-ready.
struct Case {
    name: &'static str,
    prepare: fn(&mut LogFs) -> Expectation,
}

const CASES: &[Case] = &[
    Case {
        name: "empty-log",
        prepare: |_fs| Expectation {
            live: vec![],
            dead: vec![],
        },
    },
    Case {
        name: "log-ends-exactly-at-segment-boundary",
        prepare: |fs| {
            // The append exactly fills the open segment, so it flushes
            // itself and the pre-checkpoint sync has nothing to do: the
            // log ends precisely on a record boundary.
            let f = fs.create(FileClass::Normal);
            let data = patterned(SEGMENT_BYTES, 0xA5);
            fs.append(f, &data).expect("one exact segment");
            Expectation {
                live: vec![(f, data)],
                dead: vec![],
            }
        },
    },
    Case {
        name: "two-classes-both-on-boundaries",
        prepare: |fs| {
            // Normal and continuous logs each end exactly on a segment
            // boundary — neither open buffer holds a byte at crash time.
            let n = fs.create(FileClass::Normal);
            let c = fs.create(FileClass::Continuous);
            let dn = patterned(SEGMENT_BYTES, 0x0F);
            let dc = patterned(2 * SEGMENT_BYTES, 0xF0);
            fs.append(n, &dn).expect("normal segment");
            fs.append(c, &dc).expect("two cm segments");
            Expectation {
                live: vec![(n, dn), (c, dc)],
                dead: vec![],
            }
        },
    },
    Case {
        name: "cleaner-pass-before-the-crash",
        prepare: |fs| {
            // A delete makes garbage, the cleaner relocates the
            // survivor's live bytes, and only then is the checkpoint
            // cut: recovery must see the *post-clean* extent map.
            let doomed = fs.create(FileClass::Normal);
            let kept = fs.create(FileClass::Normal);
            let junk = patterned(300_000, 0x33);
            let good = patterned(250_000, 0x44);
            fs.append(doomed, &junk).expect("junk");
            fs.append(kept, &good).expect("good");
            fs.sync().expect("sync");
            fs.delete(doomed).expect("delete makes garbage");
            let report = clean_garbage_file(fs).expect("clean");
            assert!(report.entries_processed > 0, "the delete left entries");
            assert!(report.live_bytes_moved > 0, "the survivor was relocated");
            Expectation {
                live: vec![(kept, good)],
                dead: vec![doomed],
            }
        },
    },
];

#[test]
fn crash_recovery_table() {
    for case in CASES {
        let mut fs = fresh();
        let expect = (case.prepare)(&mut fs);
        let cp = write_checkpoint(&mut fs).expect(case.name);

        fs.amnesia(cp);
        recover(&mut fs, cp).unwrap_or_else(|e| panic!("{}: recovery failed: {e}", case.name));

        for (file, bytes) in &expect.live {
            let size = fs
                .pnode(*file)
                .unwrap_or_else(|| panic!("{}: file lost", case.name))
                .size;
            assert_eq!(size, bytes.len() as u64, "{}: size torn", case.name);
            let back = fs
                .read(*file, 0, bytes.len())
                .unwrap_or_else(|e| panic!("{}: unreadable: {e}", case.name));
            assert_eq!(&back, bytes, "{}: bytes corrupted", case.name);
        }
        for file in &expect.dead {
            assert!(
                fs.pnode(*file).is_none(),
                "{}: a deleted file rose from the grave",
                case.name
            );
        }
    }
}

#[test]
fn empty_blob_is_truncated_not_a_panic() {
    assert_eq!(Checkpoint::decode(&[]), Err(CheckpointError::Truncated));
    assert_eq!(Checkpoint::decode(&[0x50]), Err(CheckpointError::Truncated));
}

#[test]
fn recovering_twice_is_idempotent() {
    let mut fs = fresh();
    let f = fs.create(FileClass::Normal);
    let data = patterned(64_000, 0x77);
    fs.append(f, &data).expect("append");
    let cp = write_checkpoint(&mut fs).expect("checkpoint");
    fs.amnesia(cp);
    recover(&mut fs, cp).expect("first recovery");
    recover(&mut fs, cp).expect("second recovery");
    assert_eq!(fs.read(f, 0, data.len()).expect("read"), data);
}

#[test]
fn cleaner_racing_a_recovery() {
    // The crash wiped the garbage file (it is volatile bookkeeping, not
    // part of the checkpoint), so the post-recovery garbage-file pass
    // must be a clean no-op — and the Sprite scanner, which needs only
    // the recovered segment table, must still be able to clean around
    // the live data without harming it.
    let mut fs = fresh();
    let doomed = fs.create(FileClass::Normal);
    let kept = fs.create(FileClass::Normal);
    let junk = patterned(400_000, 0x55);
    let good = patterned(200_000, 0x66);
    fs.append(doomed, &junk).expect("junk");
    fs.append(kept, &good).expect("good");
    fs.sync().expect("sync");
    // Garbage exists but was NOT cleaned before the crash.
    fs.delete(doomed).expect("delete");
    let cp = write_checkpoint(&mut fs).expect("checkpoint");

    fs.amnesia(cp);
    recover(&mut fs, cp).expect("recovery");

    let noop = clean_garbage_file(&mut fs).expect("garbage pass");
    assert_eq!(
        noop.entries_processed, 0,
        "the garbage file died with the crash"
    );
    assert_eq!(noop.segments_cleaned, 0);

    let used_before = fs.used_segments();
    let swept = clean_sprite(&mut fs, 1).expect("sprite pass");
    assert_eq!(swept.segments_cleaned, 1, "the scanner found a victim");
    assert!(fs.used_segments() <= used_before);
    // The survivor is intact whether or not it was relocated.
    assert_eq!(fs.read(kept, 0, good.len()).expect("read"), good);
}
