//! The tiered content cache: fixing §5's LRU pathology by construction.
//!
//! The paper rules out LRU caching for continuous media — "most video
//! sequences ... are larger than the cache, so, by the time a user has
//! seen ... a video to the end, the beginning has already been evicted"
//! (§5, demonstrated in [`crate::cache`]). This module replaces recency
//! with structure, borrowing the hot/warm/cold layering of modern
//! stream stores:
//!
//! * **Hot tier** — arena-leased frame chunks in server memory. A hit is
//!   served by [`FrameBuf::attach`]: a refcount bump, no copy, no fresh
//!   lease. N concurrent viewers of one title therefore cost *one*
//!   buffer — the zero-copy arena makes fan-out nearly free.
//! * **Warm tier** — an SSD-class per-server store. Admission is by
//!   *popularity* (per-title frequency), not recency, and a candidate
//!   must be **strictly** more popular than the victim it would evict.
//!   A sequential scan — every chunk referenced exactly once — ties with
//!   every incumbent and is denied, so the scan that defeats LRU cannot
//!   flush this tier. A warm hit costs `warm_chunk_ns`, far below a RAID
//!   stripe read.
//! * **Cold tier** — the log store itself ([`LogFs`]); a miss charges
//!   the full RAID stripe time exactly as an uncached read would.
//!
//! On top sits admission-aware sequential prefetch: playback streams
//! registered with their broker-granted rate have next-period chunks
//! staged into the hot tier as the current period is served, so steady
//! sequential playback hits memory instead of the array.
//!
//! Everything is deterministic: tiers are `BTreeMap`s keyed by
//! `(FileId, chunk)`, eviction scans are ordered, and every statistic is
//! an integer.

use std::collections::BTreeMap;

use crate::log::{FileId, FsError, LogFs};
use pegasus_sim::arena::{Arena, FrameBuf};
use pegasus_sim::time::Ns;

/// Chunk key: a title and a chunk index within it.
type ChunkKey = (FileId, u64);

/// Sizing and timing knobs of a [`TieredCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Hot-tier capacity in chunks (arena-resident).
    pub hot_chunks: usize,
    /// Warm-tier capacity in chunks (SSD-class).
    pub warm_chunks: usize,
    /// Chunk size in bytes; reads are served chunk-wise.
    pub chunk_bytes: usize,
    /// Simulated cost of one warm-tier chunk read, charged to the file
    /// system's `io_time` so deadline accounting sees it.
    pub warm_chunk_ns: Ns,
    /// How many future chunks sequential prefetch stages per served
    /// read of a registered stream. Zero disables prefetch.
    pub prefetch_chunks: u64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            hot_chunks: 64,
            warm_chunks: 256,
            // One RAID stripe: any smaller cold fetch would still pay a
            // whole stripe read, so the stripe is the natural chunk.
            chunk_bytes: 1 << 20,
            warm_chunk_ns: 50_000,
            prefetch_chunks: 2,
        }
    }
}

/// Deterministic counters of one [`TieredCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Demand chunk accesses served from the hot tier.
    pub hot_hits: u64,
    /// Demand chunk accesses served from the warm tier.
    pub warm_hits: u64,
    /// Demand chunk accesses that went to the log store.
    pub cold_misses: u64,
    /// Bytes served without touching the RAID array (hot + warm).
    pub bytes_saved: u64,
    /// Chunks staged ahead of the playhead by sequential prefetch.
    pub prefetched_chunks: u64,
    /// Demand chunk accesses on the designated crowd title.
    pub crowd_accesses: u64,
    /// Crowd-title accesses served from the hot tier.
    pub crowd_hot_hits: u64,
}

impl TierStats {
    /// Total demand chunk accesses.
    pub fn accesses(&self) -> u64 {
        self.hot_hits + self.warm_hits + self.cold_misses
    }

    /// Hit ratio of tier `hits` over all accesses, in thousandths.
    fn ratio_milli(hits: u64, total: u64) -> u64 {
        (hits * 1000).checked_div(total).unwrap_or(0)
    }

    /// Hot-tier hit ratio in thousandths.
    pub fn hot_milli(&self) -> u64 {
        Self::ratio_milli(self.hot_hits, self.accesses())
    }

    /// Warm-tier hit ratio in thousandths.
    pub fn warm_milli(&self) -> u64 {
        Self::ratio_milli(self.warm_hits, self.accesses())
    }

    /// Cold-miss ratio in thousandths.
    pub fn cold_milli(&self) -> u64 {
        Self::ratio_milli(self.cold_misses, self.accesses())
    }

    /// Combined (hot + warm) hit ratio in thousandths.
    pub fn hit_milli(&self) -> u64 {
        Self::ratio_milli(self.hot_hits + self.warm_hits, self.accesses())
    }

    /// Hot-tier hit ratio on the crowd title, in thousandths.
    pub fn crowd_hot_milli(&self) -> u64 {
        Self::ratio_milli(self.crowd_hot_hits, self.crowd_accesses)
    }

    /// Disk I/O saved, in 48-byte ATM cell payloads — the report's
    /// common currency for moved bytes.
    pub fn disk_io_saved_cells(&self) -> u64 {
        self.bytes_saved / 48
    }
}

/// A playback stream registered for prefetch: identity plus the rate
/// the QoS broker actually granted it.
#[derive(Debug, Clone, Copy)]
struct PrefetchReg {
    file: FileId,
    /// Granted playback rate in bytes/second — the prefetch horizon is
    /// one service period at this rate.
    rate: u64,
}

/// The tiered content cache fronting one PFS server's log store.
pub struct TieredCache {
    cfg: TierConfig,
    arena: Arena,
    /// Hot tier: chunk → (buffer, last-access stamp).
    hot: BTreeMap<ChunkKey, (FrameBuf, u64)>,
    /// Warm tier: chunk → (buffer, admission stamp).
    warm: BTreeMap<ChunkKey, (FrameBuf, u64)>,
    /// Per-title demand access counts — the popularity signal warm
    /// admission compares.
    freq: BTreeMap<FileId, u64>,
    streams: Vec<PrefetchReg>,
    clock: u64,
    crowd: Option<FileId>,
    stats: TierStats,
}

impl TieredCache {
    /// Creates a cache with its own arena.
    pub fn new(cfg: TierConfig) -> Self {
        TieredCache::with_arena(cfg, Arena::new())
    }

    /// Creates a cache serving leases from `arena`.
    pub fn with_arena(cfg: TierConfig, arena: Arena) -> Self {
        assert!(cfg.hot_chunks > 0, "hot tier must hold at least one chunk");
        assert!(cfg.chunk_bytes > 0, "chunk size must be positive");
        TieredCache {
            cfg,
            arena,
            hot: BTreeMap::new(),
            warm: BTreeMap::new(),
            freq: BTreeMap::new(),
            streams: Vec::new(),
            clock: 0,
            crowd: None,
            stats: TierStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// The arena hot chunks are leased from.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Configuration in force.
    pub fn config(&self) -> &TierConfig {
        &self.cfg
    }

    /// Marks `file` as the flash-crowd title whose hot-tier service the
    /// stats track separately.
    pub fn set_crowd_file(&mut self, file: FileId) {
        self.crowd = Some(file);
    }

    /// Registers a playback stream for sequential prefetch at the
    /// broker-granted `rate` (bytes/second).
    pub fn register_stream(&mut self, file: FileId, rate: u64) {
        self.streams.push(PrefetchReg { file, rate });
    }

    /// Chunks currently resident in the hot tier.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Chunks currently resident in the warm tier.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Least-recently-touched hot chunk (deterministic: ordered scan,
    /// earliest stamp wins). The CM-awareness of the tier: chunks of
    /// the declared flash-crowd title are evicted only when nothing
    /// else is left — the control plane has told the cache that N
    /// viewers ride each of those buffers, so trading one away for a
    /// single-viewer chunk always loses.
    fn hot_victim(&self) -> Option<ChunkKey> {
        self.hot
            .iter()
            .min_by_key(|(key, (_, stamp))| (self.crowd == Some(key.0), *stamp, **key))
            .map(|(key, _)| *key)
    }

    /// Warm victim: the chunk of the least popular title, oldest first —
    /// popularity decides residence, recency only tiebreaks.
    fn warm_victim(&self) -> Option<ChunkKey> {
        self.warm
            .iter()
            .min_by_key(|((file, chunk), (_, stamp))| {
                (
                    self.freq.get(file).copied().unwrap_or(0),
                    *stamp,
                    *file,
                    *chunk,
                )
            })
            .map(|(key, _)| *key)
    }

    /// Inserts a chunk into the hot tier, demoting the evicted chunk to
    /// the warm tier's *admission filter* (not unconditionally in).
    fn insert_hot(&mut self, key: ChunkKey, buf: FrameBuf) {
        let stamp = self.tick();
        if !self.hot.contains_key(&key) && self.hot.len() >= self.cfg.hot_chunks {
            if let Some(victim) = self.hot_victim() {
                if let Some((evicted, _)) = self.hot.remove(&victim) {
                    self.offer_warm(victim, evicted);
                }
            }
        }
        self.hot.insert(key, (buf, stamp));
    }

    /// Popularity admission: the chunk enters the warm tier only into
    /// free space or over a *strictly* less popular victim. A one-pass
    /// sequential scan ties with every incumbent and is refused — the
    /// construction that makes the tier scan-proof.
    fn offer_warm(&mut self, key: ChunkKey, buf: FrameBuf) {
        if self.cfg.warm_chunks == 0 || self.warm.contains_key(&key) {
            return;
        }
        if self.warm.len() >= self.cfg.warm_chunks {
            let candidate_freq = self.freq.get(&key.0).copied().unwrap_or(0);
            let victim = match self.warm_victim() {
                Some(v) => v,
                None => return,
            };
            let victim_freq = self.freq.get(&victim.0).copied().unwrap_or(0);
            if candidate_freq <= victim_freq {
                return; // deny on tie: scans do not displace incumbents
            }
            self.warm.remove(&victim);
        }
        let stamp = self.tick();
        self.warm.insert(key, (buf, stamp));
    }

    /// Length of chunk `chunk` of a `size`-byte file.
    fn chunk_len(&self, size: u64, chunk: u64) -> usize {
        let start = chunk * self.cfg.chunk_bytes as u64;
        (size.saturating_sub(start)).min(self.cfg.chunk_bytes as u64) as usize
    }

    /// Fetches one chunk from the log store into a leased buffer.
    fn fetch_cold(
        &mut self,
        fs: &mut LogFs,
        file: FileId,
        chunk: u64,
        size: u64,
    ) -> Result<FrameBuf, FsError> {
        let start = chunk * self.cfg.chunk_bytes as u64;
        let len = self.chunk_len(size, chunk);
        fs.read_leased(file, start, len, &self.arena)
    }

    /// Serves one demand chunk access, returning an attached handle to
    /// the cached buffer. Tier order: hot, warm (promote), cold (fetch).
    fn access_chunk(
        &mut self,
        fs: &mut LogFs,
        file: FileId,
        chunk: u64,
        size: u64,
    ) -> Result<FrameBuf, FsError> {
        let key = (file, chunk);
        *self.freq.entry(file).or_insert(0) += 1;
        let crowd = self.crowd == Some(file);
        if crowd {
            self.stats.crowd_accesses += 1;
        }
        let len = self.chunk_len(size, chunk) as u64;
        if let Some((buf, stamp)) = self.hot.get_mut(&key) {
            *stamp = self.clock + 1;
            self.clock += 1;
            self.stats.hot_hits += 1;
            self.stats.bytes_saved += len;
            if crowd {
                self.stats.crowd_hot_hits += 1;
            }
            return Ok(buf.attach());
        }
        if let Some((buf, _)) = self.warm.get(&key) {
            // Served from warm — and *kept* there: residence is decided
            // by popularity, not by a promotion that would drain the
            // tier. A clone rides up into hot for near-term re-use.
            let buf = buf.clone();
            self.stats.warm_hits += 1;
            self.stats.bytes_saved += len;
            fs.io_time += self.cfg.warm_chunk_ns;
            fs.stats.bytes_read += len;
            self.insert_hot(key, buf.clone());
            return Ok(buf.attach());
        }
        self.stats.cold_misses += 1;
        let buf = self.fetch_cold(fs, file, chunk, size)?;
        self.insert_hot(key, buf.clone());
        Ok(buf.attach())
    }

    /// Serves a demand read of `[offset, offset + len)` of `file`
    /// chunk-wise through the tiers, pushing one attached buffer handle
    /// per chunk into `out` (cleared first). After the demand chunks,
    /// sequential prefetch stages upcoming chunks for any stream
    /// registered on `file`.
    pub fn read(
        &mut self,
        fs: &mut LogFs,
        file: FileId,
        offset: u64,
        len: u64,
        out: &mut Vec<FrameBuf>,
    ) -> Result<(), FsError> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        let size = fs.pnode(file).ok_or(FsError::NoSuchFile)?.size;
        if offset + len > size {
            return Err(FsError::BadRange);
        }
        let cb = self.cfg.chunk_bytes as u64;
        let first = offset / cb;
        let last = (offset + len - 1) / cb;
        for chunk in first..=last {
            out.push(self.access_chunk(fs, file, chunk, size)?);
        }
        self.prefetch_after(fs, file, last, size)?;
        Ok(())
    }

    /// Stages chunks `last+1 ..` into the hot tier for streams
    /// registered on `file`, up to the configured horizon scaled by the
    /// stream's granted rate (one extra chunk per full `chunk_bytes` of
    /// per-second rate, at least one, at most `prefetch_chunks`).
    fn prefetch_after(
        &mut self,
        fs: &mut LogFs,
        file: FileId,
        last: u64,
        size: u64,
    ) -> Result<(), FsError> {
        if self.cfg.prefetch_chunks == 0 {
            return Ok(());
        }
        let rate = match self.streams.iter().find(|s| s.file == file) {
            Some(s) => s.rate,
            None => return Ok(()),
        };
        // Broker-granted rate sets the horizon: a stream granted R B/s
        // consumes R/chunk_bytes chunks per second, so stage up to one
        // period's worth ahead, capped by the config.
        let per_sec = (rate / self.cfg.chunk_bytes as u64).max(1);
        let horizon = per_sec.min(self.cfg.prefetch_chunks);
        let total_chunks = size.div_ceil(self.cfg.chunk_bytes as u64);
        for chunk in last + 1..=(last + horizon).min(total_chunks.saturating_sub(1)) {
            let key = (file, chunk);
            if self.hot.contains_key(&key) || self.warm.contains_key(&key) {
                continue;
            }
            let buf = self.fetch_cold(fs, file, chunk, size)?;
            self.insert_hot(key, buf);
            self.stats.prefetched_chunks += 1;
        }
        Ok(())
    }
}

impl std::fmt::Debug for TieredCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredCache")
            .field("hot", &self.hot.len())
            .field("warm", &self.warm.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use crate::disk::DiskConfig;
    use crate::log::{FileClass, SEGMENT_BYTES};

    fn fs_with_video(megabytes: usize) -> (LogFs, FileId) {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        fs.raid_mut().set_store(false);
        let id = fs.create(FileClass::Continuous);
        for _ in 0..megabytes {
            fs.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
        }
        fs.sync().unwrap();
        (fs, id)
    }

    fn small_cfg() -> TierConfig {
        TierConfig {
            hot_chunks: 4,
            warm_chunks: 8,
            chunk_bytes: 1 << 16,
            warm_chunk_ns: 50_000,
            prefetch_chunks: 0,
        }
    }

    #[test]
    fn cold_then_hot_round_trip() {
        let (mut fs, id) = fs_with_video(1);
        let mut cache = TieredCache::new(small_cfg());
        let mut out = Vec::new();
        cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(cache.stats().cold_misses, 1);
        let io_after_cold = fs.io_time;
        cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        assert_eq!(cache.stats().hot_hits, 1);
        assert_eq!(fs.io_time, io_after_cold, "hot hit touches no device");
        assert_eq!(cache.stats().bytes_saved, 1 << 16);
    }

    #[test]
    fn warm_hit_charges_ssd_not_raid() {
        let (mut fs, id) = fs_with_video(2);
        let mut cache = TieredCache::new(TierConfig {
            hot_chunks: 1,
            ..small_cfg()
        });
        let mut out = Vec::new();
        // Touch chunk 0 twice so its title has frequency, then push it
        // out of the one-chunk hot tier.
        cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        cache.read(&mut fs, id, 1 << 16, 1 << 16, &mut out).unwrap();
        assert_eq!(cache.warm_len(), 1, "evicted hot chunk admitted warm");
        let io_before = fs.io_time;
        cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        assert_eq!(cache.stats().warm_hits, 1);
        assert_eq!(fs.io_time - io_before, 50_000, "warm hit costs SSD time");
    }

    #[test]
    fn lru_pathology_fixed_by_construction() {
        // §5 regression: looped sequential playback of a video larger
        // than the cache. LRU hit ratio is exactly zero; the tiered
        // cache retains a popularity-admitted prefix in the warm tier,
        // so its hit ratio approaches capacity / video_length.
        let video_chunks = 48u64;
        let passes = 4;

        let mut lru = LruCache::new(12);
        for _ in 0..passes {
            for b in 0..video_chunks {
                if lru.get(&b).is_none() {
                    lru.put(b, ());
                }
            }
        }
        assert_eq!(lru.hits, 0, "LRU never hits on the §5 workload");
        assert!(lru.scans_detected > 0);

        let (mut fs, id) = fs_with_video(3); // 48 chunks of 64 KiB
        let mut cache = TieredCache::new(TierConfig {
            hot_chunks: 4,
            warm_chunks: 8,
            ..small_cfg()
        });
        let mut out = Vec::new();
        for _ in 0..passes {
            for b in 0..video_chunks {
                cache.read(&mut fs, id, b << 16, 1 << 16, &mut out).unwrap();
            }
        }
        let s = cache.stats();
        // Popularity admission pins the first `warm_chunks` of the title
        // in the warm tier for good; from pass 2 on that prefix hits
        // every lap. Predicted floor: (passes−1) × warm capacity hits
        // over passes × length accesses — the capacity/length bound LRU
        // can never reach (it stays at exactly zero).
        let warm_capacity = 8u64;
        let predicted_milli = (passes - 1) * warm_capacity * 1000 / (passes * video_chunks);
        assert!(
            s.hit_milli() >= predicted_milli,
            "tiered hit ratio {}‰ below predicted floor {}‰",
            s.hit_milli(),
            predicted_milli
        );
        assert!(s.hot_hits + s.warm_hits > 0);
    }

    #[test]
    fn scan_cannot_flush_popular_titles_from_warm() {
        // A popular title's chunks sit in warm; a cold one-pass scan of
        // a different title must not displace them (deny-on-tie).
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        fs.raid_mut().set_store(false);
        let popular = fs.create(FileClass::Continuous);
        let scan = fs.create(FileClass::Continuous);
        for _ in 0..2 {
            fs.append(popular, &vec![0u8; SEGMENT_BYTES]).unwrap();
            fs.append(scan, &vec![0u8; SEGMENT_BYTES]).unwrap();
        }
        fs.sync().unwrap();
        let mut cache = TieredCache::new(TierConfig {
            hot_chunks: 2,
            warm_chunks: 4,
            ..small_cfg()
        });
        let mut out = Vec::new();
        // Build popularity: several passes over the popular title.
        for _ in 0..4 {
            for b in 0..8u64 {
                cache
                    .read(&mut fs, popular, b << 16, 1 << 16, &mut out)
                    .unwrap();
            }
        }
        let warm_before = cache.warm_len();
        assert!(warm_before > 0);
        // One cold sequential pass over the other title.
        for b in 0..32u64 {
            cache
                .read(&mut fs, scan, b << 16, 1 << 16, &mut out)
                .unwrap();
        }
        // Every warm chunk still belongs to the popular title.
        assert!(
            cache.warm.keys().all(|(f, _)| *f == popular),
            "a one-pass scan displaced popularity-admitted chunks"
        );
    }

    #[test]
    fn viewers_share_one_buffer() {
        let (mut fs, id) = fs_with_video(1);
        let mut cache = TieredCache::new(small_cfg());
        let mut first = Vec::new();
        cache.read(&mut fs, id, 0, 1 << 16, &mut first).unwrap();
        let fresh_one = cache.arena().stats().fresh_allocs;
        let mut handles = Vec::new();
        for _ in 0..9 {
            let mut out = Vec::new();
            cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
            handles.extend(out);
        }
        let s = cache.arena().stats();
        assert_eq!(
            s.fresh_allocs, fresh_one,
            "nine more viewers, zero new buffers"
        );
        assert!(s.shared_attaches >= 9);
        assert!(handles.iter().all(|h| FrameBuf::same_buffer(h, &first[0])));
    }

    #[test]
    fn prefetch_stages_next_chunks_for_registered_streams() {
        let (mut fs, id) = fs_with_video(1);
        let mut cache = TieredCache::new(TierConfig {
            prefetch_chunks: 2,
            ..small_cfg()
        });
        cache.register_stream(id, 2 << 16); // two chunks per second
        let mut out = Vec::new();
        cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        assert_eq!(cache.stats().prefetched_chunks, 2);
        // The next demand read lands entirely in the hot tier.
        cache.read(&mut fs, id, 1 << 16, 2 << 16, &mut out).unwrap();
        let s = cache.stats();
        assert_eq!(s.cold_misses, 1, "only the first chunk was a demand miss");
        assert_eq!(s.hot_hits, 2);
    }

    #[test]
    fn crowd_title_tracking() {
        let (mut fs, id) = fs_with_video(1);
        let mut cache = TieredCache::new(small_cfg());
        cache.set_crowd_file(id);
        let mut out = Vec::new();
        for _ in 0..10 {
            cache.read(&mut fs, id, 0, 1 << 16, &mut out).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.crowd_accesses, 10);
        assert_eq!(s.crowd_hot_hits, 9, "all but the first access hit hot");
        assert_eq!(s.crowd_hot_milli(), 900);
    }

    #[test]
    fn crowd_title_survives_hot_churn() {
        // The CM-aware eviction: a declared flash-crowd chunk outlives
        // any amount of single-viewer churn through the hot tier, so
        // the crowd keeps hitting the one shared buffer.
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        fs.raid_mut().set_store(false);
        let hit = fs.create(FileClass::Continuous);
        let churn = fs.create(FileClass::Continuous);
        fs.append(hit, &vec![0u8; SEGMENT_BYTES]).unwrap();
        for _ in 0..2 {
            fs.append(churn, &vec![0u8; SEGMENT_BYTES]).unwrap();
        }
        fs.sync().unwrap();
        let mut cache = TieredCache::new(TierConfig {
            hot_chunks: 2,
            ..small_cfg()
        });
        cache.set_crowd_file(hit);
        let mut out = Vec::new();
        cache.read(&mut fs, hit, 0, 1 << 16, &mut out).unwrap();
        // A long sequential pass floods the two-chunk hot tier.
        for b in 0..32u64 {
            cache
                .read(&mut fs, churn, b << 16, 1 << 16, &mut out)
                .unwrap();
        }
        let io_before = fs.io_time;
        cache.read(&mut fs, hit, 0, 1 << 16, &mut out).unwrap();
        let s = cache.stats();
        assert_eq!(s.crowd_accesses, 2);
        assert_eq!(s.crowd_hot_hits, 1, "crowd chunk still hot after the flood");
        assert_eq!(fs.io_time, io_before);
    }

    #[test]
    fn bad_range_and_missing_file_are_errors() {
        let (mut fs, id) = fs_with_video(1);
        let mut cache = TieredCache::new(small_cfg());
        let mut out = Vec::new();
        assert!(cache
            .read(&mut fs, id, SEGMENT_BYTES as u64, 1, &mut out)
            .is_err());
        assert!(cache.read(&mut fs, FileId(999), 0, 1, &mut out).is_err());
        // Zero-length reads are a no-op.
        cache.read(&mut fs, id, 0, 0, &mut out).unwrap();
        assert_eq!(cache.stats().accesses(), 0);
    }

    #[test]
    fn stats_ratios_sum_to_one() {
        let (mut fs, id) = fs_with_video(2);
        let mut cache = TieredCache::new(small_cfg());
        let mut out = Vec::new();
        for _ in 0..3 {
            for b in 0..16u64 {
                cache.read(&mut fs, id, b << 16, 1 << 16, &mut out).unwrap();
            }
        }
        let s = cache.stats();
        let total = s.hot_milli() + s.warm_milli() + s.cold_milli();
        assert!(
            (998..=1000).contains(&total),
            "ratios sum to ~1000‰, got {total}"
        );
        assert_eq!(s.disk_io_saved_cells(), s.bytes_saved / 48);
    }
}
