//! Client agents and write-behind buffering.
//!
//! "When an application makes a write operation, the client agent sends
//! the data to the server and keeps a copy of the data in its buffers.
//! When the server receives the data, it acknowledges this to the client
//! agent which, in turn, unblocks the application. The data is now safe
//! under single-point failures: when the server crashes, the client
//! agent notices and either writes the data to an alternative server or
//! waits for the crashed server to come back up; when the client machine
//! crashes, the server will complete the write operation. ... These
//! mechanisms obviate the need for writing data to disk quickly."
//! (§5)
//!
//! The pay-off, via Baker et al.: "70% of files are deleted or
//! overwritten within 30 seconds", so delaying the disk write lets most
//! data die in memory — fewer disk writes *and* less cleaner garbage.
//! [`WriteBehindSystem`] models the client copy + server buffer pair
//! with explicit virtual time and fault injection for all the crash
//! cases the paper enumerates.

use std::collections::HashMap;

use crate::log::{FileClass, FileId, FsError, LogFs};
use pegasus_sim::arena::{Arena, FrameBuf};
use pegasus_sim::time::Ns;

/// When the server pushes buffered data to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write to disk before acknowledging (the conventional safe path).
    WriteThrough,
    /// Buffer in server memory for up to `delay`, relying on the client
    /// copy (and UPS) for safety.
    WriteBehind {
        /// Maximum residence time in the server buffer.
        delay: Ns,
    },
}

/// One write in flight: the server buffer and the client agent reference
/// the *same* immutable arena lease — "keeps a copy of the data in its
/// buffers" costs a refcount bump, not a second allocation.
#[derive(Debug, Clone)]
struct Pending {
    file: FileId,
    data: FrameBuf,
    enqueued: Ns,
    seq: u64,
}

/// Counters for the write path.
#[derive(Debug, Default, Clone)]
pub struct WriteStats {
    /// Bytes the application wrote.
    pub app_bytes: u64,
    /// Bytes that reached the log (disk).
    pub disk_bytes: u64,
    /// Bytes absorbed: deleted or overwritten while still buffered, so
    /// they never cost a disk write.
    pub absorbed_bytes: u64,
    /// Bytes lost (only possible with write-behind, no UPS, power cut).
    pub lost_bytes: u64,
    /// Writes replayed by the client after a server crash.
    pub replayed_writes: u64,
}

/// The client-agent + server-buffer pair over a [`LogFs`].
pub struct WriteBehindSystem {
    /// The backing file system.
    pub fs: LogFs,
    policy: WritePolicy,
    now: Ns,
    /// Data acknowledged but not yet on disk (server RAM).
    server_pending: Vec<Pending>,
    /// Copies the client agent retains until the server writes to disk
    /// (references to the same leases the server holds).
    client_copies: HashMap<u64, Pending>,
    /// The pool write leases are drawn from; committed buffers recycle.
    arena: Arena,
    next_seq: u64,
    /// Whether the server has battery backup / UPS.
    pub server_has_ups: bool,
    /// Counters.
    pub stats: WriteStats,
}

impl WriteBehindSystem {
    /// Creates the pair with the given policy over `fs`.
    pub fn new(fs: LogFs, policy: WritePolicy) -> Self {
        WriteBehindSystem {
            fs,
            policy,
            now: 0,
            server_pending: Vec::new(),
            client_copies: HashMap::new(),
            arena: Arena::new(),
            next_seq: 0,
            server_has_ups: true,
            stats: WriteStats::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Bytes currently buffered in server memory.
    pub fn pending_bytes(&self) -> u64 {
        self.server_pending
            .iter()
            .map(|p| p.data.len() as u64)
            .sum()
    }

    /// Advances virtual time, flushing server-buffered writes whose
    /// residence time expired.
    pub fn advance(&mut self, dt: Ns) -> Result<(), FsError> {
        self.now += dt;
        if let WritePolicy::WriteBehind { delay } = self.policy {
            let due: Vec<Pending> = {
                let now = self.now;
                let (due, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.server_pending)
                    .into_iter()
                    .partition(|p| now.saturating_sub(p.enqueued) >= delay);
                self.server_pending = keep;
                due
            };
            for p in due {
                self.commit(p)?;
            }
        }
        Ok(())
    }

    fn commit(&mut self, p: Pending) -> Result<(), FsError> {
        self.fs.append(p.file, &p.data)?;
        self.stats.disk_bytes += p.data.len() as u64;
        // The data is on disk: the client copy may be released.
        self.client_copies.remove(&p.seq);
        Ok(())
    }

    /// Creates a file (metadata only; pnode creation is cheap).
    pub fn create(&mut self) -> FileId {
        self.fs.create(FileClass::Normal)
    }

    /// The application writes (appends) `data` to `file`. Returns after
    /// the "ack": write-through waits for disk; write-behind returns as
    /// soon as the server holds the data and the client holds its copy.
    pub fn write(&mut self, file: FileId, data: &[u8]) -> Result<(), FsError> {
        self.stats.app_bytes += data.len() as u64;
        match self.policy {
            WritePolicy::WriteThrough => {
                self.fs.append(file, data)?;
                self.stats.disk_bytes += data.len() as u64;
                Ok(())
            }
            WritePolicy::WriteBehind { .. } => {
                // One copy into an arena lease; server buffer and client
                // agent then share it by refcount (the seed did
                // `to_vec()` *and* a full `clone()` — two copies).
                let p = Pending {
                    file,
                    data: self.arena.frame_from(data),
                    enqueued: self.now,
                    seq: self.next_seq,
                };
                self.next_seq += 1;
                self.client_copies.insert(p.seq, p.clone());
                self.server_pending.push(p);
                Ok(())
            }
        }
    }

    /// The application deletes `file`. Buffered data for it is absorbed
    /// — it never reaches the disk and creates no log garbage.
    pub fn delete(&mut self, file: FileId) -> Result<(), FsError> {
        let absorbed: u64 = self
            .server_pending
            .iter()
            .filter(|p| p.file == file)
            .map(|p| p.data.len() as u64)
            .sum();
        self.stats.absorbed_bytes += absorbed;
        let dropped: Vec<u64> = self
            .server_pending
            .iter()
            .filter(|p| p.file == file)
            .map(|p| p.seq)
            .collect();
        self.server_pending.retain(|p| p.file != file);
        for seq in dropped {
            self.client_copies.remove(&seq);
        }
        self.fs.delete(file)
    }

    /// Server crash: its volatile buffer is lost; the client agent
    /// notices and replays every unacknowledged-to-disk write from its
    /// copies. No data is lost.
    pub fn crash_server(&mut self) -> Result<(), FsError> {
        self.server_pending.clear();
        // Replay, in sequence order, everything the client still holds.
        let mut copies: Vec<Pending> = self.client_copies.values().cloned().collect();
        copies.sort_unstable_by_key(|p| p.seq);
        for p in copies {
            self.stats.replayed_writes += 1;
            self.server_pending.push(Pending {
                enqueued: self.now,
                ..p
            });
        }
        Ok(())
    }

    /// Client crash: its copies are lost; the server completes every
    /// buffered write immediately. No data is lost.
    pub fn crash_client(&mut self) -> Result<(), FsError> {
        self.client_copies.clear();
        for p in std::mem::take(&mut self.server_pending) {
            self.commit(p)?;
        }
        Ok(())
    }

    /// Power failure: client and server crash together. With a UPS the
    /// server flushes its volatile buffers and halts; without one, the
    /// buffered bytes are gone. Returns the bytes lost.
    pub fn power_failure(&mut self) -> Result<u64, FsError> {
        self.client_copies.clear();
        let pending = std::mem::take(&mut self.server_pending);
        if self.server_has_ups {
            for p in pending {
                self.commit(p)?;
            }
            Ok(0)
        } else {
            let lost: u64 = pending.iter().map(|p| p.data.len() as u64).sum();
            self.stats.lost_bytes += lost;
            Ok(lost)
        }
    }

    /// Flushes everything (orderly shutdown).
    pub fn shutdown(&mut self) -> Result<(), FsError> {
        for p in std::mem::take(&mut self.server_pending) {
            self.commit(p)?;
        }
        self.fs.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use pegasus_sim::time::SEC;

    fn system(policy: WritePolicy) -> WriteBehindSystem {
        WriteBehindSystem::new(LogFs::new(DiskConfig::hp_1994()), policy)
    }

    const DELAY: Ns = 30 * SEC;

    #[test]
    fn write_through_hits_disk_immediately() {
        let mut s = system(WritePolicy::WriteThrough);
        let f = s.create();
        s.write(f, &[1u8; 1000]).unwrap();
        assert_eq!(s.stats.disk_bytes, 1000);
        assert_eq!(s.pending_bytes(), 0);
    }

    #[test]
    fn write_behind_defers_then_flushes() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[1u8; 1000]).unwrap();
        assert_eq!(s.stats.disk_bytes, 0);
        assert_eq!(s.pending_bytes(), 1000);
        s.advance(29 * SEC).unwrap();
        assert_eq!(s.stats.disk_bytes, 0, "not due yet");
        s.advance(SEC).unwrap();
        assert_eq!(s.stats.disk_bytes, 1000);
        assert_eq!(s.pending_bytes(), 0);
        // Data is readable once committed.
        let back = s.fs.read(f, 0, 1000).unwrap();
        assert_eq!(back, vec![1u8; 1000]);
    }

    #[test]
    fn early_delete_absorbs_the_write() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[2u8; 5000]).unwrap();
        s.advance(10 * SEC).unwrap();
        s.delete(f).unwrap();
        s.advance(DELAY).unwrap();
        assert_eq!(s.stats.disk_bytes, 0, "short-lived data never hits disk");
        assert_eq!(s.stats.absorbed_bytes, 5000);
        // And, crucially, no log garbage was created.
        assert!(s.fs.garbage.is_empty());
    }

    #[test]
    fn write_through_same_lifetime_creates_garbage() {
        let mut s = system(WritePolicy::WriteThrough);
        let f = s.create();
        s.write(f, &[2u8; 5000]).unwrap();
        s.fs.sync().unwrap();
        s.delete(f).unwrap();
        assert_eq!(s.stats.disk_bytes, 5000);
        assert!(!s.fs.garbage.is_empty(), "died-on-disk data leaves holes");
    }

    #[test]
    fn server_crash_loses_nothing() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[3u8; 2000]).unwrap();
        s.crash_server().unwrap();
        assert_eq!(s.stats.replayed_writes, 1);
        s.advance(DELAY).unwrap();
        assert_eq!(s.stats.disk_bytes, 2000);
        assert_eq!(s.fs.read(f, 0, 2000).unwrap(), vec![3u8; 2000]);
    }

    #[test]
    fn client_crash_loses_nothing() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[4u8; 2000]).unwrap();
        s.crash_client().unwrap();
        // Server completed the write immediately.
        assert_eq!(s.stats.disk_bytes, 2000);
        assert_eq!(s.fs.read(f, 0, 2000).unwrap(), vec![4u8; 2000]);
    }

    #[test]
    fn power_failure_with_ups_flushes() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        s.server_has_ups = true;
        let f = s.create();
        s.write(f, &[5u8; 1500]).unwrap();
        let lost = s.power_failure().unwrap();
        assert_eq!(lost, 0);
        assert_eq!(s.stats.disk_bytes, 1500);
    }

    #[test]
    fn power_failure_without_ups_loses_buffered_data() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        s.server_has_ups = false;
        let f = s.create();
        s.write(f, &[6u8; 1500]).unwrap();
        let lost = s.power_failure().unwrap();
        assert_eq!(lost, 1500);
        assert_eq!(s.stats.lost_bytes, 1500);
        assert_eq!(s.stats.disk_bytes, 0);
    }

    #[test]
    fn multiple_writes_ordered_after_replay() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, b"first ").unwrap();
        s.write(f, b"second").unwrap();
        s.crash_server().unwrap();
        s.advance(DELAY).unwrap();
        let back = s.fs.read(f, 0, 12).unwrap();
        assert_eq!(back, b"first second");
    }

    #[test]
    fn client_copy_is_a_reference_not_a_second_allocation() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[8u8; 4096]).unwrap();
        // Server buffer + client copy share one lease: one buffer
        // outstanding, referenced from both sides.
        let st = s.arena.stats();
        assert_eq!(st.outstanding, 1, "one lease serves both copies");
        assert!(
            FrameBuf::same_buffer(&s.server_pending[0].data, &s.client_copies[&0].data),
            "server and client reference the same bytes"
        );
        // After commit both references drop and the storage recycles.
        s.advance(DELAY).unwrap();
        assert_eq!(s.arena.stats().outstanding, 0);
        s.write(f, &[9u8; 4096]).unwrap();
        assert_eq!(s.arena.stats().fresh_allocs, 1, "second write recycles");
    }

    #[test]
    fn shutdown_flushes_everything() {
        let mut s = system(WritePolicy::WriteBehind { delay: DELAY });
        let f = s.create();
        s.write(f, &[7u8; 999]).unwrap();
        s.shutdown().unwrap();
        assert_eq!(s.stats.disk_bytes, 999);
        assert_eq!(s.fs.read(f, 0, 999).unwrap(), vec![7u8; 999]);
    }
}
