//! Simulated disks.
//!
//! The paper's arithmetic: "The speeds of modern disks are such that the
//! overhead of seeks between reading and writing whole segments is less
//! than ten per cent, so that a transfer rate of at least five megabytes
//! per second per disk is possible on high-performance disk hardware."
//! A [`SimDisk`] reproduces exactly that trade: positioning time (seek +
//! rotational latency) is amortized over the transfer, so megabyte
//! segments keep the overhead under 10 % while small random I/O drowns
//! in it.
//!
//! Data is stored sparsely (only written sectors), so experiments can
//! address multi-gigabyte devices without the memory footprint.

use std::collections::HashMap;

use pegasus_sim::time::{Ns, SEC};

/// Sector size in bytes.
pub const SECTOR: usize = 512;

/// Physical parameters of a disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Capacity in sectors.
    pub sectors: u64,
    /// Minimum (track-to-track) seek.
    pub min_seek: Ns,
    /// Maximum (full-stroke) seek.
    pub max_seek: Ns,
    /// Spindle speed in RPM (rotational latency = half a revolution).
    pub rpm: u32,
    /// Media transfer rate in bytes per second.
    pub transfer_rate: u64,
}

impl DiskConfig {
    /// A 1994 high-performance drive: 1 GiB, 2–18 ms seeks, 5400 RPM,
    /// 6 MB/s media rate.
    pub fn hp_1994() -> Self {
        DiskConfig {
            sectors: (1u64 << 30) / SECTOR as u64,
            min_seek: 2_000_000,
            max_seek: 18_000_000,
            rpm: 5_400,
            transfer_rate: 6_000_000,
        }
    }

    /// Half a revolution: the average rotational latency.
    pub fn avg_rotation(&self) -> Ns {
        (60 * SEC) / (2 * self.rpm as u64)
    }
}

/// Why a disk operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The drive has fail-stopped.
    Failed,
    /// Access beyond the last sector.
    OutOfRange,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Failed => write!(f, "disk has failed"),
            DiskError::OutOfRange => write!(f, "sector out of range"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Per-disk counters.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Time spent positioning (seek + rotation).
    pub positioning: Ns,
    /// Time spent transferring.
    pub transferring: Ns,
}

impl DiskStats {
    /// Fraction of total I/O time spent positioning — the paper's
    /// "overhead of seeks".
    pub fn seek_overhead(&self) -> f64 {
        let total = self.positioning + self.transferring;
        if total == 0 {
            0.0
        } else {
            self.positioning as f64 / total as f64
        }
    }

    /// Effective throughput in bytes/second over the I/O time spent.
    pub fn throughput(&self) -> f64 {
        let total = self.positioning + self.transferring;
        if total == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / (total as f64 / SEC as f64)
        }
    }
}

/// A simulated disk: sparse data store plus a timing model.
pub struct SimDisk {
    cfg: DiskConfig,
    data: HashMap<u64, Box<[u8; SECTOR]>>,
    head: u64,
    failed: bool,
    store: bool,
    /// Counters.
    pub stats: DiskStats,
}

impl SimDisk {
    /// Creates a disk with the given geometry.
    pub fn new(cfg: DiskConfig) -> Self {
        SimDisk {
            cfg,
            data: HashMap::new(),
            head: 0,
            failed: false,
            store: true,
            stats: DiskStats::default(),
        }
    }

    /// Disables content retention: timing is still modelled exactly, but
    /// written bytes are discarded and reads return zeros. Scaling
    /// experiments use this to address tens of gigabytes without the
    /// memory footprint.
    pub fn set_store(&mut self, store: bool) {
        self.store = store;
        if !store {
            self.data.clear();
        }
    }

    /// The configuration.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    /// Fail-stops the drive; all subsequent operations error.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Repairs (replaces) the drive. Contents are lost — this models
    /// swapping in a fresh spindle for RAID reconstruction.
    pub fn replace(&mut self) {
        self.failed = false;
        self.data.clear();
        self.head = 0;
    }

    /// Whether the drive has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Positioning cost from the current head position to `sector`.
    fn position(&mut self, sector: u64) -> Ns {
        if sector == self.head {
            return 0; // sequential: no seek, no extra rotation
        }
        let distance = sector.abs_diff(self.head);
        let frac = distance as f64 / self.cfg.sectors as f64;
        let seek = self.cfg.min_seek
            + ((self.cfg.max_seek - self.cfg.min_seek) as f64 * frac.sqrt()) as Ns;
        seek + self.cfg.avg_rotation()
    }

    fn transfer_time(&self, bytes: usize) -> Ns {
        (bytes as u128 * SEC as u128 / self.cfg.transfer_rate as u128) as Ns
    }

    /// Writes `data` (whole sectors) starting at `sector`; returns the
    /// operation's duration.
    pub fn write(&mut self, sector: u64, data: &[u8]) -> Result<Ns, DiskError> {
        self.check(sector, data.len())?;
        assert_eq!(data.len() % SECTOR, 0, "whole sectors only");
        let pos = self.position(sector);
        if self.store {
            for (i, chunk) in data.chunks(SECTOR).enumerate() {
                let mut boxed = Box::new([0u8; SECTOR]);
                boxed.copy_from_slice(chunk);
                self.data.insert(sector + i as u64, boxed);
            }
        }
        let xfer = self.transfer_time(data.len());
        self.head = sector + (data.len() / SECTOR) as u64;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.positioning += pos;
        self.stats.transferring += xfer;
        Ok(pos + xfer)
    }

    /// Reads `sectors` whole sectors starting at `sector`; returns the
    /// data and the operation's duration. Unwritten sectors read as
    /// zeros.
    pub fn read(&mut self, sector: u64, sectors: u64) -> Result<(Vec<u8>, Ns), DiskError> {
        let mut out = Vec::with_capacity(sectors as usize * SECTOR);
        let t = self.read_into(sector, sectors, &mut out)?;
        Ok((out, t))
    }

    /// [`SimDisk::read`], appending into a caller-supplied buffer — the
    /// RAID and log layers reuse one scratch buffer across reads so the
    /// storage hot path stops allocating at steady state.
    pub fn read_into(
        &mut self,
        sector: u64,
        sectors: u64,
        out: &mut Vec<u8>,
    ) -> Result<Ns, DiskError> {
        self.check(sector, (sectors as usize) * SECTOR)?;
        let pos = self.position(sector);
        let base = out.len();
        out.reserve(sectors as usize * SECTOR);
        for s in sector..sector + sectors {
            match self.data.get(&s) {
                Some(b) => out.extend_from_slice(&b[..]),
                None => out.extend_from_slice(&[0u8; SECTOR]),
            }
        }
        let n = out.len() - base;
        let xfer = self.transfer_time(n);
        self.head = sector + sectors;
        self.stats.reads += 1;
        self.stats.bytes_read += n as u64;
        self.stats.positioning += pos;
        self.stats.transferring += xfer;
        Ok(xfer + pos)
    }

    fn check(&self, sector: u64, bytes: usize) -> Result<(), DiskError> {
        if self.failed {
            return Err(DiskError::Failed);
        }
        let end = sector + (bytes as u64).div_ceil(SECTOR as u64);
        if end > self.cfg.sectors {
            return Err(DiskError::OutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let data: Vec<u8> = (0..2 * SECTOR).map(|i| (i % 256) as u8).collect();
        d.write(100, &data).unwrap();
        let (back, _) = d.read(100, 2).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unwritten_sectors_read_zero() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let (data, _) = d.read(5, 1).unwrap();
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn sequential_access_skips_positioning() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let sector_data = vec![1u8; SECTOR];
        let t1 = d.write(1_000, &sector_data).unwrap();
        // Head is now at 1001; writing there is pure transfer.
        let t2 = d.write(1_001, &sector_data).unwrap();
        assert!(t2 < t1);
        assert_eq!(t2, d.transfer_time(SECTOR));
    }

    #[test]
    fn segment_io_keeps_seek_overhead_under_ten_percent() {
        // The paper's claim, measured: alternate 1 MiB reads and writes
        // at random-ish far-apart positions.
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let seg = vec![7u8; 1 << 20];
        let seg_sectors = (1u64 << 20) / SECTOR as u64;
        for i in 0..32u64 {
            let sector = (i * 37_993) % (d.config().sectors - seg_sectors);
            d.write(sector, &seg).unwrap();
        }
        let overhead = d.stats.seek_overhead();
        assert!(overhead < 0.10, "segment-sized I/O overhead {overhead:.3}");
        // And the effective rate stays ≥ 5 MB/s.
        assert!(
            d.stats.throughput() >= 5_000_000.0,
            "{:.0}",
            d.stats.throughput()
        );
    }

    #[test]
    fn small_random_io_drowns_in_seeks() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let block = vec![7u8; 4096];
        for i in 0..100u64 {
            let sector = (i * 999_983) % (d.config().sectors - 8);
            d.write(sector, &block).unwrap();
        }
        assert!(d.stats.seek_overhead() > 0.9, "{}", d.stats.seek_overhead());
        assert!(d.stats.throughput() < 1_000_000.0);
    }

    #[test]
    fn failed_disk_errors() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        d.write(0, &vec![1u8; SECTOR]).unwrap();
        d.fail();
        assert_eq!(
            d.write(0, &vec![1u8; SECTOR]).unwrap_err(),
            DiskError::Failed
        );
        assert_eq!(d.read(0, 1).unwrap_err(), DiskError::Failed);
        assert!(d.is_failed());
    }

    #[test]
    fn replace_clears_contents() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        d.write(0, &vec![9u8; SECTOR]).unwrap();
        d.fail();
        d.replace();
        assert!(!d.is_failed());
        let (data, _) = d.read(0, 1).unwrap();
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let last = d.config().sectors - 1;
        assert!(d.write(last, &vec![0u8; SECTOR]).is_ok());
        assert_eq!(
            d.write(last, &vec![0u8; 2 * SECTOR]).unwrap_err(),
            DiskError::OutOfRange
        );
    }

    #[test]
    #[should_panic(expected = "whole sectors only")]
    fn partial_sector_write_rejected() {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        let _ = d.write(0, &[1u8; 100]);
    }

    #[test]
    fn rotation_latency_from_rpm() {
        let cfg = DiskConfig::hp_1994();
        // 5400 RPM → 11.1 ms/rev → 5.56 ms half-rev.
        assert_eq!(cfg.avg_rotation(), 5_555_555);
    }
}
