//! Cleaning: the garbage-file algorithm and the Sprite-style baseline.
//!
//! "We are currently implementing a cleaning algorithm whose complexity
//! only depends on the number of segments to be cleaned and the amount
//! of 'garbage'. ... During normal operation of the file system, the
//! core maintains a garbage file. Every time a client write or delete
//! operation creates garbage, an entry describing the hole in the log
//! ... is appended to the garbage file. When the file system needs to be
//! cleaned, the garbage file is read and its entries are sorted by
//! segment number. Then, a single pass ... When cleaning is complete,
//! the garbage file is truncated. ... Allowing client operations to
//! continue during cleaning does not complicate the cleaning algorithm:
//! at the start of a cleaning operation, the current place in the
//! garbage file must be marked and cleaning uses only information before
//! the marker while new garbage is appended after it." (§5)
//!
//! The baseline is the Sprite-LFS approach: scan the utilization of
//! *every* segment in the file system to choose cleaning victims — cost
//! proportional to file-system size, which is exactly what the paper's
//! 10-terabyte goal rules out.

use std::collections::BTreeMap;

use crate::log::{FsError, GarbageEntry, LogFs, SEGMENT_BYTES};
use pegasus_sim::time::Ns;

/// Size of one garbage-file entry on disk.
pub const GARBAGE_ENTRY_BYTES: u64 = 16;
/// Size of one segment-summary block the Sprite cleaner must read.
pub const SUMMARY_BYTES: u64 = 8_192;

/// What a cleaning pass did and what it cost.
#[derive(Debug, Default, Clone)]
pub struct CleanReport {
    /// Garbage-file entries consumed (garbage-file cleaner) .
    pub entries_processed: usize,
    /// Segment summaries scanned (Sprite cleaner).
    pub summaries_scanned: usize,
    /// Segments freed.
    pub segments_cleaned: usize,
    /// Live bytes copied to the log head.
    pub live_bytes_moved: u64,
    /// Bytes of storage recovered.
    pub bytes_freed: u64,
    /// Virtual I/O time attributable to this pass.
    pub io_time: Ns,
}

/// Runs the Pegasus garbage-file cleaner over every hole recorded before
/// the call (the marker protocol: entries appended during the pass stay
/// for the next one).
///
/// Cost structure: one sequential read of the consumed prefix of the
/// garbage file, plus the copy-out of live bytes in the segments that
/// contained garbage. Nothing scales with the size of the file system.
pub fn clean_garbage_file(fs: &mut LogFs) -> Result<CleanReport, FsError> {
    let io_before = fs.io_time;
    let mut report = CleanReport::default();

    // Mark the current place in the garbage file.
    let mark = fs.garbage.len();
    report.entries_processed = mark;
    if mark == 0 {
        return Ok(report);
    }
    // One sequential read of the prefix.
    fs.charge_metadata_io(mark as u64 * GARBAGE_ENTRY_BYTES, true);

    // Sort the entries by segment number and group.
    let mut prefix: Vec<GarbageEntry> = fs.garbage[..mark].to_vec();
    prefix.sort_unstable_by_key(|e| (e.segment, e.seg_offset));
    let mut per_segment: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &prefix {
        *per_segment.entry(e.segment).or_insert(0) += e.len as u64;
    }

    // Single pass over the affected segments.
    for (&seg, _) in per_segment.iter() {
        let Some(info) = fs.segment_info().get(&seg).copied() else {
            continue; // already freed by an earlier pass, or still open
        };
        if info.live_bytes > 0 {
            for file in fs.files_in_segment(seg) {
                report.live_bytes_moved += fs.relocate_file_from_segment(file, seg)?;
            }
        }
        fs.release_segment(seg);
        report.segments_cleaned += 1;
        report.bytes_freed += SEGMENT_BYTES as u64;
    }

    // Truncate the consumed prefix; garbage added during the pass stays.
    fs.garbage.drain(..mark);
    report.io_time = fs.io_time - io_before;
    Ok(report)
}

/// Runs a Sprite-LFS-style cleaning pass: read every flushed segment's
/// summary to learn utilizations, then clean the emptiest segments until
/// `segments_wanted` have been freed.
pub fn clean_sprite(fs: &mut LogFs, segments_wanted: usize) -> Result<CleanReport, FsError> {
    let io_before = fs.io_time;
    let mut report = CleanReport::default();

    // The O(file-system size) part: one summary read per segment.
    let segs: Vec<(u64, u32)> = fs
        .segment_info()
        .iter()
        .map(|(&s, info)| (s, info.live_bytes))
        .collect();
    report.summaries_scanned = segs.len();
    for _ in &segs {
        fs.charge_metadata_io(SUMMARY_BYTES, true);
    }

    // Victims: lowest utilization first.
    let mut victims = segs;
    victims.sort_unstable_by_key(|&(s, live)| (live, s));
    for (seg, live) in victims.into_iter().take(segments_wanted) {
        if live > 0 {
            for file in fs.files_in_segment(seg) {
                report.live_bytes_moved += fs.relocate_file_from_segment(file, seg)?;
            }
        }
        fs.release_segment(seg);
        report.segments_cleaned += 1;
        report.bytes_freed += SEGMENT_BYTES as u64;
    }
    // The Sprite cleaner does not consume the garbage file, but the
    // holes it cleaned are now stale; drop entries pointing at freed
    // segments so later garbage-file passes skip them (they already do,
    // via the segment-info check, but this keeps the file small).
    report.io_time = fs.io_time - io_before;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use crate::log::FileClass;

    fn fs() -> LogFs {
        LogFs::new(DiskConfig::hp_1994())
    }

    fn data(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8) ^ tag).collect()
    }

    #[test]
    fn fully_dead_segment_freed_without_copying() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, &data(SEGMENT_BYTES, 1)).unwrap();
        f.sync().unwrap();
        f.delete(id).unwrap();
        let used_before = f.used_segments();
        let report = clean_garbage_file(&mut f).unwrap();
        assert_eq!(report.segments_cleaned, 1);
        assert_eq!(report.live_bytes_moved, 0, "dead segment needs no copy");
        assert!(f.used_segments() < used_before);
        assert!(f.garbage.is_empty());
    }

    #[test]
    fn live_data_survives_cleaning() {
        let mut f = fs();
        let dead = f.create(FileClass::Normal);
        let live = f.create(FileClass::Normal);
        f.append(dead, &data(600_000, 1)).unwrap();
        f.append(live, &data(300_000, 2)).unwrap();
        f.sync().unwrap();
        f.delete(dead).unwrap();
        let report = clean_garbage_file(&mut f).unwrap();
        assert!(report.segments_cleaned >= 1);
        assert_eq!(report.live_bytes_moved, 300_000);
        // The survivor reads back intact from its new home.
        let back = f.read(live, 0, 300_000).unwrap();
        assert_eq!(back, data(300_000, 2));
    }

    #[test]
    fn cleaned_segments_are_reused() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, &data(SEGMENT_BYTES, 1)).unwrap();
        f.sync().unwrap();
        let seg = f.pnode(id).unwrap().extents[0].segment;
        f.delete(id).unwrap();
        clean_garbage_file(&mut f).unwrap();
        // Write enough to claim the freed segment again (the first new
        // segment was already open before the clean; the second flush
        // draws from the free list).
        let id2 = f.create(FileClass::Normal);
        f.append(id2, &data(2 * SEGMENT_BYTES, 2)).unwrap();
        f.sync().unwrap();
        let segs: Vec<u64> = f
            .pnode(id2)
            .unwrap()
            .extents
            .iter()
            .map(|e| e.segment)
            .collect();
        assert!(
            segs.contains(&seg),
            "freed segment {seg} reused (got {segs:?})"
        );
    }

    #[test]
    fn marker_protocol_preserves_new_garbage() {
        let mut f = fs();
        let a = f.create(FileClass::Normal);
        let b = f.create(FileClass::Normal);
        f.append(a, &data(SEGMENT_BYTES, 1)).unwrap();
        f.append(b, &data(SEGMENT_BYTES, 2)).unwrap();
        f.sync().unwrap();
        f.delete(a).unwrap();
        let entries_before = f.garbage.len();
        // Concurrent client activity: delete b *after* the pass starts.
        // (We emulate by checking that entries appended during relocation
        // survive; here simply verify drain keeps the suffix.)
        let report = clean_garbage_file(&mut f).unwrap();
        assert_eq!(report.entries_processed, entries_before);
        f.delete(b).unwrap();
        assert!(!f.garbage.is_empty(), "new garbage awaits the next pass");
        let report2 = clean_garbage_file(&mut f).unwrap();
        assert!(report2.segments_cleaned >= 1);
    }

    #[test]
    fn garbage_cleaner_cost_independent_of_fs_size() {
        // Two file systems: one with 16 segments of cold data, one with
        // 160. Same garbage in each. The garbage-file cleaner must cost
        // (nearly) the same; the Sprite cleaner must scale ~10×.
        let build = |cold_segments: usize| -> LogFs {
            let mut f = fs();
            f.raid_mut().set_store(false); // timing only
            for i in 0..cold_segments {
                let id = f.create(FileClass::Normal);
                f.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
                let _ = i;
            }
            f.sync().unwrap();
            // One hot file that dies.
            let hot = f.create(FileClass::Normal);
            f.append(hot, &vec![0u8; SEGMENT_BYTES]).unwrap();
            f.sync().unwrap();
            f.delete(hot).unwrap();
            f
        };

        let mut small = build(16);
        let mut large = build(160);
        let r_small = clean_garbage_file(&mut small).unwrap();
        let r_large = clean_garbage_file(&mut large).unwrap();
        let ratio = r_large.io_time as f64 / r_small.io_time.max(1) as f64;
        assert!(
            ratio < 1.5,
            "garbage-file cleaning must not scale with FS size (ratio {ratio:.2})"
        );

        let mut small = build(16);
        let mut large = build(160);
        let s_small = clean_sprite(&mut small, 1).unwrap();
        let s_large = clean_sprite(&mut large, 1).unwrap();
        let sprite_ratio = s_large.io_time as f64 / s_small.io_time.max(1) as f64;
        assert!(
            sprite_ratio > 5.0,
            "sprite cleaning must scale with FS size (ratio {sprite_ratio:.2})"
        );
        assert_eq!(s_large.summaries_scanned, 161);
    }

    #[test]
    fn sprite_picks_emptiest_victims() {
        let mut f = fs();
        let nearly_dead = f.create(FileClass::Normal);
        let half = f.create(FileClass::Normal);
        f.append(nearly_dead, &data(SEGMENT_BYTES, 1)).unwrap();
        f.sync().unwrap();
        f.append(half, &data(SEGMENT_BYTES, 2)).unwrap();
        f.sync().unwrap();
        f.delete(nearly_dead).unwrap();
        let seg_dead = 0u64; // first flushed segment
        let report = clean_sprite(&mut f, 1).unwrap();
        assert_eq!(report.segments_cleaned, 1);
        assert_eq!(report.live_bytes_moved, 0, "picked the dead one");
        assert!(!f.segment_info().contains_key(&seg_dead));
    }

    #[test]
    fn empty_garbage_file_is_a_noop() {
        let mut f = fs();
        let report = clean_garbage_file(&mut f).unwrap();
        assert_eq!(report.segments_cleaned, 0);
        assert_eq!(report.io_time, 0);
    }

    #[test]
    fn cleaning_cost_proportional_to_garbage() {
        // Segments that are 70 % dead / 30 % live: cleaning N of them
        // copies N × 300 KB, so cost grows with the garbage, not with
        // anything else.
        let build_and_kill = |n: usize| -> CleanReport {
            let mut f = fs();
            f.raid_mut().set_store(false);
            let mut dead_ids = Vec::new();
            for _ in 0..n {
                let dead = f.create(FileClass::Normal);
                f.append(dead, &vec![0u8; 700 * 1024]).unwrap();
                let live = f.create(FileClass::Normal);
                f.append(live, &vec![0u8; SEGMENT_BYTES - 700 * 1024])
                    .unwrap();
                dead_ids.push(dead);
            }
            f.sync().unwrap();
            for id in dead_ids {
                f.delete(id).unwrap();
            }
            clean_garbage_file(&mut f).unwrap()
        };
        let r1 = build_and_kill(1);
        let r8 = build_and_kill(8);
        assert_eq!(r1.segments_cleaned, 1);
        assert_eq!(r8.segments_cleaned, 8);
        assert_eq!(r8.live_bytes_moved, 8 * r1.live_bytes_moved);
        let ratio = r8.io_time as f64 / r1.io_time as f64;
        assert!(ratio > 3.0 && ratio < 16.0, "ratio {ratio:.2}");
    }
}
