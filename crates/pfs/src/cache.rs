//! Caching for ordinary data — and why it fails for continuous media.
//!
//! "Locality of reference can be exploited by caching data in client
//! and/or server memory. ... This applies to naming data too, albeit
//! that directories can be cached more effectively when the semantics of
//! directory operations are exploited. ... In contrast, caching video
//! and audio is usually not a good idea: most video sequences ... are
//! larger than the cache, so, by the time a user has seen ... a video to
//! the end, the beginning has already been evicted from the (LRU)
//! cache." (§5)
//!
//! [`LruCache`] is the generic block cache; [`DirCache`] exploits
//! directory-operation semantics (inserts and removals update the cache
//! in place instead of invalidating it). The sequential-eviction
//! pathology is demonstrated in the tests and measured in experiment
//! E15.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used cache with exact LRU ordering.
///
/// # Examples
///
/// ```
/// use pegasus_pfs::cache::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.put("a", 1);
/// c.put("b", 2);
/// c.get(&"a");
/// c.put("c", 3); // evicts "b", the least recently used
/// assert!(c.get(&"b").is_none());
/// assert_eq!(c.get(&"a"), Some(&1));
/// ```
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    clock: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Consecutive misses since the last hit — the signature of a
    /// sequential scan wider than the cache.
    cold_run: u64,
    /// Sequential scans detected: each time the cold run grows past
    /// another full cache capacity of lookups, the caller is walking a
    /// working set the cache cannot hold (§5's continuous-media
    /// pathology). The counter makes the failure *observable*; the
    /// tiered cache (`crate::tier`) makes it *avoidable*.
    pub scans_detected: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            cold_run: 0,
            scans_detected: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = clock;
                self.hits += 1;
                self.cold_run = 0;
                Some(&*v)
            }
            None => {
                self.misses += 1;
                self.cold_run += 1;
                // A miss streak one capacity long means every resident
                // entry was evicted unused since the last hit: a scan.
                if self.cold_run.is_multiple_of(self.capacity as u64) {
                    self.scans_detected += 1;
                }
                None
            }
        }
    }

    /// Checks for `key` without recording a hit/miss or refreshing it.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Inserts `key → value`, evicting the least recently used entry if
    /// the cache is full.
    pub fn put(&mut self, key: K, value: V) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the minimum stamp.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (value, self.clock));
    }

    /// Removes `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A directory cache exploiting directory-operation semantics: names are
/// added and removed *in place* on create/unlink, so the cache never
/// needs wholesale invalidation and its hit rate survives mutation.
#[derive(Debug, Default)]
pub struct DirCache {
    entries: HashMap<(u64, String), u64>,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl DirCache {
    /// Creates an empty directory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `name` in directory `dir`.
    pub fn lookup(&mut self, dir: u64, name: &str) -> Option<u64> {
        match self.entries.get(&(dir, name.to_string())) {
            Some(&id) => {
                self.hits += 1;
                Some(id)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records that `name` now maps to `file` (create/rename semantics).
    pub fn insert(&mut self, dir: u64, name: &str, file: u64) {
        self.entries.insert((dir, name.to_string()), file);
    }

    /// Records that `name` was removed (unlink semantics).
    pub fn remove(&mut self, dir: u64, name: &str) {
        self.entries.remove(&(dir, name.to_string()));
    }

    /// Number of cached names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_and_miss() {
        let mut c = LruCache::new(4);
        c.put(1u32, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = LruCache::new(3);
        c.put(1, ());
        c.put(2, ());
        c.put(3, ());
        c.get(&1); // 2 is now LRU
        c.put(4, ());
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
        assert!(c.peek(&4).is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        // Ordinary file traffic: a hot working set re-referenced often.
        let mut c = LruCache::new(64);
        for round in 0..10 {
            for block in 0..32u32 {
                if c.get(&block).is_none() {
                    c.put(block, ());
                }
                let _ = round;
            }
        }
        assert!(c.hit_rate() > 0.85, "hit rate {:.2}", c.hit_rate());
    }

    #[test]
    fn sequential_scan_larger_than_cache_never_hits() {
        // The paper's pathology: stream a "video" of 2× the cache size,
        // twice. LRU evicts each block before its re-reference.
        let mut c = LruCache::new(100);
        let video_blocks = 200u32;
        for _pass in 0..2 {
            for b in 0..video_blocks {
                if c.get(&b).is_none() {
                    c.put(b, ());
                }
            }
        }
        assert_eq!(c.hits, 0, "cyclic sequential access defeats LRU entirely");
        assert_eq!(c.misses, 400);
        // The pathology is now *detected*: 400 consecutive misses over a
        // 100-entry cache is four full capacity-widths of cold scan.
        assert_eq!(c.scans_detected, 4, "sequential scan must be reported");
    }

    #[test]
    fn scan_detector_stays_quiet_on_ordinary_traffic() {
        let mut c = LruCache::new(64);
        for _round in 0..10 {
            for block in 0..32u32 {
                if c.get(&block).is_none() {
                    c.put(block, ());
                }
            }
        }
        assert_eq!(
            c.scans_detected, 0,
            "a cache-resident working set is not a scan"
        );
        // A hit resets the cold run: short miss bursts never add up to one.
        let mut c = LruCache::new(4);
        for i in 0..12u32 {
            let _ = c.get(&i);
            c.put(i, ());
            let _ = c.get(&i); // hit, resetting the run
        }
        assert_eq!(c.scans_detected, 0);
    }

    #[test]
    fn sequential_scan_smaller_than_cache_hits_second_pass() {
        let mut c = LruCache::new(300);
        for _pass in 0..2 {
            for b in 0..200u32 {
                if c.get(&b).is_none() {
                    c.put(b, ());
                }
            }
        }
        assert_eq!(c.hits, 200);
        assert_eq!(c.misses, 200);
    }

    #[test]
    fn dir_cache_semantic_updates() {
        let mut d = DirCache::new();
        d.insert(1, "paper.tex", 100);
        d.insert(1, "fig1.eps", 101);
        assert_eq!(d.lookup(1, "paper.tex"), Some(100));
        // Unlink updates in place — no invalidation of other names.
        d.remove(1, "paper.tex");
        assert_eq!(d.lookup(1, "paper.tex"), None);
        assert_eq!(d.lookup(1, "fig1.eps"), Some(101));
        assert_eq!(d.hits, 2);
        assert_eq!(d.misses, 1);
    }

    #[test]
    fn dir_cache_distinguishes_directories() {
        let mut d = DirCache::new();
        d.insert(1, "x", 100);
        d.insert(2, "x", 200);
        assert_eq!(d.lookup(1, "x"), Some(100));
        assert_eq!(d.lookup(2, "x"), Some(200));
    }

    #[test]
    #[should_panic(expected = "cache capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, ()>::new(0);
    }
}
