//! Checkpointing and recovery of the core layer's metadata.
//!
//! A log-structured file system's pnode map and segment table live in
//! memory and must be reconstructible after a crash. Following Sprite
//! LFS (§5 cites it as the model), the core periodically serializes
//! them into the log itself as a *checkpoint*; recovery reads the most
//! recent checkpoint back. (Roll-forward of post-checkpoint segments is
//! bounded by the checkpoint interval; the write-behind layer's client
//! copies cover the tail, per §5's reliability argument.)
//!
//! The serialized form is a small, versioned binary format — no external
//! serialization crates, consistent with the rest of the codec code in
//! this workspace.

use crate::log::{Extent, FileClass, FileId, FsError, LogFs, Pnode, SegmentInfo};

/// Magic number guarding checkpoint blobs.
const MAGIC: u32 = 0x5047_4350; // "PGCP"
/// Format version.
const VERSION: u16 = 1;

/// Errors from checkpoint encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Blob too short or inconsistent.
    Truncated,
    /// Magic number mismatch: not a checkpoint.
    BadMagic,
    /// Unknown version.
    BadVersion(u16),
    /// Underlying file-system error.
    Fs(FsError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unknown checkpoint version {v}"),
            CheckpointError::Fs(e) => write!(f, "fs error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<FsError> for CheckpointError {
    fn from(e: FsError) -> Self {
        CheckpointError::Fs(e)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn class_byte(c: FileClass) -> u8 {
    match c {
        FileClass::Normal => 0,
        FileClass::Continuous => 1,
    }
}

fn byte_class(b: u8) -> Result<FileClass, CheckpointError> {
    match b {
        0 => Ok(FileClass::Normal),
        1 => Ok(FileClass::Continuous),
        _ => Err(CheckpointError::Truncated),
    }
}

/// A decoded checkpoint: everything needed to rebuild the in-memory
/// state of the core layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// All live pnodes.
    pub pnodes: Vec<Pnode>,
    /// Segment bookkeeping: (segment, info).
    pub segments: Vec<(u64, SegmentInfo)>,
    /// The pnode-number allocator's next value.
    pub next_pnode: u64,
}

impl Checkpoint {
    /// Captures the current state of `fs`.
    pub fn capture(fs: &LogFs) -> Checkpoint {
        let mut pnodes: Vec<Pnode> = fs.pnodes_iter().cloned().collect();
        pnodes.sort_by_key(|p| p.id);
        let mut segments: Vec<(u64, SegmentInfo)> =
            fs.segment_info().iter().map(|(&s, &i)| (s, i)).collect();
        segments.sort_by_key(|&(s, _)| s);
        Checkpoint {
            pnodes,
            segments,
            next_pnode: fs.next_pnode_value(),
        }
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&MAGIC.to_be_bytes());
        v.extend_from_slice(&VERSION.to_be_bytes());
        v.extend_from_slice(&self.next_pnode.to_be_bytes());
        v.extend_from_slice(&(self.pnodes.len() as u32).to_be_bytes());
        for p in &self.pnodes {
            v.extend_from_slice(&p.id.0.to_be_bytes());
            v.push(class_byte(p.class));
            v.extend_from_slice(&p.size.to_be_bytes());
            v.extend_from_slice(&(p.extents.len() as u32).to_be_bytes());
            for e in &p.extents {
                v.extend_from_slice(&e.file_offset.to_be_bytes());
                v.extend_from_slice(&e.segment.to_be_bytes());
                v.extend_from_slice(&e.seg_offset.to_be_bytes());
                v.extend_from_slice(&e.len.to_be_bytes());
            }
        }
        v.extend_from_slice(&(self.segments.len() as u32).to_be_bytes());
        for (seg, info) in &self.segments {
            v.extend_from_slice(&seg.to_be_bytes());
            v.extend_from_slice(&info.live_bytes.to_be_bytes());
            v.push(class_byte(info.class));
        }
        v
    }

    /// Parses a checkpoint blob.
    pub fn decode(buf: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { buf, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let next_pnode = r.u64()?;
        let np = r.u32()? as usize;
        let mut pnodes = Vec::with_capacity(np.min(1 << 20));
        for _ in 0..np {
            let id = FileId(r.u64()?);
            let class = byte_class(r.take(1)?[0])?;
            let size = r.u64()?;
            let ne = r.u32()? as usize;
            let mut extents = Vec::with_capacity(ne.min(1 << 20));
            for _ in 0..ne {
                extents.push(Extent {
                    file_offset: r.u64()?,
                    segment: r.u64()?,
                    seg_offset: r.u32()?,
                    len: r.u32()?,
                });
            }
            pnodes.push(Pnode {
                id,
                class,
                size,
                extents,
            });
        }
        let ns = r.u32()? as usize;
        let mut segments = Vec::with_capacity(ns.min(1 << 20));
        for _ in 0..ns {
            let seg = r.u64()?;
            let live_bytes = r.u32()?;
            let class = byte_class(r.take(1)?[0])?;
            segments.push((seg, SegmentInfo { live_bytes, class }));
        }
        Ok(Checkpoint {
            pnodes,
            segments,
            next_pnode,
        })
    }
}

/// Writes a checkpoint of `fs` into the log itself (as a normal file)
/// and syncs. Returns the checkpoint file's id for the superblock to
/// reference.
pub fn write_checkpoint(fs: &mut LogFs) -> Result<FileId, CheckpointError> {
    let blob = Checkpoint::capture(fs).encode();
    let file = fs.create(FileClass::Normal);
    fs.append(file, &blob)?;
    fs.sync()?;
    Ok(file)
}

/// Recovers the in-memory state from the checkpoint stored in `file`,
/// replacing `fs`'s pnode and segment tables.
pub fn recover(fs: &mut LogFs, file: FileId) -> Result<(), CheckpointError> {
    let size = fs.pnode(file).ok_or(FsError::NoSuchFile)?.size;
    let blob = fs.read(file, 0, size as usize)?;
    let cp = Checkpoint::decode(&blob)?;
    fs.restore_from_checkpoint(&cp);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use crate::log::SEGMENT_BYTES;

    fn data(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8) ^ tag).collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let a = fs.create(FileClass::Normal);
        fs.append(a, &data(5000, 1)).unwrap();
        let b = fs.create(FileClass::Continuous);
        fs.append(b, &data(SEGMENT_BYTES + 7, 2)).unwrap();
        fs.sync().unwrap();
        let cp = Checkpoint::capture(&fs);
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn bad_blobs_rejected() {
        assert_eq!(
            Checkpoint::decode(&[]).unwrap_err(),
            CheckpointError::Truncated
        );
        assert_eq!(
            Checkpoint::decode(&[0u8; 32]).unwrap_err(),
            CheckpointError::BadMagic
        );
        let mut blob = Checkpoint {
            pnodes: vec![],
            segments: vec![],
            next_pnode: 1,
        }
        .encode();
        blob[5] = 99; // low byte of the big-endian version field
        assert_eq!(
            Checkpoint::decode(&blob).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
    }

    #[test]
    fn recovery_restores_files_after_memory_loss() {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let a = fs.create(FileClass::Normal);
        fs.append(a, &data(40_000, 3)).unwrap();
        let b = fs.create(FileClass::Continuous);
        fs.append(b, &data(70_000, 4)).unwrap();
        let cp_file = write_checkpoint(&mut fs).unwrap();
        // Simulate the server losing its in-memory tables; the on-disk
        // superblock remembers only where the checkpoint lives.
        fs.amnesia(cp_file);
        assert_eq!(fs.file_count(), 1);
        recover(&mut fs, cp_file).unwrap();
        assert_eq!(fs.read(a, 0, 40_000).unwrap(), data(40_000, 3));
        assert_eq!(fs.read(b, 0, 70_000).unwrap(), data(70_000, 4));
    }

    #[test]
    fn post_recovery_writes_work() {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let a = fs.create(FileClass::Normal);
        fs.append(a, &data(10_000, 5)).unwrap();
        let cp_file = write_checkpoint(&mut fs).unwrap();
        fs.amnesia(cp_file);
        recover(&mut fs, cp_file).unwrap();
        // New files allocate ids beyond the recovered allocator state.
        let c = fs.create(FileClass::Normal);
        assert!(c > a);
        fs.append(c, &data(1_000, 6)).unwrap();
        assert_eq!(fs.read(c, 0, 1_000).unwrap(), data(1_000, 6));
        assert_eq!(fs.read(a, 0, 10_000).unwrap(), data(10_000, 5));
    }

    #[test]
    fn checkpoint_includes_segment_accounting() {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        let a = fs.create(FileClass::Normal);
        fs.append(a, &data(SEGMENT_BYTES, 1)).unwrap();
        fs.sync().unwrap();
        let cp = Checkpoint::capture(&fs);
        assert!(!cp.segments.is_empty());
        let live: u64 = cp.segments.iter().map(|(_, i)| i.live_bytes as u64).sum();
        assert_eq!(live, SEGMENT_BYTES as u64);
    }
}
