//! The log-structured core layer.
//!
//! "The bottom layer of the Pegasus storage service is called the core
//! layer. It manages storage structures on secondary and tertiary
//! storage devices and carries out the actual I/O. Pegasus uses a
//! log-structured storage layout as was exemplified by Sprite LFS. The
//! log is segmented in megabyte segments. ... Normal file data ends up
//! in the log similarly to Sprite LFS. Continuous data, however, is
//! collected in separate segments, although their metadata (the inodes
//! or pnodes as we call them) are appended to the normal log." (§5)
//!
//! Every overwrite or delete appends a hole descriptor to the *garbage
//! file*; the cleaner in [`crate::cleaner`] consumes it.

use std::collections::HashMap;

use crate::disk::DiskConfig;
use crate::raid::{RaidArray, RaidError};
use pegasus_sim::time::Ns;

/// Segment (and stripe) size: one megabyte.
pub const SEGMENT_BYTES: usize = 1 << 20;

/// A file identifier — the pnode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// The two data classes the core separates into different segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Ordinary file data, written to the normal log.
    Normal,
    /// Continuous-media data, collected in separate segments.
    Continuous,
}

/// One contiguous run of a file's bytes within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset within the file.
    pub file_offset: u64,
    /// Segment holding the bytes.
    pub segment: u64,
    /// Offset within the segment.
    pub seg_offset: u32,
    /// Length in bytes.
    pub len: u32,
}

/// The pnode: Pegasus's inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pnode {
    /// The file's identity.
    pub id: FileId,
    /// Data class.
    pub class: FileClass,
    /// Current size in bytes.
    pub size: u64,
    /// Data extents in file order.
    pub extents: Vec<Extent>,
}

/// A hole left in the log by an overwrite or delete — one entry of the
/// garbage file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GarbageEntry {
    /// Segment containing the obsolete bytes.
    pub segment: u64,
    /// Offset of the hole within the segment.
    pub seg_offset: u32,
    /// Length of the hole.
    pub len: u32,
}

/// Bookkeeping per on-disk segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Bytes still referenced by some pnode.
    pub live_bytes: u32,
    /// Class of data collected in this segment.
    pub class: FileClass,
}

/// Errors from the core layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Unknown file.
    NoSuchFile,
    /// Read beyond end of file.
    BadRange,
    /// The log ran out of free segments.
    Full,
    /// An underlying array error.
    Raid(RaidError),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NoSuchFile => write!(f, "no such file"),
            FsError::BadRange => write!(f, "range outside file"),
            FsError::Full => write!(f, "log full"),
            FsError::Raid(e) => write!(f, "array error: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<RaidError> for FsError {
    fn from(e: RaidError) -> Self {
        FsError::Raid(e)
    }
}

struct OpenSegment {
    id: u64,
    buf: Vec<u8>,
}

/// Core-layer counters.
#[derive(Debug, Default, Clone)]
pub struct FsStats {
    /// Bytes appended by clients (excludes cleaning copies).
    pub bytes_written: u64,
    /// Bytes read by clients.
    pub bytes_read: u64,
    /// Segments flushed to the array.
    pub segments_flushed: u64,
    /// Bytes of live data copied by the cleaner.
    pub cleaner_moved: u64,
}

/// The log-structured file system core.
pub struct LogFs {
    raid: RaidArray,
    total_segments: u64,
    next_new_segment: u64,
    free: Vec<u64>,
    open_normal: OpenSegment,
    open_cm: OpenSegment,
    pnodes: HashMap<FileId, Pnode>,
    next_pnode: u64,
    segments: HashMap<u64, SegmentInfo>,
    /// Garbage declared against segments that have not flushed yet.
    open_deficit: HashMap<u64, u32>,
    /// The garbage file: appended on every overwrite/delete.
    pub garbage: Vec<GarbageEntry>,
    /// Virtual time spent on array I/O.
    pub io_time: Ns,
    /// Counters.
    pub stats: FsStats,
    /// Reused stripe buffer for array reads: a steady-state read path
    /// performs no per-read stripe allocations.
    stripe_scratch: Vec<u8>,
}

impl LogFs {
    /// Creates a file system over a fresh 4+1 array of `cfg` disks.
    pub fn new(cfg: DiskConfig) -> Self {
        let raid = RaidArray::new(cfg, SEGMENT_BYTES);
        let total_segments = raid.stripes();
        LogFs {
            raid,
            total_segments,
            next_new_segment: 2, // 0 and 1 for the two initial open segments
            free: Vec::new(),
            open_normal: OpenSegment {
                id: 0,
                buf: Vec::with_capacity(SEGMENT_BYTES),
            },
            open_cm: OpenSegment {
                id: 1,
                buf: Vec::with_capacity(SEGMENT_BYTES),
            },
            pnodes: HashMap::new(),
            next_pnode: 1,
            stripe_scratch: Vec::new(),
            segments: HashMap::new(),
            open_deficit: HashMap::new(),
            garbage: Vec::new(),
            io_time: 0,
            stats: FsStats::default(),
        }
    }

    /// Total segments on the array.
    pub fn total_segments(&self) -> u64 {
        self.total_segments
    }

    /// Segments currently holding flushed data.
    pub fn used_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segment bookkeeping table (for cleaners).
    pub fn segment_info(&self) -> &HashMap<u64, SegmentInfo> {
        &self.segments
    }

    /// Access to the array (fault injection in tests).
    pub fn raid_mut(&mut self) -> &mut RaidArray {
        &mut self.raid
    }

    /// Charges a metadata I/O against the log's clock: one positioning
    /// operation (if `random`) plus a sequential transfer of `bytes` on
    /// a single member disk. Used by cleaners for garbage-file reads and
    /// segment-summary scans.
    pub fn charge_metadata_io(&mut self, bytes: u64, random: bool) -> Ns {
        let cfg = self.raid.config();
        let pos = if random {
            (cfg.min_seek + cfg.max_seek) / 2 + cfg.avg_rotation()
        } else {
            0
        };
        let xfer = (bytes as u128 * 1_000_000_000u128 / cfg.transfer_rate as u128) as Ns;
        self.io_time += pos + xfer;
        pos + xfer
    }

    /// The pnode for `file`.
    pub fn pnode(&self, file: FileId) -> Option<&Pnode> {
        self.pnodes.get(&file)
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.pnodes.len()
    }

    /// Iterates over all live pnodes (checkpoint capture).
    pub fn pnodes_iter(&self) -> impl Iterator<Item = &Pnode> {
        self.pnodes.values()
    }

    /// The pnode-number allocator's next value (checkpoint capture).
    pub fn next_pnode_value(&self) -> u64 {
        self.next_pnode
    }

    /// Simulates a server crash that loses the in-memory metadata,
    /// keeping only the pnode of `keep` — the checkpoint file, whose
    /// location the on-disk superblock records in a real system.
    pub fn amnesia(&mut self, keep: FileId) {
        let kept = self.pnodes.remove(&keep);
        self.pnodes.clear();
        if let Some(k) = kept {
            self.pnodes.insert(keep, k);
        }
        self.segments.clear();
        self.open_deficit.clear();
        self.garbage.clear();
    }

    /// Replaces the metadata tables from a decoded checkpoint
    /// (recovery).
    pub fn restore_from_checkpoint(&mut self, cp: &crate::checkpoint::Checkpoint) {
        for p in &cp.pnodes {
            self.pnodes.insert(p.id, p.clone());
        }
        for &(seg, info) in &cp.segments {
            self.segments.insert(seg, info);
        }
        self.next_pnode = self.next_pnode.max(cp.next_pnode);
    }

    /// Creates an empty file of the given class.
    pub fn create(&mut self, class: FileClass) -> FileId {
        let id = FileId(self.next_pnode);
        self.next_pnode += 1;
        self.pnodes.insert(
            id,
            Pnode {
                id,
                class,
                size: 0,
                extents: Vec::new(),
            },
        );
        id
    }

    fn alloc_segment(&mut self) -> Result<u64, FsError> {
        if let Some(s) = self.free.pop() {
            return Ok(s);
        }
        if self.next_new_segment < self.total_segments {
            let s = self.next_new_segment;
            self.next_new_segment += 1;
            Ok(s)
        } else {
            Err(FsError::Full)
        }
    }

    fn flush_open(&mut self, class: FileClass) -> Result<(), FsError> {
        let open = match class {
            FileClass::Normal => &mut self.open_normal,
            FileClass::Continuous => &mut self.open_cm,
        };
        let mut buf = std::mem::take(&mut open.buf);
        let seg = open.id;
        let live = buf.len() as u32;
        buf.resize(SEGMENT_BYTES, 0);
        let t = self.raid.write_stripe(seg, &buf)?;
        self.io_time += t;
        self.stats.segments_flushed += 1;
        // Garbage declared while the segment was still open reduces its
        // live count on arrival.
        let deficit = self.open_deficit.remove(&seg).unwrap_or(0);
        self.segments.insert(
            seg,
            SegmentInfo {
                live_bytes: live.saturating_sub(deficit),
                class,
            },
        );
        let next = self.alloc_segment()?;
        let open = match class {
            FileClass::Normal => &mut self.open_normal,
            FileClass::Continuous => &mut self.open_cm,
        };
        open.id = next;
        open.buf.clear();
        Ok(())
    }

    /// Appends `data` to `file`, returning nothing; data reaches the
    /// array when its segment fills (or on [`LogFs::sync`]).
    pub fn append(&mut self, file: FileId, data: &[u8]) -> Result<(), FsError> {
        let class = self.pnodes.get(&file).ok_or(FsError::NoSuchFile)?.class;
        let mut written = 0usize;
        while written < data.len() {
            let (seg_id, buf_len) = {
                let open = match class {
                    FileClass::Normal => &self.open_normal,
                    FileClass::Continuous => &self.open_cm,
                };
                (open.id, open.buf.len())
            };
            let space = SEGMENT_BYTES - buf_len;
            let take = space.min(data.len() - written);
            {
                let open = match class {
                    FileClass::Normal => &mut self.open_normal,
                    FileClass::Continuous => &mut self.open_cm,
                };
                open.buf.extend_from_slice(&data[written..written + take]);
            }
            let pnode = self.pnodes.get_mut(&file).expect("checked above");
            // Merge with the previous extent when contiguous.
            let merged = pnode.extents.last_mut().is_some_and(|e| {
                if e.segment == seg_id
                    && e.seg_offset as usize + e.len as usize == buf_len
                    && e.file_offset + e.len as u64 == pnode.size
                {
                    e.len += take as u32;
                    true
                } else {
                    false
                }
            });
            if !merged {
                pnode.extents.push(Extent {
                    file_offset: pnode.size,
                    segment: seg_id,
                    seg_offset: buf_len as u32,
                    len: take as u32,
                });
            }
            pnode.size += take as u64;
            written += take;
            self.stats.bytes_written += take as u64;
            let full = match class {
                FileClass::Normal => self.open_normal.buf.len() == SEGMENT_BYTES,
                FileClass::Continuous => self.open_cm.buf.len() == SEGMENT_BYTES,
            };
            if full {
                self.flush_open(class)?;
            }
        }
        Ok(())
    }

    /// Forces both open segments to the array.
    pub fn sync(&mut self) -> Result<(), FsError> {
        if !self.open_normal.buf.is_empty() {
            self.flush_open(FileClass::Normal)?;
        }
        if !self.open_cm.buf.is_empty() {
            self.flush_open(FileClass::Continuous)?;
        }
        Ok(())
    }

    /// Reads `len` bytes of `file` starting at `offset`.
    pub fn read(&mut self, file: FileId, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let mut out = Vec::new();
        self.read_into(file, offset, len, &mut out)?;
        Ok(out)
    }

    /// [`LogFs::read`] into a caller-supplied buffer (cleared, then
    /// filled with exactly `len` bytes) — rate-guaranteed CM service
    /// reuses one buffer per scheduler so periodic reads allocate
    /// nothing at steady state.
    pub fn read_into(
        &mut self,
        file: FileId,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), FsError> {
        let pnode = self.pnodes.get(&file).ok_or(FsError::NoSuchFile)?.clone();
        if offset + len as u64 > pnode.size {
            return Err(FsError::BadRange);
        }
        out.clear();
        out.resize(len, 0);
        for ext in &pnode.extents {
            let ext_end = ext.file_offset + ext.len as u64;
            let want_end = offset + len as u64;
            if ext_end <= offset || ext.file_offset >= want_end {
                continue;
            }
            let from = offset.max(ext.file_offset);
            let to = want_end.min(ext_end);
            let seg_off = (ext.seg_offset as u64 + (from - ext.file_offset)) as usize;
            let n = (to - from) as usize;
            let dst = (from - offset) as usize;
            // In an open buffer, or on the array?
            let open = [&self.open_normal, &self.open_cm]
                .into_iter()
                .find(|o| o.id == ext.segment);
            if let Some(open) = open {
                out[dst..dst + n].copy_from_slice(&open.buf[seg_off..seg_off + n]);
            } else {
                let t = self
                    .raid
                    .read_stripe_into(ext.segment, &mut self.stripe_scratch)?;
                self.io_time += t;
                out[dst..dst + n].copy_from_slice(&self.stripe_scratch[seg_off..seg_off + n]);
            }
        }
        self.stats.bytes_read += len as u64;
        Ok(())
    }

    /// Reads `len` bytes of `file` into a buffer leased from `arena` —
    /// the server hands the caller a refcounted lease instead of a fresh
    /// allocation, so playback fan-out shares one copy of the data and
    /// the storage recycles buffers as consumers release them.
    pub fn read_leased(
        &mut self,
        file: FileId,
        offset: u64,
        len: usize,
        arena: &pegasus_sim::arena::Arena,
    ) -> Result<pegasus_sim::arena::FrameBuf, FsError> {
        let mut lease = arena.lease();
        self.read_into(file, offset, len, &mut lease)?;
        Ok(lease.freeze())
    }

    fn garbage_extents(&mut self, extents: &[Extent]) {
        for ext in extents {
            self.garbage.push(GarbageEntry {
                segment: ext.segment,
                seg_offset: ext.seg_offset,
                len: ext.len,
            });
            if let Some(info) = self.segments.get_mut(&ext.segment) {
                info.live_bytes = info.live_bytes.saturating_sub(ext.len);
            } else {
                // Hole in a still-open segment: remember the deficit and
                // apply it when the segment flushes.
                *self.open_deficit.entry(ext.segment).or_insert(0) += ext.len;
            }
        }
    }

    /// Truncates `file` to zero length, declaring every extent garbage.
    pub fn truncate(&mut self, file: FileId) -> Result<(), FsError> {
        let extents = {
            let p = self.pnodes.get_mut(&file).ok_or(FsError::NoSuchFile)?;
            p.size = 0;
            std::mem::take(&mut p.extents)
        };
        self.garbage_extents(&extents);
        Ok(())
    }

    /// Replaces `file`'s contents with `data` (the overwrite case of the
    /// paper: old extents become garbage).
    pub fn overwrite(&mut self, file: FileId, data: &[u8]) -> Result<(), FsError> {
        self.truncate(file)?;
        self.append(file, data)
    }

    /// Deletes `file`; all its extents become garbage.
    pub fn delete(&mut self, file: FileId) -> Result<(), FsError> {
        self.truncate(file)?;
        self.pnodes.remove(&file);
        Ok(())
    }

    /// Live-byte fraction of flushed segments.
    pub fn utilization(&self) -> f64 {
        if self.segments.is_empty() {
            return 0.0;
        }
        let live: u64 = self.segments.values().map(|s| s.live_bytes as u64).sum();
        live as f64 / (self.segments.len() as u64 * SEGMENT_BYTES as u64) as f64
    }

    /// Frees a cleaned segment (cleaner use).
    pub(crate) fn release_segment(&mut self, seg: u64) {
        self.segments.remove(&seg);
        self.free.push(seg);
    }

    /// Files owning extents in `seg` (cleaner use — in the real system
    /// this comes from the segment summary block).
    pub(crate) fn files_in_segment(&self, seg: u64) -> Vec<FileId> {
        let mut out: Vec<FileId> = self
            .pnodes
            .values()
            .filter(|p| p.extents.iter().any(|e| e.segment == seg))
            .map(|p| p.id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Moves every live extent of `file` out of `seg` by re-appending
    /// its data (cleaner use). Returns bytes moved.
    pub(crate) fn relocate_file_from_segment(
        &mut self,
        file: FileId,
        seg: u64,
    ) -> Result<u64, FsError> {
        let pnode = self.pnodes.get(&file).ok_or(FsError::NoSuchFile)?.clone();
        let mut moved = 0u64;
        // Read the whole file, rewrite it. (A finer implementation would
        // move only the affected extents; whole-file rewrite keeps the
        // extent algebra simple and the I/O accounting honest within a
        // factor reflecting file size.)
        if pnode.extents.iter().any(|e| e.segment == seg) {
            let data = self.read(file, 0, pnode.size as usize)?;
            // Old extents become garbage…
            let old = {
                let p = self.pnodes.get_mut(&file).expect("exists");
                p.size = 0;
                std::mem::take(&mut p.extents)
            };
            // …but without re-entering them in the garbage file: the
            // cleaner is consuming garbage, not creating more for the
            // segment being freed. Holes in *other* segments do need
            // recording.
            for ext in &old {
                if ext.segment != seg {
                    self.garbage.push(GarbageEntry {
                        segment: ext.segment,
                        seg_offset: ext.seg_offset,
                        len: ext.len,
                    });
                }
                if let Some(info) = self.segments.get_mut(&ext.segment) {
                    info.live_bytes = info.live_bytes.saturating_sub(ext.len);
                } else {
                    *self.open_deficit.entry(ext.segment).or_insert(0) += ext.len;
                }
            }
            moved = data.len() as u64;
            self.stats.cleaner_moved += moved;
            self.append(file, &data)?;
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> LogFs {
        LogFs::new(DiskConfig::hp_1994())
    }

    fn bytes(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_add(tag)).collect()
    }

    #[test]
    fn append_and_read_small() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, b"hello pegasus").unwrap();
        let back = f.read(id, 0, 13).unwrap();
        assert_eq!(back, b"hello pegasus");
        assert_eq!(f.pnode(id).unwrap().size, 13);
    }

    #[test]
    fn read_spanning_segments() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        let data = bytes(3 * SEGMENT_BYTES / 2, 7); // 1.5 segments
        f.append(id, &data).unwrap();
        let back = f.read(id, 0, data.len()).unwrap();
        assert_eq!(back, data);
        // Cross-boundary slice.
        let back = f.read(id, SEGMENT_BYTES as u64 - 10, 20).unwrap();
        assert_eq!(back, data[SEGMENT_BYTES - 10..SEGMENT_BYTES + 10]);
    }

    #[test]
    fn read_after_sync_hits_the_array() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        let data = bytes(1000, 3);
        f.append(id, &data).unwrap();
        f.sync().unwrap();
        assert!(f.stats.segments_flushed >= 1);
        let back = f.read(id, 0, 1000).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn cm_and_normal_data_in_separate_segments() {
        let mut f = fs();
        let n = f.create(FileClass::Normal);
        let c = f.create(FileClass::Continuous);
        f.append(n, &bytes(100, 1)).unwrap();
        f.append(c, &bytes(100, 2)).unwrap();
        let n_seg = f.pnode(n).unwrap().extents[0].segment;
        let c_seg = f.pnode(c).unwrap().extents[0].segment;
        assert_ne!(n_seg, c_seg, "continuous data collected separately");
    }

    #[test]
    fn overwrite_creates_garbage() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, &bytes(5000, 1)).unwrap();
        f.sync().unwrap();
        assert!(f.garbage.is_empty());
        f.overwrite(id, &bytes(3000, 2)).unwrap();
        assert!(!f.garbage.is_empty());
        let hole: u32 = f.garbage.iter().map(|g| g.len).sum();
        assert_eq!(hole, 5000);
        let back = f.read(id, 0, 3000).unwrap();
        assert_eq!(back, bytes(3000, 2));
    }

    #[test]
    fn delete_garbages_everything_and_removes_pnode() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, &bytes(4096, 1)).unwrap();
        f.sync().unwrap();
        f.delete(id).unwrap();
        assert_eq!(f.read(id, 0, 1).unwrap_err(), FsError::NoSuchFile);
        assert_eq!(f.garbage.iter().map(|g| g.len).sum::<u32>(), 4096);
        assert_eq!(f.file_count(), 0);
    }

    #[test]
    fn live_bytes_tracked() {
        let mut f = fs();
        let a = f.create(FileClass::Normal);
        let b = f.create(FileClass::Normal);
        f.append(a, &bytes(1000, 1)).unwrap();
        f.append(b, &bytes(2000, 2)).unwrap();
        f.sync().unwrap();
        let seg = f.pnode(a).unwrap().extents[0].segment;
        assert_eq!(f.segment_info()[&seg].live_bytes, 3000);
        f.delete(a).unwrap();
        assert_eq!(f.segment_info()[&seg].live_bytes, 2000);
    }

    #[test]
    fn bad_range_rejected() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        f.append(id, &bytes(10, 0)).unwrap();
        assert_eq!(f.read(id, 5, 10).unwrap_err(), FsError::BadRange);
    }

    #[test]
    fn sequential_write_throughput_near_array_rate() {
        let mut f = fs();
        let id = f.create(FileClass::Continuous);
        let chunk = bytes(SEGMENT_BYTES, 5);
        for _ in 0..32 {
            f.append(id, &chunk).unwrap();
        }
        f.sync().unwrap();
        let rate = f.stats.bytes_written as f64 / (f.io_time as f64 / 1e9);
        assert!(rate > 18_000_000.0, "log write rate {:.1} MB/s", rate / 1e6);
    }

    #[test]
    fn extents_merge_when_contiguous() {
        let mut f = fs();
        let id = f.create(FileClass::Normal);
        for i in 0..10 {
            f.append(id, &bytes(100, i)).unwrap();
        }
        assert_eq!(
            f.pnode(id).unwrap().extents.len(),
            1,
            "contiguous appends merge"
        );
    }

    #[test]
    fn many_files_interleaved() {
        let mut f = fs();
        let ids: Vec<FileId> = (0..20).map(|_| f.create(FileClass::Normal)).collect();
        for round in 0..5u8 {
            for (k, id) in ids.iter().enumerate() {
                f.append(*id, &bytes(997, round.wrapping_mul(k as u8)))
                    .unwrap();
            }
        }
        f.sync().unwrap();
        for (k, id) in ids.iter().enumerate() {
            let data = f.read(*id, 0, 997 * 5).unwrap();
            for round in 0..5u8 {
                let want = bytes(997, round.wrapping_mul(k as u8));
                assert_eq!(
                    &data[round as usize * 997..(round as usize + 1) * 997],
                    &want[..]
                );
            }
        }
    }

    #[test]
    fn utilization_reflects_deletion() {
        let mut f = fs();
        let a = f.create(FileClass::Normal);
        f.append(a, &bytes(SEGMENT_BYTES, 1)).unwrap();
        f.sync().unwrap();
        assert!(f.utilization() > 0.99);
        f.delete(a).unwrap();
        assert!(f.utilization() < 0.01);
    }
}
