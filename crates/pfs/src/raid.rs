//! Segment striping with parity (RAID).
//!
//! "Each segment is striped across four disks. A fifth disk is used as a
//! parity disk and allows recovery from disk errors. ... Striping over
//! four disks makes a total bandwidth of 20 MB per second possible."
//! (§5)
//!
//! A [`RaidArray`] stripes each logical segment write over its data
//! disks and writes XOR parity to the parity disk; since the five disks
//! operate in parallel, the stripe's duration is the *maximum* of the
//! individual operations — which is how four 5 MB/s spindles become a
//! 20 MB/s log. Any single failed disk can be reconstructed from the
//! others.

use crate::disk::{DiskConfig, DiskError, SimDisk, SECTOR};
use pegasus_sim::time::Ns;

/// Number of data disks a segment is striped across.
pub const DATA_DISKS: usize = 4;

/// A 4+1 parity array of simulated disks.
pub struct RaidArray {
    disks: Vec<SimDisk>, // DATA_DISKS data + 1 parity
    chunk_bytes: usize,
}

/// Errors surfaced by the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidError {
    /// More than one disk has failed: data is unrecoverable.
    TooManyFailures,
    /// An underlying disk error other than fail-stop.
    Disk(DiskError),
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::TooManyFailures => write!(f, "more than one disk failed"),
            RaidError::Disk(e) => write!(f, "disk error: {e}"),
        }
    }
}

impl std::error::Error for RaidError {}

impl From<DiskError> for RaidError {
    fn from(e: DiskError) -> Self {
        RaidError::Disk(e)
    }
}

impl RaidArray {
    /// Creates an array of five identical disks striping stripes of
    /// `stripe_bytes` (must divide evenly by [`DATA_DISKS`] × sector).
    pub fn new(cfg: DiskConfig, stripe_bytes: usize) -> Self {
        assert_eq!(
            stripe_bytes % (DATA_DISKS * SECTOR),
            0,
            "stripe must be a whole number of sectors per disk"
        );
        RaidArray {
            disks: (0..=DATA_DISKS).map(|_| SimDisk::new(cfg)).collect(),
            chunk_bytes: stripe_bytes / DATA_DISKS,
        }
    }

    /// Bytes each stripe stores (excluding parity).
    pub fn stripe_bytes(&self) -> usize {
        self.chunk_bytes * DATA_DISKS
    }

    /// Number of stripes the array can hold.
    pub fn stripes(&self) -> u64 {
        self.disks[0].config().sectors / (self.chunk_bytes / SECTOR) as u64
    }

    /// Access to an individual disk (fault injection, stats).
    pub fn disk_mut(&mut self, i: usize) -> &mut SimDisk {
        &mut self.disks[i]
    }

    /// Geometry of the member disks.
    pub fn config(&self) -> DiskConfig {
        self.disks[0].config()
    }

    /// Disables content retention on every member disk (see
    /// [`SimDisk::set_store`]).
    pub fn set_store(&mut self, store: bool) {
        for d in &mut self.disks {
            d.set_store(store);
        }
    }

    /// Aggregate positioning + transfer time across all disks.
    pub fn total_disk_time(&self) -> Ns {
        self.disks
            .iter()
            .map(|d| d.stats.positioning + d.stats.transferring)
            .sum()
    }

    fn chunk_sectors(&self) -> u64 {
        (self.chunk_bytes / SECTOR) as u64
    }

    fn xor_parity(&self, chunks: &[&[u8]]) -> Vec<u8> {
        let mut parity = vec![0u8; self.chunk_bytes];
        for chunk in chunks {
            for (p, b) in parity.iter_mut().zip(chunk.iter()) {
                *p ^= b;
            }
        }
        parity
    }

    fn failed_count(&self) -> usize {
        self.disks.iter().filter(|d| d.is_failed()).count()
    }

    /// Writes one full stripe; returns the stripe duration (the slowest
    /// disk, as they run in parallel). Writing with one failed disk is
    /// allowed (degraded mode: that chunk is simply not stored, but
    /// remains reconstructible).
    pub fn write_stripe(&mut self, stripe: u64, data: &[u8]) -> Result<Ns, RaidError> {
        assert_eq!(data.len(), self.stripe_bytes(), "whole stripes only");
        if self.failed_count() > 1 {
            return Err(RaidError::TooManyFailures);
        }
        let sector = stripe * self.chunk_sectors();
        let chunks: Vec<&[u8]> = data.chunks(self.chunk_bytes).collect();
        let parity = self.xor_parity(&chunks);
        let mut max_t = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            match self.disks[i].write(sector, chunk) {
                Ok(t) => max_t = max_t.max(t),
                Err(DiskError::Failed) => {} // degraded write
                Err(e) => return Err(e.into()),
            }
        }
        match self.disks[DATA_DISKS].write(sector, &parity) {
            Ok(t) => max_t = max_t.max(t),
            Err(DiskError::Failed) => {}
            Err(e) => return Err(e.into()),
        }
        Ok(max_t)
    }

    /// Reads one full stripe, reconstructing through parity if a single
    /// data disk has failed. Returns the data and the duration.
    pub fn read_stripe(&mut self, stripe: u64) -> Result<(Vec<u8>, Ns), RaidError> {
        let mut out = Vec::with_capacity(self.stripe_bytes());
        let t = self.read_stripe_into(stripe, &mut out)?;
        Ok((out, t))
    }

    /// [`RaidArray::read_stripe`] into a caller-supplied buffer
    /// (cleared, then filled with exactly one stripe) — the log layer
    /// keeps one stripe scratch so per-read stripe allocations
    /// disappear from the storage hot path.
    pub fn read_stripe_into(&mut self, stripe: u64, out: &mut Vec<u8>) -> Result<Ns, RaidError> {
        if self.failed_count() > 1 {
            return Err(RaidError::TooManyFailures);
        }
        let sector = stripe * self.chunk_sectors();
        let n = self.chunk_sectors();
        out.clear();
        let mut max_t = 0;
        let mut missing: Option<usize> = None;
        for i in 0..DATA_DISKS {
            match self.disks[i].read_into(sector, n, out) {
                Ok(t) => max_t = max_t.max(t),
                Err(DiskError::Failed) => {
                    missing = Some(i);
                    out.resize(out.len() + self.chunk_bytes, 0);
                }
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(miss) = missing {
            // Reconstruct the missing chunk in place from parity.
            let (parity, t) = self.disks[DATA_DISKS].read(sector, n)?;
            max_t = max_t.max(t);
            let cb = self.chunk_bytes;
            let (pre, rest) = out.split_at_mut(miss * cb);
            let (slot, post) = rest.split_at_mut(cb);
            slot.copy_from_slice(&parity);
            for chunk in pre.chunks(cb).chain(post.chunks(cb)) {
                for (s, b) in slot.iter_mut().zip(chunk.iter()) {
                    *s ^= b;
                }
            }
        }
        Ok(max_t)
    }

    /// Rebuilds a replaced disk from the surviving four, stripe by
    /// stripe over `stripes` stripes. Returns the total rebuild time.
    pub fn rebuild_disk(&mut self, replaced: usize, stripes: u64) -> Result<Ns, RaidError> {
        assert!(replaced <= DATA_DISKS);
        if self.failed_count() > 0 {
            return Err(RaidError::TooManyFailures);
        }
        let n = self.chunk_sectors();
        let mut total = 0;
        for stripe in 0..stripes {
            let sector = stripe * n;
            let mut acc = vec![0u8; self.chunk_bytes];
            let mut max_t = 0;
            for i in 0..=DATA_DISKS {
                if i == replaced {
                    continue;
                }
                let (d, t) = self.disks[i].read(sector, n)?;
                max_t = max_t.max(t);
                for (a, b) in acc.iter_mut().zip(d.iter()) {
                    *a ^= b;
                }
            }
            total += max_t + self.disks[replaced].write(sector, &acc)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: usize = 1 << 20;

    fn array() -> RaidArray {
        RaidArray::new(DiskConfig::hp_1994(), MIB)
    }

    fn pattern(stripe: u64) -> Vec<u8> {
        (0..MIB)
            .map(|i| ((i as u64 + stripe * 13) % 251) as u8)
            .collect()
    }

    #[test]
    fn stripe_roundtrip() {
        let mut r = array();
        let data = pattern(0);
        r.write_stripe(0, &data).unwrap();
        let (back, _) = r.read_stripe(0).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn parallel_stripe_beats_serial_by_nearly_four() {
        // One disk writing 1 MiB vs the array writing 1 MiB.
        let mut single = SimDisk::new(DiskConfig::hp_1994());
        let data = pattern(0);
        let t_single = single.write(0, &data).unwrap();
        let mut r = array();
        let t_stripe = r.write_stripe(0, &data).unwrap();
        let speedup = t_single as f64 / t_stripe as f64;
        assert!(speedup > 3.0, "speedup {speedup:.2}");
    }

    #[test]
    fn sequential_log_hits_20mb_per_second() {
        // The paper's 20 MB/s: stream 64 MiB of stripes sequentially.
        let mut r = array();
        let data = pattern(1);
        let mut total: Ns = 0;
        for stripe in 0..64 {
            total += r.write_stripe(stripe, &data).unwrap();
        }
        let bytes = 64.0 * MIB as f64;
        let rate = bytes / (total as f64 / 1e9);
        assert!(
            rate >= 20_000_000.0,
            "sequential striped rate {:.1} MB/s",
            rate / 1e6
        );
    }

    #[test]
    fn single_data_disk_failure_reconstructs() {
        let mut r = array();
        let data = pattern(2);
        r.write_stripe(3, &data).unwrap();
        r.disk_mut(1).fail();
        let (back, _) = r.read_stripe(3).unwrap();
        assert_eq!(back, data, "parity reconstruction must be exact");
    }

    #[test]
    fn parity_disk_failure_harmless_for_reads() {
        let mut r = array();
        let data = pattern(3);
        r.write_stripe(0, &data).unwrap();
        r.disk_mut(DATA_DISKS).fail();
        let (back, _) = r.read_stripe(0).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn double_failure_unrecoverable() {
        let mut r = array();
        r.write_stripe(0, &pattern(0)).unwrap();
        r.disk_mut(0).fail();
        r.disk_mut(2).fail();
        assert_eq!(r.read_stripe(0).unwrap_err(), RaidError::TooManyFailures);
        assert_eq!(
            r.write_stripe(1, &pattern(1)).unwrap_err(),
            RaidError::TooManyFailures
        );
    }

    #[test]
    fn degraded_write_then_recover() {
        let mut r = array();
        r.disk_mut(2).fail();
        let data = pattern(4);
        r.write_stripe(5, &data).unwrap(); // degraded write
        let (back, _) = r.read_stripe(5).unwrap(); // reconstruct chunk 2
        assert_eq!(back, data);
    }

    #[test]
    fn rebuild_restores_replaced_disk() {
        let mut r = array();
        let stripes = 4u64;
        for s in 0..stripes {
            r.write_stripe(s, &pattern(s)).unwrap();
        }
        r.disk_mut(1).fail();
        r.disk_mut(1).replace();
        r.rebuild_disk(1, stripes).unwrap();
        // All data intact and the rebuilt disk participates again.
        for s in 0..stripes {
            let (back, _) = r.read_stripe(s).unwrap();
            assert_eq!(back, pattern(s), "stripe {s}");
        }
    }

    #[test]
    fn rebuilt_parity_disk_consistent() {
        let mut r = array();
        r.write_stripe(0, &pattern(9)).unwrap();
        r.disk_mut(DATA_DISKS).fail();
        r.disk_mut(DATA_DISKS).replace();
        r.rebuild_disk(DATA_DISKS, 1).unwrap();
        // Now fail a data disk: parity must reconstruct it.
        r.disk_mut(0).fail();
        let (back, _) = r.read_stripe(0).unwrap();
        assert_eq!(back, pattern(9));
    }

    #[test]
    #[should_panic(expected = "whole stripes only")]
    fn partial_stripe_rejected() {
        let mut r = array();
        let _ = r.write_stripe(0, &vec![0u8; MIB - 1]);
    }
}
