//! The v-node interface.
//!
//! "A Unix v-node interface is installed which allows the storage system
//! to be used as a Unix file system." (§5) This module provides that
//! thin layer: hierarchical directories with name lookup over the
//! log-structured core, exercising the [`crate::cache::DirCache`] for
//! the naming-data caching the paper mentions.

use std::collections::BTreeMap;

use crate::cache::DirCache;
use crate::log::{FileClass, FileId, FsError, LogFs};

/// A directory identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirId(pub u64);

/// A directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEntry {
    /// A regular file.
    File(FileId),
    /// A subdirectory.
    Dir(DirId),
}

/// Errors from the v-node layer (superset of core errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VnodeError {
    /// A path component was not found.
    NotFound(String),
    /// The name already exists.
    Exists(String),
    /// A file was used as a directory or vice versa.
    NotADirectory(String),
    /// Directory not empty on rmdir.
    NotEmpty(String),
    /// Underlying core error.
    Fs(FsError),
}

impl std::fmt::Display for VnodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VnodeError::NotFound(n) => write!(f, "{n}: not found"),
            VnodeError::Exists(n) => write!(f, "{n}: already exists"),
            VnodeError::NotADirectory(n) => write!(f, "{n}: not a directory"),
            VnodeError::NotEmpty(n) => write!(f, "{n}: directory not empty"),
            VnodeError::Fs(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for VnodeError {}

impl From<FsError> for VnodeError {
    fn from(e: FsError) -> Self {
        VnodeError::Fs(e)
    }
}

/// File attributes (`getattr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Size in bytes.
    pub size: u64,
    /// Data class.
    pub class: FileClass,
}

struct Directory {
    entries: BTreeMap<String, DirEntry>,
}

/// The v-node file system: paths and directories over [`LogFs`].
pub struct VnodeFs {
    /// The core layer underneath.
    pub fs: LogFs,
    dirs: Vec<Directory>,
    /// Directory lookup cache (semantic, per §5).
    pub dcache: DirCache,
}

impl VnodeFs {
    /// Creates an empty tree over `fs`; directory 0 is the root.
    pub fn new(fs: LogFs) -> Self {
        VnodeFs {
            fs,
            dirs: vec![Directory {
                entries: BTreeMap::new(),
            }],
            dcache: DirCache::new(),
        }
    }

    /// The root directory.
    pub fn root(&self) -> DirId {
        DirId(0)
    }

    fn dir(&self, d: DirId) -> &Directory {
        &self.dirs[d.0 as usize]
    }

    /// Splits a path into components.
    fn components(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    /// Resolves the directory containing the last component of `path`,
    /// returning (dir, last component).
    fn resolve_parent<'p>(&mut self, path: &'p str) -> Result<(DirId, &'p str), VnodeError> {
        let comps = Self::components(path);
        let Some((&last, parents)) = comps.split_last() else {
            return Err(VnodeError::NotFound(path.to_string()));
        };
        let mut cur = self.root();
        for &c in parents {
            let entry = self.lookup_entry(cur, c)?;
            match entry {
                DirEntry::Dir(d) => cur = d,
                DirEntry::File(_) => return Err(VnodeError::NotADirectory(c.to_string())),
            }
        }
        Ok((cur, last))
    }

    fn lookup_entry(&mut self, dir: DirId, name: &str) -> Result<DirEntry, VnodeError> {
        // Try the semantic cache first (only files are cached).
        if let Some(id) = self.dcache.lookup(dir.0, name) {
            return Ok(DirEntry::File(FileId(id)));
        }
        match self.dir(dir).entries.get(name) {
            Some(&e) => {
                if let DirEntry::File(f) = e {
                    self.dcache.insert(dir.0, name, f.0);
                }
                Ok(e)
            }
            None => Err(VnodeError::NotFound(name.to_string())),
        }
    }

    /// Creates a regular file at `path`.
    pub fn create(&mut self, path: &str, class: FileClass) -> Result<FileId, VnodeError> {
        let (dir, name) = self.resolve_parent(path)?;
        if self.dir(dir).entries.contains_key(name) {
            return Err(VnodeError::Exists(name.to_string()));
        }
        let id = self.fs.create(class);
        self.dirs[dir.0 as usize]
            .entries
            .insert(name.to_string(), DirEntry::File(id));
        self.dcache.insert(dir.0, name, id.0);
        Ok(id)
    }

    /// Creates a directory at `path`.
    pub fn mkdir(&mut self, path: &str) -> Result<DirId, VnodeError> {
        let (dir, name) = self.resolve_parent(path)?;
        if self.dir(dir).entries.contains_key(name) {
            return Err(VnodeError::Exists(name.to_string()));
        }
        let id = DirId(self.dirs.len() as u64);
        self.dirs.push(Directory {
            entries: BTreeMap::new(),
        });
        self.dirs[dir.0 as usize]
            .entries
            .insert(name.to_string(), DirEntry::Dir(id));
        Ok(id)
    }

    /// Looks a file up by path.
    pub fn open(&mut self, path: &str) -> Result<FileId, VnodeError> {
        let (dir, name) = self.resolve_parent(path)?;
        match self.lookup_entry(dir, name)? {
            DirEntry::File(f) => Ok(f),
            DirEntry::Dir(_) => Err(VnodeError::NotADirectory(name.to_string())),
        }
    }

    /// Appends to a file by path.
    pub fn write(&mut self, path: &str, data: &[u8]) -> Result<(), VnodeError> {
        let id = self.open(path)?;
        self.fs.append(id, data)?;
        Ok(())
    }

    /// Reads from a file by path.
    pub fn read(&mut self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, VnodeError> {
        let id = self.open(path)?;
        Ok(self.fs.read(id, offset, len)?)
    }

    /// Attributes of a file.
    pub fn getattr(&mut self, path: &str) -> Result<Attr, VnodeError> {
        let id = self.open(path)?;
        let p = self.fs.pnode(id).ok_or(FsError::NoSuchFile)?;
        Ok(Attr {
            size: p.size,
            class: p.class,
        })
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), VnodeError> {
        let (dir, name) = self.resolve_parent(path)?;
        match self.dir(dir).entries.get(name) {
            Some(DirEntry::File(f)) => {
                let f = *f;
                self.fs.delete(f)?;
                self.dirs[dir.0 as usize].entries.remove(name);
                self.dcache.remove(dir.0, name);
                Ok(())
            }
            Some(DirEntry::Dir(_)) => Err(VnodeError::NotADirectory(name.to_string())),
            None => Err(VnodeError::NotFound(name.to_string())),
        }
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), VnodeError> {
        let (dir, name) = self.resolve_parent(path)?;
        match self.dir(dir).entries.get(name) {
            Some(DirEntry::Dir(d)) => {
                if !self.dir(*d).entries.is_empty() {
                    return Err(VnodeError::NotEmpty(name.to_string()));
                }
                self.dirs[dir.0 as usize].entries.remove(name);
                Ok(())
            }
            Some(DirEntry::File(_)) => Err(VnodeError::NotADirectory(name.to_string())),
            None => Err(VnodeError::NotFound(name.to_string())),
        }
    }

    /// Lists a directory's names.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, VnodeError> {
        let dir = if Self::components(path).is_empty() {
            self.root()
        } else {
            let (parent, name) = self.resolve_parent(path)?;
            match self.lookup_entry(parent, name)? {
                DirEntry::Dir(d) => d,
                DirEntry::File(_) => return Err(VnodeError::NotADirectory(name.to_string())),
            }
        };
        Ok(self.dir(dir).entries.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn vfs() -> VnodeFs {
        VnodeFs::new(LogFs::new(DiskConfig::hp_1994()))
    }

    #[test]
    fn create_write_read() {
        let mut v = vfs();
        v.mkdir("/etc").unwrap();
        v.create("/etc/motd", FileClass::Normal).unwrap();
        v.write("/etc/motd", b"welcome to pegasus").unwrap();
        let back = v.read("/etc/motd", 0, 18).unwrap();
        assert_eq!(back, b"welcome to pegasus");
    }

    #[test]
    fn nested_directories() {
        let mut v = vfs();
        v.mkdir("/usr").unwrap();
        v.mkdir("/usr/local").unwrap();
        v.mkdir("/usr/local/lib").unwrap();
        v.create("/usr/local/lib/tex.fmt", FileClass::Normal)
            .unwrap();
        v.write("/usr/local/lib/tex.fmt", &[9u8; 100]).unwrap();
        assert_eq!(v.getattr("/usr/local/lib/tex.fmt").unwrap().size, 100);
        assert_eq!(v.readdir("/usr/local").unwrap(), vec!["lib"]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut v = vfs();
        v.create("/x", FileClass::Normal).unwrap();
        assert_eq!(
            v.create("/x", FileClass::Normal).unwrap_err(),
            VnodeError::Exists("x".into())
        );
    }

    #[test]
    fn missing_path_not_found() {
        let mut v = vfs();
        assert!(matches!(
            v.open("/no/such/file"),
            Err(VnodeError::NotFound(_))
        ));
        assert!(matches!(
            v.read("/ghost", 0, 1),
            Err(VnodeError::NotFound(_))
        ));
    }

    #[test]
    fn file_in_path_is_not_a_directory() {
        let mut v = vfs();
        v.create("/f", FileClass::Normal).unwrap();
        assert!(matches!(
            v.create("/f/child", FileClass::Normal),
            Err(VnodeError::NotADirectory(_))
        ));
    }

    #[test]
    fn unlink_removes_and_frees() {
        let mut v = vfs();
        v.create("/tmp1", FileClass::Normal).unwrap();
        v.write("/tmp1", &[1u8; 4096]).unwrap();
        v.fs.sync().unwrap();
        v.unlink("/tmp1").unwrap();
        assert!(matches!(v.open("/tmp1"), Err(VnodeError::NotFound(_))));
        assert!(!v.fs.garbage.is_empty(), "unlink created log garbage");
    }

    #[test]
    fn rmdir_only_when_empty() {
        let mut v = vfs();
        v.mkdir("/d").unwrap();
        v.create("/d/f", FileClass::Normal).unwrap();
        assert_eq!(v.rmdir("/d").unwrap_err(), VnodeError::NotEmpty("d".into()));
        v.unlink("/d/f").unwrap();
        v.rmdir("/d").unwrap();
        assert!(matches!(v.readdir("/d"), Err(VnodeError::NotFound(_))));
    }

    #[test]
    fn readdir_root() {
        let mut v = vfs();
        v.create("/a", FileClass::Normal).unwrap();
        v.mkdir("/b").unwrap();
        v.create("/c", FileClass::Continuous).unwrap();
        assert_eq!(v.readdir("/").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn dcache_hits_on_repeat_lookup() {
        let mut v = vfs();
        v.create("/hot", FileClass::Normal).unwrap();
        for _ in 0..10 {
            v.open("/hot").unwrap();
        }
        assert!(v.dcache.hits >= 10, "hits={}", v.dcache.hits);
        // Unlink updates the cache semantically.
        v.unlink("/hot").unwrap();
        assert!(matches!(v.open("/hot"), Err(VnodeError::NotFound(_))));
    }

    #[test]
    fn getattr_reports_class() {
        let mut v = vfs();
        v.create("/movie", FileClass::Continuous).unwrap();
        assert_eq!(v.getattr("/movie").unwrap().class, FileClass::Continuous);
    }
}
