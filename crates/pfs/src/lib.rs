//! The Pegasus File Server (§5).
//!
//! "The storage system in Pegasus is intended to store traditional file
//! data as well as multimedia data efficiently" — a hierarchical design
//! whose common bottom layer (the *core*) "is responsible for reading
//! and writing the data on secondary and tertiary storage devices",
//! with specialized service stacks above it.
//!
//! * [`disk`] — simulated disks with seek/rotation/transfer timing and
//!   fail-stop fault injection.
//! * [`raid`] — megabyte segments striped over four data disks plus a
//!   parity disk, with single-failure reconstruction.
//! * [`log`] — the log-structured core layer: segments, pnodes,
//!   separate segments for continuous-media data, checkpoints.
//! * [`cleaner`] — the garbage-file cleaner whose cost depends only on
//!   the garbage, with a Sprite-LFS-style scanning cleaner as baseline.
//! * [`cache`] — client/server LRU caching for ordinary data and the
//!   sequential-scan pathology that makes caching video useless.
//! * [`tier`] — the tiered content cache (hot arena / warm SSD-class /
//!   cold log) that fixes that pathology by construction.
//! * [`cm`] — the continuous-media service stack: rate-guaranteed
//!   streams and control-stream-derived indexes for seek/FF/reverse.
//! * [`client`] — client agents: write-behind buffering whose copies
//!   make the data safe under any single-component crash.
//! * [`workload`] — Baker-style file-lifetime traces ("70% of files are
//!   deleted or overwritten within 30 seconds").
//! * [`checkpoint`] — Sprite-style checkpointing of the pnode map into
//!   the log, and crash recovery from it.
//! * [`vnode`] — the Unix v-node-ish interface installed over the
//!   storage system.

pub mod cache;
pub mod checkpoint;
pub mod cleaner;
pub mod client;
pub mod cm;
pub mod disk;
pub mod log;
pub mod raid;
pub mod tier;
pub mod vnode;
pub mod workload;

pub use disk::{DiskConfig, SimDisk};
pub use log::{FileClass, FileId, LogFs};
pub use raid::RaidArray;
