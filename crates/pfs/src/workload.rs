//! Baker-style file workload generation.
//!
//! Baker et al. (1991) "showed that 70% of files are deleted or
//! overwritten within 30 seconds" — the empirical fact behind the
//! write-behind design. [`WorkloadConfig`] generates a deterministic
//! trace with that lifetime mix: file creations arrive as a Poisson
//! process; each file is short-lived (exponential lifetime, most dead
//! within 30 s) with the configured probability, long-lived otherwise;
//! sizes are heavy-tailed.

use pegasus_sim::rng::{exponential, heavy_tailed, seeded};
use pegasus_sim::time::{Ns, SEC};
use rand::Rng;

/// One event of the generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Create a file of `size` bytes (the create carries its write).
    Create {
        /// Trace-local file handle.
        handle: u64,
        /// Bytes written at creation.
        size: u64,
    },
    /// Delete the file.
    Delete {
        /// Trace-local file handle.
        handle: u64,
    },
}

/// Parameters of the synthetic trace.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Mean time between file creations.
    pub mean_interarrival: Ns,
    /// Probability a file is short-lived.
    pub short_fraction: f64,
    /// Mean lifetime of short-lived files.
    pub short_mean: Ns,
    /// Mean lifetime of long-lived files.
    pub long_mean: Ns,
    /// Minimum file size in bytes.
    pub min_size: u64,
    /// Pareto shape for sizes (lower = heavier tail).
    pub size_alpha: f64,
    /// Maximum file size.
    pub max_size: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A Baker-1991-flavoured default: with 70 % of files short-lived at
    /// mean 8 s, ~68 % of all files die within 30 s.
    pub fn baker() -> Self {
        WorkloadConfig {
            mean_interarrival: SEC / 2,
            short_fraction: 0.7,
            short_mean: 8 * SEC,
            long_mean: 3_600 * SEC,
            min_size: 2_048,
            size_alpha: 1.3,
            max_size: 4 << 20,
            seed: 1991,
        }
    }
}

/// Generates the `(time, op)` trace for `duration` of activity. Events
/// are returned sorted by time; deletes scheduled past the horizon are
/// omitted (the file outlives the trace).
pub fn generate(cfg: WorkloadConfig, duration: Ns) -> Vec<(Ns, Op)> {
    let mut rng = seeded(cfg.seed);
    let mut events: Vec<(Ns, Op)> = Vec::new();
    let mut t: Ns = 0;
    let mut handle = 0u64;
    loop {
        t += exponential(&mut rng, cfg.mean_interarrival as f64) as Ns;
        if t >= duration {
            break;
        }
        let size = heavy_tailed(
            &mut rng,
            cfg.min_size as f64,
            cfg.size_alpha,
            cfg.max_size as f64,
        ) as u64;
        events.push((t, Op::Create { handle, size }));
        let mean = if rng.gen_bool(cfg.short_fraction) {
            cfg.short_mean
        } else {
            cfg.long_mean
        };
        let death = t + exponential(&mut rng, mean as f64) as Ns;
        if death < duration {
            events.push((death, Op::Delete { handle }));
        }
        handle += 1;
    }
    events.sort_by_key(|&(t, op)| (t, matches!(op, Op::Delete { .. })));
    events
}

/// Summary facts about a trace (used to validate it matches Baker).
#[derive(Debug, Default, Clone, Copy)]
pub struct TraceSummary {
    /// Files created.
    pub creates: u64,
    /// Files deleted within the trace.
    pub deletes: u64,
    /// Files whose lifetime was under 30 seconds.
    pub dead_within_30s: u64,
    /// Total bytes created.
    pub bytes: u64,
}

/// Computes summary statistics of a trace.
pub fn summarize(events: &[(Ns, Op)]) -> TraceSummary {
    use std::collections::HashMap;
    let mut created_at: HashMap<u64, Ns> = HashMap::new();
    let mut s = TraceSummary::default();
    for &(t, op) in events {
        match op {
            Op::Create { handle, size } => {
                created_at.insert(handle, t);
                s.creates += 1;
                s.bytes += size;
            }
            Op::Delete { handle } => {
                s.deletes += 1;
                if let Some(&c) = created_at.get(&handle) {
                    if t - c <= 30 * SEC {
                        s.dead_within_30s += 1;
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = generate(WorkloadConfig::baker(), 100 * SEC);
        let b = generate(WorkloadConfig::baker(), 100 * SEC);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = WorkloadConfig::baker();
        let a = generate(cfg, 100 * SEC);
        cfg.seed = 2;
        let b = generate(cfg, 100 * SEC);
        assert_ne!(a, b);
    }

    #[test]
    fn events_sorted_and_well_formed() {
        let events = generate(WorkloadConfig::baker(), 500 * SEC);
        let mut last = 0;
        let mut live = std::collections::HashSet::new();
        for &(t, op) in &events {
            assert!(t >= last);
            last = t;
            match op {
                Op::Create { handle, size } => {
                    assert!(live.insert(handle), "duplicate create");
                    assert!(size >= WorkloadConfig::baker().min_size);
                    assert!(size <= WorkloadConfig::baker().max_size);
                }
                Op::Delete { handle } => {
                    assert!(live.remove(&handle), "delete of unknown file");
                }
            }
        }
    }

    #[test]
    fn baker_lifetime_mix_holds() {
        // Long trace: the share of created files dead within 30 s should
        // sit near 0.7 (short fraction 0.7 × P[exp(8s) < 30s] ≈ 0.68,
        // plus a sliver of lucky long-lived files).
        let events = generate(WorkloadConfig::baker(), 5_000 * SEC);
        let s = summarize(&events);
        assert!(s.creates > 5_000, "creates={}", s.creates);
        let frac = s.dead_within_30s as f64 / s.creates as f64;
        assert!(
            (0.60..0.78).contains(&frac),
            "30-second death fraction {frac:.3} out of Baker range"
        );
    }

    #[test]
    fn sizes_heavy_tailed() {
        let events = generate(WorkloadConfig::baker(), 2_000 * SEC);
        let sizes: Vec<u64> = events
            .iter()
            .filter_map(|&(_, op)| match op {
                Op::Create { size, .. } => Some(size),
                _ => None,
            })
            .collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let median = {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2] as f64
        };
        assert!(mean > 2.0 * median, "mean {mean:.0} vs median {median:.0}");
    }

    #[test]
    fn empty_horizon_empty_trace() {
        assert!(generate(WorkloadConfig::baker(), 0).is_empty());
    }
}
