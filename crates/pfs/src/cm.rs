//! The continuous-media service stack.
//!
//! "A storage service for multimedia data must have a large storage
//! capacity ... and a guaranteed (fixed) service rate." (§5) And from
//! §2.2: "The Pegasus File Server ... uses the control stream associated
//! with an incoming data stream to generate index information that can
//! later be used to go to specific time offsets into a media file",
//! enabling "reading synchronized streams from a particular point, and
//! fast forward, reverse play, etc."
//!
//! * [`StreamIndex`] — the (timestamp → byte offset) index built from
//!   control-stream sync marks.
//! * [`CmScheduler`] — rate-guaranteed periodic service: admission
//!   control against the array's measured bandwidth, then per-period
//!   reads for every admitted stream; a period whose I/O exceeds the
//!   period length is a deadline miss (which admission prevents).

use crate::log::{FileId, FsError, LogFs};
use pegasus_sim::time::{Ns, SEC};

/// The (timestamp → byte offset) index of one stored stream.
#[derive(Debug, Default, Clone)]
pub struct StreamIndex {
    entries: Vec<(Ns, u64)>,
}

impl StreamIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sync mark: the stream's bytes at `offset` were captured
    /// at `ts`. Marks must be appended in timestamp order.
    pub fn add_mark(&mut self, ts: Ns, offset: u64) {
        if let Some(&(last_ts, last_off)) = self.entries.last() {
            assert!(
                ts >= last_ts && offset >= last_off,
                "marks must be monotone"
            );
        }
        self.entries.push((ts, offset));
    }

    /// Number of marks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Byte offset to start reading from for playback at `ts`: the last
    /// mark at or before `ts` (or the first mark for earlier times).
    pub fn offset_for(&self, ts: Ns) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        match self.entries.binary_search_by_key(&ts, |&(t, _)| t) {
            Ok(i) => Some(self.entries[i].1),
            Err(0) => Some(self.entries[0].1),
            Err(i) => Some(self.entries[i - 1].1),
        }
    }

    /// Marks for fast-forward at `speed`× : every `speed`-th mark.
    pub fn fast_forward(&self, from_ts: Ns, speed: usize) -> Vec<(Ns, u64)> {
        assert!(speed >= 1);
        self.entries
            .iter()
            .filter(|&&(t, _)| t >= from_ts)
            .step_by(speed)
            .copied()
            .collect()
    }

    /// Marks for reverse play starting at `from_ts`.
    pub fn reverse(&self, from_ts: Ns) -> Vec<(Ns, u64)> {
        let mut v: Vec<(Ns, u64)> = self
            .entries
            .iter()
            .filter(|&&(t, _)| t <= from_ts)
            .copied()
            .collect();
        v.reverse();
        v
    }
}

/// One admitted continuous-media stream.
#[derive(Debug, Clone)]
pub struct CmStream {
    /// The stored file backing the stream.
    pub file: FileId,
    /// Guaranteed rate in bytes per second.
    pub rate: u64,
    /// Current playback offset.
    pub offset: u64,
}

/// Why a stream was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmError {
    /// The array cannot sustain the additional rate.
    Oversubscribed {
        /// Requested rate.
        requested: u64,
        /// Rate still available.
        available: u64,
    },
    /// Every concurrent stream slot is taken: one small read still
    /// costs a whole RAID stripe per service period, so the server's
    /// real capacity is a stream *count*, not just a byte rate.
    NoSlots {
        /// The server's slot capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for CmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmError::Oversubscribed {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} B/s, only {available} B/s available"
            ),
            CmError::NoSlots { capacity } => {
                write!(f, "all {capacity} concurrent stream slots in use")
            }
        }
    }
}

/// A concurrent-stream-slot ledger for one file server.
///
/// The CM scheduler's deadline analysis is per-stream: each admitted
/// stream costs one RAID stripe time (~51 ms on the 1994 array) per
/// service period regardless of how few bytes it reads, so a server
/// stays inside its period only while the stream *count* is bounded.
/// The QoS broker reserves from this ledger at session setup; the
/// [`CmScheduler`]'s own `max_streams` cap enforces the same bound from
/// inside the server as defence in depth.
#[derive(Debug, Clone, Copy)]
pub struct StreamSlots {
    capacity: usize,
    used: usize,
}

impl StreamSlots {
    /// Creates a ledger with `capacity` concurrent slots.
    pub fn new(capacity: usize) -> Self {
        StreamSlots { capacity, used: 0 }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Slots still free.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Takes one slot, or reports the exhausted capacity.
    pub fn take(&mut self) -> Result<(), CmError> {
        if self.used >= self.capacity {
            return Err(CmError::NoSlots {
                capacity: self.capacity,
            });
        }
        self.used += 1;
        Ok(())
    }

    /// Returns one slot (saturating).
    pub fn release(&mut self) {
        self.used = self.used.saturating_sub(1);
    }
}

impl std::error::Error for CmError {}

/// Outcome of a played period.
#[derive(Debug, Default, Clone)]
pub struct CmReport {
    /// Periods simulated.
    pub periods: u64,
    /// Periods whose total I/O exceeded the period (missed deadlines).
    pub missed: u64,
    /// Bytes delivered to all streams.
    pub bytes_delivered: u64,
}

/// Rate-guaranteed periodic service over the log.
pub struct CmScheduler {
    /// Service period: each stream receives rate × period bytes per
    /// period.
    pub period: Ns,
    /// Usable fraction of the array bandwidth for guarantees.
    pub reservable_fraction: f64,
    /// Array bandwidth used for admission (bytes/second).
    pub array_bandwidth: u64,
    /// Concurrent-stream cap (the slot ledger's bound, enforced from
    /// inside the server as well).
    max_streams: usize,
    streams: Vec<CmStream>,
    /// Reused read buffer: periodic service allocates nothing at steady
    /// state.
    scratch: Vec<u8>,
}

impl CmScheduler {
    /// Creates a scheduler with the given period and admission ceiling.
    pub fn new(period: Ns, array_bandwidth: u64) -> Self {
        CmScheduler {
            period,
            reservable_fraction: 0.8,
            array_bandwidth,
            max_streams: usize::MAX,
            streams: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Caps the number of concurrently admitted streams (see
    /// [`StreamSlots`]).
    pub fn set_max_streams(&mut self, max_streams: usize) {
        self.max_streams = max_streams;
    }

    /// The concurrent-stream cap.
    pub fn max_streams(&self) -> usize {
        self.max_streams
    }

    /// Total rate currently reserved.
    pub fn reserved(&self) -> u64 {
        self.streams.iter().map(|s| s.rate).sum()
    }

    /// Rate still available to new streams.
    pub fn available(&self) -> u64 {
        (self.array_bandwidth as f64 * self.reservable_fraction) as u64 - self.reserved()
    }

    /// Admits a stream at `rate` bytes/second from `offset` of `file`.
    pub fn admit(&mut self, file: FileId, rate: u64, offset: u64) -> Result<usize, CmError> {
        if self.streams.len() >= self.max_streams {
            return Err(CmError::NoSlots {
                capacity: self.max_streams,
            });
        }
        if rate > self.available() {
            return Err(CmError::Oversubscribed {
                requested: rate,
                available: self.available(),
            });
        }
        self.streams.push(CmStream { file, rate, offset });
        Ok(self.streams.len() - 1)
    }

    /// Removes a stream, releasing its reservation.
    pub fn release(&mut self, idx: usize) {
        self.streams.remove(idx);
    }

    /// Number of admitted streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Plays `n` periods: every stream reads `rate × period` bytes per
    /// period (stopping at end of file). A period misses when the I/O
    /// time of its reads exceeds the period.
    pub fn run_periods(&mut self, fs: &mut LogFs, n: u64) -> Result<CmReport, FsError> {
        let mut report = CmReport::default();
        for _ in 0..n {
            let io_before = fs.io_time;
            let mut delivered = 0u64;
            for s in &mut self.streams {
                let want = (s.rate as u128 * self.period as u128 / SEC as u128) as u64;
                let size = fs.pnode(s.file).ok_or(FsError::NoSuchFile)?.size;
                let take = want.min(size.saturating_sub(s.offset));
                if take > 0 {
                    fs.read_into(s.file, s.offset, take as usize, &mut self.scratch)?;
                    s.offset += take;
                    delivered += take;
                }
            }
            let io = fs.io_time - io_before;
            report.periods += 1;
            report.bytes_delivered += delivered;
            if io > self.period {
                report.missed += 1;
            }
        }
        Ok(report)
    }

    /// [`CmScheduler::run_periods`] with a [`crate::tier::TieredCache`] fronting the
    /// log store: every per-period read is served chunk-wise through the
    /// tiers (hot attach, warm SSD-class read, cold RAID stripe), and
    /// registered streams get next-period chunks prefetched. Deadline
    /// accounting is unchanged — a period misses when the I/O its reads
    /// actually incurred exceeds the period.
    pub fn run_periods_tiered(
        &mut self,
        fs: &mut LogFs,
        cache: &mut crate::tier::TieredCache,
        n: u64,
    ) -> Result<CmReport, FsError> {
        let mut report = CmReport::default();
        // Chunk handles live for the period they were served in, then
        // release back toward the cache's refcounts.
        let mut served = Vec::new();
        for _ in 0..n {
            let io_before = fs.io_time;
            let mut delivered = 0u64;
            for s in &mut self.streams {
                let want = (s.rate as u128 * self.period as u128 / SEC as u128) as u64;
                let size = fs.pnode(s.file).ok_or(FsError::NoSuchFile)?.size;
                let take = want.min(size.saturating_sub(s.offset));
                if take > 0 {
                    cache.read(fs, s.file, s.offset, take, &mut served)?;
                    s.offset += take;
                    delivered += take;
                }
            }
            let io = fs.io_time - io_before;
            report.periods += 1;
            report.bytes_delivered += delivered;
            if io > self.period {
                report.missed += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;
    use crate::log::{FileClass, SEGMENT_BYTES};
    use pegasus_sim::time::MS;

    fn fs_with_video(megabytes: usize) -> (LogFs, FileId) {
        let mut fs = LogFs::new(DiskConfig::hp_1994());
        fs.raid_mut().set_store(false);
        let id = fs.create(FileClass::Continuous);
        for _ in 0..megabytes {
            fs.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
        }
        fs.sync().unwrap();
        (fs, id)
    }

    #[test]
    fn index_lookup_rules() {
        let mut idx = StreamIndex::new();
        for i in 0..10u64 {
            idx.add_mark(i * 1_000_000, i * 500_000);
        }
        assert_eq!(idx.offset_for(0), Some(0));
        assert_eq!(idx.offset_for(3_000_000), Some(1_500_000));
        assert_eq!(
            idx.offset_for(3_500_000),
            Some(1_500_000),
            "floor semantics"
        );
        assert_eq!(
            idx.offset_for(99_000_000),
            Some(4_500_000),
            "clamps to last"
        );
        assert_eq!(StreamIndex::new().offset_for(5), None);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn index_rejects_reordered_marks() {
        let mut idx = StreamIndex::new();
        idx.add_mark(100, 10);
        idx.add_mark(50, 20);
    }

    #[test]
    fn fast_forward_skips_marks() {
        let mut idx = StreamIndex::new();
        for i in 0..12u64 {
            idx.add_mark(i * 10, i * 100);
        }
        let ff = idx.fast_forward(20, 4);
        assert_eq!(ff, vec![(20, 200), (60, 600), (100, 1000)]);
    }

    #[test]
    fn reverse_play_walks_backward() {
        let mut idx = StreamIndex::new();
        for i in 0..5u64 {
            idx.add_mark(i * 10, i * 100);
        }
        let rev = idx.reverse(25);
        assert_eq!(rev, vec![(20, 200), (10, 100), (0, 0)]);
    }

    #[test]
    fn admission_respects_bandwidth() {
        let mut sched = CmScheduler::new(500 * MS, 20_000_000);
        // 80 % of 20 MB/s = 16 MB/s reservable.
        let f = FileId(1);
        sched.admit(f, 8_000_000, 0).unwrap();
        sched.admit(f, 8_000_000, 0).unwrap();
        let err = sched.admit(f, 1, 0).unwrap_err();
        assert!(matches!(err, CmError::Oversubscribed { .. }));
        sched.release(0);
        sched.admit(f, 4_000_000, 0).unwrap();
    }

    #[test]
    fn admitted_streams_meet_their_periods() {
        let (mut fs, id) = fs_with_video(64);
        let mut sched = CmScheduler::new(SEC, 20_000_000);
        // Three 2 MB/s "videos" = 6 MB/s total, well inside 16 MB/s.
        for _ in 0..3 {
            sched.admit(id, 2_000_000, 0).unwrap();
        }
        let report = sched.run_periods(&mut fs, 8).unwrap();
        assert_eq!(report.missed, 0, "admitted load must meet its deadlines");
        assert_eq!(report.bytes_delivered, 3 * 2_000_000 * 8);
    }

    #[test]
    fn forced_oversubscription_misses() {
        // Bypass admission by lying about the array bandwidth: ask for
        // 40 MB/s from a 20 MB/s array.
        let (mut fs, id) = fs_with_video(96);
        let mut sched = CmScheduler::new(SEC, 100_000_000);
        for _ in 0..5 {
            sched.admit(id, 8_000_000, 0).unwrap();
        }
        let report = sched.run_periods(&mut fs, 2).unwrap();
        assert!(report.missed > 0, "an oversubscribed array must miss");
    }

    #[test]
    fn slot_cap_refuses_extra_streams() {
        let mut sched = CmScheduler::new(500 * MS, 1_000_000_000);
        sched.set_max_streams(2);
        let f = FileId(1);
        sched.admit(f, 1_000, 0).unwrap();
        sched.admit(f, 1_000, 0).unwrap();
        assert_eq!(
            sched.admit(f, 1_000, 0).unwrap_err(),
            CmError::NoSlots { capacity: 2 }
        );
        // Releasing a stream frees its slot.
        sched.release(0);
        sched.admit(f, 1_000, 0).unwrap();
        assert_eq!(sched.max_streams(), 2);
    }

    #[test]
    fn stream_slots_ledger_take_release() {
        let mut slots = StreamSlots::new(2);
        assert_eq!(slots.available(), 2);
        slots.take().unwrap();
        slots.take().unwrap();
        let err = slots.take().unwrap_err();
        assert_eq!(err, CmError::NoSlots { capacity: 2 });
        assert!(err.to_string().contains('2'));
        slots.release();
        assert_eq!(slots.used(), 1);
        slots.take().unwrap();
        // Release saturates at zero.
        slots.release();
        slots.release();
        slots.release();
        assert_eq!(slots.used(), 0);
        assert_eq!(slots.capacity(), 2);
    }

    #[test]
    fn stream_stops_at_end_of_file() {
        let (mut fs, id) = fs_with_video(2);
        let mut sched = CmScheduler::new(SEC, 20_000_000);
        sched.admit(id, 1_000_000, 0).unwrap();
        let report = sched.run_periods(&mut fs, 5).unwrap();
        // Only 2 MB exist.
        assert_eq!(report.bytes_delivered, 2 * SEGMENT_BYTES as u64);
    }

    #[test]
    fn tiered_periods_deliver_same_bytes_with_less_io() {
        use crate::tier::{TierConfig, TieredCache};
        // Ten viewers of one title, all starting at offset 0 — the
        // flash-crowd shape. Uncached, each stream pays the array;
        // tiered, the first fetch fills the hot tier and the other nine
        // attach to the same buffers.
        let rate = 1_000_000;
        let viewers = 10;
        let (mut plain_fs, plain_id) = fs_with_video(48);
        let mut plain = CmScheduler::new(SEC, 1_000_000_000);
        for _ in 0..viewers {
            plain.admit(plain_id, rate, 0).unwrap();
        }
        let plain_report = plain.run_periods(&mut plain_fs, 4).unwrap();

        let (mut fs, id) = fs_with_video(48);
        let mut sched = CmScheduler::new(SEC, 1_000_000_000);
        for _ in 0..viewers {
            sched.admit(id, rate, 0).unwrap();
        }
        let mut cache = TieredCache::new(TierConfig {
            hot_chunks: 64,
            warm_chunks: 64,
            ..TierConfig::default()
        });
        cache.register_stream(id, rate);
        let report = sched.run_periods_tiered(&mut fs, &mut cache, 4).unwrap();

        assert_eq!(report.bytes_delivered, plain_report.bytes_delivered);
        assert!(
            fs.io_time * 2 <= plain_fs.io_time,
            "tiered io {} not ≥2× below uncached {}",
            fs.io_time,
            plain_fs.io_time
        );
        let s = cache.stats();
        assert!(s.hot_hits > 0);
        assert!(s.disk_io_saved_cells() > 0);
    }

    #[test]
    fn seek_via_index_reads_from_marked_offset() {
        let (mut fs, id) = fs_with_video(8);
        let mut idx = StreamIndex::new();
        // A mark every "second" of a 1 MB/s recording.
        for i in 0..8u64 {
            idx.add_mark(i * SEC, i * SEGMENT_BYTES as u64);
        }
        let offset = idx.offset_for(5 * SEC).unwrap();
        assert_eq!(offset, 5 * SEGMENT_BYTES as u64);
        let mut sched = CmScheduler::new(SEC, 20_000_000);
        sched.admit(id, 1_000_000, offset).unwrap();
        let report = sched.run_periods(&mut fs, 10).unwrap();
        // Only 3 MB remain after the seek point.
        assert_eq!(report.bytes_delivered, 3 * SEGMENT_BYTES as u64);
    }
}
