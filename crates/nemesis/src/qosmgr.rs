//! The Quality-of-Service manager (§3.3).
//!
//! "Above this primitive-level scheduler, and running on a longer time
//! scale is a Quality-of-Service-manager domain whose task is to update
//! the scheduler weights; this is performed not only in response to
//! applications entering or leaving the system, but also adaptively as
//! applications modify their behaviour — this is performed on a longer
//! time scale than the individual scheduling decisions in order to smooth
//! out short-term variations in load."
//!
//! The manager here does exactly that: it holds per-application *user
//! weights* (the "users control processor allocation much in the same way
//! that they control pixel allocation in window systems" policy), smooths
//! observed demand with an exponentially weighted moving average, and
//! redistributes the reservable CPU capacity by weighted water-filling:
//! no application is granted more than its smoothed demand, and capacity
//! freed by undemanding applications flows to the others in proportion to
//! their weights.

use crate::sched::Share;
use pegasus_sim::time::Ns;

/// Identifier of an application registered with the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub usize);

#[derive(Debug, Clone)]
struct AppState {
    name: String,
    weight: f64,
    demand_ewma: f64,
    granted: f64,
    alive: bool,
}

/// The QoS-manager domain.
///
/// # Examples
///
/// ```
/// use pegasus_nemesis::qosmgr::QosManager;
///
/// let mut mgr = QosManager::new(0.9, 1.0);
/// let a = mgr.add_app("video", 2.0);
/// let b = mgr.add_app("batch", 1.0);
/// mgr.observe(a, 1.0); // wants the whole CPU
/// mgr.observe(b, 1.0);
/// mgr.rebalance();
/// // Weighted 2:1 split of the 0.9 reservable capacity.
/// assert!((mgr.granted(a) - 0.6).abs() < 1e-9);
/// assert!((mgr.granted(b) - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct QosManager {
    apps: Vec<AppState>,
    /// Fraction of the CPU available for guaranteed shares.
    pub capacity: f64,
    /// EWMA smoothing factor in (0, 1]; 1 = no smoothing.
    pub alpha: f64,
}

impl QosManager {
    /// Creates a manager distributing `capacity` (fraction of one CPU)
    /// with demand-EWMA factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < capacity <= 1` and `0 < alpha <= 1`.
    pub fn new(capacity: f64, alpha: f64) -> Self {
        assert!(capacity > 0.0 && capacity <= 1.0);
        assert!(alpha > 0.0 && alpha <= 1.0);
        QosManager {
            apps: Vec::new(),
            capacity,
            alpha,
        }
    }

    /// Registers an application with the given user weight.
    pub fn add_app(&mut self, name: &str, weight: f64) -> AppId {
        assert!(weight > 0.0, "weight must be positive");
        self.apps.push(AppState {
            name: name.to_string(),
            weight,
            demand_ewma: 0.0,
            granted: 0.0,
            alive: true,
        });
        AppId(self.apps.len() - 1)
    }

    /// Deregisters an application; its grant is freed at the next
    /// rebalance.
    pub fn remove_app(&mut self, id: AppId) {
        self.apps[id.0].alive = false;
        self.apps[id.0].granted = 0.0;
    }

    /// Changes an application's user weight (the window-system-like
    /// control knob).
    pub fn set_weight(&mut self, id: AppId, weight: f64) {
        assert!(weight > 0.0);
        self.apps[id.0].weight = weight;
    }

    /// Records one epoch's observed demand (utilization in `[0, 1]`) for
    /// an application. Demand is smoothed with the manager's EWMA.
    pub fn observe(&mut self, id: AppId, demand: f64) {
        let st = &mut self.apps[id.0];
        st.demand_ewma = self.alpha * demand.clamp(0.0, 1.0) + (1.0 - self.alpha) * st.demand_ewma;
    }

    /// The utilization currently granted to an application.
    pub fn granted(&self, id: AppId) -> f64 {
        self.apps[id.0].granted
    }

    /// The application's smoothed demand.
    pub fn smoothed_demand(&self, id: AppId) -> f64 {
        self.apps[id.0].demand_ewma
    }

    /// The application's registered name.
    pub fn app_name(&self, id: AppId) -> &str {
        &self.apps[id.0].name
    }

    /// Recomputes every grant by weighted water-filling: repeatedly give
    /// each unsatisfied application capacity in proportion to its weight,
    /// capping at its smoothed demand, until capacity or demand runs out.
    ///
    /// Returns the total capacity granted.
    pub fn rebalance(&mut self) -> f64 {
        let mut remaining = self.capacity;
        let mut satisfied: Vec<bool> = self
            .apps
            .iter()
            .map(|a| !a.alive || a.demand_ewma <= 0.0)
            .collect();
        for a in self.apps.iter_mut() {
            a.granted = 0.0;
        }
        // Each round either satisfies at least one application or
        // distributes everything; at most `apps` rounds.
        for _ in 0..self.apps.len() {
            let sum_w: f64 = self
                .apps
                .iter()
                .zip(&satisfied)
                .filter(|(_, s)| !**s)
                .map(|(a, _)| a.weight)
                .sum();
            if sum_w <= 0.0 || remaining <= 1e-12 {
                break;
            }
            let mut newly_satisfied = false;
            let quantum = remaining;
            for (i, a) in self.apps.iter_mut().enumerate() {
                if satisfied[i] {
                    continue;
                }
                let offer = quantum * a.weight / sum_w;
                let want = a.demand_ewma - a.granted;
                if offer >= want {
                    a.granted = a.demand_ewma;
                    remaining -= want;
                    satisfied[i] = true;
                    newly_satisfied = true;
                } else {
                    a.granted += offer;
                    remaining -= offer;
                }
            }
            if !newly_satisfied {
                break;
            }
        }
        self.capacity - remaining
    }

    /// Converts an application's grant into a scheduler [`Share`] over
    /// the given period.
    pub fn share_for(&self, id: AppId, period: Ns) -> Share {
        Share {
            slice: (self.apps[id.0].granted * period as f64) as Ns,
            period,
        }
    }
}

/// Why a CPU reservation was refused by a [`CpuLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuLedgerError {
    /// Micro-CPUs requested.
    pub requested: u64,
    /// Micro-CPUs still unreserved.
    pub available: u64,
}

impl std::fmt::Display for CpuLedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} µCPU but only {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CpuLedgerError {}

/// Setup-time CPU admission: the ledger the QoS broker checks before a
/// session is allowed to add its share to the media application's
/// demand.
///
/// The [`QosManager`] adapts *running* applications to each other on an
/// epoch timescale; it cannot refuse work, only starve it. End-to-end
/// QoS (the paper's §3.3 argument carried to its conclusion) needs a
/// gate in front of it: a fixed budget of reservable CPU, in integer
/// micro-CPUs (millionths of one processor) so that accounting is exact
/// and the admit/reject boundary is reproducible bit-for-bit.
///
/// # Examples
///
/// ```
/// use pegasus_nemesis::qosmgr::CpuLedger;
///
/// let mut ledger = CpuLedger::new(1_000); // 0.001 CPUs reservable
/// ledger.reserve(600).unwrap();
/// assert_eq!(ledger.available_micro(), 400);
/// assert!(ledger.reserve(500).is_err());
/// ledger.release(600);
/// assert_eq!(ledger.available_micro(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct CpuLedger {
    capacity_micro: u64,
    reserved_micro: u64,
}

impl CpuLedger {
    /// Creates a ledger with `capacity_micro` micro-CPUs reservable.
    pub fn new(capacity_micro: u64) -> Self {
        CpuLedger {
            capacity_micro,
            reserved_micro: 0,
        }
    }

    /// Total reservable capacity, in micro-CPUs.
    pub fn capacity_micro(&self) -> u64 {
        self.capacity_micro
    }

    /// Micro-CPUs currently reserved.
    pub fn reserved_micro(&self) -> u64 {
        self.reserved_micro
    }

    /// Micro-CPUs still unreserved.
    pub fn available_micro(&self) -> u64 {
        self.capacity_micro - self.reserved_micro
    }

    /// The reserved share as a fraction of one CPU, for feeding the
    /// [`QosManager`] as observed demand.
    pub fn reserved_fraction(&self) -> f64 {
        self.reserved_micro as f64 / 1_000_000.0
    }

    /// Reserves `micro` micro-CPUs, or reports what was available.
    pub fn reserve(&mut self, micro: u64) -> Result<(), CpuLedgerError> {
        if micro > self.available_micro() {
            return Err(CpuLedgerError {
                requested: micro,
                available: self.available_micro(),
            });
        }
        self.reserved_micro += micro;
        Ok(())
    }

    /// Releases a previous reservation (saturating, like the bandwidth
    /// ledger in the ATM layer).
    pub fn release(&mut self, micro: u64) {
        self.reserved_micro = self.reserved_micro.saturating_sub(micro);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_no_smoothing() -> QosManager {
        QosManager::new(0.9, 1.0)
    }

    #[test]
    fn weighted_split_when_all_demand_everything() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("a", 3.0);
        let b = mgr.add_app("b", 1.0);
        mgr.observe(a, 1.0);
        mgr.observe(b, 1.0);
        let total = mgr.rebalance();
        assert!((total - 0.9).abs() < 1e-9);
        assert!((mgr.granted(a) - 0.675).abs() < 1e-9);
        assert!((mgr.granted(b) - 0.225).abs() < 1e-9);
    }

    #[test]
    fn grants_capped_at_demand_and_surplus_flows() {
        let mut mgr = mgr_no_smoothing();
        let small = mgr.add_app("small", 1.0);
        let big = mgr.add_app("big", 1.0);
        mgr.observe(small, 0.1); // needs almost nothing
        mgr.observe(big, 1.0);
        mgr.rebalance();
        assert!((mgr.granted(small) - 0.1).abs() < 1e-9);
        // The big app receives the rest of the 0.9 capacity.
        assert!((mgr.granted(big) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn undersubscribed_system_grants_all_demand() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("a", 1.0);
        let b = mgr.add_app("b", 5.0);
        mgr.observe(a, 0.2);
        mgr.observe(b, 0.3);
        let total = mgr.rebalance();
        assert!((mgr.granted(a) - 0.2).abs() < 1e-9);
        assert!((mgr.granted(b) - 0.3).abs() < 1e-9);
        assert!((total - 0.5).abs() < 1e-9);
    }

    #[test]
    fn app_departure_frees_capacity() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("a", 1.0);
        let b = mgr.add_app("b", 1.0);
        mgr.observe(a, 1.0);
        mgr.observe(b, 1.0);
        mgr.rebalance();
        assert!((mgr.granted(a) - 0.45).abs() < 1e-9);
        mgr.remove_app(b);
        mgr.rebalance();
        assert!((mgr.granted(a) - 0.9).abs() < 1e-9);
        assert_eq!(mgr.granted(b), 0.0);
    }

    #[test]
    fn weight_change_shifts_grants() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("a", 1.0);
        let b = mgr.add_app("b", 1.0);
        mgr.observe(a, 1.0);
        mgr.observe(b, 1.0);
        mgr.rebalance();
        let before = mgr.granted(a);
        mgr.set_weight(a, 9.0);
        mgr.rebalance();
        assert!(mgr.granted(a) > before);
        assert!((mgr.granted(a) - 0.81).abs() < 1e-9);
    }

    #[test]
    fn smoothing_damps_demand_spikes() {
        let mut mgr = QosManager::new(0.9, 0.25);
        let a = mgr.add_app("a", 1.0);
        // Steady 0.2 demand...
        for _ in 0..40 {
            mgr.observe(a, 0.2);
        }
        assert!((mgr.smoothed_demand(a) - 0.2).abs() < 1e-3);
        // ...then a one-epoch spike to 1.0 moves the EWMA only by alpha.
        mgr.observe(a, 1.0);
        let after_spike = mgr.smoothed_demand(a);
        assert!(after_spike < 0.45, "spike over-reacted: {after_spike}");
        // And it decays back.
        for _ in 0..20 {
            mgr.observe(a, 0.2);
        }
        assert!((mgr.smoothed_demand(a) - 0.2).abs() < 0.01);
    }

    #[test]
    fn share_for_converts_to_slice() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("a", 1.0);
        mgr.observe(a, 0.5);
        mgr.rebalance();
        let share = mgr.share_for(a, 10_000_000);
        assert_eq!(share.slice, 5_000_000);
        assert_eq!(share.period, 10_000_000);
    }

    #[test]
    fn zero_demand_app_gets_nothing() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("idle", 100.0);
        let b = mgr.add_app("busy", 1.0);
        mgr.observe(b, 1.0);
        mgr.rebalance();
        assert_eq!(mgr.granted(a), 0.0);
        assert!((mgr.granted(b) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn conservation_total_grant_never_exceeds_capacity() {
        let mut mgr = QosManager::new(0.8, 1.0);
        let ids: Vec<AppId> = (0..7)
            .map(|i| mgr.add_app(&format!("a{i}"), (i + 1) as f64))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            mgr.observe(*id, 0.15 * (i + 1) as f64 % 1.0);
        }
        let total = mgr.rebalance();
        let sum: f64 = ids.iter().map(|id| mgr.granted(*id)).sum();
        assert!((sum - total).abs() < 1e-9);
        assert!(total <= 0.8 + 1e-9);
    }

    #[test]
    fn names_retained() {
        let mut mgr = mgr_no_smoothing();
        let a = mgr.add_app("tv-director", 1.0);
        assert_eq!(mgr.app_name(a), "tv-director");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut mgr = mgr_no_smoothing();
        mgr.add_app("bad", 0.0);
    }

    #[test]
    fn cpu_ledger_reserves_to_capacity_and_not_beyond() {
        let mut ledger = CpuLedger::new(350_000);
        ledger.reserve(300_000).unwrap();
        ledger.reserve(50_000).unwrap();
        let err = ledger.reserve(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(err.available, 0);
        assert_eq!(ledger.reserved_micro(), 350_000);
        assert!((ledger.reserved_fraction() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn cpu_ledger_failed_reserve_changes_nothing() {
        let mut ledger = CpuLedger::new(1_000);
        ledger.reserve(900).unwrap();
        assert!(ledger.reserve(200).is_err());
        assert_eq!(ledger.reserved_micro(), 900);
        ledger.reserve(100).unwrap();
    }

    #[test]
    fn cpu_ledger_release_saturates() {
        let mut ledger = CpuLedger::new(1_000);
        ledger.reserve(400).unwrap();
        ledger.release(999);
        assert_eq!(ledger.reserved_micro(), 0);
        assert_eq!(ledger.available_micro(), 1_000);
    }

    #[test]
    fn cpu_ledger_error_display() {
        let e = CpuLedgerError {
            requested: 7,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3'));
    }
}
