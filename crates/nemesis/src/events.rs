//! Inter-domain events (§3.4).
//!
//! "Nemesis provides a single mechanism by which domains can communicate
//! the occurrence of events to each other. ... Events themselves do not
//! carry values, but merely indicate that something has occurred";
//! closures associated with each event hide the heterogeneity from the
//! dispatcher. A domain becomes eligible for scheduling when it has
//! pending events, and two signalling disciplines exist:
//!
//! * **synchronous** — the sender voluntarily gives up the processor to
//!   the signalled domain, minimizing latency (the inter-domain-call
//!   case);
//! * **asynchronous** — the sender keeps running and the receiver picks
//!   the events up at its next activation, maximizing throughput (the
//!   packet-demultiplexer case).
//!
//! Events are *counted*: sending twice before the receiver runs delivers
//! one activation with a count of two, not two queued messages. The
//! module also provides the event-pair + shared-memory-queue **IDC**
//! channel the paper describes for inter-domain procedure calls.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::{Rc, Weak};

use pegasus_sim::time::Ns;
use pegasus_sim::{SharedHandler, Simulator};

pub use crate::vp::DomainId;

/// Identifier of an event channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub usize);

/// How a send is signalled to the receiving domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalMode {
    /// Yield the processor to the receiver: one context switch of
    /// latency, paid per event.
    Synchronous,
    /// Keep running; the receiver is activated at its next scheduling
    /// opportunity and drains everything pending at once.
    Asynchronous,
}

/// Timing parameters of the event mechanism.
#[derive(Debug, Clone, Copy)]
pub struct EventConfig {
    /// Direct hand-off cost for a synchronous signal (context switch).
    pub ctx_switch: Ns,
    /// Delay until an asynchronously signalled domain is next scheduled.
    pub sched_delay: Ns,
    /// Fixed cost of entering a domain's activation handler.
    pub activation: Ns,
}

impl Default for EventConfig {
    fn default() -> Self {
        // Figures of merit for a 1994-era workstation: a protected
        // context switch of ~5 µs, a 1 ms scheduling quantum, and a ~2 µs
        // activation upcall.
        EventConfig {
            ctx_switch: 5_000,
            sched_delay: 1_000_000,
            activation: 2_000,
        }
    }
}

/// A closure invoked when a domain is activated with pending events.
///
/// Receives the simulator, a handle back to the event system (so it can
/// send in turn), the channel, and the number of coalesced occurrences.
pub type Handler = Box<dyn FnMut(&mut Simulator, &Rc<RefCell<EventSystem>>, ChannelId, u64)>;

struct DomainSlot {
    name: String,
    pending: BTreeMap<ChannelId, u64>,
    activation_scheduled: bool,
    handler: Option<Rc<RefCell<Handler>>>,
    /// The shared engine event that runs this domain's activation;
    /// created on first signal, reused (allocation-free) ever after.
    activation_event: Option<SharedHandler>,
    /// Number of activations this domain has received.
    activations: u64,
    /// Number of (coalesced) event deliveries.
    deliveries: u64,
}

struct ChannelState {
    rx: DomainId,
    sent: u64,
    acked: u64,
}

/// The kernel's event dispatcher.
pub struct EventSystem {
    cfg: EventConfig,
    domains: Vec<DomainSlot>,
    channels: Vec<ChannelState>,
}

impl EventSystem {
    /// Creates an event system with the given timing parameters, wrapped
    /// for sharing with handlers.
    pub fn shared(cfg: EventConfig) -> Rc<RefCell<EventSystem>> {
        Rc::new(RefCell::new(EventSystem {
            cfg,
            domains: Vec::new(),
            channels: Vec::new(),
        }))
    }

    /// Registers a domain.
    pub fn add_domain(&mut self, name: &str) -> DomainId {
        self.domains.push(DomainSlot {
            name: name.to_string(),
            pending: BTreeMap::new(),
            activation_scheduled: false,
            handler: None,
            activation_event: None,
            activations: 0,
            deliveries: 0,
        });
        DomainId(self.domains.len() - 1)
    }

    /// Attaches the closure run when `domain` is activated.
    pub fn set_handler(&mut self, domain: DomainId, handler: Handler) {
        self.domains[domain.0].handler = Some(Rc::new(RefCell::new(handler)));
    }

    /// Opens an event channel delivering to `rx`.
    pub fn open_channel(&mut self, rx: DomainId) -> ChannelId {
        self.channels.push(ChannelState {
            rx,
            sent: 0,
            acked: 0,
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Name of a domain.
    pub fn domain_name(&self, d: DomainId) -> &str {
        &self.domains[d.0].name
    }

    /// Activations a domain has received.
    pub fn activations(&self, d: DomainId) -> u64 {
        self.domains[d.0].activations
    }

    /// Coalesced deliveries a domain has received.
    pub fn deliveries(&self, d: DomainId) -> u64 {
        self.domains[d.0].deliveries
    }

    /// Events sent on a channel so far.
    pub fn sent_count(&self, c: ChannelId) -> u64 {
        self.channels[c.0].sent
    }

    /// Events acknowledged (delivered into an activation) on a channel.
    pub fn acked_count(&self, c: ChannelId) -> u64 {
        self.channels[c.0].acked
    }

    /// Sends one occurrence on `chan`.
    ///
    /// This is an associated function taking the shared handle because
    /// delivery re-enters the system from inside the scheduled closure.
    pub fn send(
        sys: &Rc<RefCell<EventSystem>>,
        sim: &mut Simulator,
        chan: ChannelId,
        mode: SignalMode,
    ) {
        let delay = {
            let mut s = sys.borrow_mut();
            let rx = s.channels[chan.0].rx;
            s.channels[chan.0].sent += 1;
            *s.domains[rx.0].pending.entry(chan).or_insert(0) += 1;
            let cfg = s.cfg;
            let slot = &mut s.domains[rx.0];
            match mode {
                SignalMode::Synchronous => {
                    // A sync send always hands the CPU over now; any
                    // previously scheduled async activation is subsumed.
                    slot.activation_scheduled = true;
                    Some(cfg.ctx_switch)
                }
                SignalMode::Asynchronous => {
                    if slot.activation_scheduled {
                        None // coalesce into the already-pending activation
                    } else {
                        slot.activation_scheduled = true;
                        Some(cfg.sched_delay)
                    }
                }
            }
        };
        if let Some(delay) = delay {
            let (rx, activation) = {
                let s = sys.borrow();
                (s.channels[chan.0].rx, s.cfg.activation)
            };
            let event = Self::activation_event(sys, rx);
            sim.schedule_shared_in(delay + activation, event);
        }
    }

    /// The domain's reusable activation event, created on first use. It
    /// holds only a weak reference to the system, so the dispatcher and
    /// its handlers don't keep each other alive.
    fn activation_event(sys: &Rc<RefCell<EventSystem>>, d: DomainId) -> SharedHandler {
        if let Some(e) = sys.borrow().domains[d.0].activation_event.clone() {
            return e;
        }
        let weak: Weak<RefCell<EventSystem>> = Rc::downgrade(sys);
        let e: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            if let Some(sys) = weak.upgrade() {
                Self::activate(&sys, sim, d);
            }
            None
        }));
        sys.borrow_mut().domains[d.0].activation_event = Some(e.clone());
        e
    }

    /// Runs a domain's activation: drains pending events and invokes the
    /// handler once per channel with the coalesced count.
    fn activate(sys: &Rc<RefCell<EventSystem>>, sim: &mut Simulator, d: DomainId) {
        let (work, handler) = {
            let mut s = sys.borrow_mut();
            let slot = &mut s.domains[d.0];
            slot.activation_scheduled = false;
            if slot.pending.is_empty() {
                return;
            }
            slot.activations += 1;
            let work: Vec<(ChannelId, u64)> =
                std::mem::take(&mut slot.pending).into_iter().collect();
            slot.deliveries += work.len() as u64;
            let handler = slot.handler.clone();
            for &(c, n) in &work {
                s.channels[c.0].acked += n;
            }
            (work, handler)
        };
        if let Some(handler) = handler {
            for (chan, count) in work {
                (handler.borrow_mut())(sim, sys, chan, count);
            }
        }
    }
}

/// An inter-domain call channel: "a pair of message queues in shared
/// memory between the relevant client and server domains and a pair of
/// events" (§3.4).
pub struct IdcChannel {
    /// Client → server request queue (the shared-memory segment).
    pub requests: Rc<RefCell<VecDeque<Vec<u8>>>>,
    /// Server → client reply queue.
    pub replies: Rc<RefCell<VecDeque<Vec<u8>>>>,
    /// Event raised by the client to wake the server.
    pub ev_request: ChannelId,
    /// Event raised by the server to wake the client.
    pub ev_reply: ChannelId,
}

impl IdcChannel {
    /// Builds the channel between `client` and `server`, registering a
    /// server handler that maps each request through `service` and a
    /// client handler `on_reply` consuming replies.
    ///
    /// `mode` selects the notification discipline in both directions;
    /// the paper observes that "lowest latency for a client/server
    /// interaction will be achieved by the client and server implementing
    /// the synchronous form".
    pub fn new(
        sys: &Rc<RefCell<EventSystem>>,
        client: DomainId,
        server: DomainId,
        mode: SignalMode,
        mut service: impl FnMut(&[u8]) -> Vec<u8> + 'static,
        mut on_reply: impl FnMut(&mut Simulator, Vec<u8>) + 'static,
    ) -> IdcChannel {
        let requests: Rc<RefCell<VecDeque<Vec<u8>>>> = Rc::new(RefCell::new(VecDeque::new()));
        let replies: Rc<RefCell<VecDeque<Vec<u8>>>> = Rc::new(RefCell::new(VecDeque::new()));
        let ev_request = sys.borrow_mut().open_channel(server);
        let ev_reply = sys.borrow_mut().open_channel(client);

        let req_q = requests.clone();
        let rep_q = replies.clone();
        sys.borrow_mut().set_handler(
            server,
            Box::new(move |sim, sys, _chan, _count| {
                // Drain every queued request (counted events coalesce).
                loop {
                    let msg = req_q.borrow_mut().pop_front();
                    let Some(msg) = msg else { break };
                    let reply = service(&msg);
                    rep_q.borrow_mut().push_back(reply);
                    EventSystem::send(sys, sim, ev_reply, mode);
                }
            }),
        );

        let rep_q2 = replies.clone();
        sys.borrow_mut().set_handler(
            client,
            Box::new(move |sim, _sys, _chan, _count| loop {
                let msg = rep_q2.borrow_mut().pop_front();
                let Some(msg) = msg else { break };
                on_reply(sim, msg);
            }),
        );

        IdcChannel {
            requests,
            replies,
            ev_request,
            ev_reply,
        }
    }

    /// Issues a call: enqueue the request and raise the request event.
    pub fn call(
        &self,
        sys: &Rc<RefCell<EventSystem>>,
        sim: &mut Simulator,
        msg: Vec<u8>,
        mode: SignalMode,
    ) {
        self.requests.borrow_mut().push_back(msg);
        EventSystem::send(sys, sim, self.ev_request, mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> EventConfig {
        EventConfig {
            ctx_switch: 5_000,
            sched_delay: 1_000_000,
            activation: 2_000,
        }
    }

    #[test]
    fn sync_send_delivers_after_switch_plus_activation() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let rx = sys.borrow_mut().add_domain("rx");
        let _tx = sys.borrow_mut().add_domain("tx");
        let chan = sys.borrow_mut().open_channel(rx);
        let seen: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        sys.borrow_mut().set_handler(
            rx,
            Box::new(move |sim, _sys, _c, n| seen2.borrow_mut().push((sim.now(), n))),
        );
        EventSystem::send(&sys, &mut sim, chan, SignalMode::Synchronous);
        sim.run();
        assert_eq!(*seen.borrow(), vec![(7_000, 1)]); // 5 µs switch + 2 µs upcall
    }

    #[test]
    fn async_sends_coalesce_into_one_activation() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let rx = sys.borrow_mut().add_domain("rx");
        let chan = sys.borrow_mut().open_channel(rx);
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        sys.borrow_mut().set_handler(
            rx,
            Box::new(move |_sim, _sys, _c, n| seen2.borrow_mut().push(n)),
        );
        for _ in 0..10 {
            EventSystem::send(&sys, &mut sim, chan, SignalMode::Asynchronous);
        }
        sim.run();
        // One activation, count of 10 — the counted-event semantics.
        assert_eq!(*seen.borrow(), vec![10]);
        assert_eq!(sys.borrow().activations(rx), 1);
        assert_eq!(sys.borrow().sent_count(chan), 10);
        assert_eq!(sys.borrow().acked_count(chan), 10);
    }

    #[test]
    fn sync_beats_async_on_latency() {
        let deliver_time = |mode| {
            let sys = EventSystem::shared(fast_cfg());
            let mut sim = Simulator::new();
            let rx = sys.borrow_mut().add_domain("rx");
            let chan = sys.borrow_mut().open_channel(rx);
            let t: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
            let t2 = t.clone();
            sys.borrow_mut().set_handler(
                rx,
                Box::new(move |sim, _s, _c, _n| *t2.borrow_mut() = sim.now()),
            );
            EventSystem::send(&sys, &mut sim, chan, mode);
            sim.run();
            let v = *t.borrow();
            v
        };
        let sync = deliver_time(SignalMode::Synchronous);
        let asynch = deliver_time(SignalMode::Asynchronous);
        assert!(sync < asynch, "sync {sync} should beat async {asynch}");
        assert_eq!(asynch - sync, 1_000_000 - 5_000);
    }

    #[test]
    fn async_batches_reduce_activations_per_event() {
        // The demultiplexer argument: N events, async → far fewer
        // activations than N; sync → one per event.
        let activations_for = |mode| {
            let sys = EventSystem::shared(fast_cfg());
            let mut sim = Simulator::new();
            let rx = sys.borrow_mut().add_domain("demux");
            let chan = sys.borrow_mut().open_channel(rx);
            sys.borrow_mut().set_handler(rx, Box::new(|_, _, _, _| {}));
            for i in 0..100u64 {
                let sys = sys.clone();
                sim.schedule_at(i * 10_000, move |sim| {
                    EventSystem::send(&sys, sim, chan, mode);
                });
            }
            sim.run();
            let n = sys.borrow().activations(rx);
            n
        };
        let sync_acts = activations_for(SignalMode::Synchronous);
        let async_acts = activations_for(SignalMode::Asynchronous);
        assert_eq!(sync_acts, 100);
        assert!(async_acts <= 2, "async activations: {async_acts}");
    }

    #[test]
    fn events_carry_no_values_only_counts() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let rx = sys.borrow_mut().add_domain("rx");
        let a = sys.borrow_mut().open_channel(rx);
        let b = sys.borrow_mut().open_channel(rx);
        let seen: Rc<RefCell<Vec<(ChannelId, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        sys.borrow_mut().set_handler(
            rx,
            Box::new(move |_s, _y, c, n| seen2.borrow_mut().push((c, n))),
        );
        EventSystem::send(&sys, &mut sim, a, SignalMode::Asynchronous);
        EventSystem::send(&sys, &mut sim, b, SignalMode::Asynchronous);
        EventSystem::send(&sys, &mut sim, b, SignalMode::Asynchronous);
        sim.run();
        // One activation, two channels, counts 1 and 2, in channel order.
        assert_eq!(*seen.borrow(), vec![(a, 1), (b, 2)]);
    }

    #[test]
    fn idc_round_trip_sync() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let client = sys.borrow_mut().add_domain("client");
        let server = sys.borrow_mut().add_domain("server");
        type Got = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;
        let got: Got = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        let idc = IdcChannel::new(
            &sys,
            client,
            server,
            SignalMode::Synchronous,
            |req| {
                let mut r = req.to_vec();
                r.reverse();
                r
            },
            move |sim, reply| got2.borrow_mut().push((sim.now(), reply)),
        );
        idc.call(&sys, &mut sim, b"ping".to_vec(), SignalMode::Synchronous);
        sim.run();
        let g = got.borrow();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].1, b"gnip".to_vec());
        // Two sync hops: 2 × (5 µs + 2 µs) = 14 µs.
        assert_eq!(g[0].0, 14_000);
    }

    #[test]
    fn idc_pipelined_calls_all_complete() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let client = sys.borrow_mut().add_domain("client");
        let server = sys.borrow_mut().add_domain("server");
        let replies: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
        let replies2 = replies.clone();
        let idc = IdcChannel::new(
            &sys,
            client,
            server,
            SignalMode::Synchronous,
            |req| req.to_vec(),
            move |_sim, reply| replies2.borrow_mut().push(reply),
        );
        for i in 0..20u8 {
            idc.call(&sys, &mut sim, vec![i], SignalMode::Synchronous);
        }
        sim.run();
        let r = replies.borrow();
        assert_eq!(r.len(), 20);
        assert_eq!(r[19], vec![19]);
    }

    #[test]
    fn activation_with_no_pending_is_a_noop() {
        let sys = EventSystem::shared(fast_cfg());
        let mut sim = Simulator::new();
        let rx = sys.borrow_mut().add_domain("rx");
        let chan = sys.borrow_mut().open_channel(rx);
        sys.borrow_mut().set_handler(rx, Box::new(|_, _, _, _| {}));
        // Sync send schedules the sync activation; a racing async send
        // coalesces. Only one activation results.
        EventSystem::send(&sys, &mut sim, chan, SignalMode::Synchronous);
        EventSystem::send(&sys, &mut sim, chan, SignalMode::Asynchronous);
        sim.run();
        assert_eq!(sys.borrow().activations(rx), 1);
        assert_eq!(sys.borrow().acked_count(chan), 2);
    }

    #[test]
    fn domain_names_kept() {
        let sys = EventSystem::shared(EventConfig::default());
        let d = sys.borrow_mut().add_domain("driver");
        assert_eq!(sys.borrow().domain_name(d), "driver");
    }
}
