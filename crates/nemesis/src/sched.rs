//! Domain scheduling (§3.3).
//!
//! Nemesis schedules domains "with a weighted scheduling discipline,
//! where the weights are calculated from the user's current policy".
//! Each domain holds a share — a *slice* of CPU time per *period*. While
//! domains have allocation remaining, "the current scheduler
//! implementation uses an earliest deadline first algorithm to select
//! between them"; leftover time (slack) is shared out among domains that
//! can exploit "unguaranteed resources which become available
//! fortuitously".
//!
//! This module implements that scheduler and the baselines the
//! experiments compare it against (round-robin and static priority, the
//! disciplines of contemporary Unix-ish kernels), driving them over a
//! synthetic periodic workload: each task releases a job of `work`
//! nanoseconds every `period`, which must complete before the next
//! release — the natural model of per-frame video and per-buffer audio
//! processing.

use pegasus_sim::stats::Histogram;
use pegasus_sim::time::Ns;

/// A CPU-time guarantee: `slice` nanoseconds in every `period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Guaranteed CPU time per period.
    pub slice: Ns,
    /// The period over which the slice is guaranteed.
    pub period: Ns,
}

impl Share {
    /// Fraction of the CPU this share represents.
    pub fn utilization(&self) -> f64 {
        if self.period == 0 {
            0.0
        } else {
            self.slice as f64 / self.period as f64
        }
    }
}

/// Scheduling disciplines the simulator can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The Nemesis scheduler: shares replenished per period, EDF among
    /// domains holding allocation, round-robin slack for the rest.
    NemesisEdf,
    /// Classic time-sliced round-robin with the given quantum.
    RoundRobin(Ns),
    /// Preemptive static priority (higher number wins).
    StaticPriority,
    /// EDF on job deadlines with no isolation (no shares) — what a naive
    /// "add deadlines to the kernel" design gives.
    PureEdf,
}

/// A periodic task offered to the scheduler.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// The guarantee the QoS manager granted (used by [`Policy::NemesisEdf`]).
    pub share: Share,
    /// Priority for [`Policy::StaticPriority`] (higher wins).
    pub priority: u32,
    /// Job release period.
    pub period: Ns,
    /// CPU demand per job.
    pub work: Ns,
    /// Whether the task will consume slack beyond its share.
    pub use_slack: bool,
    /// Release offset of the first job.
    pub phase: Ns,
}

impl TaskSpec {
    /// A periodic task whose share exactly covers its demand.
    pub fn guaranteed(name: &str, period: Ns, work: Ns) -> Self {
        TaskSpec {
            name: name.to_string(),
            share: Share {
                slice: work,
                period,
            },
            priority: 1,
            period,
            work,
            use_slack: false,
            phase: 0,
        }
    }

    /// A best-effort task: tiny share, lives off slack.
    pub fn best_effort(name: &str, period: Ns, work: Ns) -> Self {
        TaskSpec {
            name: name.to_string(),
            share: Share { slice: 0, period },
            priority: 0,
            period,
            work,
            use_slack: true,
            phase: 0,
        }
    }

    /// Builder: sets the static priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Builder: sets an explicit share.
    pub fn with_share(mut self, slice: Ns, period: Ns) -> Self {
        self.share = Share { slice, period };
        self
    }

    /// Builder: allows the task to use slack time.
    pub fn with_slack(mut self) -> Self {
        self.use_slack = true;
        self
    }

    /// Builder: offsets the first release.
    pub fn with_phase(mut self, phase: Ns) -> Self {
        self.phase = phase;
        self
    }
}

/// Per-task results of a scheduling run.
#[derive(Debug, Clone, Default)]
pub struct TaskStats {
    /// Jobs released.
    pub releases: u64,
    /// Jobs that completed before their deadline.
    pub completions: u64,
    /// Jobs dropped because the next release arrived first (a skipped
    /// frame, in media terms).
    pub misses: u64,
    /// Total CPU time received.
    pub cpu_received: Ns,
    /// Job response times (release → completion).
    pub response: Histogram,
}

impl TaskStats {
    /// Miss rate over released jobs.
    pub fn miss_rate(&self) -> f64 {
        if self.releases == 0 {
            0.0
        } else {
            self.misses as f64 / self.releases as f64
        }
    }
}

/// Whole-run results.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Per-task statistics, in task-insertion order.
    pub tasks: Vec<TaskStats>,
    /// Number of context switches performed.
    pub context_switches: u64,
    /// Time the CPU sat idle.
    pub idle: Ns,
    /// Time consumed by context-switch overhead.
    pub switch_overhead: Ns,
    /// Horizon the simulation ran to.
    pub horizon: Ns,
}

struct TaskState {
    spec: TaskSpec,
    next_release: Ns,
    work_left: Ns,
    released_at: Ns,
    // Nemesis share state.
    alloc_left: Ns,
    alloc_deadline: Ns,
    stats: TaskStats,
}

impl TaskState {
    fn runnable(&self) -> bool {
        self.work_left > 0
    }
}

/// The uniprocessor scheduling simulator.
///
/// # Examples
///
/// ```
/// use pegasus_nemesis::sched::{CpuSim, Policy, TaskSpec};
/// use pegasus_sim::time::MS;
///
/// let mut sim = CpuSim::new(Policy::NemesisEdf);
/// sim.add_task(TaskSpec::guaranteed("video", 40 * MS, 10 * MS));
/// sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 2 * MS));
/// let result = sim.run(10_000 * MS);
/// assert_eq!(result.tasks[0].misses, 0);
/// assert_eq!(result.tasks[1].misses, 0);
/// ```
pub struct CpuSim {
    policy: Policy,
    tasks: Vec<TaskSpec>,
    /// Cost charged on every switch between different tasks.
    pub ctx_cost: Ns,
    /// Quantum granted to a slack-mode or round-robin run.
    pub slack_quantum: Ns,
}

impl CpuSim {
    /// Creates a simulator for the given policy.
    pub fn new(policy: Policy) -> Self {
        CpuSim {
            policy,
            tasks: Vec::new(),
            ctx_cost: 0,
            slack_quantum: 1_000_000, // 1 ms
        }
    }

    /// Adds a task; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the task's release period or share period is zero.
    pub fn add_task(&mut self, spec: TaskSpec) -> usize {
        assert!(spec.period > 0, "release period must be positive");
        assert!(spec.share.period > 0, "share period must be positive");
        self.tasks.push(spec);
        self.tasks.len() - 1
    }

    /// Sum of guaranteed utilizations — must not exceed 1.0 for the
    /// shares to be meetable (the QoS manager's admission condition).
    pub fn guaranteed_utilization(&self) -> f64 {
        self.tasks.iter().map(|t| t.share.utilization()).sum()
    }

    /// Runs the simulation to `horizon` and returns the statistics.
    pub fn run(&self, horizon: Ns) -> SimResult {
        let mut states: Vec<TaskState> = self
            .tasks
            .iter()
            .map(|spec| TaskState {
                next_release: spec.phase,
                work_left: 0,
                released_at: 0,
                alloc_left: 0,
                alloc_deadline: spec.phase,
                spec: spec.clone(),
                stats: TaskStats::default(),
            })
            .collect();
        let mut result = SimResult {
            horizon,
            ..Default::default()
        };
        if states.is_empty() {
            result.idle = horizon;
            return result;
        }

        let mut now: Ns = 0;
        let mut current: Option<usize> = None;
        let mut rr_cursor = 0usize;

        while now < horizon {
            // Release due jobs; count drops of unfinished predecessors.
            for st in states.iter_mut() {
                while st.next_release <= now {
                    if st.work_left > 0 {
                        st.stats.misses += 1;
                        st.work_left = 0;
                    }
                    st.stats.releases += 1;
                    st.work_left = st.spec.work;
                    st.released_at = st.next_release;
                    st.next_release += st.spec.period;
                }
                // Replenish Nemesis shares whose period boundary passed.
                if self.policy == Policy::NemesisEdf && st.alloc_deadline <= now {
                    st.alloc_left = st.spec.share.slice;
                    st.alloc_deadline = now + st.spec.share.period;
                }
            }

            // Pick the next task per policy.
            let pick = self.pick(&states, &mut rr_cursor);

            // Next decision boundary independent of the chosen task.
            let next_release = states
                .iter()
                .map(|s| s.next_release)
                .min()
                .expect("tasks exist");
            let next_replenish = if self.policy == Policy::NemesisEdf {
                states
                    .iter()
                    .filter(|s| s.runnable() || s.next_release < horizon)
                    .map(|s| s.alloc_deadline)
                    .filter(|&d| d > now)
                    .min()
                    .unwrap_or(Ns::MAX)
            } else {
                Ns::MAX
            };

            let Some((idx, budget)) = pick else {
                // Idle until something is released or replenished.
                let wake = next_release.min(next_replenish).min(horizon);
                result.idle += wake - now;
                now = wake;
                continue;
            };

            // Charge a context switch when the running task changes.
            if current != Some(idx) {
                if current.is_some() {
                    result.context_switches += 1;
                    let overhead = self.ctx_cost.min(horizon - now);
                    result.switch_overhead += overhead;
                    now += overhead;
                }
                current = Some(idx);
                if now >= horizon {
                    break;
                }
            }

            let st = &mut states[idx];
            let run = st
                .work_left
                .min(budget)
                .min(next_release.saturating_sub(now))
                .min(next_replenish.saturating_sub(now))
                .min(horizon - now);
            if run == 0 {
                // Boundary coincides with now; loop re-evaluates releases.
                now = now.max(next_release.min(next_replenish).min(horizon));
                continue;
            }
            now += run;
            st.work_left -= run;
            st.stats.cpu_received += run;
            if self.policy == Policy::NemesisEdf {
                st.alloc_left = st.alloc_left.saturating_sub(run);
            }
            if st.work_left == 0 {
                st.stats.completions += 1;
                st.stats.response.record(now - st.released_at);
            }
        }

        result.tasks = states.into_iter().map(|s| s.stats).collect();
        result
    }

    /// Policy dispatch: returns (task index, budget for this run).
    fn pick(&self, states: &[TaskState], rr_cursor: &mut usize) -> Option<(usize, Ns)> {
        match self.policy {
            Policy::NemesisEdf => {
                // Guaranteed phase: EDF among domains holding allocation.
                let winner = states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.runnable() && s.alloc_left > 0)
                    .min_by_key(|(i, s)| (s.alloc_deadline, *i));
                if let Some((i, s)) = winner {
                    return Some((i, s.alloc_left));
                }
                // Slack phase: round-robin among slack-eligible domains.
                self.rr_pick(states, rr_cursor, |s| s.runnable() && s.spec.use_slack)
                    .map(|i| (i, self.slack_quantum))
            }
            Policy::RoundRobin(quantum) => self
                .rr_pick(states, rr_cursor, |s| s.runnable())
                .map(|i| (i, quantum)),
            Policy::StaticPriority => states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.runnable())
                .max_by_key(|(i, s)| (s.spec.priority, usize::MAX - *i))
                .map(|(i, _)| (i, Ns::MAX)),
            Policy::PureEdf => states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.runnable())
                .min_by_key(|(i, s)| (s.released_at + s.spec.period, *i))
                .map(|(i, _)| (i, Ns::MAX)),
        }
    }

    fn rr_pick<F: Fn(&TaskState) -> bool>(
        &self,
        states: &[TaskState],
        cursor: &mut usize,
        eligible: F,
    ) -> Option<usize> {
        let n = states.len();
        for k in 0..n {
            let i = (*cursor + k) % n;
            if eligible(&states[i]) {
                *cursor = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_sim::time::MS;

    const HORIZON: Ns = 4_000 * MS;

    #[test]
    fn single_task_never_misses() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("video", 40 * MS, 15 * MS));
        let r = sim.run(HORIZON);
        assert_eq!(r.tasks[0].misses, 0);
        assert_eq!(r.tasks[0].releases, 100);
        assert_eq!(r.tasks[0].completions, 100);
    }

    #[test]
    fn feasible_set_all_meet_deadlines() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("video", 40 * MS, 20 * MS));
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 2 * MS));
        sim.add_task(TaskSpec::guaranteed("mixer", 20 * MS, 4 * MS));
        assert!(sim.guaranteed_utilization() <= 1.0);
        let r = sim.run(HORIZON);
        for (i, t) in r.tasks.iter().enumerate() {
            assert_eq!(t.misses, 0, "task {i} missed");
        }
    }

    #[test]
    fn guaranteed_isolated_from_overload() {
        // A greedy best-effort hog cannot hurt the guaranteed task.
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS));
        sim.add_task(TaskSpec::best_effort("hog", 10 * MS, 100 * MS));
        let r = sim.run(HORIZON);
        assert_eq!(r.tasks[0].misses, 0, "guaranteed task must not miss");
        assert!(r.tasks[1].misses > 0, "the hog must be the one to suffer");
    }

    #[test]
    fn round_robin_lets_hogs_hurt_everyone() {
        // Under round-robin, each of N runnable tasks gets 1/N of the
        // CPU; three hogs squeeze the audio task below its 30 % demand.
        let mut sim = CpuSim::new(Policy::RoundRobin(MS));
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS));
        for i in 0..3 {
            sim.add_task(TaskSpec::best_effort(&format!("hog{i}"), 10 * MS, 100 * MS));
        }
        let r = sim.run(HORIZON);
        assert!(
            r.tasks[0].misses > 0,
            "round robin cannot protect the audio task"
        );
    }

    #[test]
    fn static_priority_protects_only_the_top() {
        let mut sim = CpuSim::new(Policy::StaticPriority);
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS).with_priority(10));
        sim.add_task(TaskSpec::guaranteed("video", 40 * MS, 30 * MS).with_priority(9));
        sim.add_task(TaskSpec::best_effort("hog", 10 * MS, 100 * MS).with_priority(8));
        let r = sim.run(HORIZON);
        assert_eq!(r.tasks[0].misses, 0);
        // Priority inversion of demand: hog never runs, but video is fine
        // here; the failure mode appears when a *high*-priority hog exists.
        let mut sim2 = CpuSim::new(Policy::StaticPriority);
        sim2.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS).with_priority(5));
        sim2.add_task(TaskSpec::best_effort("hog", 10 * MS, 100 * MS).with_priority(10));
        let r2 = sim2.run(HORIZON);
        assert!(r2.tasks[0].misses > 0, "misplaced priority starves audio");
    }

    #[test]
    fn slack_lets_best_effort_finish_when_idle() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, MS));
        // Demands 5 ms/10 ms but has no share: pure slack consumer.
        sim.add_task(TaskSpec::best_effort("batch", 10 * MS, 5 * MS));
        let r = sim.run(HORIZON);
        assert_eq!(r.tasks[1].misses, 0, "plenty of slack available");
        assert!(r.tasks[1].completions > 0);
    }

    #[test]
    fn non_slack_task_does_not_exceed_share() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        // Wants 8 ms/10 ms but is only guaranteed 4 ms and refuses slack.
        sim.add_task(TaskSpec::guaranteed("greedy", 10 * MS, 8 * MS).with_share(4 * MS, 10 * MS));
        let r = sim.run(1_000 * MS);
        // Gets exactly its share.
        assert_eq!(r.tasks[0].cpu_received, 400 * MS);
        assert_eq!(r.tasks[0].completions, 0);
    }

    #[test]
    fn cpu_shares_proportional_under_saturation() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        // Both want the whole CPU; shares 60/40.
        sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 10 * MS).with_share(6 * MS, 10 * MS));
        sim.add_task(TaskSpec::guaranteed("b", 10 * MS, 10 * MS).with_share(4 * MS, 10 * MS));
        let r = sim.run(1_000 * MS);
        let a = r.tasks[0].cpu_received as f64;
        let b = r.tasks[1].cpu_received as f64;
        let ratio = a / b;
        assert!((ratio - 1.5).abs() < 0.05, "ratio={ratio}");
        assert_eq!(r.idle, 0);
    }

    #[test]
    fn edf_runs_tighter_deadline_first() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("long", 100 * MS, 50 * MS));
        sim.add_task(TaskSpec::guaranteed("short", 10 * MS, 2 * MS));
        let mut r = sim.run(HORIZON);
        // The short-period task's response time stays near its work size
        // because EDF favours its earlier deadlines.
        let p99 = r.tasks[1].response.percentile(99.0).unwrap();
        assert!(p99 <= 10 * MS, "p99={p99}");
        assert_eq!(r.tasks[1].misses, 0);
    }

    #[test]
    fn context_switch_overhead_accounted() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.ctx_cost = 10_000; // 10 µs
        sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 3 * MS));
        sim.add_task(TaskSpec::guaranteed("b", 10 * MS, 3 * MS));
        let r = sim.run(1_000 * MS);
        assert!(r.context_switches > 0);
        assert_eq!(r.switch_overhead, r.context_switches * 10_000);
    }

    #[test]
    fn phases_offset_first_release() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("a", 10 * MS, MS).with_phase(5 * MS));
        let r = sim.run(100 * MS);
        // Releases at 5,15,...,95 → 10 releases.
        assert_eq!(r.tasks[0].releases, 10);
    }

    #[test]
    fn empty_simulation_is_all_idle() {
        let sim = CpuSim::new(Policy::NemesisEdf);
        let r = sim.run(1_000);
        assert_eq!(r.idle, 1_000);
        assert!(r.tasks.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut sim = CpuSim::new(Policy::NemesisEdf);
            sim.add_task(TaskSpec::guaranteed("v", 40 * MS, 17 * MS).with_slack());
            sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 2 * MS));
            sim.add_task(TaskSpec::best_effort("be", 25 * MS, 30 * MS));
            sim.run(HORIZON)
        };
        let r1 = build();
        let r2 = build();
        for (a, b) in r1.tasks.iter().zip(&r2.tasks) {
            assert_eq!(a.cpu_received, b.cpu_received);
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.completions, b.completions);
        }
        assert_eq!(r1.context_switches, r2.context_switches);
    }

    #[test]
    fn pure_edf_collapses_under_overload() {
        // Without shares, an overloaded EDF system thrashes: the paper's
        // point that deadlines alone are not isolation.
        let mut sim = CpuSim::new(Policy::PureEdf);
        sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS));
        sim.add_task(TaskSpec::guaranteed("hog", 9 * MS, 12 * MS));
        let r = sim.run(HORIZON);
        assert!(r.tasks[0].misses > 0, "pure EDF gives no isolation");
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 4 * MS));
        sim.add_task(TaskSpec::guaranteed("b", 20 * MS, 5 * MS));
        assert!((sim.guaranteed_utilization() - 0.65).abs() < 1e-9);
    }
}
