//! The single-address-space memory model (§3.1).
//!
//! "A Nemesis kernel provides a number of distinct, schedulable entities,
//! called domains. While all domains share the same virtual address
//! space, privacy and protection are implemented using the appropriate
//! access rights in the virtual address translations."
//!
//! This module models:
//!
//! * **Stretches** — contiguous regions of the single 64-bit space, each
//!   carrying per-protection-domain access rights (the paper's examples:
//!   shared libraries readable everywhere, a unidirectional channel
//!   mapped read/write at the source and read-only at the sink).
//! * **The relocation cache** — the cost of a single address space is
//!   load-time relocation, amortized by "aim\[ing\] to reload an
//!   application at the same virtual address at which it was last
//!   executed", helped by sparse 64-bit allocation: "allocating the top
//!   32 address bits ... based on a 32-bit hash function of the code".
//! * **Context-switch costs** — the benefit: "removal of virtual address
//!   aliases which can result in significant context switch costs with
//!   caches accessed by virtual address".

use std::collections::{BTreeMap, HashMap};

use pegasus_sim::time::Ns;

/// A virtual address in the single 64-bit space.
pub type VAddr = u64;

/// A protection domain identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PdId(pub u32);

/// Access rights a protection domain holds on a stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rights {
    /// May read.
    pub read: bool,
    /// May write.
    pub write: bool,
    /// May execute.
    pub execute: bool,
}

impl Rights {
    /// Read-only access.
    pub const RO: Rights = Rights {
        read: true,
        write: false,
        execute: false,
    };
    /// Read-write access.
    pub const RW: Rights = Rights {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-execute access (code).
    pub const RX: Rights = Rights {
        read: true,
        write: false,
        execute: true,
    };

    /// No access at all.
    pub fn none(self) -> bool {
        !self.read && !self.write && !self.execute
    }
}

/// The kind of access being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch.
    Execute,
}

/// A protection fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No stretch maps the address.
    Unmapped(VAddr),
    /// The stretch exists but the domain lacks the right.
    Protection(VAddr, Access),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Unmapped(a) => write!(f, "unmapped address {a:#x}"),
            Fault::Protection(a, k) => write!(f, "protection fault at {a:#x} ({k:?})"),
        }
    }
}

impl std::error::Error for Fault {}

/// Identifier of a stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StretchId(pub usize);

#[derive(Debug, Clone)]
struct Stretch {
    base: VAddr,
    len: u64,
    rights: HashMap<PdId, Rights>,
}

/// The single system-wide address space.
///
/// # Examples
///
/// ```
/// use pegasus_nemesis::mem::{Access, AddressSpace, PdId, Rights};
///
/// let mut aspace = AddressSpace::new();
/// let src = PdId(1);
/// let sink = PdId(2);
/// // A unidirectional channel: read/write at the source, read-only at
/// // the sink — the paper's own example.
/// let chan = aspace.alloc_stretch(0x4000, None).unwrap();
/// aspace.grant(chan, src, Rights::RW);
/// aspace.grant(chan, sink, Rights::RO);
/// let base = aspace.stretch_base(chan);
/// assert!(aspace.check(src, base, Access::Write).is_ok());
/// assert!(aspace.check(sink, base, Access::Write).is_err());
/// assert!(aspace.check(sink, base, Access::Read).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct AddressSpace {
    stretches: Vec<Stretch>,
    by_base: BTreeMap<VAddr, usize>,
    next_anon: VAddr,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            stretches: Vec::new(),
            by_base: BTreeMap::new(),
            // Anonymous allocations grow from the middle of the space,
            // far from hash-placed images.
            next_anon: 0x0000_7000_0000_0000,
        }
    }

    /// Allocates a stretch of `len` bytes, at `at` if given (failing on
    /// overlap) or at the next anonymous address otherwise.
    pub fn alloc_stretch(&mut self, len: u64, at: Option<VAddr>) -> Result<StretchId, Fault> {
        assert!(len > 0, "stretch length must be positive");
        let base = match at {
            Some(base) => {
                if self.overlaps(base, len) {
                    return Err(Fault::Unmapped(base)); // address unavailable
                }
                base
            }
            None => {
                let base = self.next_anon;
                self.next_anon += len.next_multiple_of(0x1000) + 0x1000;
                base
            }
        };
        self.stretches.push(Stretch {
            base,
            len,
            rights: HashMap::new(),
        });
        let id = self.stretches.len() - 1;
        self.by_base.insert(base, id);
        Ok(StretchId(id))
    }

    fn overlaps(&self, base: VAddr, len: u64) -> bool {
        let end = base.saturating_add(len);
        // A stretch starting before `end` and finishing after `base`.
        if let Some((_, &idx)) = self.by_base.range(..end).next_back() {
            let s = &self.stretches[idx];
            if s.base + s.len > base {
                return true;
            }
        }
        false
    }

    /// Base address of a stretch.
    pub fn stretch_base(&self, id: StretchId) -> VAddr {
        self.stretches[id.0].base
    }

    /// Length of a stretch.
    pub fn stretch_len(&self, id: StretchId) -> u64 {
        self.stretches[id.0].len
    }

    /// Grants `rights` on `stretch` to protection domain `pd` (the
    /// explicit arrangement the paper requires for sharing).
    pub fn grant(&mut self, stretch: StretchId, pd: PdId, rights: Rights) {
        self.stretches[stretch.0].rights.insert(pd, rights);
    }

    /// Revokes all access `pd` holds on `stretch`.
    pub fn revoke(&mut self, stretch: StretchId, pd: PdId) {
        self.stretches[stretch.0].rights.remove(&pd);
    }

    /// Checks an access by `pd` at `addr`.
    pub fn check(&self, pd: PdId, addr: VAddr, access: Access) -> Result<(), Fault> {
        let Some((_, &idx)) = self.by_base.range(..=addr).next_back() else {
            return Err(Fault::Unmapped(addr));
        };
        let s = &self.stretches[idx];
        if addr >= s.base + s.len {
            return Err(Fault::Unmapped(addr));
        }
        let rights = s.rights.get(&pd).copied().unwrap_or_default();
        let ok = match access {
            Access::Read => rights.read,
            Access::Write => rights.write,
            Access::Execute => rights.execute,
        };
        if ok {
            Ok(())
        } else {
            Err(Fault::Protection(addr, access))
        }
    }

    /// Number of stretches allocated.
    pub fn stretch_count(&self) -> usize {
        self.stretches.len()
    }
}

/// FNV-1a, the 32-bit hash used to place images in the sparse space.
pub fn hash32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Outcome of loading an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadResult {
    /// Where the image was placed.
    pub base: VAddr,
    /// Whether a cached relocation could be reused (same address as the
    /// previous execution).
    pub reused: bool,
    /// Relocation cost paid.
    pub cost: Ns,
}

/// The relocation cache: places images by code hash and remembers where
/// each image last ran so the (expensive) relocation pass can be skipped
/// on reuse.
#[derive(Debug)]
pub struct ImageLoader {
    aspace: AddressSpace,
    /// image name → (stretch base, still resident).
    cache: HashMap<String, VAddr>,
    /// Cost of relocating one image from scratch.
    pub reloc_cost: Ns,
    /// Cost of validating and reusing a cached relocation.
    pub reuse_cost: Ns,
    /// Loads that reused a cached relocation.
    pub hits: u64,
    /// Loads that paid full relocation.
    pub misses: u64,
}

impl Default for ImageLoader {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageLoader {
    /// Creates a loader over a fresh address space with 1994-plausible
    /// costs (relocation of a large binary ≈ 10 ms; reuse ≈ 50 µs).
    pub fn new() -> Self {
        ImageLoader {
            aspace: AddressSpace::new(),
            cache: HashMap::new(),
            reloc_cost: 10_000_000,
            reuse_cost: 50_000,
            hits: 0,
            misses: 0,
        }
    }

    /// The underlying address space.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// Loads `image` (identified by name; the hash stands in for a hash
    /// of the code itself) of `len` bytes.
    ///
    /// Placement: top 32 bits from the hash, bottom 32 bits zero; on
    /// collision with a live stretch, linear-probe the next 4 GiB slot.
    /// If the image was loaded before and its slot is free or still
    /// holds it, the cached relocation is reused.
    pub fn load(&mut self, image: &str, len: u64) -> LoadResult {
        if let Some(&base) = self.cache.get(image) {
            // Already placed previously: reuse the cached relocation if
            // the address is still what the cache says (it is — the
            // stretch is never reallocated to anyone else because its
            // slot derives from this image's hash).
            self.hits += 1;
            return LoadResult {
                base,
                reused: true,
                cost: self.reuse_cost,
            };
        }
        let mut slot = hash32(image.as_bytes()) as u64;
        let base = loop {
            let candidate = slot << 32;
            match self.aspace.alloc_stretch(len, Some(candidate)) {
                Ok(_) => break candidate,
                Err(_) => slot = slot.wrapping_add(1),
            }
        };
        self.cache.insert(image.to_string(), base);
        self.misses += 1;
        LoadResult {
            base,
            reused: false,
            cost: self.reloc_cost,
        }
    }
}

/// Context-switch cost model comparing a virtually-addressed cache with
/// address aliases (per-process address spaces) against the single
/// address space.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCostModel {
    /// Lines in the virtually-addressed cache.
    pub cache_lines: u64,
    /// Cost to flush or invalidate one line.
    pub per_line_flush: Ns,
    /// Fixed cost of swapping protection context (both designs pay it).
    pub base_switch: Ns,
}

impl SwitchCostModel {
    /// A DECstation-5000-flavoured model: 64 KiB virtual cache of
    /// 16-byte lines, 20 ns per line operation, 3 µs base switch.
    pub fn decstation() -> Self {
        SwitchCostModel {
            cache_lines: 4096,
            per_line_flush: 20,
            base_switch: 3_000,
        }
    }

    /// Switch cost with per-process spaces: the virtual cache must be
    /// flushed because the same virtual address aliases different data.
    pub fn aliased_switch(&self, dirty_fraction: f64) -> Ns {
        let flush = (self.cache_lines as f64 * dirty_fraction) as u64 * self.per_line_flush;
        self.base_switch + flush
    }

    /// Switch cost in the single address space: no aliases, no flush.
    pub fn single_as_switch(&self) -> Ns {
        self.base_switch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let aspace = AddressSpace::new();
        assert_eq!(
            aspace.check(PdId(0), 0x1234, Access::Read),
            Err(Fault::Unmapped(0x1234))
        );
    }

    #[test]
    fn rights_checked_per_domain() {
        let mut aspace = AddressSpace::new();
        let s = aspace.alloc_stretch(0x1000, Some(0x10_0000)).unwrap();
        aspace.grant(s, PdId(1), Rights::RW);
        aspace.grant(s, PdId(2), Rights::RO);
        assert!(aspace.check(PdId(1), 0x10_0000, Access::Write).is_ok());
        assert!(aspace.check(PdId(2), 0x10_0000, Access::Read).is_ok());
        assert_eq!(
            aspace.check(PdId(2), 0x10_0000, Access::Write),
            Err(Fault::Protection(0x10_0000, Access::Write))
        );
        // A domain with no grant at all sees nothing.
        assert!(aspace.check(PdId(3), 0x10_0000, Access::Read).is_err());
    }

    #[test]
    fn same_address_means_same_object_for_everyone() {
        // The defining single-address-space property: one address, one
        // object; only the rights differ per domain.
        let mut aspace = AddressSpace::new();
        let lib = aspace.alloc_stretch(0x8000, None).unwrap();
        for pd in 1..=5 {
            aspace.grant(lib, PdId(pd), Rights::RX);
        }
        let base = aspace.stretch_base(lib);
        for pd in 1..=5 {
            assert!(aspace.check(PdId(pd), base + 0x10, Access::Execute).is_ok());
        }
    }

    #[test]
    fn bounds_checked() {
        let mut aspace = AddressSpace::new();
        let s = aspace.alloc_stretch(0x1000, Some(0x20_0000)).unwrap();
        aspace.grant(s, PdId(1), Rights::RW);
        assert!(aspace.check(PdId(1), 0x20_0FFF, Access::Read).is_ok());
        assert_eq!(
            aspace.check(PdId(1), 0x20_1000, Access::Read),
            Err(Fault::Unmapped(0x20_1000))
        );
    }

    #[test]
    fn overlapping_alloc_refused() {
        let mut aspace = AddressSpace::new();
        aspace.alloc_stretch(0x2000, Some(0x40_0000)).unwrap();
        assert!(aspace.alloc_stretch(0x1000, Some(0x40_1000)).is_err());
        assert!(aspace.alloc_stretch(0x1000, Some(0x3F_F001)).is_err());
        assert!(aspace.alloc_stretch(0x1000, Some(0x40_2000)).is_ok());
    }

    #[test]
    fn revoke_removes_access() {
        let mut aspace = AddressSpace::new();
        let s = aspace.alloc_stretch(0x1000, None).unwrap();
        aspace.grant(s, PdId(1), Rights::RW);
        let base = aspace.stretch_base(s);
        assert!(aspace.check(PdId(1), base, Access::Read).is_ok());
        aspace.revoke(s, PdId(1));
        assert!(aspace.check(PdId(1), base, Access::Read).is_err());
    }

    #[test]
    fn anonymous_allocations_do_not_overlap() {
        let mut aspace = AddressSpace::new();
        let a = aspace.alloc_stretch(0x1800, None).unwrap();
        let b = aspace.alloc_stretch(0x1000, None).unwrap();
        let (ab, bb) = (aspace.stretch_base(a), aspace.stretch_base(b));
        assert!(bb >= ab + 0x1800);
    }

    #[test]
    fn loader_places_by_hash_and_reuses() {
        let mut loader = ImageLoader::new();
        let first = loader.load("tv-director", 1 << 20);
        assert!(!first.reused);
        assert_eq!(first.base >> 32, hash32(b"tv-director") as u64);
        assert_eq!(first.base & 0xFFFF_FFFF, 0);
        let again = loader.load("tv-director", 1 << 20);
        assert!(again.reused);
        assert_eq!(again.base, first.base);
        assert!(again.cost < first.cost / 100);
        assert_eq!(loader.hits, 1);
        assert_eq!(loader.misses, 1);
    }

    #[test]
    fn loader_distinct_images_distinct_slots() {
        let mut loader = ImageLoader::new();
        let names: Vec<String> = (0..50).map(|i| format!("image-{i}")).collect();
        let mut bases = std::collections::HashSet::new();
        for n in &names {
            let r = loader.load(n, 4096);
            assert!(bases.insert(r.base), "collision unresolved for {n}");
        }
        assert_eq!(loader.misses, 50);
    }

    #[test]
    fn single_as_switch_cheaper_than_aliased() {
        let m = SwitchCostModel::decstation();
        let aliased = m.aliased_switch(0.5);
        let single = m.single_as_switch();
        assert_eq!(single, 3_000);
        assert_eq!(aliased, 3_000 + 2048 * 20);
        assert!(aliased > 10 * single);
    }

    #[test]
    fn hash32_is_stable_and_spread() {
        assert_eq!(hash32(b""), 0x811C_9DC5);
        // Known FNV-1a vector.
        assert_eq!(hash32(b"a"), 0xE40C_292C);
        assert_ne!(hash32(b"nemesis"), hash32(b"nemesiS"));
    }

    #[test]
    #[should_panic(expected = "stretch length must be positive")]
    fn zero_length_stretch_rejected() {
        let mut aspace = AddressSpace::new();
        let _ = aspace.alloc_stretch(0, None);
    }
}
