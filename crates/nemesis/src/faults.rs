//! Fault injection for the Nemesis control plane.
//!
//! The paper's QoS story (§3.3) is only credible if the manager holds up
//! when the system misbehaves: a rogue domain suddenly demanding the
//! whole CPU, or a misconfigured weight starving the media application.
//! A [`FaultSchedule`] declares such incidents on the virtual-time axis;
//! [`EpochDriver::run`] replays the schedule against a [`QosManager`]
//! epoch by epoch and reports how often the media application was
//! starved of its demand — the control-plane half of a scenario's
//! deadline-miss budget.

use crate::qosmgr::{AppId, QosManager};
use pegasus_sim::stats::Histogram;
use pegasus_sim::time::Ns;

/// One scheduled control-plane incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A rogue application with `weight` demanding `demand` of the CPU
    /// joins at `at` and leaves at `until`.
    LoadSpike {
        /// Onset (virtual time).
        at: Ns,
        /// End of the incident.
        until: Ns,
        /// CPU fraction the rogue demands, in `[0, 1]`.
        demand: f64,
        /// User weight the rogue competes with.
        weight: f64,
    },
    /// The media application's weight is multiplied by `factor`
    /// (a misconfiguration window) between `at` and `until`.
    WeightCut {
        /// Onset (virtual time).
        at: Ns,
        /// End of the incident.
        until: Ns,
        /// Multiplier applied to the media app's weight (< 1 starves).
        factor: f64,
    },
}

impl Fault {
    fn active(&self, now: Ns) -> bool {
        let (at, until) = match *self {
            Fault::LoadSpike { at, until, .. } => (at, until),
            Fault::WeightCut { at, until, .. } => (at, until),
        };
        now >= at && now < until
    }
}

/// A declarative list of control-plane incidents.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// The incidents, in any order.
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// A schedule with no incidents.
    pub fn none() -> Self {
        Self::default()
    }
}

/// What an epoch replay observed.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Epochs simulated.
    pub epochs: u64,
    /// Epochs in which the media application was granted less than its
    /// demand (control-plane deadline misses).
    pub starved_epochs: u64,
    /// Per-epoch delivered quality of the media app, in thousandths
    /// (grant ÷ demand × 1000), for percentile reporting.
    pub quality_milli: Histogram,
}

/// Replays a [`FaultSchedule`] against a [`QosManager`].
pub struct EpochDriver;

impl EpochDriver {
    /// Runs `mgr` from time 0 to `until` in steps of `epoch`. Every
    /// epoch the media application `media` demands `media_demand`, the
    /// background apps keep whatever demand was last observed for them,
    /// active [`Fault::LoadSpike`]s contribute rogue apps, and active
    /// [`Fault::WeightCut`]s scale the media weight; then the manager
    /// rebalances and the media grant is scored.
    pub fn run(
        mgr: &mut QosManager,
        media: AppId,
        media_demand: f64,
        schedule: &FaultSchedule,
        epoch: Ns,
        until: Ns,
    ) -> EpochReport {
        assert!(epoch > 0, "epoch must be positive");
        let mut report = EpochReport::default();
        // The driver pins the media weight to a 1.0 baseline for the
        // run (the manager has no weight getter to restore from); spike
        // weights are expressed relative to it.
        let media_weight = 1.0;
        mgr.set_weight(media, media_weight);
        let mut spikes: Vec<(usize, AppId)> = Vec::new();
        let mut now = 0;
        while now < until {
            mgr.observe(media, media_demand);
            // Register/deregister spike apps as their windows open/close.
            for (i, fault) in schedule.faults.iter().enumerate() {
                if let Fault::LoadSpike { demand, weight, .. } = *fault {
                    let registered = spikes.iter().position(|&(fi, _)| fi == i);
                    match (fault.active(now), registered) {
                        (true, None) => {
                            let id = mgr.add_app(&format!("rogue-{i}"), weight);
                            mgr.observe(id, demand);
                            spikes.push((i, id));
                        }
                        (true, Some(k)) => mgr.observe(spikes[k].1, demand),
                        (false, Some(k)) => {
                            let (_, id) = spikes.remove(k);
                            mgr.remove_app(id);
                        }
                        (false, None) => {}
                    }
                }
            }
            let mut weight = media_weight;
            for fault in &schedule.faults {
                if let Fault::WeightCut { factor, .. } = *fault {
                    if fault.active(now) {
                        weight *= factor;
                    }
                }
            }
            mgr.set_weight(media, weight.max(1e-6));
            mgr.rebalance();
            let granted = mgr.granted(media);
            report.epochs += 1;
            if granted + 1e-9 < media_demand {
                report.starved_epochs += 1;
            }
            let quality = if media_demand > 0.0 {
                (granted / media_demand).min(1.0)
            } else {
                1.0
            };
            report
                .quality_milli
                .record((quality * 1000.0).round() as u64);
            now += epoch;
        }
        for (_, id) in spikes {
            mgr.remove_app(id);
        }
        mgr.set_weight(media, media_weight);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_sim::time::MS;

    fn mgr_with_media() -> (QosManager, AppId) {
        let mut mgr = QosManager::new(0.9, 1.0);
        let media = mgr.add_app("media", 1.0);
        (mgr, media)
    }

    #[test]
    fn quiet_schedule_never_starves() {
        let (mut mgr, media) = mgr_with_media();
        let r = EpochDriver::run(
            &mut mgr,
            media,
            0.5,
            &FaultSchedule::none(),
            10 * MS,
            200 * MS,
        );
        assert_eq!(r.epochs, 20);
        assert_eq!(r.starved_epochs, 0);
        assert_eq!(r.quality_milli.max(), Some(1000));
    }

    #[test]
    fn load_spike_starves_only_its_window() {
        let (mut mgr, media) = mgr_with_media();
        let schedule = FaultSchedule {
            faults: vec![Fault::LoadSpike {
                at: 50 * MS,
                until: 100 * MS,
                demand: 1.0,
                weight: 8.0,
            }],
        };
        let r = EpochDriver::run(&mut mgr, media, 0.6, &schedule, 10 * MS, 200 * MS);
        // 5 epochs inside the window: media gets 0.9/9 = 0.1 < 0.6.
        assert_eq!(r.starved_epochs, 5, "starved {} epochs", r.starved_epochs);
        assert!(r.quality_milli.min().unwrap() < 200);
    }

    #[test]
    fn weight_cut_starves_against_background_load() {
        let mut mgr = QosManager::new(0.9, 1.0);
        let media = mgr.add_app("media", 1.0);
        let bg = mgr.add_app("batch", 1.0);
        mgr.observe(bg, 1.0);
        let schedule = FaultSchedule {
            faults: vec![Fault::WeightCut {
                at: 0,
                until: 50 * MS,
                factor: 0.01,
            }],
        };
        let r = EpochDriver::run(&mut mgr, media, 0.6, &schedule, 10 * MS, 100 * MS);
        assert!(r.starved_epochs >= 5, "starved {}", r.starved_epochs);
        // After the run the media weight is restored.
        let mut check = mgr;
        check.observe(media, 1.0);
        check.rebalance();
        assert!(check.granted(media) > 0.3);
    }

    #[test]
    fn spikes_are_cleaned_up_after_the_run() {
        let (mut mgr, media) = mgr_with_media();
        let schedule = FaultSchedule {
            faults: vec![Fault::LoadSpike {
                at: 0,
                until: 100 * MS,
                demand: 1.0,
                weight: 4.0,
            }],
        };
        let _ = EpochDriver::run(&mut mgr, media, 0.5, &schedule, 10 * MS, 100 * MS);
        // With the rogue removed, media gets its full demand again.
        mgr.observe(media, 0.5);
        mgr.rebalance();
        assert!((mgr.granted(media) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_schedule_same_report() {
        let run = || {
            let (mut mgr, media) = mgr_with_media();
            let schedule = FaultSchedule {
                faults: vec![
                    Fault::LoadSpike {
                        at: 20 * MS,
                        until: 60 * MS,
                        demand: 0.9,
                        weight: 3.0,
                    },
                    Fault::WeightCut {
                        at: 40 * MS,
                        until: 80 * MS,
                        factor: 0.2,
                    },
                ],
            };
            let r = EpochDriver::run(&mut mgr, media, 0.4, &schedule, 10 * MS, 120 * MS);
            (
                r.epochs,
                r.starved_epochs,
                r.quality_milli.clone().summarize(),
            )
        };
        assert_eq!(run(), run());
    }
}
