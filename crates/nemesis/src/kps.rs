//! Kernel-Privileged Sections (§3.5).
//!
//! "Device drivers and other trusted modules need to be able to protect
//! themselves against interrupts, have access to privileged instructions,
//! etc., for some part of their operation. The code that requires this
//! access is often a tiny proportion of the total module; however, most
//! operating systems would require that the whole module run in kernel
//! mode." Nemesis instead lets privileged domains bracket just those
//! sections, with try/finally semantics so an exception raised inside the
//! section forces the processor out of kernel mode before any outer
//! handler runs.
//!
//! [`with_kps`] is the `begin_KPS()`/`end_KPS()` pair of Figure 5,
//! expressed as a closure with a drop guard: the `FINALLY` half runs even
//! on panic. The accounting (privileged time, interrupt-blocked windows)
//! feeds experiment E9, which compares a module using KPS against the
//! same module run wholly in kernel mode.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::time::Ns;

/// Processor privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unprivileged execution.
    User,
    /// Kernel mode: privileged instructions legal, interrupts masked.
    Kernel,
}

/// Cost model for entering and leaving kernel mode.
///
/// The paper notes the implementation is "highly processor dependent —
/// on 68k, MIPS and ARM processors it leads to various traps ... while
/// the aim on the Alpha is to implement a PAL instruction".
#[derive(Debug, Clone, Copy)]
pub struct KpsCosts {
    /// Trap into kernel mode.
    pub enter: Ns,
    /// Return to user mode.
    pub exit: Ns,
}

impl KpsCosts {
    /// A MIPS-style trap pair (about a microsecond each way in 1994).
    pub fn mips_trap() -> Self {
        KpsCosts {
            enter: 1_000,
            exit: 1_000,
        }
    }

    /// An Alpha PAL-call pair (a few hundred nanoseconds).
    pub fn alpha_pal() -> Self {
        KpsCosts {
            enter: 300,
            exit: 300,
        }
    }
}

/// One simulated processor with KPS accounting.
#[derive(Debug)]
pub struct Cpu {
    mode: Mode,
    kps_depth: u32,
    costs: KpsCosts,
    clock: Ns,
    /// Total virtual time spent in kernel mode.
    pub privileged_time: Ns,
    /// Number of KPS entries executed.
    pub kps_entries: u64,
    /// Longest single continuous window with interrupts masked.
    pub max_masked_window: Ns,
    window_start: Ns,
}

impl Cpu {
    /// Creates a CPU in user mode with the given trap costs.
    pub fn new(costs: KpsCosts) -> Self {
        Cpu {
            mode: Mode::User,
            kps_depth: 0,
            costs,
            clock: 0,
            privileged_time: 0,
            kps_entries: 0,
            max_masked_window: 0,
            window_start: 0,
        }
    }

    /// Current privilege level.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current KPS nesting depth.
    pub fn kps_depth(&self) -> u32 {
        self.kps_depth
    }

    /// The CPU's virtual clock.
    pub fn clock(&self) -> Ns {
        self.clock
    }

    /// Executes `work_ns` of straight-line code at the current privilege.
    pub fn execute(&mut self, work_ns: Ns) {
        self.clock += work_ns;
        if self.mode == Mode::Kernel {
            self.privileged_time += work_ns;
        }
    }

    fn enter_kernel(&mut self) {
        self.clock += self.costs.enter;
        self.privileged_time += self.costs.enter;
        if self.kps_depth == 0 {
            self.mode = Mode::Kernel;
            self.window_start = self.clock - self.costs.enter;
        }
        self.kps_depth += 1;
        self.kps_entries += 1;
    }

    fn exit_kernel(&mut self) {
        debug_assert!(self.kps_depth > 0);
        self.clock += self.costs.exit;
        self.privileged_time += self.costs.exit;
        self.kps_depth -= 1;
        if self.kps_depth == 0 {
            self.mode = Mode::User;
            let window = self.clock - self.window_start;
            self.max_masked_window = self.max_masked_window.max(window);
        }
    }
}

/// Shared CPU handle, so the drop guard can reach the CPU during unwind.
pub type CpuRef = Rc<RefCell<Cpu>>;

/// Creates a shared CPU.
pub fn cpu(costs: KpsCosts) -> CpuRef {
    Rc::new(RefCell::new(Cpu::new(costs)))
}

struct KpsGuard {
    cpu: CpuRef,
}

impl Drop for KpsGuard {
    fn drop(&mut self) {
        // The FINALLY of Figure 5: leave kernel mode no matter how the
        // section exits — normal return or unwinding exception.
        self.cpu.borrow_mut().exit_kernel();
    }
}

/// Runs `body` as a kernel-privileged section on `cpu`.
///
/// Equivalent to the paper's `begin_KPS(); try { ... } finally
/// { end_KPS(); }`: the mode is restored even if `body` panics (the
/// panic propagates after the exit). Sections nest; the processor
/// returns to user mode only when the outermost section ends.
///
/// # Examples
///
/// ```
/// use pegasus_nemesis::kps::{cpu, with_kps, KpsCosts, Mode};
///
/// let c = cpu(KpsCosts::mips_trap());
/// with_kps(&c, |c| {
///     assert_eq!(c.borrow().mode(), Mode::Kernel);
///     c.borrow_mut().execute(500);
/// });
/// assert_eq!(c.borrow().mode(), Mode::User);
/// ```
pub fn with_kps<R>(cpu: &CpuRef, body: impl FnOnce(&CpuRef) -> R) -> R {
    cpu.borrow_mut().enter_kernel();
    let _guard = KpsGuard { cpu: cpu.clone() };
    body(cpu)
}

/// Runs an entire module in kernel mode — the conventional-OS baseline
/// E9 compares against. The whole `work_ns` counts as privileged and
/// interrupt-masking time.
pub fn whole_module_kernel(cpu: &CpuRef, work_ns: Ns) {
    with_kps(cpu, |c| c.borrow_mut().execute(work_ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_enters_and_leaves() {
        let c = cpu(KpsCosts::mips_trap());
        assert_eq!(c.borrow().mode(), Mode::User);
        with_kps(&c, |c| {
            assert_eq!(c.borrow().mode(), Mode::Kernel);
        });
        assert_eq!(c.borrow().mode(), Mode::User);
        assert_eq!(c.borrow().kps_entries, 1);
    }

    #[test]
    fn panic_inside_section_still_exits() {
        let c = cpu(KpsCosts::mips_trap());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_kps(&c, |_| panic!("device exploded"));
        }));
        assert!(result.is_err());
        // The FINALLY ran: we are back in user mode with depth 0.
        assert_eq!(c.borrow().mode(), Mode::User);
        assert_eq!(c.borrow().kps_depth(), 0);
    }

    #[test]
    fn sections_nest() {
        let c = cpu(KpsCosts::alpha_pal());
        with_kps(&c, |c| {
            with_kps(c, |c| {
                assert_eq!(c.borrow().kps_depth(), 2);
                assert_eq!(c.borrow().mode(), Mode::Kernel);
            });
            assert_eq!(c.borrow().kps_depth(), 1);
            assert_eq!(
                c.borrow().mode(),
                Mode::Kernel,
                "still privileged at depth 1"
            );
        });
        assert_eq!(c.borrow().mode(), Mode::User);
    }

    #[test]
    fn privileged_time_counts_only_kernel_work() {
        let c = cpu(KpsCosts::mips_trap());
        c.borrow_mut().execute(10_000); // user work
        with_kps(&c, |c| c.borrow_mut().execute(500));
        let cp = c.borrow();
        // 500 ns of work + 1 µs enter + 1 µs exit.
        assert_eq!(cp.privileged_time, 2_500);
        assert_eq!(cp.clock(), 12_500);
    }

    #[test]
    fn kps_keeps_masked_window_small() {
        // A driver doing 100 µs of work of which only 2 µs needs
        // privilege: KPS masks interrupts for ~4 µs; whole-module
        // kernel mode masks for the full 100 µs.
        let kps = cpu(KpsCosts::mips_trap());
        kps.borrow_mut().execute(49_000);
        with_kps(&kps, |c| c.borrow_mut().execute(2_000));
        kps.borrow_mut().execute(49_000);

        let whole = cpu(KpsCosts::mips_trap());
        whole_module_kernel(&whole, 100_000);

        assert_eq!(kps.borrow().max_masked_window, 4_000);
        assert_eq!(whole.borrow().max_masked_window, 102_000);
        assert!(kps.borrow().privileged_time < whole.borrow().privileged_time / 10);
    }

    #[test]
    fn nested_sections_count_one_masked_window() {
        let c = cpu(KpsCosts::alpha_pal());
        with_kps(&c, |c| {
            c.borrow_mut().execute(100);
            with_kps(c, |c| c.borrow_mut().execute(100));
            c.borrow_mut().execute(100);
        });
        // One continuous window: 4 PAL calls + 300 work.
        assert_eq!(c.borrow().max_masked_window, 4 * 300 + 300);
        assert_eq!(c.borrow().kps_entries, 2);
    }

    #[test]
    fn return_value_passes_through() {
        let c = cpu(KpsCosts::alpha_pal());
        let v = with_kps(&c, |_| 42);
        assert_eq!(v, 42);
    }
}
