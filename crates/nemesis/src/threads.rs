//! User-level thread scheduling over activations (§3.2).
//!
//! "Because thread scheduling is performed by the application, the
//! user-level scheduler has direct control over the behaviour of its
//! threads"; and activations provide "a means of informing applications
//! when they have the processor; a user-level scheduler can use this
//! information, together with the current time, to make more informed
//! decisions about the fate of the threads which it controls."
//!
//! [`UlsSim`] measures exactly that benefit. A domain receives CPU quanta
//! (from [`crate::vp::periodic_quanta`] or a recorded scheduler run) and
//! multiplexes periodic micro-threads over them under one of two models:
//!
//! * [`UlsPolicy::InformedEdf`] — the activation model: on every entry
//!   the scheduler learns `now` and `time_left`, picks the
//!   earliest-deadline runnable thread, and re-decides at every release
//!   boundary it can compute from the published time.
//! * [`UlsPolicy::TransparentResume`] — the classic kernel-threads
//!   model: the domain is resumed wherever it was; the previously
//!   running thread simply continues (run-to-completion within the
//!   quantum) and the scheduler picks threads in naive FIFO order,
//!   because it never learns when or for how long it has the CPU.

use pegasus_sim::stats::Histogram;
use pegasus_sim::time::Ns;

/// A periodic micro-thread inside one domain.
#[derive(Debug, Clone)]
pub struct UlThread {
    /// Name for reports.
    pub name: String,
    /// Release period (deadline is the next release).
    pub period: Ns,
    /// CPU demand per job.
    pub work: Ns,
}

/// The two user-level scheduling models compared in experiment E7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UlsPolicy {
    /// Activation-informed earliest-deadline-first.
    InformedEdf,
    /// Transparent resumption: continue the interrupted thread; FIFO
    /// pick order; no intra-quantum preemption.
    TransparentResume,
}

/// Per-thread outcome of a [`UlsSim`] run.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// Jobs released.
    pub releases: u64,
    /// Jobs finished by their deadline.
    pub completions: u64,
    /// Jobs that missed (dropped at the next release).
    pub misses: u64,
    /// Response times of completed jobs.
    pub response: Histogram,
}

impl ThreadStats {
    /// Miss rate over released jobs.
    pub fn miss_rate(&self) -> f64 {
        if self.releases == 0 {
            0.0
        } else {
            self.misses as f64 / self.releases as f64
        }
    }
}

struct ThreadState {
    spec: UlThread,
    next_release: Ns,
    work_left: Ns,
    released_at: Ns,
    stats: ThreadStats,
}

/// Simulates one domain's user-level scheduler over a quantum schedule.
pub struct UlsSim {
    threads: Vec<UlThread>,
    policy: UlsPolicy,
}

impl UlsSim {
    /// Creates a simulator for `policy`.
    pub fn new(policy: UlsPolicy) -> Self {
        UlsSim {
            threads: Vec::new(),
            policy,
        }
    }

    /// Adds a periodic thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread's period is zero.
    pub fn add_thread(&mut self, t: UlThread) -> usize {
        assert!(t.period > 0);
        self.threads.push(t);
        self.threads.len() - 1
    }

    /// Runs the domain over the given `(start, len)` quanta, returning
    /// per-thread statistics. Quanta must be sorted and non-overlapping.
    pub fn run(&self, quanta: &[(Ns, Ns)], horizon: Ns) -> Vec<ThreadStats> {
        let mut ts: Vec<ThreadState> = self
            .threads
            .iter()
            .map(|spec| ThreadState {
                next_release: 0,
                work_left: 0,
                released_at: 0,
                spec: spec.clone(),
                stats: ThreadStats::default(),
            })
            .collect();
        let mut current: Option<usize> = None;

        let release = |ts: &mut Vec<ThreadState>, now: Ns| {
            for t in ts.iter_mut() {
                while t.next_release <= now {
                    if t.work_left > 0 {
                        t.stats.misses += 1;
                        t.work_left = 0;
                    }
                    t.stats.releases += 1;
                    t.work_left = t.spec.work;
                    t.released_at = t.next_release;
                    t.next_release += t.spec.period;
                }
            }
        };

        for &(start, len) in quanta {
            let end = (start + len).min(horizon);
            let mut now = start.min(horizon);
            while now < end {
                release(&mut ts, now);
                // Pick a thread.
                let pick = match self.policy {
                    UlsPolicy::InformedEdf => ts
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.work_left > 0)
                        .min_by_key(|(i, t)| (t.released_at + t.spec.period, *i))
                        .map(|(i, _)| i),
                    UlsPolicy::TransparentResume => match current {
                        Some(c) if ts[c].work_left > 0 => Some(c),
                        _ => ts.iter().position(|t| t.work_left > 0),
                    },
                };
                let Some(idx) = pick else {
                    // Nothing runnable: idle to the next release inside
                    // the quantum (yield back would be equivalent).
                    let next_rel = ts.iter().map(|t| t.next_release).min().unwrap_or(end);
                    now = next_rel.min(end);
                    continue;
                };
                current = Some(idx);
                // Informed schedulers re-decide at release boundaries
                // they compute from the published time; transparent ones
                // cannot be interrupted within the quantum.
                let slice_end = match self.policy {
                    UlsPolicy::InformedEdf => {
                        let next_rel = ts.iter().map(|t| t.next_release).min().unwrap_or(end);
                        next_rel.min(end)
                    }
                    UlsPolicy::TransparentResume => end,
                };
                let t = &mut ts[idx];
                let run = t.work_left.min(slice_end - now);
                now += run;
                t.work_left -= run;
                if t.work_left == 0 {
                    t.stats.completions += 1;
                    t.stats.response.record(now - t.released_at);
                    current = None;
                }
            }
        }
        // Account jobs still pending at the horizon whose deadlines passed.
        for t in ts.iter_mut() {
            if t.work_left > 0 && t.released_at + t.spec.period <= horizon {
                t.stats.misses += 1;
            }
        }
        ts.into_iter().map(|t| t.stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp::periodic_quanta;
    use pegasus_sim::time::MS;

    fn av_threads() -> Vec<UlThread> {
        vec![
            UlThread {
                name: "audio".into(),
                period: 10 * MS,
                work: MS,
            },
            UlThread {
                name: "video".into(),
                period: 40 * MS,
                work: 12 * MS,
            },
        ]
    }

    fn run(policy: UlsPolicy, slice: Ns, period: Ns, horizon: Ns) -> Vec<ThreadStats> {
        let mut sim = UlsSim::new(policy);
        for t in av_threads() {
            sim.add_thread(t);
        }
        sim.run(&periodic_quanta(slice, period, horizon), horizon)
    }

    #[test]
    fn informed_edf_protects_audio() {
        // Domain holds 5 ms per 10 ms: enough for audio (1/10) + video
        // (12/40 = 3/10) with headroom — if scheduled well.
        let stats = run(UlsPolicy::InformedEdf, 5 * MS, 10 * MS, 4_000 * MS);
        assert_eq!(stats[0].misses, 0, "audio misses under informed EDF");
        assert_eq!(stats[1].misses, 0, "video misses under informed EDF");
    }

    #[test]
    fn transparent_resume_starves_audio() {
        // Same supply, but the video thread, once running, occupies every
        // quantum until its 12 ms job finishes; audio jobs die waiting.
        let stats = run(UlsPolicy::TransparentResume, 5 * MS, 10 * MS, 4_000 * MS);
        assert!(
            stats[0].misses > 0,
            "transparent resume should starve audio (misses={})",
            stats[0].misses
        );
    }

    #[test]
    fn single_thread_equivalent_under_both() {
        for policy in [UlsPolicy::InformedEdf, UlsPolicy::TransparentResume] {
            let mut sim = UlsSim::new(policy);
            sim.add_thread(UlThread {
                name: "only".into(),
                period: 10 * MS,
                work: 2 * MS,
            });
            let stats = sim.run(&periodic_quanta(5 * MS, 10 * MS, 1_000 * MS), 1_000 * MS);
            assert_eq!(stats[0].misses, 0, "{policy:?}");
            assert_eq!(stats[0].completions, 100);
        }
    }

    #[test]
    fn no_quanta_means_every_deadline_missed() {
        let mut sim = UlsSim::new(UlsPolicy::InformedEdf);
        sim.add_thread(UlThread {
            name: "t".into(),
            period: 10 * MS,
            work: MS,
        });
        let stats = sim.run(&[], 100 * MS);
        assert_eq!(stats[0].completions, 0);
    }

    #[test]
    fn overload_inside_domain_misses_under_both() {
        for policy in [UlsPolicy::InformedEdf, UlsPolicy::TransparentResume] {
            let mut sim = UlsSim::new(policy);
            sim.add_thread(UlThread {
                name: "fat".into(),
                period: 10 * MS,
                work: 8 * MS,
            });
            let stats = sim.run(&periodic_quanta(4 * MS, 10 * MS, 1_000 * MS), 1_000 * MS);
            assert!(stats[0].misses > 0, "{policy:?}");
        }
    }

    #[test]
    fn response_times_tighter_with_informed_edf() {
        let mut informed = run(UlsPolicy::InformedEdf, 5 * MS, 10 * MS, 4_000 * MS);
        let mut transparent = run(UlsPolicy::TransparentResume, 5 * MS, 10 * MS, 4_000 * MS);
        let ip99 = informed[0].response.percentile(99.0).unwrap();
        let tp99 = transparent[0].response.percentile(99.0).unwrap_or(u64::MAX);
        assert!(
            ip99 < tp99,
            "informed p99 {ip99} should beat transparent p99 {tp99}"
        );
    }

    #[test]
    fn quantum_clipped_by_horizon() {
        let mut sim = UlsSim::new(UlsPolicy::InformedEdf);
        sim.add_thread(UlThread {
            name: "t".into(),
            period: 10 * MS,
            work: 10 * MS,
        });
        // A quantum that extends past the horizon is clipped.
        let stats = sim.run(&[(0, 100 * MS)], 5 * MS);
        assert_eq!(stats[0].completions, 0);
        assert_eq!(stats[0].releases, 1);
    }
}
