//! The Nemesis microkernel, as modelled for the Pegasus reproduction.
//!
//! Section 3 of the paper describes a kernel with five unusual features,
//! each of which gets a module here:
//!
//! * [`mem`] — a **single 64-bit address space** shared by all domains,
//!   with privacy and protection from per-domain access rights, and a
//!   relocation cache that reloads images at their previous addresses
//!   (§3.1).
//! * [`vp`] — the **virtual-processor model**: domains are *activated*
//!   at an entry point with scheduling information, instead of being
//!   transparently resumed (§3.2).
//! * [`threads`] — user-level thread schedulers built on activations,
//!   the "scheduler activations"-like layer (§3.2).
//! * [`sched`] — **domain scheduling**: weighted (slice, period) shares
//!   with earliest-deadline-first selection among domains holding
//!   allocation, plus the baseline policies the experiments compare
//!   against (§3.3).
//! * [`qosmgr`] — the **Quality-of-Service manager** domain that adjusts
//!   scheduler weights on a longer time scale (§3.3).
//! * [`events`] — the single inter-domain communication mechanism:
//!   counted events with attached closures, synchronous and asynchronous
//!   signalling, and event-pair + shared-queue IDC channels (§3.4).
//! * [`kps`] — **kernel-privileged sections**: dynamically scoped access
//!   to kernel mode with try/finally semantics (§3.5).
//! * [`faults`] — declarative fault schedules (rogue load spikes, weight
//!   misconfigurations) replayed against the QoS manager, so scenario
//!   harnesses can measure how the control plane degrades.

pub mod events;
pub mod faults;
pub mod kps;
pub mod mem;
pub mod qosmgr;
pub mod sched;
pub mod threads;
pub mod vp;

pub use sched::{CpuSim, Policy, Share, TaskSpec, TaskStats};
pub use vp::{ActivationReason, DomainId};
