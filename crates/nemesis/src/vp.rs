//! The virtual-processor model (§3.2).
//!
//! A Nemesis domain differs from a Unix process in how the processor is
//! presented to it. A process is *resumed* "to exactly the state in which
//! it was when it was suspended", hiding processor availability. A domain
//! is *activated*: the kernel stores the outgoing context in the Domain
//! Information Block (DIB) shared between kernel and domain, and enters
//! the domain at the address in the DIB's activation vector, passing the
//! reason and the current time. A user-level scheduler at that entry
//! point can then make informed decisions — the mechanism of scheduler
//! activations.
//!
//! This module models the DIB and the activation protocol; the
//! measurable consequences for user-level scheduling live in
//! [`crate::threads`].

use pegasus_sim::time::Ns;

/// Identifier of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub usize);

/// Why a domain was given the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationReason {
    /// A fresh CPU allocation (start of a quantum).
    Allocation,
    /// Events arrived while the domain was not running.
    EventsPending,
    /// The domain was preempted earlier and is being re-entered.
    Resume,
}

/// A saved processor context. The fields stand in for the register file
/// a real kernel would save; the `pc` is what the tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuContext {
    /// Program counter.
    pub pc: u64,
    /// Stack pointer.
    pub sp: u64,
}

/// The Domain Information Block: the data structure shared between the
/// kernel and a domain.
#[derive(Debug, Clone)]
pub struct Dib {
    /// Entry point the kernel jumps to on activation.
    pub activation_vector: u64,
    /// Context saved at the last deactivation, for the domain's own
    /// scheduler to resume from if it chooses.
    pub saved_context: Option<CpuContext>,
    /// Kernel-provided current time, written at activation.
    pub now: Ns,
    /// Time remaining in the current allocation, written at activation.
    pub time_left: Ns,
    /// Number of events pending at activation.
    pub events_pending: u64,
    /// Set while the domain is running activations-disabled (it is
    /// executing its user-level scheduler); a kernel preemption during
    /// this window saves into `saved_context` and re-enters at the
    /// vector with [`ActivationReason::Resume`].
    pub activations_disabled: bool,
}

impl Dib {
    /// Creates a DIB with the given activation entry point.
    pub fn new(activation_vector: u64) -> Self {
        Dib {
            activation_vector,
            saved_context: None,
            now: 0,
            time_left: 0,
            events_pending: 0,
            activations_disabled: false,
        }
    }
}

/// What the kernel does on a scheduler decision: the activation upcall
/// record handed to the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// Entry address jumped to.
    pub entry: u64,
    /// Why the domain runs.
    pub reason: ActivationReason,
    /// Wall-clock (virtual) time of entry.
    pub now: Ns,
    /// Allocation remaining.
    pub time_left: Ns,
}

/// Kernel-side per-domain record: deactivation and activation as the
/// paper defines them.
#[derive(Debug, Clone)]
pub struct DomainControl {
    /// The shared DIB.
    pub dib: Dib,
    /// Count of activations delivered.
    pub activations: u64,
    /// Count of transparent resumes delivered (only happens when the
    /// domain was preempted inside its user-level scheduler).
    pub resumes: u64,
}

impl DomainControl {
    /// Creates the control block for a domain entered at `vector`.
    pub fn new(vector: u64) -> Self {
        DomainControl {
            dib: Dib::new(vector),
            activations: 0,
            resumes: 0,
        }
    }

    /// Deactivation: store the outgoing context into the DIB.
    pub fn deactivate(&mut self, ctx: CpuContext) {
        self.dib.saved_context = Some(ctx);
    }

    /// Activation: produce the upcall record and update the DIB with the
    /// scheduling information the kernel publishes.
    ///
    /// If the domain was preempted with activations disabled (it was in
    /// its user-level scheduler), the kernel resumes the saved context
    /// transparently instead — the one case where resume semantics
    /// survive.
    pub fn activate(
        &mut self,
        reason: ActivationReason,
        now: Ns,
        time_left: Ns,
        events: u64,
    ) -> Activation {
        self.dib.now = now;
        self.dib.time_left = time_left;
        self.dib.events_pending = events;
        if self.dib.activations_disabled {
            self.resumes += 1;
            let ctx = self.dib.saved_context.unwrap_or_default();
            Activation {
                entry: ctx.pc,
                reason: ActivationReason::Resume,
                now,
                time_left,
            }
        } else {
            self.activations += 1;
            Activation {
                entry: self.dib.activation_vector,
                reason,
                now,
                time_left,
            }
        }
    }
}

/// Generates the CPU quanta a domain with share (`slice`, `period`)
/// receives up to `horizon` — the input the user-level scheduling
/// experiments feed to [`crate::threads::UlsSim`].
pub fn periodic_quanta(slice: Ns, period: Ns, horizon: Ns) -> Vec<(Ns, Ns)> {
    assert!(period > 0 && slice <= period);
    let mut out = Vec::new();
    let mut t = 0;
    while t < horizon {
        out.push((t, slice.min(horizon - t)));
        t += period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_enters_at_vector_with_info() {
        let mut dc = DomainControl::new(0x1000);
        let act = dc.activate(ActivationReason::Allocation, 500, 4_000, 2);
        assert_eq!(act.entry, 0x1000);
        assert_eq!(act.reason, ActivationReason::Allocation);
        assert_eq!(act.now, 500);
        assert_eq!(act.time_left, 4_000);
        assert_eq!(dc.dib.events_pending, 2);
        assert_eq!(dc.activations, 1);
        assert_eq!(dc.resumes, 0);
    }

    #[test]
    fn deactivation_saves_context() {
        let mut dc = DomainControl::new(0x1000);
        dc.deactivate(CpuContext {
            pc: 0x2222,
            sp: 0x8000,
        });
        assert_eq!(dc.dib.saved_context.unwrap().pc, 0x2222);
    }

    #[test]
    fn preemption_in_uls_resumes_transparently() {
        let mut dc = DomainControl::new(0x1000);
        dc.dib.activations_disabled = true;
        dc.deactivate(CpuContext { pc: 0x3333, sp: 0 });
        let act = dc.activate(ActivationReason::Allocation, 10, 100, 0);
        assert_eq!(act.reason, ActivationReason::Resume);
        assert_eq!(
            act.entry, 0x3333,
            "re-enters the saved context, not the vector"
        );
        assert_eq!(dc.resumes, 1);
        assert_eq!(dc.activations, 0);
    }

    #[test]
    fn dib_time_updated_each_activation() {
        let mut dc = DomainControl::new(0);
        dc.activate(ActivationReason::Allocation, 100, 50, 0);
        assert_eq!(dc.dib.now, 100);
        dc.activate(ActivationReason::EventsPending, 900, 10, 5);
        assert_eq!(dc.dib.now, 900);
        assert_eq!(dc.dib.time_left, 10);
        assert_eq!(dc.dib.events_pending, 5);
    }

    #[test]
    fn quanta_cover_share() {
        let q = periodic_quanta(4, 10, 35);
        assert_eq!(q, vec![(0, 4), (10, 4), (20, 4), (30, 4)]);
    }

    #[test]
    fn quanta_clip_at_horizon() {
        let q = periodic_quanta(8, 10, 25);
        assert_eq!(q, vec![(0, 8), (10, 8), (20, 5)]);
    }

    #[test]
    #[should_panic]
    fn quanta_reject_slice_beyond_period() {
        let _ = periodic_quanta(11, 10, 100);
    }
}
