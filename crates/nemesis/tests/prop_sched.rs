//! Property tests: conservation laws and isolation guarantees of the
//! Nemesis scheduler over randomized task sets.

use proptest::prelude::*;

use pegasus_nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_sim::time::{Ns, MS};

/// Strategy: a feasible guaranteed task (work == slice ≤ period).
fn feasible_task() -> impl Strategy<Value = (Ns, Ns)> {
    (1u64..20, 1u64..10).prop_map(|(period_ms, frac)| {
        let period = period_ms * MS;
        let work = period * frac / 20; // ≤ 50% of its period
        (period, work.max(1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cpu_time_is_conserved(tasks in proptest::collection::vec(feasible_task(), 1..6)) {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        let mut util = 0.0;
        for (i, &(period, work)) in tasks.iter().enumerate() {
            util += work as f64 / period as f64;
            if util > 0.95 {
                break;
            }
            sim.add_task(TaskSpec::guaranteed(&format!("t{i}"), period, work));
        }
        let horizon = 2_000 * MS;
        let r = sim.run(horizon);
        let used: Ns = r.tasks.iter().map(|t| t.cpu_received).sum();
        // Conservation: busy + idle + switch overhead == horizon.
        prop_assert_eq!(used + r.idle + r.switch_overhead, horizon);
    }

    #[test]
    fn feasible_guaranteed_sets_never_miss(tasks in proptest::collection::vec(feasible_task(), 1..6)) {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        let mut util = 0.0;
        let mut added = 0;
        for (i, &(period, work)) in tasks.iter().enumerate() {
            let u = work as f64 / period as f64;
            if util + u > 0.99 {
                continue;
            }
            util += u;
            sim.add_task(TaskSpec::guaranteed(&format!("t{i}"), period, work));
            added += 1;
        }
        prop_assume!(added > 0);
        let r = sim.run(4_000 * MS);
        for (i, t) in r.tasks.iter().enumerate() {
            prop_assert_eq!(t.misses, 0, "task {} missed with U={:.2}", i, util);
        }
    }

    #[test]
    fn hogs_never_hurt_guaranteed_tasks(
        hogs in 1usize..5,
        hog_work_ms in 10u64..200,
        (period, work) in feasible_task(),
    ) {
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(TaskSpec::guaranteed("media", period, work));
        for i in 0..hogs {
            sim.add_task(TaskSpec::best_effort(
                &format!("hog{i}"),
                10 * MS,
                hog_work_ms * MS,
            ));
        }
        let r = sim.run(2_000 * MS);
        prop_assert_eq!(r.tasks[0].misses, 0, "guaranteed task harmed by hogs");
    }

    #[test]
    fn cpu_received_never_exceeds_share_without_slack(
        (period, work) in feasible_task(),
        demand_multiplier in 2u64..5,
    ) {
        // A task demanding more than its share, with slack forbidden,
        // receives exactly slice per period — no more.
        let mut sim = CpuSim::new(Policy::NemesisEdf);
        sim.add_task(
            TaskSpec::guaranteed("greedy", period, work * demand_multiplier)
                .with_share(work, period),
        );
        let horizon = 1_000 * MS;
        let r = sim.run(horizon);
        let periods = horizon / period;
        prop_assert!(r.tasks[0].cpu_received <= (periods + 1) * work);
    }
}
