//! Maillons: object handles as chains of links.
//!
//! "For our handles we use maillons, which consist of an opaque,
//! fixed-size, object reference and a pointer to a function that returns
//! the address of the interface when called with the reference as
//! argument. The extra level of indirection provided by the maillon
//! allows connections to objects to be set up, or objects to be fetched
//! before their first invocation, but in the most common case — the
//! object is already there and ready to be invoked — the maillon imposes
//! very little overhead." (§4)

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::time::Ns;

/// The opaque, fixed-size object reference inside a maillon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectRef(pub u64);

/// A bound interface: what the resolver returns. Generic over the
/// interface type so services of any shape can be handled.
pub type IfaceRc<T> = Rc<RefCell<T>>;

/// The resolver half of a maillon: maps the reference to the interface,
/// possibly doing expensive work (connection setup, object fetch) the
/// first time.
pub type Resolver<T> = Box<dyn FnMut(ObjectRef) -> (IfaceRc<T>, Ns)>;

/// A maillon handle for interfaces of type `T`.
pub struct Maillon<T> {
    oref: ObjectRef,
    resolver: Resolver<T>,
    bound: Option<IfaceRc<T>>,
    /// Cost of a bound (cached) dereference — the "very little
    /// overhead" steady-state path.
    pub deref_cost: Ns,
    /// Resolver invocations performed.
    pub resolutions: u64,
    /// Total virtual time spent dereferencing (first call + rest).
    pub time_spent: Ns,
}

impl<T> Maillon<T> {
    /// Creates an unbound maillon for `oref` using `resolver`.
    pub fn new(oref: ObjectRef, resolver: Resolver<T>) -> Self {
        Maillon {
            oref,
            resolver,
            bound: None,
            deref_cost: 20, // a pointer chase and a compare
            resolutions: 0,
            time_spent: 0,
        }
    }

    /// The opaque reference.
    pub fn object_ref(&self) -> ObjectRef {
        self.oref
    }

    /// Whether the interface is already bound.
    pub fn is_bound(&self) -> bool {
        self.bound.is_some()
    }

    /// Dereferences the maillon: resolves on first use, then returns the
    /// cached interface at near-zero cost.
    pub fn interface(&mut self) -> IfaceRc<T> {
        if let Some(iface) = &self.bound {
            self.time_spent += self.deref_cost;
            return iface.clone();
        }
        let (iface, cost) = (self.resolver)(self.oref);
        self.resolutions += 1;
        self.time_spent += cost + self.deref_cost;
        self.bound = Some(iface.clone());
        iface
    }

    /// Drops the binding, forcing re-resolution (object migrated).
    pub fn unbind(&mut self) {
        self.bound = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct FrameBuffer {
        writes: u32,
    }

    fn maillon_with_cost(setup_cost: Ns) -> Maillon<FrameBuffer> {
        Maillon::new(
            ObjectRef(9),
            Box::new(move |_oref| (Rc::new(RefCell::new(FrameBuffer { writes: 0 })), setup_cost)),
        )
    }

    #[test]
    fn first_use_resolves_then_caches() {
        let mut m = maillon_with_cost(1_000_000);
        assert!(!m.is_bound());
        let i1 = m.interface();
        assert!(m.is_bound());
        let i2 = m.interface();
        assert!(Rc::ptr_eq(&i1, &i2), "same interface returned");
        assert_eq!(m.resolutions, 1, "resolver ran once");
    }

    #[test]
    fn steady_state_overhead_is_tiny() {
        let mut m = maillon_with_cost(1_000_000);
        m.interface();
        let after_first = m.time_spent;
        for _ in 0..100 {
            m.interface();
        }
        let steady = (m.time_spent - after_first) / 100;
        assert_eq!(steady, m.deref_cost);
        assert!(steady < 100, "steady-state deref {steady} ns");
        assert!(after_first > 1_000_000);
    }

    #[test]
    fn interface_is_usable() {
        let mut m = maillon_with_cost(0);
        m.interface().borrow_mut().writes += 1;
        m.interface().borrow_mut().writes += 1;
        assert_eq!(m.interface().borrow().writes, 2);
    }

    #[test]
    fn unbind_forces_reresolution() {
        let mut m = maillon_with_cost(500);
        m.interface();
        m.unbind();
        assert!(!m.is_bound());
        m.interface();
        assert_eq!(m.resolutions, 2);
    }

    #[test]
    fn reference_preserved() {
        let m = maillon_with_cost(0);
        assert_eq!(m.object_ref(), ObjectRef(9));
    }

    #[test]
    fn resolver_sees_the_reference() {
        let got = Rc::new(Cell::new(None));
        let got_in_resolver = Rc::clone(&got);
        let mut m: Maillon<u32> = Maillon::new(
            ObjectRef(1234),
            Box::new(move |oref| {
                got_in_resolver.set(Some(oref));
                (Rc::new(RefCell::new(0u32)), 0)
            }),
        );
        m.interface();
        assert_eq!(got.get(), Some(ObjectRef(1234)));
    }
}
