//! Invocation by domain relation.
//!
//! "The precise manner in which methods are invoked depends upon the
//! 'domain relation' between invoker and object. If they share a
//! protection domain then the invocation is a procedure call; when they
//! are in the same address space but different protection domains ...
//! invocation is by protected call; and when in different address spaces
//! invocation is performed by remote procedure call." (§4)
//!
//! [`ObjectHandle::invoke`] dispatches through the right mechanism and
//! charges its cost, giving the procedure < protected < RPC hierarchy
//! that experiment E11 reports.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_sim::time::Ns;

/// The abstract service interface every object exports: a method
/// selector plus marshalled arguments, as a stub compiler would produce.
pub trait Service {
    /// Invokes method `method` with `args`, returning the marshalled
    /// result.
    fn invoke(&mut self, method: u32, args: &[u8]) -> Vec<u8>;
}

/// Where the object lives relative to the invoker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainRelation {
    /// Same protection domain: plain procedure call.
    SameDomain,
    /// Same machine (single address space), different protection domain:
    /// protected call through an IDC channel.
    SameMachine,
    /// Different machines: remote procedure call.
    Remote,
}

/// Cost of one invocation under each mechanism.
#[derive(Debug, Clone, Copy)]
pub struct InvocationCosts {
    /// A local procedure call.
    pub procedure: Ns,
    /// A protected (IDC) call: two event hops + queue operations.
    pub protected: Ns,
    /// A remote procedure call: marshalling + two network traversals.
    pub rpc: Ns,
}

impl Default for InvocationCosts {
    fn default() -> Self {
        // 1994 figures of merit: ~100 ns call, ~30 µs protected call,
        // ~1.2 ms LAN RPC.
        InvocationCosts {
            procedure: 100,
            protected: 30_000,
            rpc: 1_200_000,
        }
    }
}

impl InvocationCosts {
    /// The cost of one call under `relation`.
    pub fn for_relation(&self, relation: DomainRelation) -> Ns {
        match relation {
            DomainRelation::SameDomain => self.procedure,
            DomainRelation::SameMachine => self.protected,
            DomainRelation::Remote => self.rpc,
        }
    }
}

/// A bound object handle: the interface plus the relation-specific call
/// path. "The calling code depends on where the object is found when it
/// is invoked" — the handle carries exactly that binding.
pub struct ObjectHandle {
    service: Rc<RefCell<dyn Service>>,
    /// Where the object lives.
    pub relation: DomainRelation,
    /// The cost model in effect.
    pub costs: InvocationCosts,
    /// Invocations made through this handle.
    pub calls: u64,
    /// Virtual time spent in invocation mechanism (not the method body).
    pub mechanism_time: Ns,
}

impl ObjectHandle {
    /// Binds a handle to `service` living at `relation`.
    pub fn new(service: Rc<RefCell<dyn Service>>, relation: DomainRelation) -> Self {
        ObjectHandle {
            service,
            relation,
            costs: InvocationCosts::default(),
            calls: 0,
            mechanism_time: 0,
        }
    }

    /// Invokes a method through the relation-appropriate mechanism.
    pub fn invoke(&mut self, method: u32, args: &[u8]) -> Vec<u8> {
        self.calls += 1;
        self.mechanism_time += self.costs.for_relation(self.relation);
        self.service.borrow_mut().invoke(method, args)
    }

    /// Rebinds after migration: "when objects can migrate ... the
    /// interfaces to them may change" — the same handle, a new relation.
    pub fn migrate(&mut self, relation: DomainRelation) {
        self.relation = relation;
    }

    /// Mean mechanism cost per call so far.
    pub fn mean_cost(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.mechanism_time as f64 / self.calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder {
        total: i64,
    }

    impl Service for Adder {
        fn invoke(&mut self, method: u32, args: &[u8]) -> Vec<u8> {
            match method {
                0 => {
                    let v = i64::from_be_bytes(args.try_into().expect("8 bytes"));
                    self.total += v;
                    self.total.to_be_bytes().to_vec()
                }
                1 => self.total.to_be_bytes().to_vec(),
                _ => Vec::new(),
            }
        }
    }

    fn handle(relation: DomainRelation) -> ObjectHandle {
        ObjectHandle::new(Rc::new(RefCell::new(Adder { total: 0 })), relation)
    }

    #[test]
    fn method_dispatch_works() {
        let mut h = handle(DomainRelation::SameDomain);
        let r = h.invoke(0, &5i64.to_be_bytes());
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 5);
        let r = h.invoke(0, &7i64.to_be_bytes());
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 12);
    }

    #[test]
    fn cost_hierarchy_procedure_protected_rpc() {
        let mut local = handle(DomainRelation::SameDomain);
        let mut protected = handle(DomainRelation::SameMachine);
        let mut remote = handle(DomainRelation::Remote);
        for _ in 0..10 {
            local.invoke(1, &[]);
            protected.invoke(1, &[]);
            remote.invoke(1, &[]);
        }
        assert!(local.mechanism_time < protected.mechanism_time);
        assert!(protected.mechanism_time < remote.mechanism_time);
        // Orders of magnitude apart, as in the real hierarchy.
        assert!(protected.mechanism_time > 100 * local.mechanism_time);
        assert!(remote.mechanism_time > 10 * protected.mechanism_time);
    }

    #[test]
    fn migration_changes_cost_not_semantics() {
        let mut h = handle(DomainRelation::Remote);
        h.invoke(0, &3i64.to_be_bytes());
        let remote_mean = h.mean_cost();
        h.migrate(DomainRelation::SameDomain);
        let r = h.invoke(0, &4i64.to_be_bytes());
        assert_eq!(
            i64::from_be_bytes(r.try_into().unwrap()),
            7,
            "state survives migration"
        );
        assert!(
            h.mean_cost() < remote_mean,
            "calls get cheaper after migration"
        );
    }

    #[test]
    fn call_counting() {
        let mut h = handle(DomainRelation::SameMachine);
        for _ in 0..5 {
            h.invoke(1, &[]);
        }
        assert_eq!(h.calls, 5);
        assert_eq!(h.mechanism_time, 5 * 30_000);
        assert!((h.mean_cost() - 30_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_handle_mean_cost_zero() {
        let h = handle(DomainRelation::SameDomain);
        assert_eq!(h.mean_cost(), 0.0);
    }
}
