//! Naming and invocation (§4).
//!
//! "Most objects will be used locally. Therefore ... name resolution
//! should be most efficient for local names. This implies that local
//! names should be shortest ... The root of the naming tree can be the
//! most local object and longer path names generally name objects
//! further away." The name space is global only by *convention* (a
//! `/global` subtree), in the manner of Plan 9.
//!
//! * [`namespace`] — per-process name spaces: a local tree plus mounted
//!   name spaces reached through connections; resolution cost grows
//!   with distance, exactly the property E11 measures.
//! * [`maillon`] — object handles as *maillons*: an opaque reference
//!   plus a resolver function, adding almost nothing once bound.
//! * [`invoke`] — method invocation by domain relation: procedure call
//!   within a protection domain, protected (IDC) call within a machine,
//!   RPC across machines.
//! * [`rpc`] — the ANSA-flavoured remote-procedure-call layer with
//!   at-most-once semantics, layered on an MSNA-ish transport (AAL5
//!   framing in the integration path).

pub mod invoke;
pub mod maillon;
pub mod namespace;
pub mod rpc;

pub use invoke::{DomainRelation, InvocationCosts, ObjectHandle, Service};
pub use maillon::{Maillon, ObjectRef};
pub use namespace::{NameError, NameSpaceId, NameWorld};
