//! Per-process name spaces with mounts.
//!
//! "Every process starts up with a built-in name space. Usually, this
//! name space is inherited from a parent process ... The name space
//! consists of a local name space which names objects local to the
//! process, and mounted name spaces which name objects external to the
//! process. The mount point of a mounted name space is a local object
//! with a connection to a name space in another process. Name resolution
//! in mounted name spaces takes place by making name-lookup requests
//! through the connection to the other process." (§4)

use std::collections::HashMap;

use crate::maillon::ObjectRef;
use pegasus_sim::time::Ns;

/// Identifier of a name space within a [`NameWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameSpaceId(pub usize);

/// A binding in a name space's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// A leaf object.
    Object(ObjectRef),
    /// An internal directory node (index into the space's dir table).
    Dir(usize),
    /// A mount: resolution continues in another space, through a
    /// connection.
    Mount(NameSpaceId),
}

/// Resolution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A component was not bound.
    NotFound(String),
    /// A leaf object appeared mid-path.
    NotADirectory(String),
    /// The path named a directory, not an object.
    IsADirectory(String),
    /// Mount chain exceeded the hop limit (a mount loop).
    TooManyHops,
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::NotFound(c) => write!(f, "{c}: not found"),
            NameError::NotADirectory(c) => write!(f, "{c}: not a directory"),
            NameError::IsADirectory(c) => write!(f, "{c}: is a directory"),
            NameError::TooManyHops => write!(f, "mount loop"),
        }
    }
}

impl std::error::Error for NameError {}

#[derive(Debug, Default, Clone)]
struct Dir {
    entries: HashMap<String, Binding>,
}

/// One process's name space.
#[derive(Debug, Default, Clone)]
struct NameSpace {
    dirs: Vec<Dir>, // dirs[0] is the root
}

impl NameSpace {
    fn new() -> Self {
        NameSpace {
            dirs: vec![Dir::default()],
        }
    }
}

/// The outcome of a resolution, with its cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The object found.
    pub object: ObjectRef,
    /// Path components walked (all spaces).
    pub components: usize,
    /// Mount crossings (remote lookup requests).
    pub mount_hops: usize,
    /// Modelled resolution cost.
    pub cost: Ns,
}

/// All the name spaces of a simulated system plus the cost model.
#[derive(Debug)]
pub struct NameWorld {
    spaces: Vec<NameSpace>,
    /// Cost of resolving one component locally (a hash lookup).
    pub local_component_cost: Ns,
    /// Cost of a lookup request through a mount connection (an IDC or
    /// RPC round trip, depending on where the server lives).
    pub mount_hop_cost: Ns,
}

impl Default for NameWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl NameWorld {
    /// Creates an empty world with 1994-plausible costs: 300 ns per
    /// local component, 25 µs per mount crossing.
    pub fn new() -> Self {
        NameWorld {
            spaces: Vec::new(),
            local_component_cost: 300,
            mount_hop_cost: 25_000,
        }
    }

    /// Creates a fresh, empty name space (a root process).
    pub fn create_space(&mut self) -> NameSpaceId {
        self.spaces.push(NameSpace::new());
        NameSpaceId(self.spaces.len() - 1)
    }

    /// Creates a child space inheriting (copying) the parent's bindings
    /// — "usually, this name space is inherited from a parent process".
    /// Mounts stay shared: both spaces reach the same target spaces.
    pub fn fork_space(&mut self, parent: NameSpaceId) -> NameSpaceId {
        let copy = self.spaces[parent.0].clone();
        self.spaces.push(copy);
        NameSpaceId(self.spaces.len() - 1)
    }

    fn split(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    /// Walks to (and creates) the directory for `components`, returning
    /// its index within `space`.
    fn ensure_dir(&mut self, space: NameSpaceId, components: &[&str]) -> Result<usize, NameError> {
        let ns = &mut self.spaces[space.0];
        let mut cur = 0usize;
        for &c in components {
            let next = match ns.dirs[cur].entries.get(c) {
                Some(Binding::Dir(d)) => *d,
                Some(_) => return Err(NameError::NotADirectory(c.to_string())),
                None => {
                    ns.dirs.push(Dir::default());
                    let d = ns.dirs.len() - 1;
                    ns.dirs[cur].entries.insert(c.to_string(), Binding::Dir(d));
                    d
                }
            };
            cur = next;
        }
        Ok(cur)
    }

    /// Binds `object` at `path` in `space`, creating directories.
    pub fn bind(
        &mut self,
        space: NameSpaceId,
        path: &str,
        object: ObjectRef,
    ) -> Result<(), NameError> {
        let comps = Self::split(path);
        let (&last, dirs) = comps
            .split_last()
            .ok_or_else(|| NameError::IsADirectory("/".into()))?;
        let dir = self.ensure_dir(space, dirs)?;
        self.spaces[space.0].dirs[dir]
            .entries
            .insert(last.to_string(), Binding::Object(object));
        Ok(())
    }

    /// Mounts `target` space at `path` in `space` — "the mount point ...
    /// is a local object with a connection to a name space in another
    /// process". The conventional use is `mount(space, "/global",
    /// shared)`.
    pub fn mount(
        &mut self,
        space: NameSpaceId,
        path: &str,
        target: NameSpaceId,
    ) -> Result<(), NameError> {
        let comps = Self::split(path);
        let (&last, dirs) = comps
            .split_last()
            .ok_or_else(|| NameError::IsADirectory("/".into()))?;
        let dir = self.ensure_dir(space, dirs)?;
        self.spaces[space.0].dirs[dir]
            .entries
            .insert(last.to_string(), Binding::Mount(target));
        Ok(())
    }

    /// Resolves `path` in `space`, returning the object and the cost
    /// breakdown.
    pub fn resolve(&self, space: NameSpaceId, path: &str) -> Result<Resolution, NameError> {
        let comps = Self::split(path);
        let mut res = Resolution {
            object: ObjectRef(0),
            components: 0,
            mount_hops: 0,
            cost: 0,
        };
        let mut space = space;
        let mut dir = 0usize;
        let mut i = 0usize;
        while i < comps.len() {
            if res.mount_hops > 32 {
                return Err(NameError::TooManyHops);
            }
            let c = comps[i];
            res.components += 1;
            res.cost += self.local_component_cost;
            match self.spaces[space.0].dirs[dir].entries.get(c) {
                None => return Err(NameError::NotFound(c.to_string())),
                Some(Binding::Dir(d)) => {
                    dir = *d;
                    i += 1;
                }
                Some(Binding::Object(o)) => {
                    if i + 1 != comps.len() {
                        return Err(NameError::NotADirectory(c.to_string()));
                    }
                    res.object = *o;
                    return Ok(res);
                }
                Some(Binding::Mount(target)) => {
                    // Cross the connection: the rest of the path resolves
                    // in the target space's root.
                    res.mount_hops += 1;
                    res.cost += self.mount_hop_cost;
                    space = *target;
                    dir = 0;
                    i += 1;
                }
            }
        }
        Err(NameError::IsADirectory(path.to_string()))
    }

    /// Passing an object handle to another space binds it there — "the
    /// side effect of creating a connection through which the object can
    /// be invoked remotely".
    pub fn pass_handle(
        &mut self,
        from: NameSpaceId,
        path_in_from: &str,
        to: NameSpaceId,
        path_in_to: &str,
    ) -> Result<ObjectRef, NameError> {
        let r = self.resolve(from, path_in_from)?;
        self.bind(to, path_in_to, r.object)?;
        Ok(r.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_resolve_local() {
        let mut w = NameWorld::new();
        let s = w.create_space();
        w.bind(s, "/dev/camera", ObjectRef(42)).unwrap();
        let r = w.resolve(s, "/dev/camera").unwrap();
        assert_eq!(r.object, ObjectRef(42));
        assert_eq!(r.components, 2);
        assert_eq!(r.mount_hops, 0);
        assert_eq!(r.cost, 600);
    }

    #[test]
    fn short_local_names_cheapest() {
        // The section's core argument: local names near the root resolve
        // fastest; remote names cost mount hops.
        let mut w = NameWorld::new();
        let local = w.create_space();
        let global = w.create_space();
        w.bind(local, "/fb", ObjectRef(1)).unwrap();
        w.bind(global, "/org/cam/cl/atm/camera3", ObjectRef(2))
            .unwrap();
        w.mount(local, "/global", global).unwrap();
        let near = w.resolve(local, "/fb").unwrap();
        let far = w.resolve(local, "/global/org/cam/cl/atm/camera3").unwrap();
        assert!(
            far.cost > 50 * near.cost,
            "near {} far {}",
            near.cost,
            far.cost
        );
        assert_eq!(far.mount_hops, 1);
    }

    #[test]
    fn resolution_continues_in_mounted_space() {
        let mut w = NameWorld::new();
        let a = w.create_space();
        let b = w.create_space();
        w.bind(b, "/srv/files", ObjectRef(7)).unwrap();
        w.mount(a, "/remote", b).unwrap();
        let r = w.resolve(a, "/remote/srv/files").unwrap();
        assert_eq!(r.object, ObjectRef(7));
        assert_eq!(r.mount_hops, 1);
    }

    #[test]
    fn chained_mounts_accumulate_hops() {
        let mut w = NameWorld::new();
        let a = w.create_space();
        let b = w.create_space();
        let c = w.create_space();
        w.bind(c, "/x", ObjectRef(9)).unwrap();
        w.mount(b, "/c", c).unwrap();
        w.mount(a, "/b", b).unwrap();
        let r = w.resolve(a, "/b/c/x").unwrap();
        assert_eq!(r.object, ObjectRef(9));
        assert_eq!(r.mount_hops, 2);
        assert_eq!(r.cost, 3 * 300 + 2 * 25_000);
    }

    #[test]
    fn same_name_different_objects_per_space() {
        // "It is not global in the sense ... that one name identifies
        // the same object anywhere."
        let mut w = NameWorld::new();
        let s1 = w.create_space();
        let s2 = w.create_space();
        w.bind(s1, "/dev/audio", ObjectRef(1)).unwrap();
        w.bind(s2, "/dev/audio", ObjectRef(2)).unwrap();
        assert_ne!(
            w.resolve(s1, "/dev/audio").unwrap().object,
            w.resolve(s2, "/dev/audio").unwrap().object
        );
    }

    #[test]
    fn fork_inherits_then_diverges() {
        let mut w = NameWorld::new();
        let parent = w.create_space();
        w.bind(parent, "/tools/cc", ObjectRef(5)).unwrap();
        let child = w.fork_space(parent);
        assert_eq!(w.resolve(child, "/tools/cc").unwrap().object, ObjectRef(5));
        // Child rebinds without affecting the parent.
        w.bind(child, "/tools/cc", ObjectRef(6)).unwrap();
        assert_eq!(w.resolve(parent, "/tools/cc").unwrap().object, ObjectRef(5));
        assert_eq!(w.resolve(child, "/tools/cc").unwrap().object, ObjectRef(6));
    }

    #[test]
    fn errors_reported() {
        let mut w = NameWorld::new();
        let s = w.create_space();
        w.bind(s, "/a/b", ObjectRef(1)).unwrap();
        assert_eq!(
            w.resolve(s, "/a/zz").unwrap_err(),
            NameError::NotFound("zz".into())
        );
        assert_eq!(
            w.resolve(s, "/a/b/c").unwrap_err(),
            NameError::NotADirectory("b".into())
        );
        assert_eq!(
            w.resolve(s, "/a").unwrap_err(),
            NameError::IsADirectory("/a".into())
        );
    }

    #[test]
    fn mount_loop_detected() {
        let mut w = NameWorld::new();
        let a = w.create_space();
        let b = w.create_space();
        w.mount(a, "/b", b).unwrap();
        w.mount(b, "/b", b).unwrap();
        let path = format!("/b{}", "/b".repeat(40));
        assert_eq!(w.resolve(a, &path).unwrap_err(), NameError::TooManyHops);
    }

    #[test]
    fn pass_handle_binds_remotely() {
        let mut w = NameWorld::new();
        let server = w.create_space();
        let client = w.create_space();
        w.bind(server, "/objs/frame-buffer", ObjectRef(77)).unwrap();
        let o = w
            .pass_handle(server, "/objs/frame-buffer", client, "/imported/fb")
            .unwrap();
        assert_eq!(o, ObjectRef(77));
        assert_eq!(
            w.resolve(client, "/imported/fb").unwrap().object,
            ObjectRef(77)
        );
    }

    #[test]
    fn global_by_convention() {
        // "there is no reason why one convention could not be the use of
        // a subtree named /global for global names."
        let mut w = NameWorld::new();
        let global = w.create_space();
        w.bind(global, "/printers/lw2", ObjectRef(3)).unwrap();
        let p1 = w.create_space();
        let p2 = w.create_space();
        w.mount(p1, "/global", global).unwrap();
        w.mount(p2, "/global", global).unwrap();
        assert_eq!(
            w.resolve(p1, "/global/printers/lw2").unwrap().object,
            w.resolve(p2, "/global/printers/lw2").unwrap().object,
        );
    }
}
