//! ANSA-flavoured remote procedure call.
//!
//! "The Pegasus remote-procedure-call mechanism is based on ANSA's RPC
//! and layered on MSNA ... a protocol hierarchy for ATM networks that
//! also caters for continuous-media transport." (§4)
//!
//! The layer provides *at-most-once* execution: clients retry lost
//! calls, servers suppress duplicate executions by call-id and replay
//! the cached reply. The wire format is a compact binary encoding that
//! travels as one AAL5 frame (see the integration test).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::invoke::Service;

/// A marshalled call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallMsg {
    /// The server-side binding (connection/interface id).
    pub conn: u32,
    /// Monotone per-connection call identifier.
    pub call_id: u64,
    /// Method selector.
    pub method: u32,
    /// Marshalled arguments.
    pub args: Vec<u8>,
}

/// A marshalled reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMsg {
    /// Echoed connection id.
    pub conn: u32,
    /// Echoed call id.
    pub call_id: u64,
    /// Marshalled result.
    pub result: Vec<u8>,
}

/// Wire-format errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short.
    Truncated,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "message truncated")
    }
}

impl std::error::Error for WireError {}

impl CallMsg {
    /// Serializes: `conn(4) call_id(8) method(4) args…`.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + self.args.len());
        v.extend_from_slice(&self.conn.to_be_bytes());
        v.extend_from_slice(&self.call_id.to_be_bytes());
        v.extend_from_slice(&self.method.to_be_bytes());
        v.extend_from_slice(&self.args);
        v
    }

    /// Parses a call message.
    pub fn decode(b: &[u8]) -> Result<CallMsg, WireError> {
        if b.len() < 16 {
            return Err(WireError::Truncated);
        }
        Ok(CallMsg {
            conn: u32::from_be_bytes(b[0..4].try_into().expect("4")),
            call_id: u64::from_be_bytes(b[4..12].try_into().expect("8")),
            method: u32::from_be_bytes(b[12..16].try_into().expect("4")),
            args: b[16..].to_vec(),
        })
    }
}

impl ReplyMsg {
    /// Serializes: `conn(4) call_id(8) result…`.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(12 + self.result.len());
        v.extend_from_slice(&self.conn.to_be_bytes());
        v.extend_from_slice(&self.call_id.to_be_bytes());
        v.extend_from_slice(&self.result);
        v
    }

    /// Parses a reply message.
    pub fn decode(b: &[u8]) -> Result<ReplyMsg, WireError> {
        if b.len() < 12 {
            return Err(WireError::Truncated);
        }
        Ok(ReplyMsg {
            conn: u32::from_be_bytes(b[0..4].try_into().expect("4")),
            call_id: u64::from_be_bytes(b[4..12].try_into().expect("8")),
            result: b[12..].to_vec(),
        })
    }
}

/// The server side: interface table plus duplicate suppression.
pub struct RpcServer {
    services: HashMap<u32, Rc<RefCell<dyn Service>>>,
    /// Last executed call and its cached reply, per connection.
    history: HashMap<u32, (u64, Vec<u8>)>,
    /// Method executions actually performed.
    pub executions: u64,
    /// Duplicate calls answered from the reply cache.
    pub duplicates_suppressed: u64,
}

impl Default for RpcServer {
    fn default() -> Self {
        Self::new()
    }
}

impl RpcServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        RpcServer {
            services: HashMap::new(),
            history: HashMap::new(),
            executions: 0,
            duplicates_suppressed: 0,
        }
    }

    /// Exports `service` on connection `conn`.
    pub fn export(&mut self, conn: u32, service: Rc<RefCell<dyn Service>>) {
        self.services.insert(conn, service);
    }

    /// Handles one incoming call with at-most-once semantics.
    pub fn handle(&mut self, msg: &CallMsg) -> Option<ReplyMsg> {
        let service = self.services.get(&msg.conn)?.clone();
        if let Some((last_id, last_reply)) = self.history.get(&msg.conn) {
            if msg.call_id == *last_id {
                // A retransmission: replay without re-executing.
                self.duplicates_suppressed += 1;
                return Some(ReplyMsg {
                    conn: msg.conn,
                    call_id: msg.call_id,
                    result: last_reply.clone(),
                });
            }
            if msg.call_id < *last_id {
                return None; // ancient duplicate: drop
            }
        }
        let result = service.borrow_mut().invoke(msg.method, &msg.args);
        self.executions += 1;
        self.history.insert(msg.conn, (msg.call_id, result.clone()));
        Some(ReplyMsg {
            conn: msg.conn,
            call_id: msg.call_id,
            result,
        })
    }
}

/// RPC failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// Retries exhausted with no reply.
    Timeout,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpc timeout")
    }
}

impl std::error::Error for RpcError {}

/// The client side: call-id generation and retry.
pub struct RpcClient {
    conn: u32,
    next_call: u64,
    /// Retransmissions allowed per call.
    pub max_retries: u32,
    /// Retransmissions performed.
    pub retries: u64,
}

impl RpcClient {
    /// Creates a client bound to server connection `conn`.
    pub fn new(conn: u32) -> Self {
        RpcClient {
            conn,
            next_call: 1,
            max_retries: 4,
            retries: 0,
        }
    }

    /// Performs a call through `transport`, a function delivering an
    /// encoded call and returning the encoded reply (or `None` for a
    /// lost message). Retries on loss; at-most-once is the *server's*
    /// guarantee.
    pub fn call(
        &mut self,
        transport: &mut dyn FnMut(&[u8]) -> Option<Vec<u8>>,
        method: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, RpcError> {
        let msg = CallMsg {
            conn: self.conn,
            call_id: self.next_call,
            method,
            args: args.to_vec(),
        };
        self.next_call += 1;
        let wire = msg.encode();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.retries += 1;
            }
            if let Some(reply) = transport(&wire) {
                if let Ok(r) = ReplyMsg::decode(&reply) {
                    if r.call_id == msg.call_id {
                        return Ok(r.result);
                    }
                }
            }
        }
        Err(RpcError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        value: i64,
    }

    impl Service for Counter {
        fn invoke(&mut self, method: u32, args: &[u8]) -> Vec<u8> {
            match method {
                0 => {
                    self.value += i64::from_be_bytes(args.try_into().expect("8"));
                    self.value.to_be_bytes().to_vec()
                }
                _ => self.value.to_be_bytes().to_vec(),
            }
        }
    }

    fn server_with_counter() -> (RpcServer, Rc<RefCell<Counter>>) {
        let mut server = RpcServer::new();
        let svc = Rc::new(RefCell::new(Counter { value: 0 }));
        server.export(7, svc.clone());
        (server, svc)
    }

    #[test]
    fn wire_roundtrip() {
        let c = CallMsg {
            conn: 1,
            call_id: 99,
            method: 3,
            args: b"abc".to_vec(),
        };
        assert_eq!(CallMsg::decode(&c.encode()).unwrap(), c);
        let r = ReplyMsg {
            conn: 1,
            call_id: 99,
            result: b"xyz".to_vec(),
        };
        assert_eq!(ReplyMsg::decode(&r.encode()).unwrap(), r);
        assert_eq!(CallMsg::decode(&[0; 3]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn basic_call_over_perfect_transport() {
        let (mut server, _svc) = server_with_counter();
        let mut client = RpcClient::new(7);
        let mut transport = |wire: &[u8]| {
            let call = CallMsg::decode(wire).ok()?;
            server.handle(&call).map(|r| r.encode())
        };
        let r = client.call(&mut transport, 0, &5i64.to_be_bytes()).unwrap();
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 5);
        let r = client.call(&mut transport, 0, &6i64.to_be_bytes()).unwrap();
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 11);
    }

    #[test]
    fn lost_requests_retried_and_executed_once() {
        let (server, svc) = server_with_counter();
        let server = Rc::new(RefCell::new(server));
        let mut client = RpcClient::new(7);
        // Drop every first attempt.
        let mut seen = 0u32;
        let server2 = server.clone();
        let mut transport = move |wire: &[u8]| {
            seen += 1;
            if seen % 2 == 1 {
                return None; // lost
            }
            let call = CallMsg::decode(wire).ok()?;
            server2.borrow_mut().handle(&call).map(|r| r.encode())
        };
        let r = client.call(&mut transport, 0, &9i64.to_be_bytes()).unwrap();
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 9);
        assert_eq!(client.retries, 1);
        assert_eq!(server.borrow().executions, 1);
        assert_eq!(svc.borrow().value, 9);
    }

    #[test]
    fn lost_reply_does_not_reexecute() {
        // The request arrives, the reply is lost, the client retries:
        // the server must answer from its cache, not add twice.
        let (server, svc) = server_with_counter();
        let server = Rc::new(RefCell::new(server));
        let mut client = RpcClient::new(7);
        let mut attempt = 0u32;
        let server2 = server.clone();
        let mut transport = move |wire: &[u8]| {
            attempt += 1;
            let call = CallMsg::decode(wire).ok()?;
            let reply = server2.borrow_mut().handle(&call).map(|r| r.encode());
            if attempt == 1 {
                None // reply lost after execution
            } else {
                reply
            }
        };
        let r = client.call(&mut transport, 0, &4i64.to_be_bytes()).unwrap();
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 4);
        assert_eq!(server.borrow().executions, 1, "at-most-once held");
        assert_eq!(server.borrow().duplicates_suppressed, 1);
        assert_eq!(svc.borrow().value, 4, "no double add");
    }

    #[test]
    fn total_loss_times_out() {
        let mut client = RpcClient::new(7);
        let mut transport = |_wire: &[u8]| None;
        assert_eq!(
            client.call(&mut transport, 0, &[0u8; 8]).unwrap_err(),
            RpcError::Timeout
        );
        assert_eq!(client.retries as u32, client.max_retries);
    }

    #[test]
    fn unknown_connection_ignored() {
        let (mut server, _svc) = server_with_counter();
        let msg = CallMsg {
            conn: 999,
            call_id: 1,
            method: 0,
            args: vec![0; 8],
        };
        assert!(server.handle(&msg).is_none());
    }

    #[test]
    fn call_travels_as_aal5_frame() {
        // Layered on MSNA: one call = one AAL5 frame = a few cells.
        use pegasus_atm::aal5::{Reassembler, Segmenter};
        let (mut server, _svc) = server_with_counter();
        let mut client = RpcClient::new(7);
        let mut transport = |wire: &[u8]| {
            // Client → network: segment into cells.
            let cells = Segmenter::new(60).segment(wire).unwrap();
            // Network → server: reassemble.
            let mut reasm = Reassembler::new();
            let mut frame = None;
            for c in &cells {
                if let Some(Ok(f)) = reasm.push(c) {
                    frame = Some(f);
                }
            }
            let call = CallMsg::decode(&frame?).ok()?;
            let reply = server.handle(&call)?.encode();
            // Server → client: same path back.
            let cells = Segmenter::new(61).segment(&reply).unwrap();
            let mut reasm = Reassembler::new();
            let mut back = None;
            for c in &cells {
                if let Some(Ok(f)) = reasm.push(c) {
                    back = Some(f);
                }
            }
            back
        };
        let r = client
            .call(&mut transport, 0, &21i64.to_be_bytes())
            .unwrap();
        assert_eq!(i64::from_be_bytes(r.try_into().unwrap()), 21);
    }
}
