//! The ATM display (§2.1, Figure 3).
//!
//! "The ATM display implements a single primitive, that of displaying
//! arriving pixel tiles on incoming virtual circuits to windows on the
//! screen. The virtual-circuit identifier (VCI) is used as an index into
//! a table of window descriptors; each window descriptor has an x and y
//! offset from the top-left-hand corner of the display, and clipping
//! information. By manipulation of these contexts, a window manager can
//! control which virtual channel, and thus which process, can access the
//! different pixels of the screen."
//!
//! The window manager here exercises every operation the paper lists:
//! create, move, resize, iconize, raise and lower, plus the
//! whole-screen descriptor it uses "for decorating windows with title
//! bars and resize buttons". Since tiles are fixed-size bit-blits,
//! graphics drawn by the window manager and video from a camera travel
//! through the identical path — the unification the paper highlights.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pegasus_atm::aal5::Reassembler;
use pegasus_atm::cell::{Cell, Vci};
use pegasus_atm::link::CellSink;
use pegasus_sim::stats::Histogram;
use pegasus_sim::Simulator;

use crate::codec;
use crate::tile::{TileCoding, TileFrame};

/// A screen-space rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: i32,
    /// Height in pixels.
    pub h: i32,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: i32, y: i32, w: i32, h: i32) -> Self {
        Rect { x, y, w, h }
    }

    /// Whether the point lies inside.
    pub fn contains(&self, px: i32, py: i32) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }
}

/// One entry of the display's window-descriptor table.
#[derive(Debug, Clone, Copy)]
pub struct WindowDescriptor {
    /// X offset of the stream's origin on screen.
    pub dst_x: i32,
    /// Y offset of the stream's origin on screen.
    pub dst_y: i32,
    /// Screen-space clip rectangle (also the window's footprint for
    /// occlusion).
    pub clip: Rect,
    /// Stacking order; higher is closer to the viewer.
    pub z: u32,
    /// Invisible windows (iconized) accept and discard their tiles.
    pub visible: bool,
    /// Overlay descriptors (the window manager's whole-screen channel)
    /// paint over everything but do not occlude ordinary windows — the
    /// manager repaints decorations when windows underneath change.
    pub overlay: bool,
}

/// Display-side counters.
#[derive(Debug, Default, Clone)]
pub struct DisplayStats {
    /// Tiles blitted (at least one pixel written).
    pub tiles_blitted: u64,
    /// Tiles fully clipped away or addressed to unknown/iconized windows.
    pub tiles_discarded: u64,
    /// Pixels written to the framebuffer.
    pub pixels_written: u64,
    /// AAL5 frames that failed reassembly or parsing.
    pub frames_bad: u64,
    /// Scan-to-blit latency of each tile frame.
    pub latency: Histogram,
}

/// The ATM display device: a framebuffer plus the descriptor table.
pub struct Display {
    width: i32,
    height: i32,
    /// Empty in headless mode; `width × height` bytes otherwise.
    framebuffer: Vec<u8>,
    /// Headless displays evaluate the full blit geometry (clipping,
    /// occlusion, every counter in [`DisplayStats`]) but never allocate
    /// or write the framebuffer — city-scale presets attach thousands of
    /// displays whose pixels nobody reads, and the stats must stay
    /// byte-identical to a framebuffer run.
    headless: bool,
    windows: HashMap<Vci, WindowDescriptor>,
    reasm: HashMap<Vci, Reassembler>,
    /// Device counters.
    pub stats: DisplayStats,
}

impl Display {
    /// Creates a display of the given pixel dimensions, shared so it can
    /// serve as a link's [`CellSink`].
    pub fn shared(width: i32, height: i32) -> Rc<RefCell<Display>> {
        Rc::new(RefCell::new(Display {
            width,
            height,
            framebuffer: vec![0; (width * height) as usize],
            headless: false,
            windows: HashMap::new(),
            reasm: HashMap::new(),
            stats: DisplayStats::default(),
        }))
    }

    /// Creates a headless display: same geometry and statistics as
    /// [`Display::shared`], no framebuffer memory. [`Display::pixel`]
    /// must not be called on it.
    pub fn shared_headless(width: i32, height: i32) -> Rc<RefCell<Display>> {
        Rc::new(RefCell::new(Display {
            width,
            height,
            framebuffer: Vec::new(),
            headless: true,
            windows: HashMap::new(),
            reasm: HashMap::new(),
            stats: DisplayStats::default(),
        }))
    }

    /// Screen width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Screen height.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Reads a pixel (for tests and screenshots).
    ///
    /// # Panics
    ///
    /// Panics on a headless display — there are no pixels to read.
    pub fn pixel(&self, x: i32, y: i32) -> u8 {
        assert!(!self.headless, "headless display has no framebuffer");
        assert!(x >= 0 && x < self.width && y >= 0 && y < self.height);
        self.framebuffer[(y * self.width + x) as usize]
    }

    /// Installs or replaces the descriptor for `vci`.
    pub fn set_descriptor(&mut self, vci: Vci, desc: WindowDescriptor) {
        self.windows.insert(vci, desc);
    }

    /// Removes the descriptor for `vci`; its tiles are discarded from
    /// then on.
    pub fn remove_descriptor(&mut self, vci: Vci) {
        self.windows.remove(&vci);
    }

    /// Current descriptor for `vci`.
    pub fn descriptor(&self, vci: Vci) -> Option<WindowDescriptor> {
        self.windows.get(&vci).copied()
    }

    /// Whether a pixel owned by `(z)` is occluded by a higher window.
    fn occluded(&self, px: i32, py: i32, z: u32) -> bool {
        self.windows
            .values()
            .any(|w| w.visible && !w.overlay && w.z > z && w.clip.contains(px, py))
    }

    fn blit_frame(&mut self, now: u64, frame: &TileFrame, vci: Vci) {
        let Some(desc) = self.windows.get(&vci).copied() else {
            self.stats.tiles_discarded += frame.tiles.len() as u64;
            return;
        };
        if !desc.visible {
            self.stats.tiles_discarded += frame.tiles.len() as u64;
            return;
        }
        self.stats
            .latency
            .record(now.saturating_sub(frame.timestamp));
        for (tx, ty, data) in &frame.tiles {
            let pixels: Vec<u8> = match frame.coding {
                TileCoding::Raw => {
                    if data.len() != 64 {
                        self.stats.frames_bad += 1;
                        continue;
                    }
                    data.clone()
                }
                TileCoding::Compressed => match codec::decode_tile(data, frame.quality) {
                    Ok(p) => p.to_vec(),
                    Err(_) => {
                        self.stats.frames_bad += 1;
                        continue;
                    }
                },
            };
            let mut wrote = false;
            for row in 0..8i32 {
                for col in 0..8i32 {
                    let px = desc.dst_x + *tx as i32 + col;
                    let py = desc.dst_y + *ty as i32 + row;
                    if px < 0 || px >= self.width || py < 0 || py >= self.height {
                        continue;
                    }
                    if !desc.clip.contains(px, py) || self.occluded(px, py, desc.z) {
                        continue;
                    }
                    if !self.headless {
                        self.framebuffer[(py * self.width + px) as usize] =
                            pixels[(row * 8 + col) as usize];
                    }
                    self.stats.pixels_written += 1;
                    wrote = true;
                }
            }
            if wrote {
                self.stats.tiles_blitted += 1;
            } else {
                self.stats.tiles_discarded += 1;
            }
        }
    }
}

impl CellSink for Display {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        let vci = cell.vci();
        // Zero-copy receive: an uncorrupted frame arrives as a view of
        // the camera's own arena buffer and is decoded in place.
        let result = self.reasm.entry(vci).or_default().push_frame(&cell);
        match result {
            None => {}
            Some(Ok(lease)) => match TileFrame::decode(&lease) {
                Ok(frame) => self.blit_frame(sim.now(), &frame, vci),
                Err(_) => self.stats.frames_bad += 1,
            },
            Some(Err(_)) => self.stats.frames_bad += 1,
        }
    }
}

/// The window manager: the process that owns the descriptor table.
///
/// It never touches pixel data except through its own whole-screen
/// descriptor — exactly how the paper removes the multiplexing code of
/// conventional window systems.
pub struct WindowManager {
    display: Rc<RefCell<Display>>,
    next_z: u32,
    saved_geometry: HashMap<Vci, Rect>,
    /// The VCI the manager itself draws decorations on.
    pub wm_vci: Vci,
}

impl WindowManager {
    /// Creates a window manager over `display`, reserving `wm_vci` for
    /// its own whole-screen drawing channel.
    pub fn new(display: Rc<RefCell<Display>>, wm_vci: Vci) -> Self {
        let (w, h) = {
            let d = display.borrow();
            (d.width(), d.height())
        };
        let wm = WindowManager {
            display,
            next_z: 1,
            saved_geometry: HashMap::new(),
            wm_vci,
        };
        // The manager's own descriptor: whole screen, permanently on top.
        wm.display.borrow_mut().set_descriptor(
            wm_vci,
            WindowDescriptor {
                dst_x: 0,
                dst_y: 0,
                clip: Rect::new(0, 0, w, h),
                z: u32::MAX,
                visible: true,
                overlay: true,
            },
        );
        wm
    }

    /// Creates a window for `vci` at the given screen rectangle and puts
    /// it on top.
    pub fn create(&mut self, vci: Vci, rect: Rect) {
        let z = self.bump_z();
        self.display.borrow_mut().set_descriptor(
            vci,
            WindowDescriptor {
                dst_x: rect.x,
                dst_y: rect.y,
                clip: rect,
                z,
                visible: true,
                overlay: false,
            },
        );
    }

    /// Destroys a window.
    pub fn destroy(&mut self, vci: Vci) {
        self.display.borrow_mut().remove_descriptor(vci);
        self.saved_geometry.remove(&vci);
    }

    /// Moves a window so its origin lands at `(x, y)`.
    pub fn move_to(&mut self, vci: Vci, x: i32, y: i32) {
        self.update(vci, |d| {
            d.clip.x = x;
            d.clip.y = y;
            d.dst_x = x;
            d.dst_y = y;
        });
    }

    /// Resizes a window (clip only; the stream keeps its own geometry).
    pub fn resize(&mut self, vci: Vci, w: i32, h: i32) {
        self.update(vci, |d| {
            d.clip.w = w;
            d.clip.h = h;
        });
    }

    /// Raises a window above all others (except the manager).
    pub fn raise(&mut self, vci: Vci) {
        let z = self.bump_z();
        self.update(vci, |d| d.z = z);
    }

    /// Lowers a window beneath all others.
    pub fn lower(&mut self, vci: Vci) {
        self.update(vci, |d| d.z = 0);
    }

    /// Iconizes a window: it stops painting but keeps its descriptor.
    pub fn iconize(&mut self, vci: Vci) {
        let geom = self.display.borrow().descriptor(vci).map(|d| d.clip);
        if let Some(g) = geom {
            self.saved_geometry.insert(vci, g);
        }
        self.update(vci, |d| d.visible = false);
    }

    /// Restores an iconized window.
    pub fn deiconize(&mut self, vci: Vci) {
        let geom = self.saved_geometry.remove(&vci);
        self.update(vci, |d| {
            d.visible = true;
            if let Some(g) = geom {
                d.clip = g;
            }
        });
    }

    fn bump_z(&mut self) -> u32 {
        let z = self.next_z;
        self.next_z += 1;
        z
    }

    fn update(&mut self, vci: Vci, f: impl FnOnce(&mut WindowDescriptor)) {
        let mut d = self.display.borrow_mut();
        if let Some(mut desc) = d.descriptor(vci) {
            f(&mut desc);
            d.set_descriptor(vci, desc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileFrame;
    use pegasus_atm::aal5::Segmenter;

    /// Sends a tile frame straight into the display as cells.
    fn send_frame(
        display: &Rc<RefCell<Display>>,
        sim: &mut Simulator,
        vci: Vci,
        frame: &TileFrame,
    ) {
        let cells = Segmenter::new(vci).segment(&frame.encode()).unwrap();
        for cell in cells {
            display.borrow_mut().deliver(sim, cell);
        }
    }

    fn solid_frame(value: u8, ts: u64) -> TileFrame {
        TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: 0,
            timestamp: ts,
            tiles: vec![(0, 0, vec![value; 64])],
        }
    }

    #[test]
    fn tile_lands_at_window_offset() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(16, 24, 32, 32));
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(200, 0));
        let d = display.borrow();
        assert_eq!(d.pixel(16, 24), 200);
        assert_eq!(d.pixel(23, 31), 200);
        assert_eq!(d.pixel(15, 24), 0, "outside the window untouched");
        assert_eq!(d.stats.tiles_blitted, 1);
        assert_eq!(d.stats.pixels_written, 64);
    }

    #[test]
    fn unknown_vci_discarded() {
        let display = Display::shared(32, 32);
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 99, &solid_frame(1, 0));
        assert_eq!(display.borrow().stats.tiles_discarded, 1);
        assert_eq!(display.borrow().stats.tiles_blitted, 0);
    }

    #[test]
    fn clipping_cuts_tiles() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        // Window only 4 pixels wide: half of each 8-wide tile clipped.
        wm.create(5, Rect::new(0, 0, 4, 64));
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(9, 0));
        let d = display.borrow();
        assert_eq!(d.stats.pixels_written, 32);
        assert_eq!(d.pixel(3, 0), 9);
        assert_eq!(d.pixel(4, 0), 0);
    }

    #[test]
    fn higher_window_occludes_lower() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 8, 8)); // bottom
        wm.create(6, Rect::new(4, 0, 8, 8)); // top, overlaps right half
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 6, &solid_frame(50, 0));
        send_frame(&display, &mut sim, 5, &solid_frame(200, 0));
        let d = display.borrow();
        assert_eq!(d.pixel(0, 0), 200, "unoccluded part painted");
        assert_eq!(
            d.pixel(4, 0),
            50,
            "occluded part keeps the top window's pixels"
        );
    }

    #[test]
    fn raise_changes_occlusion() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 8, 8));
        wm.create(6, Rect::new(0, 0, 8, 8)); // fully covers 5
        wm.raise(5);
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(123, 0));
        assert_eq!(display.borrow().pixel(0, 0), 123);
        // And 6 is now occluded.
        send_frame(&display, &mut sim, 6, &solid_frame(77, 0));
        assert_eq!(display.borrow().pixel(0, 0), 123);
        assert_eq!(display.borrow().stats.tiles_discarded, 1);
    }

    #[test]
    fn lower_pushes_window_beneath() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 8, 8));
        wm.create(6, Rect::new(0, 0, 8, 8));
        wm.lower(6);
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 6, &solid_frame(77, 0));
        assert_eq!(
            display.borrow().pixel(0, 0),
            0,
            "lowered window fully hidden"
        );
    }

    #[test]
    fn iconize_discards_then_deiconize_restores() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 16, 16));
        wm.iconize(5);
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(11, 0));
        assert_eq!(display.borrow().stats.tiles_blitted, 0);
        wm.deiconize(5);
        send_frame(&display, &mut sim, 5, &solid_frame(11, 0));
        assert_eq!(display.borrow().stats.tiles_blitted, 1);
        assert_eq!(display.borrow().pixel(0, 0), 11);
    }

    #[test]
    fn move_relocates_subsequent_tiles() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 8, 8));
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(40, 0));
        wm.move_to(5, 32, 32);
        send_frame(&display, &mut sim, 5, &solid_frame(41, 0));
        let d = display.borrow();
        assert_eq!(d.pixel(0, 0), 40, "old pixels remain until repainted");
        assert_eq!(d.pixel(32, 32), 41);
    }

    #[test]
    fn wm_draws_decorations_through_whole_screen_descriptor() {
        // Graphics and video unified: the WM paints a title bar with the
        // same tile frames a camera would send, on its own VCI, over all
        // windows.
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 32, 32));
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &solid_frame(100, 0));
        // Title bar tile at (0,0) painted by the WM wins over window 5.
        send_frame(&display, &mut sim, wm.wm_vci, &solid_frame(255, 0));
        assert_eq!(display.borrow().pixel(0, 0), 255);
        // The overlay does not occlude: the window may repaint, and the
        // manager re-draws its decoration afterwards (expose handling).
        send_frame(&display, &mut sim, 5, &solid_frame(100, 0));
        assert_eq!(display.borrow().pixel(0, 0), 100);
        send_frame(&display, &mut sim, wm.wm_vci, &solid_frame(255, 0));
        assert_eq!(display.borrow().pixel(0, 0), 255);
    }

    #[test]
    fn compressed_tiles_blit() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 64, 64));
        let pixels = [180u8; 64];
        let frame = TileFrame {
            coding: TileCoding::Compressed,
            quality: 80,
            frame_seq: 0,
            timestamp: 0,
            tiles: vec![(8, 8, codec::encode_tile(&pixels, 80))],
        };
        let mut sim = Simulator::new();
        send_frame(&display, &mut sim, 5, &frame);
        let v = display.borrow().pixel(12, 12) as i32;
        assert!((v - 180).abs() <= 3, "decoded pixel {v}");
    }

    #[test]
    fn corrupt_cell_poisons_only_its_frame() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 64, 64));
        let mut sim = Simulator::new();
        let mut cells = Segmenter::new(5)
            .segment(&solid_frame(7, 0).encode())
            .unwrap();
        cells[0].payload_mut()[3] ^= 0xFF;
        for cell in cells {
            display.borrow_mut().deliver(&mut sim, cell);
        }
        assert_eq!(display.borrow().stats.frames_bad, 1);
        assert_eq!(display.borrow().stats.tiles_blitted, 0);
        // Next frame is unaffected.
        send_frame(&display, &mut sim, 5, &solid_frame(8, 0));
        assert_eq!(display.borrow().stats.tiles_blitted, 1);
    }

    #[test]
    fn headless_display_matches_framebuffer_stats() {
        // Same traffic into a framebuffer display and a headless one:
        // every counter identical, including the clip/occlusion-driven
        // blit-vs-discard verdicts.
        let with_fb = Display::shared(64, 64);
        let headless = Display::shared_headless(64, 64);
        for d in [&with_fb, &headless] {
            let mut wm = WindowManager::new(d.clone(), 1);
            wm.create(5, Rect::new(0, 0, 4, 64)); // clips half of each tile
            wm.create(6, Rect::new(0, 0, 8, 8)); // occludes window 5's corner
        }
        let mut sim = Simulator::new();
        for d in [&with_fb, &headless] {
            send_frame(d, &mut sim, 5, &solid_frame(9, 0));
            send_frame(d, &mut sim, 6, &solid_frame(1, 0));
            send_frame(d, &mut sim, 99, &solid_frame(2, 0)); // unknown VCI
        }
        let (a, b) = (with_fb.borrow(), headless.borrow());
        assert_eq!(a.stats.tiles_blitted, b.stats.tiles_blitted);
        assert_eq!(a.stats.tiles_discarded, b.stats.tiles_discarded);
        assert_eq!(a.stats.pixels_written, b.stats.pixels_written);
        assert_eq!(a.stats.frames_bad, b.stats.frames_bad);
        assert_eq!(
            a.stats.latency.clone().summarize(),
            b.stats.latency.clone().summarize()
        );
    }

    #[test]
    fn latency_recorded_from_trailer_timestamp() {
        let display = Display::shared(64, 64);
        let mut wm = WindowManager::new(display.clone(), 1);
        wm.create(5, Rect::new(0, 0, 64, 64));
        let mut sim = Simulator::new();
        let display2 = display.clone();
        sim.schedule_at(10_000, move |sim| {
            send_frame(&display2, sim, 5, &solid_frame(1, 4_000));
        });
        sim.run();
        let mut d = display.borrow_mut();
        assert_eq!(d.stats.latency.percentile(50.0), Some(6_000));
    }
}
