//! Tiles and the on-the-wire tile-frame format.
//!
//! "Scan-lines of video are digitized and when eight lines have been
//! buffered, they are encoded as tiles, rectangles of 8×8 pixels. A
//! number of tiles are packed into the payload of an AAL5 frame together
//! with a trailer that provides the x and y coordinates of the tiles with
//! respect to the video frame, and a time stamp that identifies the frame
//! that the tile belongs to." (§2.1)
//!
//! Because "tiles essentially represent bit-blit operations of fixed
//! size, from the viewpoint of a display, there is a unification of video
//! and graphics" — the window manager writes its decorations as exactly
//! the same tile frames a camera produces.

/// Tile edge length in pixels.
pub const TILE_DIM: usize = 8;
/// Pixels per tile.
pub const TILE_PIXELS: usize = TILE_DIM * TILE_DIM;

/// An 8×8 tile of 8-bit luminance pixels, tagged with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// X coordinate (pixels) of the tile's left edge in the video frame.
    pub x: u16,
    /// Y coordinate (pixels) of the tile's top edge.
    pub y: u16,
    /// Pixel data in row-major order.
    pub pixels: [u8; TILE_PIXELS],
}

impl Tile {
    /// Creates a tile at (x, y) filled with a constant value.
    pub fn solid(x: u16, y: u16, value: u8) -> Self {
        Tile {
            x,
            y,
            pixels: [value; TILE_PIXELS],
        }
    }

    /// Extracts the tile at tile-grid position (tx, ty) from a
    /// `width × height` luminance image.
    ///
    /// # Panics
    ///
    /// Panics if the tile lies outside the image or the buffer is too
    /// small.
    pub fn from_image(image: &[u8], width: usize, tx: usize, ty: usize) -> Self {
        let x0 = tx * TILE_DIM;
        let y0 = ty * TILE_DIM;
        let mut pixels = [0u8; TILE_PIXELS];
        for row in 0..TILE_DIM {
            let src = (y0 + row) * width + x0;
            pixels[row * TILE_DIM..(row + 1) * TILE_DIM]
                .copy_from_slice(&image[src..src + TILE_DIM]);
        }
        Tile {
            x: x0 as u16,
            y: y0 as u16,
            pixels,
        }
    }
}

/// How tile payloads are coded inside a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileCoding {
    /// 64 raw bytes per tile.
    Raw,
    /// Variable-length Motion-JPEG-coded tiles (see [`crate::codec`]).
    Compressed,
}

/// A group of tiles travelling in one AAL5 frame, with the trailer data
/// the paper describes: per-tile coordinates and a frame timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TileFrame {
    /// Coding of the tile payloads.
    pub coding: TileCoding,
    /// Codec quality for [`TileCoding::Compressed`] payloads (0 for raw).
    pub quality: u8,
    /// Sequence number of the video frame these tiles belong to.
    pub frame_seq: u32,
    /// Capture timestamp of the video frame (virtual nanoseconds).
    pub timestamp: u64,
    /// `(x, y, payload)` for each tile; payload is 64 raw bytes or a
    /// compressed bitstream.
    pub tiles: Vec<(u16, u16, Vec<u8>)>,
}

/// Errors decoding a tile frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileFrameError {
    /// Frame shorter than its fixed header.
    Truncated,
    /// Unknown coding discriminant.
    BadCoding(u8),
    /// A tile's declared length overruns the frame.
    BadTileLength,
}

impl std::fmt::Display for TileFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileFrameError::Truncated => write!(f, "tile frame truncated"),
            TileFrameError::BadCoding(c) => write!(f, "unknown tile coding {c}"),
            TileFrameError::BadTileLength => write!(f, "tile length overruns frame"),
        }
    }
}

impl std::error::Error for TileFrameError {}

impl TileFrame {
    /// Serializes the frame to the AAL5 payload layout:
    /// `coding(1) quality(1) ntiles(1) frame_seq(4) timestamp(8)` then
    /// per tile `x(2) y(2) len(2) data(len)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.tiles.len() * 70);
        out.push(match self.coding {
            TileCoding::Raw => 0,
            TileCoding::Compressed => 1,
        });
        out.push(self.quality);
        out.push(self.tiles.len() as u8);
        out.extend_from_slice(&self.frame_seq.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        for (x, y, data) in &self.tiles {
            out.extend_from_slice(&x.to_be_bytes());
            out.extend_from_slice(&y.to_be_bytes());
            out.extend_from_slice(&(data.len() as u16).to_be_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses a frame produced by [`TileFrame::encode`].
    pub fn decode(bytes: &[u8]) -> Result<TileFrame, TileFrameError> {
        if bytes.len() < 15 {
            return Err(TileFrameError::Truncated);
        }
        let coding = match bytes[0] {
            0 => TileCoding::Raw,
            1 => TileCoding::Compressed,
            c => return Err(TileFrameError::BadCoding(c)),
        };
        let quality = bytes[1];
        let ntiles = bytes[2] as usize;
        let frame_seq = u32::from_be_bytes(bytes[3..7].try_into().expect("4 bytes"));
        let timestamp = u64::from_be_bytes(bytes[7..15].try_into().expect("8 bytes"));
        let mut tiles = Vec::with_capacity(ntiles);
        let mut off = 15;
        for _ in 0..ntiles {
            if off + 6 > bytes.len() {
                return Err(TileFrameError::Truncated);
            }
            let x = u16::from_be_bytes([bytes[off], bytes[off + 1]]);
            let y = u16::from_be_bytes([bytes[off + 2], bytes[off + 3]]);
            let len = u16::from_be_bytes([bytes[off + 4], bytes[off + 5]]) as usize;
            off += 6;
            if off + len > bytes.len() {
                return Err(TileFrameError::BadTileLength);
            }
            tiles.push((x, y, bytes[off..off + len].to_vec()));
            off += len;
        }
        Ok(TileFrame {
            coding,
            quality,
            frame_seq,
            timestamp,
            tiles,
        })
    }

    /// Total payload bytes across the tiles.
    pub fn payload_bytes(&self) -> usize {
        self.tiles.iter().map(|(_, _, d)| d.len()).sum()
    }
}

/// Streams the [`TileFrame::encode`] wire format directly into a byte
/// buffer — the zero-copy camera path writes each tile into the leased
/// arena buffer the AAL5 frame will be segmented from, skipping the
/// intermediate `TileFrame` struct and its per-tile `Vec`s entirely.
///
/// `B` is any owned-or-borrowed handle to a `Vec<u8>`: a plain
/// `&mut Vec<u8>`, or a `pegasus_sim::arena::FrameBufMut` lease.
///
/// # Examples
///
/// ```
/// use pegasus_devices::tile::{TileCoding, TileFrame, TileFrameWriter};
///
/// let mut buf = Vec::new();
/// let mut w = TileFrameWriter::begin(&mut buf, TileCoding::Raw, 0, 3, 99);
/// w.push_tile(0, 8, &[7u8; 64]);
/// w.finish();
/// let frame = TileFrame::decode(&buf).unwrap();
/// assert_eq!(frame.frame_seq, 3);
/// assert_eq!(frame.tiles[0].2, vec![7u8; 64]);
/// ```
pub struct TileFrameWriter<B: std::ops::DerefMut<Target = Vec<u8>>> {
    buf: B,
    /// Where this frame starts in the buffer.
    base: usize,
    tiles: usize,
}

impl<B: std::ops::DerefMut<Target = Vec<u8>>> TileFrameWriter<B> {
    /// Starts a frame, appending the fixed header to `buf`.
    pub fn begin(
        mut buf: B,
        coding: TileCoding,
        quality: u8,
        frame_seq: u32,
        timestamp: u64,
    ) -> Self {
        let base = buf.len();
        buf.push(match coding {
            TileCoding::Raw => 0,
            TileCoding::Compressed => 1,
        });
        buf.push(quality);
        buf.push(0); // ntiles, patched by finish()
        buf.extend_from_slice(&frame_seq.to_be_bytes());
        buf.extend_from_slice(&timestamp.to_be_bytes());
        TileFrameWriter {
            buf,
            base,
            tiles: 0,
        }
    }

    /// Appends one tile with an already-encoded payload.
    pub fn push_tile(&mut self, x: u16, y: u16, data: &[u8]) {
        self.push_tile_with(x, y, |out| out.extend_from_slice(data));
    }

    /// Appends one tile whose payload `encode` writes directly into the
    /// frame buffer (how the compressed path avoids a per-tile `Vec`).
    pub fn push_tile_with(&mut self, x: u16, y: u16, encode: impl FnOnce(&mut Vec<u8>)) {
        assert!(
            self.tiles < u8::MAX as usize,
            "tile count field is one byte"
        );
        self.buf.extend_from_slice(&x.to_be_bytes());
        self.buf.extend_from_slice(&y.to_be_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]); // length, patched below
        encode(&mut self.buf);
        let len = self.buf.len() - len_at - 2;
        self.buf[len_at..len_at + 2].copy_from_slice(&(len as u16).to_be_bytes());
        self.tiles += 1;
    }

    /// Tiles appended so far.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Payload bytes of this frame so far (excluding any bytes that
    /// preceded it in the buffer).
    pub fn frame_len(&self) -> usize {
        self.buf.len() - self.base
    }

    /// Patches the tile count and returns the buffer handle.
    pub fn finish(mut self) -> B {
        let ntiles = self.tiles as u8;
        self.buf[self.base + 2] = ntiles;
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tile_from_image_extracts_rows() {
        let width = 16;
        let image: Vec<u8> = (0..width * 16).map(|i| (i % 251) as u8).collect();
        let t = Tile::from_image(&image, width, 1, 1);
        assert_eq!(t.x, 8);
        assert_eq!(t.y, 8);
        // First pixel of the tile = image[8*16 + 8].
        assert_eq!(t.pixels[0], image[8 * 16 + 8]);
        // Last pixel = image[15*16 + 15].
        assert_eq!(t.pixels[63], image[15 * 16 + 15]);
    }

    #[test]
    fn frame_roundtrip_raw() {
        let frame = TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: 7,
            timestamp: 123_456_789,
            tiles: vec![
                (0, 0, vec![1u8; 64]),
                (8, 0, vec![2u8; 64]),
                (16, 8, vec![3u8; 64]),
            ],
        };
        let bytes = frame.encode();
        let back = TileFrame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.payload_bytes(), 192);
    }

    #[test]
    fn frame_roundtrip_compressed_variable_lengths() {
        let frame = TileFrame {
            coding: TileCoding::Compressed,
            quality: 50,
            frame_seq: 1,
            timestamp: 42,
            tiles: vec![(0, 0, vec![9u8; 17]), (8, 8, vec![])],
        };
        let back = TileFrame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(TileFrame::decode(&[0u8; 5]), Err(TileFrameError::Truncated));
        let frame = TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: 0,
            timestamp: 0,
            tiles: vec![(0, 0, vec![0u8; 64])],
        };
        let mut bytes = frame.encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(
            TileFrame::decode(&bytes),
            Err(TileFrameError::BadTileLength)
        );
    }

    #[test]
    fn bad_coding_rejected() {
        let mut bytes = TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: 0,
            timestamp: 0,
            tiles: vec![],
        }
        .encode();
        bytes[0] = 9;
        assert_eq!(TileFrame::decode(&bytes), Err(TileFrameError::BadCoding(9)));
    }

    #[test]
    fn solid_tile() {
        let t = Tile::solid(8, 16, 200);
        assert!(t.pixels.iter().all(|&p| p == 200));
        assert_eq!((t.x, t.y), (8, 16));
    }

    #[test]
    fn writer_matches_encode_byte_for_byte() {
        let frame = TileFrame {
            coding: TileCoding::Compressed,
            quality: 61,
            frame_seq: 0xDEAD_BEEF,
            timestamp: 0x0123_4567_89AB_CDEF,
            tiles: vec![
                (0, 0, vec![1u8; 17]),
                (8, 0, vec![]),
                (16, 8, vec![9u8; 64]),
            ],
        };
        let mut buf = Vec::new();
        let mut w = TileFrameWriter::begin(
            &mut buf,
            frame.coding,
            frame.quality,
            frame.frame_seq,
            frame.timestamp,
        );
        for (x, y, d) in &frame.tiles {
            w.push_tile(*x, *y, d);
        }
        assert_eq!(w.tiles(), 3);
        w.finish();
        assert_eq!(buf, frame.encode());
    }

    #[test]
    fn writer_appends_after_existing_bytes() {
        let mut buf = vec![0xEE; 5];
        let mut w = TileFrameWriter::begin(&mut buf, TileCoding::Raw, 0, 1, 2);
        w.push_tile_with(0, 0, |out| out.extend_from_slice(&[3u8; 64]));
        assert_eq!(w.frame_len(), 15 + 6 + 64);
        w.finish();
        assert_eq!(&buf[..5], &[0xEE; 5]);
        let frame = TileFrame::decode(&buf[5..]).unwrap();
        assert_eq!(frame.tiles.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_writer_equivalent_to_encode(
            seq in any::<u32>(),
            ts in any::<u64>(),
            tiles in proptest::collection::vec(
                (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..100)),
                0..20,
            ),
        ) {
            let frame = TileFrame {
                coding: TileCoding::Compressed,
                quality: 17,
                frame_seq: seq,
                timestamp: ts,
                tiles,
            };
            let mut buf = Vec::new();
            let mut w = TileFrameWriter::begin(&mut buf, frame.coding, frame.quality, seq, ts);
            for (x, y, d) in &frame.tiles {
                w.push_tile(*x, *y, d);
            }
            w.finish();
            prop_assert_eq!(buf, frame.encode());
        }

        #[test]
        fn prop_frame_roundtrip(
            seq in any::<u32>(),
            ts in any::<u64>(),
            tiles in proptest::collection::vec(
                (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..100)),
                0..20,
            ),
        ) {
            let frame = TileFrame {
                coding: TileCoding::Compressed,
                quality: 42,
                frame_seq: seq,
                timestamp: ts,
                tiles,
            };
            prop_assert_eq!(TileFrame::decode(&frame.encode()).unwrap(), frame);
        }
    }
}
