//! Deterministic synthetic video sources.
//!
//! The hardware ATM camera's CCD array is replaced by procedural frame
//! generators. Two patterns cover the experimental needs: a smooth moving
//! scene (compresses well, like real video) and a noise scene (worst case
//! for the codec). Both are pure functions of `(seed, frame_number)`, so
//! every experiment is reproducible.

/// A procedural luminance video source.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    /// Frame width in pixels (multiple of 8).
    pub width: usize,
    /// Frame height in pixels (multiple of 8).
    pub height: usize,
    /// Scene selector.
    pub scene: Scene,
    /// Seed mixed into the pattern.
    pub seed: u64,
}

/// The available synthetic scenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scene {
    /// A smooth diagonal gradient drifting over time with a moving
    /// bright square — typical "talking head plus motion" compressibility.
    MovingGradient,
    /// Uniform pseudo-random noise — incompressible worst case.
    Noise,
    /// A static test card (only the first frame's content, repeated) —
    /// the best case for any coder and for latency tests that want
    /// constant-size output.
    TestCard,
}

impl SyntheticVideo {
    /// Creates a source; dimensions must be multiples of the tile size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not a multiple of 8.
    pub fn new(width: usize, height: usize, scene: Scene, seed: u64) -> Self {
        assert!(
            width.is_multiple_of(8) && height.is_multiple_of(8),
            "dimensions must be tile-aligned"
        );
        SyntheticVideo {
            width,
            height,
            scene,
            seed,
        }
    }

    /// A quarter-CIF-ish default (176×144 is QCIF; we use a tile-aligned
    /// 176×144).
    pub fn qcif(scene: Scene) -> Self {
        SyntheticVideo::new(176, 144, scene, 1994)
    }

    /// Bytes per raw frame.
    pub fn frame_bytes(&self) -> usize {
        self.width * self.height
    }

    /// Renders frame `n` into a new buffer.
    pub fn frame(&self, n: u32) -> Vec<u8> {
        let mut buf = vec![0u8; self.frame_bytes()];
        self.render(n, &mut buf);
        buf
    }

    /// Renders frame `n` into a buffer leased from `arena` — the CCD
    /// "scans" straight into recycled arena storage, so a steady-state
    /// camera allocates nothing per frame.
    pub fn frame_leased(
        &self,
        n: u32,
        arena: &pegasus_sim::arena::Arena,
    ) -> pegasus_sim::arena::FrameBuf {
        let mut lease = arena.lease_zeroed(self.frame_bytes());
        self.render(n, &mut lease);
        lease.freeze()
    }

    /// Renders frame `n` into `buf` (must be `frame_bytes()` long).
    pub fn render(&self, n: u32, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.frame_bytes());
        match self.scene {
            Scene::MovingGradient => {
                let phase = (n as usize * 3) % 256;
                // Moving square position.
                let sq = 16usize;
                let sx = (n as usize * 5) % (self.width.saturating_sub(sq).max(1));
                let sy = (n as usize * 2) % (self.height.saturating_sub(sq).max(1));
                for y in 0..self.height {
                    for x in 0..self.width {
                        let g = ((x + 2 * y + phase + self.seed as usize) / 3) % 256;
                        let mut v = g as u8;
                        if x >= sx && x < sx + sq && y >= sy && y < sy + sq {
                            v = 240;
                        }
                        buf[y * self.width + x] = v;
                    }
                }
            }
            Scene::Noise => {
                // A zero state would freeze the xorshift; the odd
                // constant keeps every (seed, frame) pair live.
                let mut s = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(n as u64)
                    .wrapping_add(0xA076_1D64_78BD_642F);
                for p in buf.iter_mut() {
                    // xorshift64*
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    *p = (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
                }
            }
            Scene::TestCard => {
                for y in 0..self.height {
                    for x in 0..self.width {
                        // Colour bars in luminance: 8 vertical bands.
                        let band = x * 8 / self.width;
                        buf[y * self.width + x] = (band * 32 + 16) as u8;
                    }
                }
            }
        }
    }

    /// Number of tile columns.
    pub fn tiles_x(&self) -> usize {
        self.width / 8
    }

    /// Number of tile rows.
    pub fn tiles_y(&self) -> usize {
        self.height / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_frame() {
        let v = SyntheticVideo::qcif(Scene::MovingGradient);
        assert_eq!(v.frame(5), v.frame(5));
        assert_ne!(v.frame(5), v.frame(6), "scene should move");
    }

    #[test]
    fn noise_differs_per_seed() {
        let a = SyntheticVideo::new(64, 64, Scene::Noise, 1).frame(0);
        let b = SyntheticVideo::new(64, 64, Scene::Noise, 2).frame(0);
        assert_ne!(a, b);
    }

    #[test]
    fn test_card_is_static() {
        let v = SyntheticVideo::qcif(Scene::TestCard);
        assert_eq!(v.frame(0), v.frame(100));
    }

    #[test]
    fn dimensions() {
        let v = SyntheticVideo::qcif(Scene::TestCard);
        assert_eq!(v.frame_bytes(), 176 * 144);
        assert_eq!(v.tiles_x(), 22);
        assert_eq!(v.tiles_y(), 18);
    }

    #[test]
    #[should_panic(expected = "tile-aligned")]
    fn misaligned_rejected() {
        let _ = SyntheticVideo::new(100, 64, Scene::Noise, 0);
    }

    #[test]
    fn gradient_is_smooth_noise_is_not() {
        // Mean absolute horizontal delta: small for gradient, large for noise.
        let delta = |buf: &[u8], w: usize| -> f64 {
            let mut sum = 0f64;
            let mut n = 0f64;
            for row in buf.chunks(w) {
                for pair in row.windows(2) {
                    sum += (pair[0] as f64 - pair[1] as f64).abs();
                    n += 1.0;
                }
            }
            sum / n
        };
        let g = SyntheticVideo::new(64, 64, Scene::MovingGradient, 0).frame(0);
        let z = SyntheticVideo::new(64, 64, Scene::Noise, 0).frame(0);
        assert!(delta(&g, 64) < 10.0);
        assert!(delta(&z, 64) > 40.0);
    }
}
