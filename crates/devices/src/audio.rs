//! The ATM DSP/audio node (§2.1).
//!
//! "There is an ATM DSP node which combines digital signal processing
//! and audio input and output. This device contains DACs and ADCs and
//! packs and unpacks audio samples into ATM cells. Each such cell also
//! contains a time stamp."
//!
//! Audio "is much more susceptible to jitter ... the irregularities in
//! the transport and processing times" (§2): the DAC must be fed one
//! sample every sample period, so any cell arriving later than its
//! play-out instant is an audible drop-out. The [`AudioSink`] therefore
//! implements a play-out (jitter) buffer: it delays the start of
//! play-out until `target_depth` samples are queued, trading a fixed
//! latency for immunity to that much arrival jitter. Experiment E17
//! sweeps network jitter against buffer depth.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pegasus_atm::cell::{Cell, Vci};
use pegasus_atm::link::{CellSink, Link};
use pegasus_sim::stats::Histogram;
use pegasus_sim::time::{Ns, SEC};
use pegasus_sim::Simulator;

/// Samples carried per cell: 48-byte payload = 8-byte timestamp + 20
/// 16-bit samples.
pub const SAMPLES_PER_CELL: usize = 20;

/// Audio format parameters.
#[derive(Debug, Clone, Copy)]
pub struct AudioConfig {
    /// Sample rate in Hz (8 kHz telephony, 44.1 kHz hi-fi).
    pub sample_rate: u32,
}

impl AudioConfig {
    /// Telephone-quality 8 kHz.
    pub fn telephony() -> Self {
        AudioConfig { sample_rate: 8_000 }
    }

    /// CD-quality 44.1 kHz (one channel).
    pub fn hifi() -> Self {
        AudioConfig {
            sample_rate: 44_100,
        }
    }

    /// Nanoseconds between samples.
    pub fn sample_period(&self) -> Ns {
        SEC / self.sample_rate as u64
    }

    /// Nanoseconds between cells (20 samples each).
    pub fn cell_period(&self) -> Ns {
        self.sample_period() * SAMPLES_PER_CELL as u64
    }
}

/// Packs a timestamp and samples into a cell payload.
pub fn pack_cell(vci: Vci, timestamp: Ns, samples: &[i16; SAMPLES_PER_CELL]) -> Cell {
    let mut payload = [0u8; 48];
    payload[..8].copy_from_slice(&timestamp.to_be_bytes());
    for (i, s) in samples.iter().enumerate() {
        payload[8 + 2 * i..8 + 2 * i + 2].copy_from_slice(&s.to_be_bytes());
    }
    Cell::with_payload(vci, &payload)
}

/// Unpacks a cell produced by [`pack_cell`].
pub fn unpack_cell(cell: &Cell) -> (Ns, [i16; SAMPLES_PER_CELL]) {
    let payload = cell.payload();
    let ts = Ns::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
    let mut samples = [0i16; SAMPLES_PER_CELL];
    for (i, s) in samples.iter_mut().enumerate() {
        *s = i16::from_be_bytes([payload[8 + 2 * i], payload[8 + 2 * i + 1]]);
    }
    (ts, samples)
}

/// The ADC half: digitizes a deterministic tone and transmits cells at
/// the sample clock.
pub struct AudioSource {
    cfg: AudioConfig,
    vci: Vci,
    tx: Rc<RefCell<Link>>,
    running: bool,
    sample_no: u64,
    /// Tone frequency in Hz.
    pub tone_hz: u32,
    /// Cells transmitted.
    pub cells_sent: u64,
}

impl AudioSource {
    /// Creates a source on `vci` transmitting through `tx`.
    pub fn new(cfg: AudioConfig, vci: Vci, tx: Rc<RefCell<Link>>) -> Rc<RefCell<AudioSource>> {
        Rc::new(RefCell::new(AudioSource {
            cfg,
            vci,
            tx,
            running: false,
            sample_no: 0,
            tone_hz: 440,
            cells_sent: 0,
        }))
    }

    /// The sample the ADC reads at index `n` — a pure sine tone.
    fn sample(&self, n: u64) -> i16 {
        let phase =
            (n as f64 * self.tone_hz as f64 / self.cfg.sample_rate as f64) * std::f64::consts::TAU;
        (phase.sin() * 12_000.0) as i16
    }

    /// Starts capture.
    ///
    /// The sample clock is one chained handler, rescheduled by the engine
    /// for as long as the source runs — no allocations per cell period.
    pub fn start(src: &Rc<RefCell<AudioSource>>, sim: &mut Simulator) {
        {
            let mut s = src.borrow_mut();
            if s.running {
                return;
            }
            s.running = true;
        }
        let src2 = src.clone();
        sim.schedule_chain(move |sim| Self::tick(&src2, sim));
    }

    /// Stops capture after the in-flight cell.
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Captures one cell; returns the next tick time while running.
    fn tick(src: &Rc<RefCell<AudioSource>>, sim: &mut Simulator) -> Option<Ns> {
        let mut s = src.borrow_mut();
        if !s.running {
            return None;
        }
        let ts = sim.now();
        let mut samples = [0i16; SAMPLES_PER_CELL];
        let base = s.sample_no;
        for (i, slot) in samples.iter_mut().enumerate() {
            *slot = s.sample(base + i as u64);
        }
        s.sample_no += SAMPLES_PER_CELL as u64;
        let cell = pack_cell(s.vci, ts, &samples);
        s.cells_sent += 1;
        let tx = s.tx.clone();
        tx.borrow_mut().send(sim, cell);
        Some(sim.now().saturating_add(s.cfg.cell_period()))
    }
}

/// Counters the DAC keeps.
#[derive(Debug, Default, Clone)]
pub struct SinkStats {
    /// Cells received.
    pub cells_received: u64,
    /// Samples played to the DAC.
    pub samples_played: u64,
    /// Play-out instants with an empty buffer (audible drop-outs).
    pub underruns: u64,
    /// Samples discarded because the buffer was full.
    pub overruns: u64,
    /// Capture-to-play-out latency per consumed cell.
    pub playout_latency: Histogram,
}

/// The DAC half: buffers arriving cells and consumes them at the sample
/// clock once `target_depth` samples are queued.
pub struct AudioSink {
    cfg: AudioConfig,
    queue: VecDeque<(Ns, [i16; SAMPLES_PER_CELL])>,
    queued_samples: usize,
    /// Samples to accumulate before play-out starts (the jitter buffer).
    pub target_depth: usize,
    /// Hard cap on buffered samples.
    pub max_depth: usize,
    playing: bool,
    started: bool,
    /// Counters.
    pub stats: SinkStats,
}

impl AudioSink {
    /// Creates a sink with the given jitter-buffer depth (in samples).
    pub fn shared(cfg: AudioConfig, target_depth: usize) -> Rc<RefCell<AudioSink>> {
        Rc::new(RefCell::new(AudioSink {
            cfg,
            queue: VecDeque::new(),
            queued_samples: 0,
            target_depth,
            max_depth: target_depth.max(SAMPLES_PER_CELL) * 64,
            playing: false,
            started: false,
            stats: SinkStats::default(),
        }))
    }

    /// Begins the play-out clock; it runs until `until`, consuming one
    /// cell's worth of samples per cell period once the buffer has filled
    /// to the target depth. One chained handler carries every tick.
    pub fn start_playout(sink: &Rc<RefCell<AudioSink>>, sim: &mut Simulator, until: Ns) {
        let sink2 = sink.clone();
        sim.schedule_chain(move |sim| Self::playout_tick(&sink2, sim, until));
    }

    /// Plays one cell period; returns the next tick time before `until`.
    fn playout_tick(sink: &Rc<RefCell<AudioSink>>, sim: &mut Simulator, until: Ns) -> Option<Ns> {
        let period = {
            let mut s = sink.borrow_mut();
            let now = sim.now();
            if !s.playing {
                // Wait for the buffer to fill before the first sample.
                if s.queued_samples >= s.target_depth.max(1) {
                    s.playing = true;
                    s.started = true;
                }
            }
            if s.playing {
                if let Some((ts, _samples)) = s.queue.pop_front() {
                    s.queued_samples -= SAMPLES_PER_CELL;
                    s.stats.samples_played += SAMPLES_PER_CELL as u64;
                    s.stats.playout_latency.record(now.saturating_sub(ts));
                } else {
                    // Drop-out: the DAC plays silence for a cell period.
                    s.stats.underruns += 1;
                }
            }
            s.cfg.cell_period()
        };
        if sim.now() + period <= until {
            Some(sim.now() + period)
        } else {
            None
        }
    }
}

impl CellSink for AudioSink {
    fn deliver(&mut self, _sim: &mut Simulator, cell: Cell) {
        self.stats.cells_received += 1;
        let (ts, samples) = unpack_cell(&cell);
        if self.queued_samples + SAMPLES_PER_CELL > self.max_depth {
            self.stats.overruns += SAMPLES_PER_CELL as u64;
            return;
        }
        self.queue.push_back((ts, samples));
        self.queued_samples += SAMPLES_PER_CELL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_atm::link::CaptureSink;
    use pegasus_sim::time::MS;

    #[test]
    fn pack_unpack_roundtrip() {
        let mut samples = [0i16; SAMPLES_PER_CELL];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = (i as i16 - 10) * 1000;
        }
        let cell = pack_cell(9, 123_456, &samples);
        let (ts, back) = unpack_cell(&cell);
        assert_eq!(ts, 123_456);
        assert_eq!(back, samples);
        assert_eq!(cell.vci(), 9);
    }

    #[test]
    fn source_rate_matches_clock() {
        let capture = CaptureSink::shared();
        let tx = Rc::new(RefCell::new(Link::new(100_000_000, 0, capture.clone())));
        let src = AudioSource::new(AudioConfig::telephony(), 5, tx);
        let mut sim = Simulator::new();
        AudioSource::start(&src, &mut sim);
        sim.run_until(1_000 * MS);
        src.borrow_mut().stop();
        sim.run();
        // 8000 samples/s ÷ 20 per cell = 400 cells/s.
        let cells = src.borrow().cells_sent;
        assert!((400..=401).contains(&cells), "cells={cells}");
    }

    #[test]
    fn clean_network_no_underruns() {
        let cfg = AudioConfig::telephony();
        let sink = AudioSink::shared(cfg, 40); // 5 ms of buffer
        let tx = Rc::new(RefCell::new(Link::new(
            100_000_000,
            1_000,
            sink.clone() as pegasus_atm::link::SinkRef,
        )));
        let src = AudioSource::new(cfg, 5, tx);
        let mut sim = Simulator::new();
        AudioSource::start(&src, &mut sim);
        AudioSink::start_playout(&sink, &mut sim, 2_000 * MS);
        sim.run_until(2_000 * MS);
        src.borrow_mut().stop();
        sim.run();
        let s = sink.borrow();
        assert_eq!(s.stats.underruns, 0, "clean delivery must not underrun");
        assert!(s.stats.samples_played > 10_000);
    }

    #[test]
    fn jitter_beyond_buffer_causes_underruns() {
        // Deliver cells with ±8 ms jitter into a 2.5 ms buffer.
        let cfg = AudioConfig::telephony();
        let sink = AudioSink::shared(cfg, SAMPLES_PER_CELL); // one cell of buffer
        let mut sim = Simulator::new();
        let cell_period = cfg.cell_period();
        for i in 0..400u64 {
            let ideal = i * cell_period;
            // Deterministic sawtooth jitter 0..8 ms.
            let jitter = (i % 5) * 2 * MS;
            let sink2 = sink.clone();
            let mut samples = [0i16; SAMPLES_PER_CELL];
            samples[0] = i as i16;
            let cell = pack_cell(5, ideal, &samples);
            sim.schedule_at(ideal + jitter, move |sim| {
                sink2.borrow_mut().deliver(sim, cell);
            });
        }
        AudioSink::start_playout(&sink, &mut sim, 1_100 * MS);
        sim.run();
        assert!(
            sink.borrow().stats.underruns > 0,
            "heavy jitter through a shallow buffer must cause drop-outs"
        );
    }

    #[test]
    fn deep_buffer_absorbs_the_same_jitter() {
        let cfg = AudioConfig::telephony();
        // 12 ms of buffer (96 samples) against 8 ms of jitter.
        let sink = AudioSink::shared(cfg, 96);
        let mut sim = Simulator::new();
        let cell_period = cfg.cell_period();
        for i in 0..400u64 {
            let ideal = i * cell_period;
            let jitter = (i % 5) * 2 * MS;
            let sink2 = sink.clone();
            let cell = pack_cell(5, ideal, &[0i16; SAMPLES_PER_CELL]);
            sim.schedule_at(ideal + jitter, move |sim| {
                sink2.borrow_mut().deliver(sim, cell);
            });
        }
        AudioSink::start_playout(&sink, &mut sim, 1_000 * MS);
        sim.run();
        assert_eq!(
            sink.borrow().stats.underruns,
            0,
            "a buffer deeper than the jitter absorbs it"
        );
    }

    #[test]
    fn playout_latency_tracks_buffer_depth() {
        let cfg = AudioConfig::telephony();
        let shallow = AudioSink::shared(cfg, SAMPLES_PER_CELL);
        let deep = AudioSink::shared(cfg, 160); // 20 ms
        for sink in [&shallow, &deep] {
            let mut sim = Simulator::new();
            let cell_period = cfg.cell_period();
            for i in 0..200u64 {
                let t = i * cell_period;
                let s2 = sink.clone();
                let cell = pack_cell(5, t, &[0i16; SAMPLES_PER_CELL]);
                sim.schedule_at(t, move |sim| s2.borrow_mut().deliver(sim, cell));
            }
            AudioSink::start_playout(sink, &mut sim, 600 * MS);
            sim.run();
        }
        let mut sh = shallow.borrow_mut();
        let mut de = deep.borrow_mut();
        let l_sh = sh.stats.playout_latency.percentile(50.0).unwrap();
        let l_de = de.stats.playout_latency.percentile(50.0).unwrap();
        assert!(
            l_de > l_sh + 10 * MS,
            "deep buffer latency {l_de} should exceed shallow {l_sh} by ≥10 ms"
        );
    }

    #[test]
    fn overrun_drops_when_buffer_full() {
        let cfg = AudioConfig::telephony();
        let sink = AudioSink::shared(cfg, SAMPLES_PER_CELL);
        sink.borrow_mut().max_depth = 3 * SAMPLES_PER_CELL;
        let mut sim = Simulator::new();
        // Never start play-out; flood the buffer.
        for i in 0..10u64 {
            let cell = pack_cell(5, i, &[0i16; SAMPLES_PER_CELL]);
            sink.borrow_mut().deliver(&mut sim, cell);
        }
        let s = sink.borrow();
        assert_eq!(s.stats.cells_received, 10);
        assert_eq!(s.stats.overruns, 7 * SAMPLES_PER_CELL as u64);
    }

    #[test]
    fn tone_is_deterministic_sine() {
        let capture = CaptureSink::shared();
        let tx = Rc::new(RefCell::new(Link::new(100_000_000, 0, capture.clone())));
        let src = AudioSource::new(AudioConfig::telephony(), 5, tx);
        let mut sim = Simulator::new();
        AudioSource::start(&src, &mut sim);
        sim.run_until(100 * MS);
        src.borrow_mut().stop();
        sim.run();
        let arrivals = &capture.borrow().arrivals;
        assert!(!arrivals.is_empty());
        let (_, samples) = unpack_cell(&arrivals[0].1);
        // 440 Hz at 8 kHz: first sample 0, then rising.
        assert_eq!(samples[0], 0);
        assert!(samples[1] > 0);
        let peak = samples.iter().map(|s| s.unsigned_abs()).max().unwrap();
        assert!(peak <= 12_000);
    }
}
