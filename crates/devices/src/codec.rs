//! A Motion-JPEG-style intra-frame tile codec.
//!
//! "Cameras can be equipped with one or more compression devices. ...
//! Currently, both raw video and motion JPEG are supported." (§2.1)
//!
//! The codec is the real JPEG pipeline at tile granularity: level shift,
//! 8×8 forward DCT, quantization with the standard luminance matrix
//! scaled by a 1–100 quality factor, zigzag scan, and run-length coding
//! of the coefficients. It is intra-frame only (every tile stands alone),
//! exactly the property the paper relies on when it credits AAL5 with
//! "protection against rendering or decompressing faulty tiles": a lost
//! tile damages 64 pixels, not a stream.

use crate::tile::{TILE_DIM, TILE_PIXELS};

/// The standard JPEG luminance quantization matrix (Annex K).
#[rustfmt::skip]
const QUANT_BASE: [u16; TILE_PIXELS] = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8×8 block.
#[rustfmt::skip]
const ZIGZAG: [usize; TILE_PIXELS] = [
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Errors from [`decode_tile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended mid-token.
    Truncated,
    /// More than 64 coefficients were coded.
    TooManyCoefficients,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed tile truncated"),
            CodecError::TooManyCoefficients => write!(f, "compressed tile overlong"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Builds the quantization matrix for a JPEG-convention quality factor
/// in 1..=100 (higher is better).
pub fn quant_matrix(quality: u8) -> [u16; TILE_PIXELS] {
    let q = quality.clamp(1, 100) as u32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut m = [0u16; TILE_PIXELS];
    for (i, &base) in QUANT_BASE.iter().enumerate() {
        m[i] = (((base as u32 * scale) + 50) / 100).clamp(1, 255) as u16;
    }
    m
}

/// Separable 8×8 forward DCT-II with orthonormal scaling.
fn fdct(block: &[f32; TILE_PIXELS]) -> [f32; TILE_PIXELS] {
    let mut tmp = [0f32; TILE_PIXELS];
    let mut out = [0f32; TILE_PIXELS];
    let n = TILE_DIM as f32;
    // Rows.
    for r in 0..TILE_DIM {
        for k in 0..TILE_DIM {
            let mut sum = 0f32;
            for x in 0..TILE_DIM {
                sum += block[r * TILE_DIM + x]
                    * ((std::f32::consts::PI / n) * (x as f32 + 0.5) * k as f32).cos();
            }
            let c = if k == 0 {
                (1.0 / n).sqrt()
            } else {
                (2.0 / n).sqrt()
            };
            tmp[r * TILE_DIM + k] = c * sum;
        }
    }
    // Columns.
    for c in 0..TILE_DIM {
        for k in 0..TILE_DIM {
            let mut sum = 0f32;
            for y in 0..TILE_DIM {
                sum += tmp[y * TILE_DIM + c]
                    * ((std::f32::consts::PI / n) * (y as f32 + 0.5) * k as f32).cos();
            }
            let cc = if k == 0 {
                (1.0 / n).sqrt()
            } else {
                (2.0 / n).sqrt()
            };
            out[k * TILE_DIM + c] = cc * sum;
        }
    }
    out
}

/// Separable 8×8 inverse DCT (DCT-III), the inverse of [`fdct`].
fn idct(block: &[f32; TILE_PIXELS]) -> [f32; TILE_PIXELS] {
    let mut tmp = [0f32; TILE_PIXELS];
    let mut out = [0f32; TILE_PIXELS];
    let n = TILE_DIM as f32;
    // Columns.
    for c in 0..TILE_DIM {
        for y in 0..TILE_DIM {
            let mut sum = 0f32;
            for k in 0..TILE_DIM {
                let cc = if k == 0 {
                    (1.0 / n).sqrt()
                } else {
                    (2.0 / n).sqrt()
                };
                sum += cc
                    * block[k * TILE_DIM + c]
                    * ((std::f32::consts::PI / n) * (y as f32 + 0.5) * k as f32).cos();
            }
            tmp[y * TILE_DIM + c] = sum;
        }
    }
    // Rows.
    for r in 0..TILE_DIM {
        for x in 0..TILE_DIM {
            let mut sum = 0f32;
            for k in 0..TILE_DIM {
                let c = if k == 0 {
                    (1.0 / n).sqrt()
                } else {
                    (2.0 / n).sqrt()
                };
                sum += c
                    * tmp[r * TILE_DIM + k]
                    * ((std::f32::consts::PI / n) * (x as f32 + 0.5) * k as f32).cos();
            }
            out[r * TILE_DIM + x] = sum;
        }
    }
    out
}

/// Compresses one tile of pixels at the given quality.
///
/// The bitstream is a sequence of `(run, level)` tokens: one byte of
/// zero-run length followed by a big-endian `i16` level, terminated by
/// the end-of-block byte `0xFF`.
pub fn encode_tile(pixels: &[u8; TILE_PIXELS], quality: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    encode_tile_into(pixels, quality, &mut out);
    out
}

/// [`encode_tile`], appending the bitstream to `out` — the zero-copy
/// camera path encodes straight into the leased frame buffer a tile
/// frame is being assembled in, so compression allocates nothing.
pub fn encode_tile_into(pixels: &[u8; TILE_PIXELS], quality: u8, out: &mut Vec<u8>) {
    let quant = quant_matrix(quality);
    let mut block = [0f32; TILE_PIXELS];
    for (b, &p) in block.iter_mut().zip(pixels.iter()) {
        *b = p as f32 - 128.0;
    }
    let coeffs = fdct(&block);
    let mut run: u8 = 0;
    for &zz in ZIGZAG.iter() {
        let q = (coeffs[zz] / quant[zz] as f32).round() as i16;
        if q == 0 {
            run = run.saturating_add(1);
        } else {
            out.push(run);
            out.extend_from_slice(&q.to_be_bytes());
            run = 0;
        }
    }
    out.push(0xFF); // end of block
}

/// Decompresses a tile produced by [`encode_tile`] at the same quality.
pub fn decode_tile(data: &[u8], quality: u8) -> Result<[u8; TILE_PIXELS], CodecError> {
    let quant = quant_matrix(quality);
    let mut coeffs = [0f32; TILE_PIXELS];
    let mut pos = 0usize; // position in zigzag order
    let mut i = 0usize;
    loop {
        let Some(&run) = data.get(i) else {
            return Err(CodecError::Truncated);
        };
        if run == 0xFF {
            break;
        }
        if i + 3 > data.len() {
            return Err(CodecError::Truncated);
        }
        let level = i16::from_be_bytes([data[i + 1], data[i + 2]]);
        i += 3;
        pos += run as usize;
        if pos >= TILE_PIXELS {
            return Err(CodecError::TooManyCoefficients);
        }
        let zz = ZIGZAG[pos];
        coeffs[zz] = level as f32 * quant[zz] as f32;
        pos += 1;
    }
    let spatial = idct(&coeffs);
    let mut pixels = [0u8; TILE_PIXELS];
    for (p, &s) in pixels.iter_mut().zip(spatial.iter()) {
        *p = (s + 128.0).round().clamp(0.0, 255.0) as u8;
    }
    Ok(pixels)
}

/// Peak signal-to-noise ratio between two images, in dB; `None` when the
/// images are identical.
pub fn psnr(a: &[u8], b: &[u8]) -> Option<f64> {
    assert_eq!(a.len(), b.len());
    let mse: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        None
    } else {
        Some(10.0 * (255.0f64 * 255.0 / mse).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_tile() -> [u8; TILE_PIXELS] {
        let mut t = [0u8; TILE_PIXELS];
        for y in 0..TILE_DIM {
            for x in 0..TILE_DIM {
                t[y * TILE_DIM + x] = (x * 8 + y * 16) as u8;
            }
        }
        t
    }

    fn noisy_tile(seed: u8) -> [u8; TILE_PIXELS] {
        let mut t = [0u8; TILE_PIXELS];
        let mut s = seed as u32 | 1;
        for p in t.iter_mut() {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *p = (s >> 24) as u8;
        }
        t
    }

    #[test]
    fn dct_roundtrips_without_quantization() {
        let tile = noisy_tile(3);
        let mut block = [0f32; TILE_PIXELS];
        for (b, &p) in block.iter_mut().zip(tile.iter()) {
            *b = p as f32 - 128.0;
        }
        let back = idct(&fdct(&block));
        for (orig, rec) in block.iter().zip(back.iter()) {
            assert!((orig - rec).abs() < 0.01, "{orig} vs {rec}");
        }
    }

    #[test]
    fn flat_tile_compresses_to_a_few_bytes() {
        let tile = [128u8; TILE_PIXELS];
        let data = encode_tile(&tile, 75);
        // DC-only (or empty): at most one token + EOB.
        assert!(data.len() <= 4, "flat tile coded in {} bytes", data.len());
        let back = decode_tile(&data, 75).unwrap();
        assert_eq!(back, tile);
    }

    #[test]
    fn smooth_tile_high_quality_high_fidelity() {
        let tile = gradient_tile();
        let data = encode_tile(&tile, 90);
        let back = decode_tile(&data, 90).unwrap();
        let snr = psnr(&tile, &back).unwrap_or(f64::INFINITY);
        assert!(snr > 35.0, "PSNR {snr:.1} dB too low");
        assert!(data.len() < 64, "no compression achieved: {}", data.len());
    }

    #[test]
    fn quality_trades_size_for_fidelity() {
        let tile = noisy_tile(7);
        let hi = encode_tile(&tile, 95);
        let lo = encode_tile(&tile, 10);
        assert!(lo.len() < hi.len(), "lo {} !< hi {}", lo.len(), hi.len());
        let hi_psnr = psnr(&tile, &decode_tile(&hi, 95).unwrap()).unwrap_or(f64::INFINITY);
        let lo_psnr = psnr(&tile, &decode_tile(&lo, 10).unwrap()).unwrap_or(f64::INFINITY);
        assert!(hi_psnr > lo_psnr, "hi {hi_psnr:.1} !> lo {lo_psnr:.1}");
    }

    #[test]
    fn decode_truncated_fails_cleanly() {
        let tile = gradient_tile();
        let data = encode_tile(&tile, 50);
        for cut in 0..data.len() - 1 {
            let r = decode_tile(&data[..cut], 50);
            // Either a clean error or — if the cut lands after a whole
            // token — a short but valid parse; never a panic.
            if cut == 0 {
                assert_eq!(r, Err(CodecError::Truncated));
            }
        }
    }

    #[test]
    fn decode_overlong_rejected() {
        // 65 tokens of run 0 must overflow the block.
        let mut data = Vec::new();
        for _ in 0..65 {
            data.push(0u8);
            data.extend_from_slice(&1i16.to_be_bytes());
        }
        data.push(0xFF);
        assert_eq!(decode_tile(&data, 50), Err(CodecError::TooManyCoefficients));
    }

    #[test]
    fn quant_matrix_extremes() {
        let q1 = quant_matrix(1);
        let q100 = quant_matrix(100);
        assert!(q1.iter().all(|&v| v == 255), "quality 1 saturates");
        assert!(q100.iter().all(|&v| v == 1), "quality 100 is lossless-ish");
        let q50 = quant_matrix(50);
        assert_eq!(q50[0], QUANT_BASE[0]);
    }

    #[test]
    fn psnr_identical_is_none() {
        let a = [7u8; 64];
        assert_eq!(psnr(&a, &a), None);
        let mut b = a;
        b[0] = 8;
        assert!(psnr(&a, &b).unwrap() > 40.0);
    }

    #[test]
    fn all_extreme_tiles_roundtrip() {
        for v in [0u8, 255] {
            let tile = [v; TILE_PIXELS];
            for q in [1u8, 25, 50, 75, 100] {
                let back = decode_tile(&encode_tile(&tile, q), q).unwrap();
                let snr = psnr(&tile, &back).map(|p| p as i64).unwrap_or(i64::MAX);
                assert!(snr > 30, "v={v} q={q} psnr={snr}");
            }
        }
    }
}
