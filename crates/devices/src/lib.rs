//! ATM multimedia devices (§2.1).
//!
//! The Pegasus devices hang directly off the ATM switch rather than a
//! workstation bus, so that "when video flows from a camera in one
//! system to a display in another ... no processors need to process any
//! video data". This crate models the three devices the paper describes
//! plus the pieces they share:
//!
//! * [`tile`] — the 8×8 pixel tile, the unit in which video moves, and
//!   the AAL5 frame format with the (x, y, timestamp) trailer.
//! * [`codec`] — a genuine DCT + quantize + zigzag + run-length
//!   Motion-JPEG-style intra-frame codec, so compression ratios and
//!   PSNR are real measurements rather than constants.
//! * [`video`] — deterministic synthetic video sources (the substitute
//!   for the CCD array).
//! * [`camera`] — the ATM camera: scan-line digitization, 8-line
//!   buffering, tiling, optional compression, AAL5 framing, cell
//!   transmission on the data VC.
//! * [`display`] — the ATM display: a window-descriptor table indexed
//!   by VCI, tile blitting with clipping, and the window manager that
//!   manipulates the descriptors (create/move/resize/raise/lower/
//!   iconize) — "a unification of video and graphics".
//! * [`audio`] — the DSP node: ADC/DAC sample clocks, timestamped cell
//!   packing, and the play-out discipline whose jitter behaviour E17
//!   measures.

pub mod audio;
pub mod camera;
pub mod codec;
pub mod display;
pub mod tile;
pub mod video;

pub use camera::{Camera, CameraConfig, VideoMode};
pub use display::{Display, WindowDescriptor, WindowManager};
pub use tile::{Tile, TileFrame, TILE_DIM, TILE_PIXELS};
