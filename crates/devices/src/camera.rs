//! The ATM camera (§2.1, Figure 2).
//!
//! "The ATM camera directly produces digital video as a stream of ATM
//! cells": scan lines are digitized at line rate; when eight lines have
//! been buffered they are encoded as 8×8 tiles; tiles are packed into
//! AAL5 frames with an (x, y, timestamp) trailer and segmented into
//! cells on the data virtual circuit. The camera optionally compresses
//! tiles with the Motion-JPEG codec; "the device to be used is
//! identified when the virtual circuit is established".
//!
//! The crucial latency property — "the use of tiles for video reduces
//! latency in several places from a 'frame time' (33 or 40 ms) to a
//! 'tile time' (30 to 40 µs)" — is captured by the two
//! [`Granularity`] settings: [`Granularity::TileRow`] ships each row of
//! tiles the moment its eight scan lines exist, while
//! [`Granularity::Frame`] models a conventional frame-grabber that
//! buffers the whole frame first. Experiment E1 compares them.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_atm::aal5::Segmenter;
use pegasus_atm::cell::{Cell, Vci};
use pegasus_atm::credit::CreditRef;
use pegasus_atm::link::Link;
use pegasus_sim::arena::{Arena, FrameBuf, FrameBufMut};
use pegasus_sim::time::{Ns, SEC};
use pegasus_sim::Simulator;

use crate::codec;
use crate::tile::{Tile, TileCoding, TileFrameWriter};
use crate::video::SyntheticVideo;

/// Raw or compressed output, fixed at VC-establishment time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoMode {
    /// 64 bytes per tile on the wire.
    Raw,
    /// Motion-JPEG at the given quality (1–100).
    Mjpeg(u8),
}

/// When digitized pixels leave the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Ship every 8-line tile row as soon as it is scanned (the DAN way).
    TileRow,
    /// Buffer the whole frame, then ship (the frame-grabber baseline).
    Frame,
}

/// Camera configuration.
#[derive(Debug, Clone, Copy)]
pub struct CameraConfig {
    /// Frames per second (25 for PAL-ish, 30 for NTSC-ish).
    pub fps: u32,
    /// Output coding.
    pub mode: VideoMode,
    /// Emission granularity.
    pub granularity: Granularity,
    /// Max tiles packed into one AAL5 frame.
    pub tiles_per_frame: usize,
    /// Hardware pipeline latency from scan completion to first cell
    /// offered to the link (digitizer + tiler + compressor).
    pub pipeline_latency: Ns,
}

impl Default for CameraConfig {
    fn default() -> Self {
        CameraConfig {
            fps: 25,
            mode: VideoMode::Mjpeg(50),
            granularity: Granularity::TileRow,
            tiles_per_frame: 8,
            pipeline_latency: 10_000, // 10 µs through the device pipeline
        }
    }
}

/// Counters the camera maintains.
#[derive(Debug, Default, Clone)]
pub struct CameraStats {
    /// Video frames fully scanned.
    pub frames_captured: u64,
    /// Tiles emitted.
    pub tiles_sent: u64,
    /// AAL5 tile-frames emitted.
    pub aal5_frames: u64,
    /// AAL5 tile-frames withheld because the credit window was empty —
    /// backpressure degrading at frame granularity, never mid-frame.
    pub frames_skipped: u64,
    /// Payload bytes before AAL5 overhead.
    pub payload_bytes: u64,
    /// Raw pixel bytes digitized.
    pub raw_bytes: u64,
}

impl CameraStats {
    /// Achieved compression ratio (raw ÷ payload).
    pub fn compression_ratio(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// The ATM camera device.
///
/// The data path is allocation-free at steady state: the CCD renders
/// into a buffer leased from the camera's [`Arena`], tile frames are
/// written directly into further leased buffers (no intermediate
/// `TileFrame` struct, no per-tile `Vec`s), and AAL5 segmentation takes
/// zero-copy views of those buffers — the switch fabric forwards the
/// very bytes the encoder wrote.
pub struct Camera {
    video: SyntheticVideo,
    cfg: CameraConfig,
    vci: Vci,
    tx: Rc<RefCell<Link>>,
    running: bool,
    frame_no: u32,
    /// The buffer pool frames and tile frames are leased from.
    arena: Arena,
    /// Scratch cell train reused across sends.
    cells: Vec<Cell>,
    /// The circuit's credit window, when flow control is on: a whole
    /// tile-frame's cells are acquired before any of them transmit.
    credit: Option<CreditRef>,
    /// Per-run statistics.
    pub stats: CameraStats,
}

impl Camera {
    /// Creates a camera producing `video` on virtual circuit `vci`,
    /// transmitting through `tx` (the endpoint link into the switch).
    pub fn new(
        video: SyntheticVideo,
        cfg: CameraConfig,
        vci: Vci,
        tx: Rc<RefCell<Link>>,
    ) -> Rc<RefCell<Camera>> {
        Rc::new(RefCell::new(Camera {
            video,
            cfg,
            vci,
            tx,
            running: false,
            frame_no: 0,
            arena: Arena::new(),
            cells: Vec::new(),
            credit: None,
            stats: CameraStats::default(),
        }))
    }

    /// Puts the data circuit under `credit` flow control: every AAL5
    /// frame's cells are acquired all-or-nothing before transmission,
    /// and a frame that cannot get credits is skipped whole.
    pub fn set_credit(&mut self, credit: CreditRef) {
        self.credit = Some(credit);
    }

    /// Changes the frame rate (the control-VC `SetRate` command). Takes
    /// effect at the next frame tick — the loop reads the period fresh.
    pub fn set_fps(&mut self, fps: u32) {
        assert!(fps > 0, "a camera cannot run at 0 fps");
        self.cfg.fps = fps;
    }

    /// The current configured frame rate.
    pub fn fps(&self) -> u32 {
        self.cfg.fps
    }

    /// The camera's buffer arena (for lease-accounting assertions).
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Frame period from the configured rate.
    pub fn frame_period(&self) -> Ns {
        SEC / self.cfg.fps as u64
    }

    /// Scan time of one line.
    pub fn line_period(&self) -> Ns {
        self.frame_period() / self.video.height as u64
    }

    /// Changes the coding quality (the control-VC `SetQuality` command).
    pub fn set_mode(&mut self, mode: VideoMode) {
        self.cfg.mode = mode;
    }

    /// Whether the camera is currently capturing.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Starts capture; frames are scanned and emitted until
    /// [`Camera::stop`] is called.
    ///
    /// The frame loop is one chained handler rescheduled by the engine
    /// every frame period — no allocations per frame for the loop itself
    /// (row emissions still carry their own captures).
    pub fn start(cam: &Rc<RefCell<Camera>>, sim: &mut Simulator) {
        {
            let mut c = cam.borrow_mut();
            if c.running {
                return;
            }
            c.running = true;
        }
        let cam2 = cam.clone();
        sim.schedule_chain(move |sim| Self::frame_tick(&cam2, sim));
    }

    /// Stops capture after the current frame.
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Scans one frame and schedules its row emissions; returns the next
    /// frame's start time while running.
    fn frame_tick(cam: &Rc<RefCell<Camera>>, sim: &mut Simulator) -> Option<Ns> {
        let (running, frame_period) = {
            let c = cam.borrow();
            (c.running, c.frame_period())
        };
        if !running {
            return None;
        }
        let frame_start = sim.now();
        let (height, rows, line_period, granularity) = {
            let c = cam.borrow();
            (
                c.video.height,
                c.video.tiles_y(),
                c.line_period(),
                c.cfg.granularity,
            )
        };
        // Render the frame the CCD will scan, into recycled arena
        // storage; row emissions share it by refcount.
        let image = {
            let mut c = cam.borrow_mut();
            let n = c.frame_no;
            c.frame_no += 1;
            c.stats.frames_captured += 1;
            c.video.frame_leased(n, &c.arena)
        };
        let frame_seq = cam.borrow().frame_no - 1;
        let frame_scan_done = frame_start + height as u64 * line_period;
        for row in 0..rows {
            // The row's eight lines finish digitizing here...
            let scanned_at = frame_start + ((row + 1) * 8) as u64 * line_period;
            // ...and leave the device here.
            let emit_at = match granularity {
                Granularity::TileRow => scanned_at,
                Granularity::Frame => frame_scan_done,
            } + cam.borrow().cfg.pipeline_latency;
            let cam2 = cam.clone();
            let image2 = image.clone();
            sim.schedule_at(emit_at, move |sim| {
                cam2.borrow_mut()
                    .emit_row(sim, &image2, row, frame_seq, scanned_at);
            });
        }
        // Next frame.
        Some(frame_start + frame_period)
    }

    /// Encodes and transmits one row of tiles; `scanned_at` is the
    /// timestamp carried in the tile-frame trailer. Tile payloads are
    /// encoded straight into a leased buffer, which AAL5 then segments
    /// by reference — no copy from encoder to wire.
    fn emit_row(
        &mut self,
        sim: &mut Simulator,
        image: &FrameBuf,
        row: usize,
        frame_seq: u32,
        scanned_at: Ns,
    ) {
        let tiles_x = self.video.tiles_x();
        let (coding, quality) = match self.cfg.mode {
            VideoMode::Raw => (TileCoding::Raw, 0),
            VideoMode::Mjpeg(q) => (TileCoding::Compressed, q),
        };
        let mut writer: Option<TileFrameWriter<FrameBufMut>> = None;
        for tx_idx in 0..tiles_x {
            let tile = Tile::from_image(image, self.video.width, tx_idx, row);
            let w = writer.get_or_insert_with(|| {
                TileFrameWriter::begin(self.arena.lease(), coding, quality, frame_seq, scanned_at)
            });
            match self.cfg.mode {
                VideoMode::Raw => w.push_tile(tile.x, tile.y, &tile.pixels),
                VideoMode::Mjpeg(q) => w.push_tile_with(tile.x, tile.y, |out| {
                    codec::encode_tile_into(&tile.pixels, q, out)
                }),
            }
            self.stats.raw_bytes += 64;
            self.stats.tiles_sent += 1;
            if w.tiles() == self.cfg.tiles_per_frame || tx_idx == tiles_x - 1 {
                let frame = writer.take().expect("writer active").finish().freeze();
                self.send_frame(sim, &frame);
            }
        }
    }

    fn send_frame(&mut self, sim: &mut Simulator, frame: &FrameBuf) {
        Segmenter::new(self.vci)
            .segment_frame(&frame.view_all(), &mut self.cells)
            .expect("tile frames are far below the AAL5 maximum");
        if let Some(credit) = &self.credit {
            if !credit
                .borrow_mut()
                .try_acquire_at(sim.now(), self.cells.len() as u64)
            {
                // No credits for the whole frame: hold it at the source.
                // Dropping a complete tile-frame costs one frame's tiles;
                // sending part of one would poison reassembly downstream.
                self.cells.clear();
                self.stats.frames_skipped += 1;
                return;
            }
        }
        self.stats.aal5_frames += 1;
        self.stats.payload_bytes += frame.len() as u64;
        let mut tx = self.tx.borrow_mut();
        for cell in self.cells.drain(..) {
            tx.send(sim, cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileFrame;
    use crate::video::Scene;
    use pegasus_atm::aal5::Reassembler;
    use pegasus_atm::link::CaptureSink;
    use pegasus_sim::time::MS;

    fn capture_setup(cfg: CameraConfig) -> (Rc<RefCell<Camera>>, Rc<RefCell<CaptureSink>>) {
        let sink = CaptureSink::shared();
        let tx = Rc::new(RefCell::new(Link::new(100_000_000, 1_000, sink.clone())));
        let video = SyntheticVideo::new(64, 48, Scene::MovingGradient, 7);
        let cam = Camera::new(video, cfg, 42, tx);
        (cam, sink)
    }

    fn reassemble_frames(sink: &Rc<RefCell<CaptureSink>>) -> Vec<(u64, TileFrame)> {
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for (t, cell) in &sink.borrow().arrivals {
            if let Some(res) = r.push(cell) {
                let frame = TileFrame::decode(&res.expect("CRC clean")).expect("well formed");
                out.push((*t, frame));
            }
        }
        out
    }

    #[test]
    fn one_frame_produces_all_tiles() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(39 * MS); // less than one frame period
        cam.borrow_mut().stop();
        sim.run_until(200 * MS);
        // 64×48 = 8×6 tiles.
        assert_eq!(cam.borrow().stats.tiles_sent, 48);
        let frames = reassemble_frames(&sink);
        let tiles: usize = frames.iter().map(|(_, f)| f.tiles.len()).sum();
        assert_eq!(tiles, 48);
        // All raw tiles are 64 bytes.
        for (_, f) in &frames {
            assert_eq!(f.coding, TileCoding::Raw);
            for (_, _, d) in &f.tiles {
                assert_eq!(d.len(), 64);
            }
        }
    }

    #[test]
    fn tiles_carry_correct_coordinates() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(39 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let frames = reassemble_frames(&sink);
        let mut seen = std::collections::HashSet::new();
        for (_, f) in &frames {
            for &(x, y, _) in &f.tiles {
                assert!(x < 64 && y < 48);
                assert_eq!(x % 8, 0);
                assert_eq!(y % 8, 0);
                assert!(seen.insert((x, y)), "duplicate tile ({x},{y})");
            }
        }
        assert_eq!(seen.len(), 48);
    }

    #[test]
    fn tile_row_granularity_ships_before_frame_completes() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            granularity: Granularity::TileRow,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(100 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let frames = reassemble_frames(&sink);
        let frame_period = cam.borrow().frame_period();
        // First tile frame of video frame 0 arrives well before the
        // frame finishes scanning.
        let first = frames.iter().find(|(_, f)| f.frame_seq == 0).unwrap();
        assert!(
            first.0 < frame_period / 2,
            "first tiles at {} should beat the 40 ms frame scan",
            first.0
        );
    }

    #[test]
    fn frame_granularity_waits_for_whole_scan() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            granularity: Granularity::Frame,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(100 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let frames = reassemble_frames(&sink);
        let frame_period = cam.borrow().frame_period();
        let first = frames.iter().find(|(_, f)| f.frame_seq == 0).unwrap();
        assert!(
            first.0 >= frame_period,
            "frame grabber cannot ship before the scan ends (got {})",
            first.0
        );
    }

    #[test]
    fn mjpeg_mode_compresses() {
        let (cam, _sink) = capture_setup(CameraConfig {
            mode: VideoMode::Mjpeg(50),
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(200 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let ratio = cam.borrow().stats.compression_ratio();
        assert!(
            ratio > 2.0,
            "gradient scene should compress ≥2×, got {ratio:.2}"
        );
    }

    #[test]
    fn compressed_tiles_decode_to_plausible_pixels() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Mjpeg(75),
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(39 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let frames = reassemble_frames(&sink);
        let original = cam.borrow().video.frame(0);
        let width = cam.borrow().video.width;
        let mut total_psnr = 0.0;
        let mut n = 0;
        for (_, f) in &frames {
            assert_eq!(f.coding, TileCoding::Compressed);
            for &(x, y, ref d) in &f.tiles {
                let pixels = codec::decode_tile(d, f.quality).expect("valid bitstream");
                let orig = Tile::from_image(&original, width, x as usize / 8, y as usize / 8);
                if let Some(p) = codec::psnr(&orig.pixels, &pixels) {
                    total_psnr += p;
                    n += 1;
                }
            }
        }
        if n > 0 {
            let avg = total_psnr / n as f64;
            assert!(avg > 28.0, "average tile PSNR {avg:.1} dB too low");
        }
    }

    #[test]
    fn camera_cells_ride_the_zero_copy_lane() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(100 * MS);
        cam.borrow_mut().stop();
        sim.run();
        // Every full-body cell references an arena frame; only the
        // synthesised pad/trailer tails are inline.
        {
            let arrivals = &sink.borrow().arrivals;
            assert!(!arrivals.is_empty());
            let views = arrivals.iter().filter(|(_, c)| c.is_view()).count();
            assert!(
                views * 2 > arrivals.len(),
                "most cells must be views, got {views}/{}",
                arrivals.len()
            );
        }
        // The capture sink still holds the delivered cells, pinning the
        // tile-frame buffers — but the CCD image buffers recycle from
        // frame to frame, so fresh allocations lag leases.
        let stats = cam.borrow().arena().stats();
        assert!(
            stats.fresh_allocs < stats.leases_granted,
            "fresh {} vs granted {}",
            stats.fresh_allocs,
            stats.leases_granted
        );
    }

    #[test]
    fn steady_state_camera_recycles_buffers() {
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Mjpeg(50),
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        // Drain the capture sink between frames so leases return.
        for i in 1..=10u64 {
            sim.run_until(i * 40 * MS);
            sink.borrow_mut().arrivals.clear();
        }
        cam.borrow_mut().stop();
        sim.run();
        sink.borrow_mut().arrivals.clear();
        let stats = cam.borrow().arena().stats();
        assert_eq!(
            stats.outstanding, 0,
            "every frame and tile-frame lease returned"
        );
        // 10+ frames, each an image lease + several tile-frame leases,
        // served by a handful of distinct buffers.
        assert!(
            stats.leases_granted > 50,
            "granted {}",
            stats.leases_granted
        );
        assert!(
            stats.fresh_allocs <= 8,
            "steady state must recycle, allocated {}",
            stats.fresh_allocs
        );
    }

    #[test]
    fn empty_credit_window_skips_whole_frames_only() {
        use pegasus_atm::credit::CreditWindow;
        let (cam, sink) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        // Room for exactly one 8-tile AAL5 frame (64 B tiles ≈ 13 cells
        // with headers and trailer) and nothing more: every later frame
        // must be withheld whole.
        let credit = CreditWindow::shared(20);
        cam.borrow_mut().set_credit(credit.clone());
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(39 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let stats = cam.borrow().stats.clone();
        assert_eq!(stats.aal5_frames, 1, "one frame fit the window");
        assert!(stats.frames_skipped > 0, "the rest were held at source");
        assert!(credit.borrow().conserved());
        assert!(credit.borrow().peak_in_flight() <= 20);
        // Whatever arrived reassembles cleanly — no partial frames.
        let frames = reassemble_frames(&sink);
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn set_fps_takes_effect_at_the_next_tick() {
        let (cam, _) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(500 * MS); // ~12 frames at 25 fps
        cam.borrow_mut().set_fps(5);
        sim.run_until(1_000 * MS); // ~2-3 more at 5 fps
        cam.borrow_mut().stop();
        sim.run();
        let f = cam.borrow().stats.frames_captured;
        assert!(
            (14..=17).contains(&f),
            "rate change must halve the cadence live, captured {f}"
        );
        assert_eq!(cam.borrow().fps(), 5);
    }

    #[test]
    fn stop_halts_capture() {
        let (cam, _) = capture_setup(CameraConfig::default());
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(50 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let frames_at_stop = cam.borrow().stats.frames_captured;
        assert!(frames_at_stop >= 1);
        assert!(!cam.borrow().is_running());
    }

    #[test]
    fn sustained_rate_25fps() {
        let (cam, _) = capture_setup(CameraConfig {
            mode: VideoMode::Raw,
            ..CameraConfig::default()
        });
        let mut sim = Simulator::new();
        Camera::start(&cam, &mut sim);
        sim.run_until(1_000 * MS);
        cam.borrow_mut().stop();
        sim.run();
        let f = cam.borrow().stats.frames_captured;
        assert!((25..=26).contains(&f), "captured {f} frames in 1 s");
    }
}
