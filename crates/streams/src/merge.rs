//! The control-stream merger.
//!
//! "A host that wishes to send synchronized audio and video will do so
//! by having the audio node and camera send the audio and video data
//! streams separately ... while a local process will merge the two
//! control streams into a combined control stream for the playback
//! control process at the rendering end." (§2.2)
//!
//! The merger takes the per-device control streams and emits one stream
//! ordered by source timestamp, so the playback controller sees a single
//! time-coherent description of the whole presentation.

use std::collections::VecDeque;

use crate::control::CtrlMsg;
use pegasus_sim::time::Ns;

/// Merges N device control streams into one timestamp-ordered stream.
///
/// Marks are released only once every input has progressed past their
/// timestamp (the classic watermark rule), so the output order is total
/// even when inputs arrive interleaved arbitrarily.
#[derive(Debug)]
pub struct ControlMerger {
    inputs: Vec<VecDeque<CtrlMsg>>,
    /// Highest timestamp seen per input (the watermark).
    watermark: Vec<Option<Ns>>,
    output: Vec<CtrlMsg>,
}

impl ControlMerger {
    /// Creates a merger over `n` input streams.
    pub fn new(n: usize) -> Self {
        ControlMerger {
            inputs: (0..n).map(|_| VecDeque::new()).collect(),
            watermark: vec![None; n],
            output: Vec::new(),
        }
    }

    /// Number of input streams.
    pub fn inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Feeds a message arriving on `input`. Non-sync messages pass
    /// through immediately (they are commands, not timeline entries).
    pub fn push(&mut self, input: usize, msg: CtrlMsg) {
        match msg {
            CtrlMsg::SyncMark { ts, .. } => {
                self.inputs[input].push_back(msg);
                self.watermark[input] = Some(self.watermark[input].unwrap_or(0).max(ts));
                self.drain();
            }
            other => self.output.push(other),
        }
    }

    /// Declares an input finished; its watermark no longer holds back
    /// the merge.
    pub fn close_input(&mut self, input: usize) {
        self.watermark[input] = Some(Ns::MAX);
        self.drain();
    }

    fn drain(&mut self) {
        let Some(min_wm) = self.watermark.iter().map(|w| w.unwrap_or(0)).min() else {
            return;
        };
        // Release, in timestamp order, every queued mark ≤ the minimum
        // watermark.
        loop {
            let mut best: Option<(usize, Ns)> = None;
            for (i, q) in self.inputs.iter().enumerate() {
                if let Some(CtrlMsg::SyncMark { ts, .. }) = q.front() {
                    if *ts <= min_wm && best.is_none_or(|(_, bts)| *ts < bts) {
                        best = Some((i, *ts));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let msg = self.inputs[i].pop_front().expect("peeked");
            self.output.push(msg);
        }
    }

    /// Takes the merged output produced so far.
    pub fn take_output(&mut self) -> Vec<CtrlMsg> {
        std::mem::take(&mut self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(stream: u8, seq: u32, ts: Ns) -> CtrlMsg {
        CtrlMsg::SyncMark { stream, seq, ts }
    }

    fn timestamps(msgs: &[CtrlMsg]) -> Vec<Ns> {
        msgs.iter()
            .filter_map(|m| match m {
                CtrlMsg::SyncMark { ts, .. } => Some(*ts),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn interleaved_inputs_come_out_ordered() {
        let mut m = ControlMerger::new(2);
        // Audio marks every 10, video every 40, fed out of order.
        m.push(1, mark(1, 0, 40));
        m.push(0, mark(0, 0, 10));
        m.push(0, mark(0, 1, 20));
        m.push(0, mark(0, 2, 30));
        m.push(0, mark(0, 3, 40));
        m.push(1, mark(1, 1, 80));
        m.push(0, mark(0, 4, 50));
        m.close_input(0);
        m.close_input(1);
        let ts = timestamps(&m.take_output());
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
        assert_eq!(ts, vec![10, 20, 30, 40, 40, 50, 80]);
    }

    #[test]
    fn marks_held_until_all_inputs_progress() {
        let mut m = ControlMerger::new(2);
        m.push(0, mark(0, 0, 100));
        // Input 1 has said nothing: nothing may be released yet.
        assert!(timestamps(&m.take_output()).is_empty());
        m.push(1, mark(1, 0, 150));
        let ts = timestamps(&m.take_output());
        assert_eq!(ts, vec![100]);
    }

    #[test]
    fn close_input_releases_the_rest() {
        let mut m = ControlMerger::new(2);
        m.push(0, mark(0, 0, 10));
        m.push(0, mark(0, 1, 20));
        m.close_input(1); // stream 1 will never speak
        let ts = timestamps(&m.take_output());
        assert_eq!(ts, vec![10, 20]);
    }

    #[test]
    fn commands_pass_through_immediately() {
        let mut m = ControlMerger::new(2);
        m.push(0, CtrlMsg::Start { stream: 0 });
        m.push(1, CtrlMsg::SetQuality { quality: 30 });
        let out = m.take_output();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], CtrlMsg::Start { stream: 0 });
    }

    #[test]
    fn single_input_is_fifo() {
        let mut m = ControlMerger::new(1);
        for i in 0..5 {
            m.push(0, mark(0, i, (i as u64 + 1) * 7));
        }
        assert_eq!(timestamps(&m.take_output()), vec![7, 14, 21, 28, 35]);
    }

    #[test]
    fn three_way_merge() {
        let mut m = ControlMerger::new(3);
        m.push(0, mark(0, 0, 5));
        m.push(1, mark(1, 0, 3));
        m.push(2, mark(2, 0, 4));
        m.push(0, mark(0, 1, 10));
        m.push(1, mark(1, 1, 10));
        m.push(2, mark(2, 1, 10));
        // Once every input reaches watermark 10, everything to 10 flows.
        let ts = timestamps(&m.take_output());
        assert_eq!(ts, vec![3, 4, 5, 10, 10, 10]);
        m.close_input(0);
        m.close_input(1);
        m.close_input(2);
        assert!(timestamps(&m.take_output()).is_empty());
    }
}
