//! The control protocol and stream synchronization (§2.2).
//!
//! "Multimedia devices generate two streams of data on two distinct
//! virtual circuits. One is the actual data stream ... The other is a
//! control stream; this is a bi-directional low-bandwidth stream that is
//! used to control the device and for purposes of synchronization."
//!
//! Three pieces implement the section:
//!
//! * [`control`] — the control-message wire format (start/stop/quality/
//!   sync marks) and the device manager that opens the data + control
//!   VC pairs through signalling on behalf of dumb devices.
//! * [`merge`] — the control-stream *merger*: "a local process will
//!   merge the two control streams into a combined control stream for
//!   the playback control process at the rendering end".
//! * [`playback`] — the playback-control process, "responsible for the
//!   synchronization of the play-out of the various streams arriving at
//!   it, based on the source synchronization information from the
//!   remote manager(s) and data arrival events".

pub mod control;
pub mod merge;
pub mod playback;

pub use control::{connect_device, CtrlMsg, DeviceConnection};
pub use merge::ControlMerger;
pub use playback::{ArrivalSink, PlaybackControl, PlaybackPolicy, StreamId};
