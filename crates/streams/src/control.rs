//! Control messages and the device manager.
//!
//! Control VCs carry small self-contained messages. "In the case of many
//! of the ATM devices, this signalling is handled by a management process
//! on the attached workstation, rather than by the device itself" — here
//! [`connect_device`], which opens the data VC plus the bidirectional
//! control pair and tears all three down together.

use pegasus_atm::network::{EndpointId, Network, VcHandle};
use pegasus_atm::signalling::{AdmissionError, QosSpec};
use pegasus_sim::time::Ns;

/// Bandwidth reserved for a control VC: low, as the paper says.
pub const CONTROL_BPS: u64 = 64_000;

/// A control-stream message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Begin producing/consuming.
    Start {
        /// Which substream of the device (camera video = 0, audio = 1…).
        stream: u8,
    },
    /// Cease producing/consuming.
    Stop {
        /// Substream selector.
        stream: u8,
    },
    /// Change the compression quality.
    SetQuality {
        /// New 1–100 quality.
        quality: u8,
    },
    /// A synchronization mark: "source synchronization information".
    SyncMark {
        /// Substream selector.
        stream: u8,
        /// Sequence number of the mark.
        seq: u32,
        /// Capture timestamp the mark refers to.
        ts: Ns,
    },
}

/// Errors decoding a control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlError {
    /// Buffer too short for the declared message.
    Truncated,
    /// Unknown opcode.
    BadOpcode(u8),
}

impl std::fmt::Display for CtrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlError::Truncated => write!(f, "control message truncated"),
            CtrlError::BadOpcode(op) => write!(f, "unknown control opcode {op}"),
        }
    }
}

impl std::error::Error for CtrlError {}

impl CtrlMsg {
    /// Serializes to the wire form (opcode byte + operands).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            CtrlMsg::Start { stream } => vec![0, *stream],
            CtrlMsg::Stop { stream } => vec![1, *stream],
            CtrlMsg::SetQuality { quality } => vec![2, *quality],
            CtrlMsg::SyncMark { stream, seq, ts } => {
                let mut v = vec![3, *stream];
                v.extend_from_slice(&seq.to_be_bytes());
                v.extend_from_slice(&ts.to_be_bytes());
                v
            }
        }
    }

    /// Parses a message produced by [`CtrlMsg::encode`].
    pub fn decode(bytes: &[u8]) -> Result<CtrlMsg, CtrlError> {
        let (&op, rest) = bytes.split_first().ok_or(CtrlError::Truncated)?;
        match op {
            0 => Ok(CtrlMsg::Start {
                stream: *rest.first().ok_or(CtrlError::Truncated)?,
            }),
            1 => Ok(CtrlMsg::Stop {
                stream: *rest.first().ok_or(CtrlError::Truncated)?,
            }),
            2 => Ok(CtrlMsg::SetQuality {
                quality: *rest.first().ok_or(CtrlError::Truncated)?,
            }),
            3 => {
                if rest.len() < 13 {
                    return Err(CtrlError::Truncated);
                }
                Ok(CtrlMsg::SyncMark {
                    stream: rest[0],
                    seq: u32::from_be_bytes(rest[1..5].try_into().expect("4 bytes")),
                    ts: Ns::from_be_bytes(rest[5..13].try_into().expect("8 bytes")),
                })
            }
            op => Err(CtrlError::BadOpcode(op)),
        }
    }
}

/// The trio of circuits a connected device holds.
#[derive(Debug, Clone)]
pub struct DeviceConnection {
    /// The high-bandwidth data stream (device → sink).
    pub data: VcHandle,
    /// Control stream, manager → device direction.
    pub control_out: VcHandle,
    /// Control stream, device → manager direction.
    pub control_in: VcHandle,
}

/// Opens the data VC and the bidirectional control pair between `src`
/// and `dst` — the device manager's signalling job. On any failure every
/// circuit already opened is released.
pub fn connect_device(
    net: &mut Network,
    src: EndpointId,
    dst: EndpointId,
    data_qos: QosSpec,
) -> Result<DeviceConnection, AdmissionError> {
    let data = net.open_vc(src, dst, data_qos)?;
    let control_out = match net.open_vc(src, dst, QosSpec::guaranteed(CONTROL_BPS)) {
        Ok(vc) => vc,
        Err(e) => {
            net.close_vc(data);
            return Err(e);
        }
    };
    let control_in = match net.open_vc(dst, src, QosSpec::guaranteed(CONTROL_BPS)) {
        Ok(vc) => vc,
        Err(e) => {
            net.close_vc(data);
            net.close_vc(control_out);
            return Err(e);
        }
    };
    Ok(DeviceConnection {
        data,
        control_out,
        control_in,
    })
}

/// Closes all three circuits of a device connection.
pub fn disconnect_device(net: &mut Network, conn: DeviceConnection) {
    net.close_vc(conn.data);
    net.close_vc(conn.control_out);
    net.close_vc(conn.control_in);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_atm::link::CaptureSink;
    use pegasus_atm::network::LinkConfig;
    use proptest::prelude::*;

    #[test]
    fn messages_roundtrip() {
        let msgs = [
            CtrlMsg::Start { stream: 0 },
            CtrlMsg::Stop { stream: 3 },
            CtrlMsg::SetQuality { quality: 85 },
            CtrlMsg::SyncMark {
                stream: 1,
                seq: 42,
                ts: 987_654_321,
            },
        ];
        for m in msgs {
            assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(CtrlMsg::decode(&[9, 0]), Err(CtrlError::BadOpcode(9)));
        assert_eq!(CtrlMsg::decode(&[]), Err(CtrlError::Truncated));
        assert_eq!(CtrlMsg::decode(&[3, 0, 1]), Err(CtrlError::Truncated));
    }

    fn two_endpoint_net() -> (Network, EndpointId, EndpointId) {
        let mut net = Network::new();
        let cfg = LinkConfig::pegasus_default();
        let sw = net.add_switch("sw", 4, 0);
        let a = net.add_endpoint(sw, 0, cfg, CaptureSink::shared());
        let b = net.add_endpoint(sw, 1, cfg, CaptureSink::shared());
        (net, a, b)
    }

    #[test]
    fn connect_device_opens_three_circuits() {
        let (mut net, a, b) = two_endpoint_net();
        let conn = connect_device(&mut net, a, b, QosSpec::guaranteed(10_000_000)).unwrap();
        assert_ne!(conn.data.src_vci, conn.control_out.src_vci);
        // Data + control_out reserve on a's tx; control_in on b's tx.
        let used_a = 95_000_000 - net.endpoint_tx_available(a);
        assert_eq!(used_a, 10_000_000 + CONTROL_BPS);
        let used_b = 95_000_000 - net.endpoint_tx_available(b);
        assert_eq!(used_b, CONTROL_BPS);
        disconnect_device(&mut net, conn);
        assert_eq!(net.endpoint_tx_available(a), 95_000_000);
        assert_eq!(net.endpoint_tx_available(b), 95_000_000);
    }

    #[test]
    fn failed_data_vc_leaves_nothing_reserved() {
        let (mut net, a, b) = two_endpoint_net();
        let before = net.endpoint_tx_available(a);
        let err = connect_device(&mut net, a, b, QosSpec::guaranteed(200_000_000));
        assert!(err.is_err());
        assert_eq!(net.endpoint_tx_available(a), before);
    }

    #[test]
    fn failed_control_vc_rolls_back_data_vc() {
        let (mut net, a, b) = two_endpoint_net();
        // Data VC fits exactly; control VC cannot.
        let err = connect_device(&mut net, a, b, QosSpec::guaranteed(95_000_000));
        assert!(err.is_err());
        assert_eq!(net.endpoint_tx_available(a), 95_000_000);
    }

    proptest! {
        #[test]
        fn prop_sync_mark_roundtrip(stream in any::<u8>(), seq in any::<u32>(), ts in any::<u64>()) {
            let m = CtrlMsg::SyncMark { stream, seq, ts };
            prop_assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..20)) {
            let _ = CtrlMsg::decode(&bytes);
        }
    }
}
