//! The playback-control process.
//!
//! "The playback control process is then responsible for the
//! synchronization of the play-out of the various streams arriving at
//! it, based on the source synchronization information from the remote
//! manager(s) and data arrival events." (§2.2)
//!
//! Mechanism: every media item carries its source capture timestamp.
//! Under [`PlaybackPolicy::Synchronized`], the controller presents item
//! `ts` at `ts + target_latency` on *every* stream, so simultaneous
//! captures render simultaneously regardless of per-stream transport
//! delays; items arriving after their play-out instant are late (counted
//! and presented immediately). Under [`PlaybackPolicy::FreeRunning`] each
//! item renders on arrival — the baseline whose audio/video skew E16
//! measures.

use pegasus_atm::aal5::Reassembler;
use pegasus_atm::cell::Cell;
use pegasus_atm::link::CellSink;
use pegasus_sim::stats::Histogram;
use pegasus_sim::time::Ns;
use pegasus_sim::{SharedHandler, Simulator};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::{Rc, Weak};

/// Identifier of a stream registered with a [`PlaybackControl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// Presentation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaybackPolicy {
    /// Present on arrival (no synchronization).
    FreeRunning,
    /// Present at `capture + target_latency`, holding early arrivals.
    Synchronized {
        /// The common presentation delay, covering transport plus jitter.
        target_latency: Ns,
    },
}

/// Per-stream presentation statistics.
#[derive(Debug, Default, Clone)]
pub struct StreamStats {
    /// Items presented.
    pub presented: u64,
    /// Items that arrived after their presentation instant.
    pub late: u64,
    /// Capture-to-presentation latency.
    pub latency: Histogram,
}

/// The playback controller.
pub struct PlaybackControl {
    policy: PlaybackPolicy,
    streams: Vec<(String, StreamStats)>,
    /// capture-ts → (stream, presented-at) log for skew computation.
    presented: HashMap<Ns, Vec<(StreamId, Ns)>>,
    /// Observed inter-stream skew for same-timestamp items.
    pub skew: Histogram,
    /// Held items awaiting their play-out instant, ordered by
    /// `(due, insertion)` — the exact order the engine fires their
    /// events in, so one shared handler serves every hold.
    holds: BinaryHeap<Reverse<(Ns, u64, usize, Ns)>>,
    hold_order: u64,
    hold_handler: Option<SharedHandler>,
}

impl PlaybackControl {
    /// Creates a controller with the given policy, wrapped for use from
    /// simulator events.
    pub fn shared(policy: PlaybackPolicy) -> Rc<RefCell<PlaybackControl>> {
        Rc::new(RefCell::new(PlaybackControl {
            policy,
            streams: Vec::new(),
            presented: HashMap::new(),
            skew: Histogram::new(),
            holds: BinaryHeap::new(),
            hold_order: 0,
            hold_handler: None,
        }))
    }

    /// The one shared event handler presenting held items. Created on
    /// first use; holds only a weak reference so controller and handler
    /// don't keep each other alive.
    fn hold_handler(ctl: &Rc<RefCell<PlaybackControl>>) -> SharedHandler {
        if let Some(h) = ctl.borrow().hold_handler.clone() {
            return h;
        }
        let weak: Weak<RefCell<PlaybackControl>> = Rc::downgrade(ctl);
        let h: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
            if let Some(ctl) = weak.upgrade() {
                let Reverse((due, _, stream, capture_ts)) = ctl
                    .borrow_mut()
                    .holds
                    .pop()
                    .expect("one held item per hold event");
                debug_assert_eq!(due, sim.now(), "holds fire at their due time");
                ctl.borrow_mut()
                    .present(sim.now(), StreamId(stream), capture_ts, false);
            }
            None
        }));
        ctl.borrow_mut().hold_handler = Some(h.clone());
        h
    }

    /// Registers a stream.
    pub fn add_stream(&mut self, name: &str) -> StreamId {
        self.streams
            .push((name.to_string(), StreamStats::default()));
        StreamId(self.streams.len() - 1)
    }

    /// Statistics of a stream.
    pub fn stats(&self, s: StreamId) -> &StreamStats {
        &self.streams[s.0].1
    }

    /// Handles a data-arrival event for an item captured at `capture_ts`
    /// on `stream`, scheduling (or performing) its presentation.
    pub fn on_arrival(
        ctl: &Rc<RefCell<PlaybackControl>>,
        sim: &mut Simulator,
        stream: StreamId,
        capture_ts: Ns,
    ) {
        let policy = ctl.borrow().policy;
        match policy {
            PlaybackPolicy::FreeRunning => {
                ctl.borrow_mut()
                    .present(sim.now(), stream, capture_ts, false);
            }
            PlaybackPolicy::Synchronized { target_latency } => {
                let due = capture_ts + target_latency;
                if sim.now() >= due {
                    // Arrived too late to hold: present now, count it.
                    ctl.borrow_mut()
                        .present(sim.now(), stream, capture_ts, true);
                } else {
                    // Hold until `due` on the allocation-free lane.
                    let handler = Self::hold_handler(ctl);
                    {
                        let mut c = ctl.borrow_mut();
                        let order = c.hold_order;
                        c.hold_order += 1;
                        c.holds.push(Reverse((due, order, stream.0, capture_ts)));
                    }
                    sim.schedule_shared_at(due, handler);
                }
            }
        }
    }

    fn present(&mut self, now: Ns, stream: StreamId, capture_ts: Ns, late: bool) {
        let st = &mut self.streams[stream.0].1;
        st.presented += 1;
        if late {
            st.late += 1;
        }
        st.latency.record(now.saturating_sub(capture_ts));
        // Skew against every other stream's presentation of this capture
        // instant.
        let entry = self.presented.entry(capture_ts).or_default();
        for &(other, t) in entry.iter() {
            if other != stream {
                self.skew.record(now.abs_diff(t));
            }
        }
        entry.push((stream, now));
    }

    /// Total presentations that arrived after their play-out instant,
    /// across all streams — the playback half of a scenario's
    /// deadline-miss count.
    pub fn late_total(&self) -> u64 {
        self.streams.iter().map(|(_, s)| s.late).sum()
    }

    /// Fraction of presentations that were late, across all streams.
    pub fn late_fraction(&self) -> f64 {
        let (late, total) = self
            .streams
            .iter()
            .fold((0u64, 0u64), |(l, t), (_, s)| (l + s.late, t + s.presented));
        if total == 0 {
            0.0
        } else {
            late as f64 / total as f64
        }
    }
}

/// A [`CellSink`] that turns a media virtual circuit into playback
/// arrivals: cells are reassembled into AAL5 frames, a caller-supplied
/// extractor reads each frame's source capture timestamp, and the item
/// is handed to [`PlaybackControl::on_arrival`].
///
/// This is the glue that lets a scenario spec spawn a synchronized
/// session directly on a network endpoint — no hand-wired per-frame
/// callbacks. The extractor keeps this crate ignorant of the payload
/// format (tile frames live in the devices crate).
pub struct ArrivalSink {
    ctl: Rc<RefCell<PlaybackControl>>,
    stream: StreamId,
    reasm: Reassembler,
    ts_of: TimestampExtractor,
    /// Frames delivered to the playback controller.
    pub frames: u64,
    /// Frames dropped: reassembly errors or no extractable timestamp.
    pub frames_bad: u64,
}

/// Pulls the source capture timestamp out of a reassembled media frame.
pub type TimestampExtractor = Box<dyn Fn(&[u8]) -> Option<Ns>>;

impl ArrivalSink {
    /// Creates a sink feeding `stream` of `ctl`, using `ts_of` to pull
    /// the capture timestamp out of each reassembled frame.
    pub fn shared(
        ctl: Rc<RefCell<PlaybackControl>>,
        stream: StreamId,
        ts_of: impl Fn(&[u8]) -> Option<Ns> + 'static,
    ) -> Rc<RefCell<ArrivalSink>> {
        Rc::new(RefCell::new(ArrivalSink {
            ctl,
            stream,
            reasm: Reassembler::new(),
            ts_of: Box::new(ts_of),
            frames: 0,
            frames_bad: 0,
        }))
    }
}

impl CellSink for ArrivalSink {
    fn deliver(&mut self, sim: &mut Simulator, cell: Cell) {
        // Zero-copy receive: a clean frame is a view of the producer's
        // arena buffer; the extractor reads the timestamp in place.
        match self.reasm.push_frame(&cell) {
            None => {}
            Some(Ok(lease)) => match (self.ts_of)(&lease) {
                Some(ts) => {
                    self.frames += 1;
                    let ctl = self.ctl.clone();
                    PlaybackControl::on_arrival(&ctl, sim, self.stream, ts);
                }
                None => self.frames_bad += 1,
            },
            Some(Err(_)) => self.frames_bad += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_sim::time::MS;

    /// Feeds two streams capturing the same instants but with different
    /// transport delays (video slow, audio fast).
    fn drive(
        policy: PlaybackPolicy,
        video_delay: Ns,
        audio_delay: Ns,
    ) -> Rc<RefCell<PlaybackControl>> {
        let ctl = PlaybackControl::shared(policy);
        let (video, audio) = {
            let mut c = ctl.borrow_mut();
            (c.add_stream("video"), c.add_stream("audio"))
        };
        let mut sim = Simulator::new();
        for i in 0..100u64 {
            let capture = i * 40 * MS;
            let ctl_v = ctl.clone();
            sim.schedule_at(capture + video_delay, move |sim| {
                PlaybackControl::on_arrival(&ctl_v, sim, video, capture);
            });
            let ctl_a = ctl.clone();
            sim.schedule_at(capture + audio_delay, move |sim| {
                PlaybackControl::on_arrival(&ctl_a, sim, audio, capture);
            });
        }
        sim.run();
        ctl
    }

    #[test]
    fn free_running_skew_equals_delay_difference() {
        let ctl = drive(PlaybackPolicy::FreeRunning, 30 * MS, 2 * MS);
        let mut c = ctl.borrow_mut();
        assert_eq!(c.skew.count(), 100);
        assert_eq!(c.skew.percentile(50.0), Some(28 * MS));
    }

    #[test]
    fn synchronized_removes_skew() {
        let ctl = drive(
            PlaybackPolicy::Synchronized {
                target_latency: 50 * MS,
            },
            30 * MS,
            2 * MS,
        );
        let c = ctl.borrow();
        assert_eq!(
            c.skew.max(),
            Some(0),
            "synchronized streams present together"
        );
        assert_eq!(c.late_fraction(), 0.0);
    }

    #[test]
    fn synchronized_latency_is_the_target() {
        let ctl = drive(
            PlaybackPolicy::Synchronized {
                target_latency: 50 * MS,
            },
            30 * MS,
            2 * MS,
        );
        let mut c = ctl.borrow_mut();
        let video = StreamId(0);
        let audio = StreamId(1);
        assert_eq!(c.streams[video.0].1.presented, 100);
        let v50 = c.streams[video.0].1.latency.percentile(50.0).unwrap();
        let a50 = c.streams[audio.0].1.latency.percentile(50.0).unwrap();
        assert_eq!(v50, 50 * MS);
        assert_eq!(a50, 50 * MS);
    }

    #[test]
    fn target_below_transport_delay_goes_late() {
        let ctl = drive(
            PlaybackPolicy::Synchronized {
                target_latency: 10 * MS,
            },
            30 * MS, // video cannot make a 10 ms deadline
            2 * MS,
        );
        let c = ctl.borrow();
        assert!(c.late_fraction() > 0.4, "half the items are late");
        // And late items reintroduce skew.
        assert!(c.skew.max().unwrap() > 0);
    }

    #[test]
    fn free_running_minimizes_latency() {
        let free = drive(PlaybackPolicy::FreeRunning, 30 * MS, 2 * MS);
        let synced = drive(
            PlaybackPolicy::Synchronized {
                target_latency: 50 * MS,
            },
            30 * MS,
            2 * MS,
        );
        let mut f = free.borrow_mut();
        let mut s = synced.borrow_mut();
        let fa = f.streams[1].1.latency.percentile(50.0).unwrap();
        let sa = s.streams[1].1.latency.percentile(50.0).unwrap();
        assert!(
            fa < sa,
            "free-running audio latency {fa} < synchronized {sa}"
        );
    }

    #[test]
    fn arrival_sink_feeds_playback_from_cells() {
        use pegasus_atm::aal5::Segmenter;
        use pegasus_atm::link::{Link, SinkRef};

        let ctl = PlaybackControl::shared(PlaybackPolicy::Synchronized {
            target_latency: 20 * MS,
        });
        let stream = ctl.borrow_mut().add_stream("video");
        // Frames carry their capture time as an 8-byte BE prefix.
        let sink = ArrivalSink::shared(ctl.clone(), stream, |bytes| {
            bytes
                .get(..8)
                .map(|b| Ns::from_be_bytes(b.try_into().unwrap()))
        });
        let mut link = Link::new(100_000_000, 1_000, sink.clone() as SinkRef);
        let seg = Segmenter::new(44);
        let mut sim = Simulator::new();
        // The producer leases every frame from one arena and segments by
        // reference — after the first frame the loop allocates nothing.
        let arena = pegasus_sim::arena::Arena::new();
        let mut cells = Vec::new();
        for i in 0..10u64 {
            let capture = i * 5 * MS;
            // Cells leave the device a little after capture; running to
            // that point also drains the previous frame's views, whose
            // buffer the next lease then recycles.
            sim.run_until(capture + MS);
            let mut lease = arena.lease();
            lease.extend_from_slice(&capture.to_be_bytes());
            lease.extend_from_slice(&[0xAB; 100]);
            let frame = lease.freeze();
            seg.segment_frame(&frame.view_all(), &mut cells).unwrap();
            link.send_burst(&mut sim, cells.drain(..));
        }
        sim.run();
        assert_eq!(
            arena.stats().fresh_allocs,
            1,
            "steady-state capture recycles one buffer"
        );
        let s = sink.borrow();
        assert_eq!(s.frames, 10);
        assert_eq!(s.frames_bad, 0);
        let mut c = ctl.borrow_mut();
        assert_eq!(c.stats(stream).presented, 10);
        assert_eq!(c.stats(stream).late, 0);
        // Synchronized play-out: every frame presents at capture + 20 ms.
        assert_eq!(
            c.streams[stream.0].1.latency.percentile(50.0),
            Some(20 * MS)
        );
    }

    #[test]
    fn arrival_sink_counts_unparseable_frames() {
        let ctl = PlaybackControl::shared(PlaybackPolicy::FreeRunning);
        let stream = ctl.borrow_mut().add_stream("x");
        let sink = ArrivalSink::shared(ctl, stream, |_| None);
        use pegasus_atm::aal5::Segmenter;
        let seg = Segmenter::new(9);
        let mut sim = Simulator::new();
        for cell in seg.segment(&[1, 2, 3]).unwrap() {
            sink.borrow_mut().deliver(&mut sim, cell);
        }
        assert_eq!(sink.borrow().frames, 0);
        assert_eq!(sink.borrow().frames_bad, 1);
    }

    #[test]
    fn stats_accessible_by_id() {
        let ctl = PlaybackControl::shared(PlaybackPolicy::FreeRunning);
        let s = ctl.borrow_mut().add_stream("x");
        assert_eq!(ctl.borrow().stats(s).presented, 0);
    }
}
