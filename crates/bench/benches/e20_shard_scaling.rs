//! E20 — Sharded-executor scaling.
//!
//! Runs the `metropolis-100k` preset end to end (compile + simulate +
//! report) at `--shards` 1, 2 and 4 and records one lane per shard
//! count: wall-clock seconds and events/sec. The canonical reports are
//! asserted byte-identical across the lanes while we're at it — a bench
//! run that produced different physics would be measuring nothing.
//!
//! Lane rates are end-to-end on purpose: every shard compiles its own
//! replica of the world, and on a multi-core host that construction
//! parallelizes along with the event loops, so wall clock is the honest
//! denominator. On a single-core host the multi-shard lanes can only
//! lose (same work plus barriers); `host_cores` is recorded so the
//! guard knows whether a scaling expectation applies.
//!
//! Usage:
//!   cargo bench --bench e20_shard_scaling [-- [--scale N] [--json PATH]]
//!
//! `--scale N` divides the session count by N (CI smoke uses 20);
//! `--json PATH` writes BENCH_shards.json.

use std::time::Instant;

use pegasus_bench::{banner, row};
use pegasus_scenario::{presets, run_sharded};

const PRESET: &str = "metropolis-100k";
const LANES: [usize; 3] = [1, 2, 4];

struct Lane {
    label: String,
    shards: usize,
    wall_sec: f64,
    events_total: u64,
    events_per_sec: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale N");
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            _ => i += 1, // ignore cargo-bench plumbing like --bench
        }
    }
    let scale = scale.max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "E20",
        "sharded-executor scaling: metropolis-100k at --shards 1/2/4",
        "ROADMAP 'city-scale on every core' — byte-identical reports, divided wall clock",
    );
    let spec = presets::by_name(PRESET)
        .expect("preset")
        .scale_sessions(1.0 / scale as f64);
    row(&[
        ("sessions", format!("{}", spec.sessions)),
        ("host cores", format!("{host_cores}")),
    ]);

    let mut lanes: Vec<Lane> = Vec::new();
    let mut canonical: Option<String> = None;
    for shards in LANES {
        let start = Instant::now();
        let report = run_sharded(&spec, shards);
        let wall_sec = start.elapsed().as_secs_f64();
        let got = report.to_json_canonical();
        match &canonical {
            None => canonical = Some(got),
            Some(want) => assert!(
                *want == got,
                "canonical report diverged at {shards} shards — the lanes are not \
                 measuring the same run"
            ),
        }
        let events_total = report.events_executed;
        let events_per_sec = events_total as f64 / wall_sec;
        row(&[
            (
                &format!("shards{shards}"),
                format!("{events_total} events in {wall_sec:.2}s"),
            ),
            ("rate", format!("{events_per_sec:.0}/s")),
        ]);
        lanes.push(Lane {
            label: format!("shards{shards}"),
            shards,
            wall_sec,
            events_total,
            events_per_sec,
        });
    }

    let speedup_4v1 = lanes[2].events_per_sec / lanes[0].events_per_sec;
    row(&[
        ("speedup 4v1", format!("{speedup_4v1:.2}x")),
        (
            "canonical reports",
            "byte-identical across lanes".to_string(),
        ),
    ]);

    // The 2.5× speedup expectation only applies where the cores exist;
    // the JSON records the skip explicitly so the guard can print it
    // instead of silently waving the gate through.
    let scaling_gate_skipped = if host_cores < 4 { 1 } else { 0 };

    if let Some(path) = json_path {
        let mut json = format!(
            "{{\n  \"bench\": \"e20_shard_scaling\",\n  \"preset\": \"{PRESET}\",\n  \"sessions\": {},\n  \"host_cores\": {host_cores},\n  \"scaling_gate_skipped\": {scaling_gate_skipped},\n  \"lanes\": [\n",
            spec.sessions,
        );
        for (i, l) in lanes.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"label\": \"{}\", \"shards\": {}, \"wall_sec\": {:.2}, \"events_total\": {}, \"events_per_sec\": {:.0} }}{}\n",
                l.label,
                l.shards,
                l.wall_sec,
                l.events_total,
                l.events_per_sec,
                if i + 1 < lanes.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!("  ],\n  \"speedup_4v1\": {speedup_4v1:.2}\n}}\n"));
        std::fs::write(&path, json).expect("write bench json");
        println!("  wrote {path}");
    }
    println!(
        "expect: near-linear events/sec scaling on a >=4-core host (>=2.5x at 4 shards); \
         on fewer cores the lanes record the honest barrier overhead instead"
    );
}
