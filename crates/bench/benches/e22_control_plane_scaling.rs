//! E22 — Sharded control-plane scaling.
//!
//! Runs the `sustained-3x` preset scaled up 8x (128 sessions, two
//! cross-hub blasts, credit backpressure and congestion epochs live)
//! at `--shards` 1, 2 and 4. This is the lane the control-plane
//! sharding work unblocked: before cut-crossing credits, epoch-merged
//! congestion signals and replicated repair, this preset clamped to a
//! single shard. The canonical reports are asserted byte-identical
//! across the lanes, and the multi-shard lanes must actually cross
//! credits over the cuts — a control-plane bench with an idle control
//! plane would be measuring nothing.
//!
//! Lane keys are prefixed `control_` so the object can share
//! BENCH_shards.json with the e20 data-plane lanes without colliding
//! in the guard's key lookup.
//!
//! Usage:
//!   cargo bench --bench e22_control_plane_scaling [-- [--scale N] [--json PATH]]
//!
//! `--scale N` divides the scaled-up session count by N (CI smoke uses
//! 20); `--json PATH` writes the lane object (appended to
//! BENCH_shards.json by `scripts/bench_engine.sh`).

use std::time::Instant;

use pegasus_bench::{banner, row};
use pegasus_scenario::{presets, run_sharded};

const PRESET: &str = "sustained-3x";
const SCALE_UP: f64 = 8.0;
const LANES: [usize; 3] = [1, 2, 4];

struct Lane {
    label: String,
    shards: usize,
    wall_sec: f64,
    events_total: u64,
    events_per_sec: f64,
    credits_crossed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale N");
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            _ => i += 1, // ignore cargo-bench plumbing like --bench
        }
    }
    let scale = scale.max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "E22",
        "sharded control-plane scaling: sustained-3x (8x sessions) at --shards 1/2/4",
        "ROADMAP 'city-scale on every core' — backpressure + congestion epochs, unclamped",
    );
    let spec = presets::by_name(PRESET)
        .expect("preset")
        .scale_sessions(SCALE_UP / scale as f64);
    row(&[
        ("sessions", format!("{}", spec.sessions)),
        ("host cores", format!("{host_cores}")),
    ]);

    let mut lanes: Vec<Lane> = Vec::new();
    let mut canonical: Option<String> = None;
    for shards in LANES {
        let start = Instant::now();
        let report = run_sharded(&spec, shards);
        let wall_sec = start.elapsed().as_secs_f64();
        let got = report.to_json_canonical();
        match &canonical {
            None => canonical = Some(got),
            Some(want) => assert!(
                *want == got,
                "canonical report diverged at {shards} shards — the lanes are not \
                 measuring the same run"
            ),
        }
        assert_eq!(report.shards.len(), shards, "the plan must not clamp");
        let credits_crossed: u64 = report.shards.iter().map(|s| s.credits_crossed).sum();
        assert!(
            shards == 1 || credits_crossed > 0,
            "multi-shard lanes must exercise cut-crossing credit returns"
        );
        let events_total = report.events_executed;
        let events_per_sec = events_total as f64 / wall_sec;
        row(&[
            (
                &format!("ctrl_shards{shards}"),
                format!("{events_total} events in {wall_sec:.2}s"),
            ),
            ("rate", format!("{events_per_sec:.0}/s")),
            ("credits crossed", format!("{credits_crossed}")),
        ]);
        lanes.push(Lane {
            label: format!("ctrl_shards{shards}"),
            shards,
            wall_sec,
            events_total,
            events_per_sec,
            credits_crossed,
        });
    }

    let control_speedup_4v1 = lanes[2].events_per_sec / lanes[0].events_per_sec;
    row(&[
        ("speedup 4v1", format!("{control_speedup_4v1:.2}x")),
        (
            "canonical reports",
            "byte-identical across lanes".to_string(),
        ),
    ]);

    // Same loud-skip discipline as e20: the scaling expectation only
    // applies where the cores exist, and the skip is recorded in the
    // JSON so the guard can print it instead of waving the gate through.
    let control_scaling_gate_skipped = if host_cores < 4 { 1 } else { 0 };

    if let Some(path) = json_path {
        let mut json = format!(
            "{{\n  \"bench\": \"e22_control_plane_scaling\",\n  \"preset\": \"{PRESET}\",\n  \"sessions\": {},\n  \"host_cores\": {host_cores},\n  \"control_scaling_gate_skipped\": {control_scaling_gate_skipped},\n  \"lanes\": [\n",
            spec.sessions,
        );
        for (i, l) in lanes.iter().enumerate() {
            // The guard's awk field extractor reads the value after the
            // *last* colon of a matching line, so the gated key goes last.
            json.push_str(&format!(
                "    {{ \"label\": \"{}\", \"shards\": {}, \"wall_sec\": {:.2}, \"events_total\": {}, \"credits_crossed\": {}, \"control_events_per_sec\": {:.0} }}{}\n",
                l.label,
                l.shards,
                l.wall_sec,
                l.events_total,
                l.credits_crossed,
                l.events_per_sec,
                if i + 1 < lanes.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"control_speedup_4v1\": {control_speedup_4v1:.2}\n}}\n"
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("  wrote {path}");
    }
    println!(
        "expect: the control plane scales with the data plane on a >=4-core host \
         (>=1.8x at 4 shards); on fewer cores the lanes record the honest barrier \
         overhead instead"
    );
}
