//! E13 — Cleaning cost vs file-system size.
//!
//! Paper, §5: "If any part of the cleaning process scales with, say, the
//! square of the system size, cleaning a terabyte file system will take
//! a very long time. We are currently implementing a cleaning algorithm
//! whose complexity only depends on the number of segments to be cleaned
//! and the amount of 'garbage'."

use pegasus_bench::{banner, row};
use pegasus_pfs::cleaner::{clean_garbage_file, clean_sprite};
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, LogFs, SEGMENT_BYTES};
use pegasus_sim::time::fmt_ns;

/// Builds a file system with `cold` segments of long-lived data plus 4
/// hot segments (70% dead / 30% live each).
fn build(cold: usize) -> LogFs {
    let mut cfg = DiskConfig::hp_1994();
    cfg.sectors = (8u64 << 30) / 512; // 8 GiB per disk: room to scale
    let mut fs = LogFs::new(cfg);
    fs.raid_mut().set_store(false);
    for _ in 0..cold {
        let id = fs.create(FileClass::Normal);
        fs.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
    }
    let mut dead = Vec::new();
    for _ in 0..4 {
        let d = fs.create(FileClass::Normal);
        fs.append(d, &vec![0u8; 700 * 1024]).unwrap();
        let l = fs.create(FileClass::Normal);
        fs.append(l, &vec![0u8; SEGMENT_BYTES - 700 * 1024])
            .unwrap();
        dead.push(d);
    }
    fs.sync().unwrap();
    for d in dead {
        fs.delete(d).unwrap();
    }
    fs
}

fn main() {
    banner(
        "E13",
        "cleaning cost vs FS size at fixed garbage (4 segments, 70% dead)",
        "§5 'complexity only depends on ... the amount of garbage'",
    );
    println!("  fs_segments  garbage-file cleaner  sprite-style scan cleaner");
    for cold in [16usize, 64, 256, 1024, 4096] {
        let mut a = build(cold);
        let ra = clean_garbage_file(&mut a).unwrap();
        let mut b = build(cold);
        let rb = clean_sprite(&mut b, 4).unwrap();
        println!(
            "  {:>11}  {:>20}  {:>25}",
            cold + 8,
            fmt_ns(ra.io_time),
            fmt_ns(rb.io_time)
        );
        assert_eq!(ra.segments_cleaned, 4);
    }
    row(&[(
        "expect",
        "garbage-file column flat; sprite column linear in FS size (its summary scan)".into(),
    )]);
}
