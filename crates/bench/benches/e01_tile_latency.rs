//! E1 — Tile-time vs frame-time latency.
//!
//! Paper: "The use of tiles for video reduces latency in several places
//! from a 'frame time' (33 or 40 ms) to a 'tile time' (30 to 40 µs).
//! Since latencies tend to add up, this is an important reduction."

use pegasus::videophone::{VideoPath, VideoPhone, VideoPhoneConfig};
use pegasus_bench::{banner, row};
use pegasus_devices::camera::Granularity;
use pegasus_sim::time::{fmt_ns, tx_time, MS};

fn main() {
    banner(
        "E1",
        "end-to-end camera→display latency: tile vs frame granularity",
        "§2.1 'tile time 30–40 µs vs frame time 33–40 ms'",
    );
    // The per-hop buffering quantum itself:
    // a 16-tile AAL5 frame (~1 KB) on a 100 Mbit/s link.
    let tile_frame_bytes: usize = 15 + 8 * 70;
    let cells = tile_frame_bytes.div_ceil(48) + 1;
    let tile_time = tx_time(cells * 53, 100_000_000);
    let frame_time = 40 * MS;
    row(&[
        ("per-hop tile-group time", fmt_ns(tile_time)),
        ("per-hop frame time", fmt_ns(frame_time)),
        (
            "reduction",
            format!("{:.0}x", frame_time as f64 / tile_time as f64),
        ),
    ]);

    for (label, granularity) in [
        ("tile-row pipelining (DAN)", Granularity::TileRow),
        ("whole-frame buffering", Granularity::Frame),
    ] {
        let mut cfg = VideoPhoneConfig {
            path: VideoPath::Dan,
            duration: 800 * MS,
            ..VideoPhoneConfig::default()
        };
        cfg.camera.granularity = granularity;
        let r = VideoPhone::run(cfg);
        row(&[
            ("granularity", label.to_string()),
            ("scan→display p50", fmt_ns(r.video_latency_p50.0)),
            ("p99", fmt_ns(r.video_latency_p99.0)),
        ]);
    }
    println!("expect: tile-row p50 in the tens of µs (device+network bound), frame p50 ~half a frame, p99 ~a full frame — the ~3-orders-of-magnitude reduction");
}
