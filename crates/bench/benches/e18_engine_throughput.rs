//! E18 — Event-engine throughput.
//!
//! Every experiment in this suite bottoms out in `Simulator::schedule_at`
//! and the per-cell delivery path, so this bench measures the substrate
//! itself: raw events/sec through the scheduler (steady-state timer
//! chains and a wide fan of pending events), cancellation throughput, and
//! cells/sec through a `Link` into a capture sink. Unlike e01–e17 these
//! numbers are wall-clock (machine-dependent); what matters is the ratio
//! against the baseline recorded in `BENCH_engine.json`.
//!
//! Usage:
//!   cargo bench --bench e18_engine_throughput [-- [--scale N] [--json PATH]]
//!
//! `--scale N` divides every workload size by N (CI smoke uses 20);
//! `--json PATH` writes the machine-readable result file.

use std::cell::Cell as StdCell;
use std::rc::Rc;
use std::time::Instant;

use pegasus_atm::cell::Cell;
use pegasus_atm::link::{CaptureSink, Link};
use pegasus_bench::{banner, row};
use pegasus_sim::Simulator;

/// Baseline measured on the pre-rearchitecture engine (commit 9822aa3:
/// boxed-closure events, `Rc<Cell<bool>>` cancel flags, linear-scan
/// `cancel`), same machine, default scale. `scripts/bench_engine.sh`
/// copies these numbers into `BENCH_engine.json` next to the fresh run.
pub const BASELINE_EVENTS_PER_SEC: f64 = 1_491_349.0;
pub const BASELINE_CELLS_PER_SEC: f64 = 7_349_097.0;
pub const BASELINE_CANCELS_PER_SEC: f64 = 35_245.0;

struct Results {
    events_per_sec: f64,
    cells_per_sec: f64,
    cancels_per_sec: f64,
    events_total: u64,
    cells_total: u64,
}

/// Steady-state timer chains: `chains` concurrent self-rescheduling
/// timers, the dominant pattern of device models (audio ticks, camera
/// frame loops, scheduler quanta).
fn bench_chains(chains: u64, steps: u64) -> (u64, f64) {
    let start = Instant::now();
    let mut sim = Simulator::new();
    let left = Rc::new(StdCell::new(chains * steps));
    fn tick(sim: &mut Simulator, left: Rc<StdCell<u64>>, period: u64) {
        let n = left.get();
        if n == 0 {
            return; // budget exhausted: this chain dies
        }
        left.set(n - 1);
        sim.schedule_in(period, move |sim| tick(sim, left, period));
    }
    for c in 0..chains {
        let left = left.clone();
        // Co-prime periods keep the heap busy with interleaved deadlines.
        let period = 1_000 + (c * 131) % 977;
        sim.schedule_in(period, move |sim| tick(sim, left, period));
    }
    sim.run();
    let executed = sim.events_executed();
    (executed, start.elapsed().as_secs_f64())
}

/// Wide-fan workload: `pending` events outstanding at once, refilled in
/// waves — the shape of a large topology with thousands of cells and
/// timers in flight.
fn bench_fan(pending: u64, waves: u64) -> (u64, f64) {
    let start = Instant::now();
    let mut sim = Simulator::new();
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    for w in 0..waves {
        let base = sim.now();
        for _ in 0..pending {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dt = 1 + (rng >> 33) % 50_000;
            sim.schedule_at(base + dt, |_| {});
        }
        // Drain most of the horizon; the tail (~20%) stays queued so the
        // heap is never empty between waves.
        let _ = w;
        sim.run_until(base + 40_000);
    }
    sim.run();
    let executed = sim.events_executed();
    (executed, start.elapsed().as_secs_f64())
}

/// Cancellation throughput: schedule a window of timeouts, cancel most of
/// them before they fire (the retransmit-timer pattern).
fn bench_cancel(count: u64) -> (u64, f64) {
    let start = Instant::now();
    let mut sim = Simulator::new();
    let mut ids = Vec::with_capacity(count as usize);
    for i in 0..count {
        ids.push(sim.schedule_at(1_000 + i, |_| {}));
    }
    let mut cancelled = 0u64;
    for (i, id) in ids.into_iter().enumerate() {
        if i % 4 != 0 {
            assert!(sim.cancel(id), "fresh ids must cancel");
            cancelled += 1;
        }
    }
    sim.run();
    (cancelled, start.elapsed().as_secs_f64())
}

/// Cell delivery: bursts of back-to-back cells through one 622 Mbit/s
/// link into a capture sink — the per-cell hot path of every experiment.
fn bench_cells(bursts: u64, cells_per_burst: u64) -> (u64, f64) {
    let start = Instant::now();
    let sink = CaptureSink::shared();
    let mut link = Link::new(622_000_000, 1_000, sink.clone());
    let mut sim = Simulator::new();
    let mut total = 0u64;
    for b in 0..bursts {
        for i in 0..cells_per_burst {
            link.send(&mut sim, Cell::new((i % 1024) as u16));
            total += 1;
        }
        // Let the link drain fully between bursts (plus an idle gap).
        sim.run();
        let gap = sim.now() + 10_000 * (b % 3 + 1);
        sim.run_until(gap);
    }
    sim.run();
    assert_eq!(sink.borrow().arrivals.len() as u64, total);
    (total, start.elapsed().as_secs_f64())
}

fn write_json(path: &str, r: &Results) {
    let json = format!(
        "{{\n  \"bench\": \"e18_engine_throughput\",\n  \"baseline\": {{\n    \"commit\": \"9822aa3 (seed engine: boxed closures, linear-scan cancel)\",\n    \"events_per_sec\": {:.0},\n    \"cells_per_sec\": {:.0},\n    \"cancels_per_sec\": {:.0}\n  }},\n  \"current\": {{\n    \"events_per_sec\": {:.0},\n    \"cells_per_sec\": {:.0},\n    \"cancels_per_sec\": {:.0},\n    \"events_total\": {},\n    \"cells_total\": {}\n  }},\n  \"speedup\": {{\n    \"events\": {:.2},\n    \"cells\": {:.2},\n    \"cancels\": {:.2}\n  }}\n}}\n",
        BASELINE_EVENTS_PER_SEC,
        BASELINE_CELLS_PER_SEC,
        BASELINE_CANCELS_PER_SEC,
        r.events_per_sec,
        r.cells_per_sec,
        r.cancels_per_sec,
        r.events_total,
        r.cells_total,
        if BASELINE_EVENTS_PER_SEC > 0.0 { r.events_per_sec / BASELINE_EVENTS_PER_SEC } else { 0.0 },
        if BASELINE_CELLS_PER_SEC > 0.0 { r.cells_per_sec / BASELINE_CELLS_PER_SEC } else { 0.0 },
        if BASELINE_CANCELS_PER_SEC > 0.0 { r.cancels_per_sec / BASELINE_CANCELS_PER_SEC } else { 0.0 },
    );
    std::fs::write(path, json).expect("write bench json");
    println!("  wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale N");
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            _ => i += 1, // ignore cargo-bench plumbing like --bench
        }
    }
    let scale = scale.max(1);

    banner(
        "E18",
        "event-engine throughput: events/sec, cancels/sec, cells/sec",
        "ROADMAP 'as fast as the hardware allows' — the substrate under e01-e17",
    );

    let (chain_n, chain_t) = bench_chains(256, 4_000 / scale);
    let (fan_n, fan_t) = bench_fan(8_192 / scale.min(8), 32 / scale.min(8));
    let events_total = chain_n + fan_n;
    let events_per_sec = events_total as f64 / (chain_t + fan_t);
    row(&[
        ("timer chains", format!("{chain_n} events")),
        ("rate", format!("{:.0}/s", chain_n as f64 / chain_t)),
    ]);
    row(&[
        ("wide fan (8k pending)", format!("{fan_n} events")),
        ("rate", format!("{:.0}/s", fan_n as f64 / fan_t)),
    ]);

    let (cancelled, cancel_t) = bench_cancel(40_000 / scale);
    let cancels_per_sec = cancelled as f64 / cancel_t;
    row(&[
        ("cancel window", format!("{cancelled} cancels")),
        ("rate", format!("{cancels_per_sec:.0}/s")),
    ]);

    let (cells_total, cells_t) = bench_cells((200 / scale).max(2), 1_000);
    let cells_per_sec = cells_total as f64 / cells_t;
    row(&[
        ("link cells", format!("{cells_total} cells")),
        ("rate", format!("{cells_per_sec:.0}/s")),
    ]);

    let r = Results {
        events_per_sec,
        cells_per_sec,
        cancels_per_sec,
        events_total,
        cells_total,
    };
    row(&[
        ("events/sec (combined)", format!("{events_per_sec:.0}")),
        ("cells/sec", format!("{cells_per_sec:.0}")),
    ]);
    if BASELINE_EVENTS_PER_SEC > 0.0 {
        row(&[
            (
                "vs baseline events",
                format!("{:.2}x", events_per_sec / BASELINE_EVENTS_PER_SEC),
            ),
            (
                "vs baseline cells",
                format!("{:.2}x", cells_per_sec / BASELINE_CELLS_PER_SEC),
            ),
            (
                "vs baseline cancels",
                format!("{:.2}x", cancels_per_sec / BASELINE_CANCELS_PER_SEC),
            ),
        ]);
    }
    if let Some(path) = json_path {
        write_json(&path, &r);
    }
    println!("expect: slab queue + O(1) cancel ≥2x events/sec over the seed engine; batched cell trains deliver with zero allocations per cell");
}
