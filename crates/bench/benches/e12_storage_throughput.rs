//! E12 — Storage throughput: segment I/O and 4+1 striping.
//!
//! Paper, §5: "the overhead of seeks between reading and writing whole
//! segments is less than ten per cent, so that a transfer rate of at
//! least five megabytes per second per disk is possible ... Striping
//! over four disks makes a total bandwidth of 20 MB per second
//! possible."

use pegasus_bench::{banner, mbps, row};
use pegasus_pfs::disk::{DiskConfig, SimDisk, SECTOR};
use pegasus_pfs::log::{FileClass, LogFs, SEGMENT_BYTES};
use pegasus_pfs::raid::RaidArray;

fn main() {
    banner(
        "E12",
        "seek overhead vs I/O size; single disk vs 4+1 striped array",
        "§5 '<10% seek overhead, 5 MB/s per disk, 20 MB/s striped'",
    );
    // Seek overhead as a function of I/O unit.
    for unit in [4 * 1024usize, 64 * 1024, 256 * 1024, 1 << 20] {
        let mut d = SimDisk::new(DiskConfig::hp_1994());
        d.set_store(false);
        let buf = vec![0u8; unit];
        let span = d.config().sectors - (unit / SECTOR) as u64;
        for i in 0..64u64 {
            let sector = (i * 999_983) % span;
            d.write(sector, &buf).unwrap();
        }
        row(&[
            ("unit", format!("{} KiB", unit / 1024)),
            (
                "seek overhead",
                format!("{:.1}%", d.stats.seek_overhead() * 100.0),
            ),
            ("effective rate", mbps(d.stats.throughput())),
        ]);
    }

    // Striped log bandwidth.
    let mut raid = RaidArray::new(DiskConfig::hp_1994(), SEGMENT_BYTES);
    raid.set_store(false);
    let seg = vec![0u8; SEGMENT_BYTES];
    let mut total = 0u64;
    for s in 0..128 {
        total += raid.write_stripe(s, &seg).unwrap();
    }
    let rate = 128.0 * SEGMENT_BYTES as f64 / (total as f64 / 1e9);
    row(&[("striped sequential log (128 MB)", mbps(rate))]);

    // Through the whole LFS core.
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    fs.raid_mut().set_store(false);
    let id = fs.create(FileClass::Continuous);
    for _ in 0..64 {
        fs.append(id, &seg).unwrap();
    }
    fs.sync().unwrap();
    let rate = fs.stats.bytes_written as f64 / (fs.io_time as f64 / 1e9);
    row(&[("through the LFS core (64 MB CM stream)", mbps(rate))]);
    println!("expect: 1 MiB units < 10% overhead and ≥ 5 MB/s; striped ≈ 20+ MB/s");
}
