//! E17 — Audio drop-outs vs network jitter and play-out buffering.
//!
//! Paper, §2: "Audio has modest bandwidth requirements compared to
//! video, but is much more susceptible to jitter."

use pegasus_atm::link::CellSink;
use pegasus_bench::{banner, row};
use pegasus_devices::audio::{pack_cell, AudioConfig, AudioSink, SAMPLES_PER_CELL};
use pegasus_sim::time::MS;
use pegasus_sim::Simulator;

/// Delivers 1000 cells with sawtooth jitter of the given peak, into a
/// sink with the given buffer depth; returns (underruns, p50 latency).
fn run(jitter_peak_ms: u64, buffer_samples: usize) -> (u64, u64) {
    let cfg = AudioConfig::telephony();
    let sink = AudioSink::shared(cfg, buffer_samples);
    let mut sim = Simulator::new();
    let period = cfg.cell_period();
    for i in 0..1_000u64 {
        let ideal = i * period;
        let jitter = if jitter_peak_ms == 0 {
            0
        } else {
            (i % 5) * jitter_peak_ms * MS / 4
        };
        let s2 = sink.clone();
        let cell = pack_cell(5, ideal, &[0i16; SAMPLES_PER_CELL]);
        sim.schedule_at(ideal + jitter, move |sim| {
            s2.borrow_mut().deliver(sim, cell)
        });
    }
    // Stop the play-out clock with the stream, so post-stream silence
    // is not miscounted as drop-outs.
    let horizon = 1_000 * period;
    AudioSink::start_playout(&sink, &mut sim, horizon);
    sim.run();
    let mut s = sink.borrow_mut();
    let p50 = s.stats.playout_latency.percentile(50.0).unwrap_or(0);
    (s.stats.underruns, p50)
}

fn main() {
    banner(
        "E17",
        "audio drop-outs vs jitter × play-out buffer depth (8 kHz, 2.5 s)",
        "§2 'audio ... is much more susceptible to jitter'",
    );
    println!("  rows: network jitter peak; columns: buffer depth in ms of audio");
    println!("  (cells hold 2.5 ms of audio each)");
    for jitter_ms in [0u64, 2, 4, 8, 16] {
        let mut cells = vec![("jitter", format!("{jitter_ms} ms"))];
        for buf_ms in [2.5f64, 5.0, 10.0, 20.0] {
            let samples = (buf_ms * 8.0) as usize;
            let (under, _) = run(jitter_ms, samples);
            cells.push(("", format!("buf {buf_ms:>4} ms → {under:>3} drops")));
        }
        let owned: Vec<(&str, String)> = cells;
        row(&owned);
    }
    let (_, lat_shallow) = run(0, 20);
    let (_, lat_deep) = run(0, 160);
    row(&[
        ("latency cost of buffering", String::new()),
        (
            "20-sample buffer p50",
            pegasus_sim::time::fmt_ns(lat_shallow),
        ),
        ("160-sample buffer p50", pegasus_sim::time::fmt_ns(lat_deep)),
    ]);
    println!("expect: drops vanish once the buffer exceeds the jitter peak; the price is exactly that much added latency");
}
