//! E7 — Scheduler activations vs transparent resumption.
//!
//! Paper, §3.2: activations are "a means of informing applications when
//! they have the processor; a user-level scheduler can use this
//! information, together with the current time, to make more informed
//! decisions".

use pegasus_bench::{banner, row};
use pegasus_nemesis::threads::{UlThread, UlsPolicy, UlsSim};
use pegasus_nemesis::vp::periodic_quanta;
use pegasus_sim::time::{fmt_ns, MS};

fn main() {
    banner(
        "E7",
        "user-level scheduling: informed (activations) vs transparent resume",
        "§3.2 'more informed decisions about the fate of the threads'",
    );
    println!("  domain share: 5 ms per 10 ms; threads: audio 1ms/10ms + video 12ms/40ms");
    for (label, policy) in [
        ("informed-edf (activations)", UlsPolicy::InformedEdf),
        ("transparent-resume", UlsPolicy::TransparentResume),
    ] {
        let mut sim = UlsSim::new(policy);
        sim.add_thread(UlThread {
            name: "audio".into(),
            period: 10 * MS,
            work: MS,
        });
        sim.add_thread(UlThread {
            name: "video".into(),
            period: 40 * MS,
            work: 12 * MS,
        });
        let horizon = 10_000 * MS;
        let mut stats = sim.run(&periodic_quanta(5 * MS, 10 * MS, horizon), horizon);
        let a99 = stats[0]
            .response
            .percentile(99.0)
            .map(fmt_ns)
            .unwrap_or_else(|| "-".into());
        row(&[
            ("model", label.to_string()),
            (
                "audio miss",
                format!("{:.1}%", stats[0].miss_rate() * 100.0),
            ),
            (
                "video miss",
                format!("{:.1}%", stats[1].miss_rate() * 100.0),
            ),
            ("audio resp p99", a99),
        ]);
    }
    println!("expect: informed EDF misses nothing; transparent resume starves the audio thread behind the long video job");
}
