//! E19 — The zero-copy frame path.
//!
//! Measures the media data plane of one producing stream fanned out to
//! several consumers — the paper's standing scenario: a camera frame
//! crosses the fabric once and is consumed by a display, the file
//! server's recorder, and a playback monitor hanging off the same
//! workstation switch (§2). Per frame: device tile-frame assembly →
//! AAL5 segmentation → four switch hops of cell-train forwarding →
//! per-consumer reassembly → playback timestamp extraction. Two lanes:
//!
//! * **copy path**: the seed's representation at every boundary
//!   (per-tile `Vec`s, `TileFrame::encode`, `Segmenter::segment`'s
//!   materialised PDU, owned 48-byte payload copies per cell, and a
//!   copying CRC-verifying reassembly *per consumer*) — this code
//!   still exists as the reference lane;
//! * **view path**: one arena lease per frame, `TileFrameWriter`
//!   encoding in place, `segment_frame` scatter-gather views,
//!   refcount-bump forwarding, and per-consumer zero-copy view
//!   stitching (the single-address-space argument: consumers sharing
//!   the producer's memory don't re-copy or re-verify it).
//!
//! Both lanes run the identical event-engine workload (e18 measures
//! that substrate); e19 isolates the per-byte data-plane work the
//! arena refactor removes. A PFS leg compares per-read-allocating
//! reads (seed behaviour) against leased reads over a recycling arena.
//!
//! Usage:
//!   cargo bench --bench e19_frame_path [-- [--scale N] [--json PATH]]

use std::time::Instant;

use pegasus_atm::aal5::{Reassembler, Segmenter};
use pegasus_atm::cell::Cell;
use pegasus_atm::credit::CreditWindow;
use pegasus_bench::{banner, row};
use pegasus_devices::tile::{TileCoding, TileFrame, TileFrameWriter};
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, LogFs};
use pegasus_sim::arena::Arena;

/// Tiles per AAL5 frame and the raw tile payload: a packed VoD-style
/// frame (the camera default of 8 tiles per AAL5 frame gives the same
/// ratio at higher per-frame constant cost).
const TILES: usize = 64;
const TILE_BYTES: usize = 64;
const HOPS: usize = 4;
/// Consumers of the one stream: display, recorder, playback monitor.
const FANOUT: usize = 3;

/// Synthetic tile payloads, pre-extracted once (tile extraction from
/// the CCD image is identical work in both lanes).
fn tile_payloads() -> Vec<[u8; TILE_BYTES]> {
    (0..TILES)
        .map(|t| {
            let mut p = [0u8; TILE_BYTES];
            for (i, b) in p.iter_mut().enumerate() {
                *b = (t * 37 + i * 11) as u8;
            }
            p
        })
        .collect()
}

/// Forwards a cell train through `HOPS` output port queues with a VCI
/// rewrite per hop — the switch data plane (link cell trains move
/// whole bursts between port buffers) without the event engine, which
/// is identical in both lanes and measured by e18.
fn forward(cells: &mut Vec<Cell>, spare: &mut Vec<Cell>, delivered: &mut Vec<Cell>) {
    for hop in 0..HOPS {
        let vci = 100 + hop as u16;
        let to: &mut Vec<Cell> = if hop == HOPS - 1 { delivered } else { spare };
        for mut cell in cells.drain(..) {
            cell.set_vci(vci);
            to.push(cell);
        }
        if hop < HOPS - 1 {
            std::mem::swap(cells, spare);
        }
    }
}

/// The seed data plane: owned buffers and copies at every boundary.
fn run_copy_path(frames: u64) -> (u64, f64) {
    let tiles = tile_payloads();
    let seg = Segmenter::new(7);
    let mut spare: Vec<Cell> = Vec::new();
    let mut delivered: Vec<Cell> = Vec::new();
    let mut consumers: Vec<Reassembler> = (0..FANOUT).map(|_| Reassembler::new()).collect();
    let mut ts_acc = 0u64;
    let start = Instant::now();
    for n in 0..frames {
        // Device: per-tile Vec payloads, struct, encode — the seed
        // camera's exact sequence.
        let frame = TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: n as u32,
            timestamp: n * 40_000_000,
            tiles: tiles
                .iter()
                .enumerate()
                .map(|(i, p)| ((i * 8) as u16, 0u16, p.to_vec()))
                .collect(),
        };
        let bytes = frame.encode();
        let mut cells = seg.segment(&bytes).expect("in range");
        forward(&mut cells, &mut spare, &mut delivered);
        // The edge switch fans the train out to every consumer; each
        // reassembles (copies + CRC) its own frame, as the seed did.
        for reasm in &mut consumers {
            for cell in &delivered {
                if let Some(res) = reasm.push(cell) {
                    let out = res.expect("clean path");
                    // Playback: extract the capture timestamp (offset 7).
                    ts_acc ^= u64::from_be_bytes(out[7..15].try_into().expect("8 bytes"));
                }
            }
        }
        delivered.clear();
    }
    assert_ne!(ts_acc, 1);
    (frames, start.elapsed().as_secs_f64())
}

/// The arena data plane: one lease per frame, views everywhere else.
fn run_view_path(frames: u64) -> (u64, f64) {
    let tiles = tile_payloads();
    let seg = Segmenter::new(7);
    let arena = Arena::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut spare: Vec<Cell> = Vec::new();
    let mut delivered: Vec<Cell> = Vec::new();
    let mut consumers: Vec<Reassembler> = (0..FANOUT).map(|_| Reassembler::new()).collect();
    let mut ts_acc = 0u64;
    let start = Instant::now();
    for n in 0..frames {
        // Device: encode tiles straight into the leased frame buffer.
        let mut w =
            TileFrameWriter::begin(arena.lease(), TileCoding::Raw, 0, n as u32, n * 40_000_000);
        for (i, p) in tiles.iter().enumerate() {
            w.push_tile((i * 8) as u16, 0, p);
        }
        let frame = w.finish().freeze();
        seg.segment_frame(&frame.view_all(), &mut cells)
            .expect("in range");
        drop(frame);
        forward(&mut cells, &mut spare, &mut delivered);
        // Fan-out: every consumer stitches the same views back into a
        // lease on the producer's buffer — no copy, no re-verification.
        for reasm in &mut consumers {
            for cell in &delivered {
                if let Some(res) = reasm.push_frame(cell) {
                    let out = res.expect("clean path");
                    ts_acc ^= u64::from_be_bytes(out[7..15].try_into().expect("8 bytes"));
                }
            }
        }
        delivered.clear();
    }
    assert_ne!(ts_acc, 1);
    (frames, start.elapsed().as_secs_f64())
}

/// The view path with per-VC credit accounting on the hot path — the
/// backpressure tax when nothing is congested: one all-or-nothing
/// acquire per frame at the producer, one shared-window release per
/// delivered cell at the consumer, through the same `Rc<RefCell<..>>`
/// handle the real `CreditSink` uses. The window is sized so the lane
/// never stalls; the measurement is pure accounting overhead.
fn run_credit_path(frames: u64) -> (u64, f64) {
    let tiles = tile_payloads();
    let seg = Segmenter::new(7);
    let arena = Arena::new();
    let credit = CreditWindow::shared(1024);
    let mut cells: Vec<Cell> = Vec::new();
    let mut spare: Vec<Cell> = Vec::new();
    let mut delivered: Vec<Cell> = Vec::new();
    let mut consumers: Vec<Reassembler> = (0..FANOUT).map(|_| Reassembler::new()).collect();
    let mut ts_acc = 0u64;
    let start = Instant::now();
    for n in 0..frames {
        let mut w =
            TileFrameWriter::begin(arena.lease(), TileCoding::Raw, 0, n as u32, n * 40_000_000);
        for (i, p) in tiles.iter().enumerate() {
            w.push_tile((i * 8) as u16, 0, p);
        }
        let frame = w.finish().freeze();
        seg.segment_frame(&frame.view_all(), &mut cells)
            .expect("in range");
        drop(frame);
        let acquired = credit.borrow_mut().try_acquire(cells.len() as u64);
        assert!(acquired, "the uncongested lane never stalls");
        forward(&mut cells, &mut spare, &mut delivered);
        // The consumer edge returns one credit per drained cell (the
        // fan-out shares one circuit, so one release per cell).
        for _ in &delivered {
            credit.borrow_mut().release(1);
        }
        for reasm in &mut consumers {
            for cell in &delivered {
                if let Some(res) = reasm.push_frame(cell) {
                    let out = res.expect("clean path");
                    ts_acc ^= u64::from_be_bytes(out[7..15].try_into().expect("8 bytes"));
                }
            }
        }
        delivered.clear();
    }
    assert_ne!(ts_acc, 1);
    assert!(credit.borrow().conserved(), "bench books must balance");
    (frames, start.elapsed().as_secs_f64())
}

/// PFS leg: a continuous-media file striped over the array, read back
/// periodically — per-read allocation (seed) vs leased reads over a
/// recycling arena.
fn run_pfs(reads: u64, chunk: usize) -> (f64, f64) {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    let file = fs.create(FileClass::Continuous);
    let payload = vec![0x5Au8; chunk];
    let total = 8 * 1024 * 1024 / chunk;
    for _ in 0..total {
        fs.append(file, &payload).expect("space");
    }
    fs.sync().expect("flush");
    let size = fs.pnode(file).expect("exists").size;

    // Seed-style: a fresh Vec per read.
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..reads {
        let off = (i * chunk as u64 * 7) % (size - chunk as u64);
        let data = fs.read(file, off, chunk).expect("in range");
        acc ^= data[0] as u64;
    }
    let t_owned = start.elapsed().as_secs_f64();

    // Leased: the arena recycles one buffer across the scan.
    let arena = Arena::new();
    let start = Instant::now();
    for i in 0..reads {
        let off = (i * chunk as u64 * 7) % (size - chunk as u64);
        let data = fs.read_leased(file, off, chunk, &arena).expect("in range");
        acc ^= data[0] as u64;
    }
    let t_leased = start.elapsed().as_secs_f64();
    assert_ne!(acc, 1);
    let mb = (reads * chunk as u64) as f64 / (1024.0 * 1024.0);
    (mb / t_owned, mb / t_leased)
}

fn write_json(
    path: &str,
    copy_fps: f64,
    view_fps: f64,
    credit_fps: f64,
    frames: u64,
    pfs_owned: f64,
    pfs_leased: f64,
) {
    let json = format!(
        "{{\n  \"bench\": \"e19_frame_path\",\n  \"baseline\": {{\n    \"lane\": \"copy path (seed representation: owned PDU, per-cell payload copies)\",\n    \"frames_per_sec\": {copy_fps:.0}\n  }},\n  \"current\": {{\n    \"lane\": \"view path (arena leases, scatter-gather cells, view stitching)\",\n    \"frames_per_sec\": {view_fps:.0},\n    \"frames_total\": {frames}\n  }},\n  \"backpressure\": {{\n    \"lane\": \"view path + per-VC credit accounting (uncongested)\",\n    \"credited_frames_per_sec\": {credit_fps:.0},\n    \"relative_to_view\": {:.2}\n  }},\n  \"pfs\": {{\n    \"owned_read_mb_per_sec\": {pfs_owned:.1},\n    \"leased_read_mb_per_sec\": {pfs_leased:.1},\n    \"speedup\": {:.2}\n  }},\n  \"speedup\": {{\n    \"frames\": {:.2}\n  }}\n}}\n",
        if view_fps > 0.0 { credit_fps / view_fps } else { 0.0 },
        if pfs_owned > 0.0 { pfs_leased / pfs_owned } else { 0.0 },
        if copy_fps > 0.0 { view_fps / copy_fps } else { 0.0 },
    );
    std::fs::write(path, json).expect("write bench json");
    println!("  wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale N");
                i += 2;
            }
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            _ => i += 1, // ignore cargo-bench plumbing like --bench
        }
    }
    let scale = scale.max(1);

    banner(
        "E19",
        "zero-copy frame path: device → AAL5 → 4-hop fabric → reassembly → playback",
        "the paper's single-address-space no-copy argument, measured",
    );

    let frames = (400_000 / scale).max(1_000);
    // Interleave warmup + measurement; take the best of 3 windows so a
    // noisy scheduler tick cannot understate either lane.
    let mut copy_fps = 0.0f64;
    let mut view_fps = 0.0f64;
    let mut credit_fps = 0.0f64;
    for _ in 0..3 {
        let (n, t) = run_copy_path(frames);
        copy_fps = copy_fps.max(n as f64 / t);
        let (n, t) = run_view_path(frames);
        view_fps = view_fps.max(n as f64 / t);
        let (n, t) = run_credit_path(frames);
        credit_fps = credit_fps.max(n as f64 / t);
    }
    row(&[
        ("copy path", format!("{copy_fps:.0} frames/s")),
        ("view path", format!("{view_fps:.0} frames/s")),
        ("speedup", format!("{:.2}x", view_fps / copy_fps)),
    ]);
    row(&[
        ("credited view path", format!("{credit_fps:.0} frames/s")),
        (
            "credit overhead",
            format!("{:.1}%", (1.0 - credit_fps / view_fps) * 100.0),
        ),
    ]);

    let (pfs_owned, pfs_leased) = run_pfs((4_000 / scale).max(200), 64 * 1024);
    row(&[
        ("pfs owned reads", format!("{pfs_owned:.0} MB/s")),
        ("pfs leased reads", format!("{pfs_leased:.0} MB/s")),
        ("speedup", format!("{:.2}x", pfs_leased / pfs_owned)),
    ]);

    if let Some(path) = json_path {
        write_json(
            &path, copy_fps, view_fps, credit_fps, frames, pfs_owned, pfs_leased,
        );
    }
    println!(
        "expect: ≥2x frames/s — the view lane pays one copy (device fill) and one CRC \
         (segmenter) per frame; the copy lane pays ~5 copies, ~8 allocations and two CRCs"
    );
}
