//! E5 — Domain scheduling: Nemesis EDF+shares vs the baselines.
//!
//! Paper, §3.3: shares give isolation ("some of the resources given to
//! an application may be viewed as guaranteed"); EDF orders the holders.

use pegasus_bench::{banner, row};
use pegasus_nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_sim::time::MS;

fn run(policy: Policy, hogs: usize) -> Vec<(String, f64, u64)> {
    let mut sim = CpuSim::new(policy);
    sim.ctx_cost = 10_000;
    sim.add_task(TaskSpec::guaranteed("audio", 10 * MS, 3 * MS).with_priority(5));
    sim.add_task(TaskSpec::guaranteed("video", 40 * MS, 16 * MS).with_priority(4));
    for i in 0..hogs {
        sim.add_task(TaskSpec::best_effort(&format!("hog{i}"), 10 * MS, 100 * MS).with_priority(6));
    }
    let r = sim.run(10_000 * MS);
    r.tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let name = match i {
                0 => "audio",
                1 => "video",
                _ => "hogs",
            };
            (name.to_string(), t.miss_rate(), t.cpu_received / MS)
        })
        .collect()
}

fn main() {
    banner(
        "E5",
        "deadline misses under load: EDF+shares vs round-robin vs priority",
        "§3.3 'weighted scheduling discipline ... earliest deadline first'",
    );
    println!("  workload: audio 3ms/10ms + video 16ms/40ms guaranteed, N greedy best-effort hogs (high priority!)");
    for hogs in [0usize, 1, 3] {
        for (pname, policy) in [
            ("nemesis-edf", Policy::NemesisEdf),
            ("round-robin", Policy::RoundRobin(MS)),
            ("static-prio", Policy::StaticPriority),
            ("pure-edf", Policy::PureEdf),
        ] {
            let stats = run(policy, hogs);
            let audio = &stats[0];
            let video = &stats[1];
            row(&[
                ("hogs", hogs.to_string()),
                ("policy", pname.to_string()),
                ("audio miss", format!("{:.1}%", audio.1 * 100.0)),
                ("video miss", format!("{:.1}%", video.1 * 100.0)),
                ("audio cpu(ms)", audio.2.to_string()),
            ]);
        }
        println!();
    }
    println!("expect: nemesis-edf rows stay at 0% for audio+video regardless of hogs; the others degrade");
}
