//! E16 — Audio/video synchronization via the control stream.
//!
//! Paper, §2.2: the playback control process is "responsible for the
//! synchronization of the play-out of the various streams ... based on
//! the source synchronization information from the remote manager(s)
//! and data arrival events."

use std::rc::Rc;

use pegasus_bench::{banner, row};
use pegasus_sim::time::{fmt_ns, MS};
use pegasus_sim::Simulator;
use pegasus_streams::playback::{PlaybackControl, PlaybackPolicy};

fn run(policy: PlaybackPolicy, video_delay: u64, audio_delay: u64) -> (u64, u64, f64) {
    let ctl = PlaybackControl::shared(policy);
    let (video, audio) = {
        let mut c = ctl.borrow_mut();
        (c.add_stream("video"), c.add_stream("audio"))
    };
    let mut sim = Simulator::new();
    for i in 0..500u64 {
        let capture = i * 40 * MS;
        // Deterministic jitter on top of the base transport delay.
        let vj = (i % 7) * MS;
        let aj = (i % 3) * MS / 2;
        let cv = Rc::clone(&ctl);
        sim.schedule_at(capture + video_delay + vj, move |sim| {
            PlaybackControl::on_arrival(&cv, sim, video, capture);
        });
        let ca = Rc::clone(&ctl);
        sim.schedule_at(capture + audio_delay + aj, move |sim| {
            PlaybackControl::on_arrival(&ca, sim, audio, capture);
        });
    }
    sim.run();
    let mut c = ctl.borrow_mut();
    let p50 = c.skew.percentile(50.0).unwrap_or(0);
    let max = c.skew.max().unwrap_or(0);
    let late = c.late_fraction();
    (p50, max, late)
}

fn main() {
    banner(
        "E16",
        "A/V skew: free-running vs control-stream playback control",
        "§2.2 playback control process",
    );
    println!("  transport: video 30 ms (+0-6 ms jitter), audio 2 ms (+0-1 ms jitter), 500 frames");
    let (p50, max, _) = run(PlaybackPolicy::FreeRunning, 30 * MS, 2 * MS);
    row(&[
        ("policy", "free-running".into()),
        ("skew p50", fmt_ns(p50)),
        ("skew max", fmt_ns(max)),
    ]);
    for target in [20 * MS, 40 * MS, 60 * MS] {
        let (p50, max, late) = run(
            PlaybackPolicy::Synchronized {
                target_latency: target,
            },
            30 * MS,
            2 * MS,
        );
        row(&[
            ("policy", format!("synchronized @{}", fmt_ns(target))),
            ("skew p50", fmt_ns(p50)),
            ("skew max", fmt_ns(max)),
            ("late", format!("{:.1}%", late * 100.0)),
        ]);
    }
    println!("expect: free-running skew ≈ the 28 ms delay difference; a target above the worst video delay (36 ms) drives skew to 0 with no late frames");
}
