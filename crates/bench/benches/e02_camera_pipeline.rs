//! E2 — Camera pipeline throughput and compressed bandwidth.
//!
//! Paper: "using frame-by-frame compression, for instance with JPEG, a
//! video stream requires no more than a megabyte per second" (§2).

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_atm::link::{CaptureSink, Link};
use pegasus_bench::{banner, mbps, row};
use pegasus_devices::camera::{Camera, CameraConfig, VideoMode};
use pegasus_devices::video::{Scene, SyntheticVideo};
use pegasus_sim::time::MS;
use pegasus_sim::Simulator;

fn run_mode(scene: Scene, mode: VideoMode) -> (f64, f64) {
    let sink = CaptureSink::shared();
    let tx = Rc::new(RefCell::new(Link::new(155_520_000, 0, sink)));
    let cam = Camera::new(
        SyntheticVideo::qcif(scene),
        CameraConfig {
            mode,
            ..CameraConfig::default()
        },
        10,
        tx,
    );
    let mut sim = Simulator::new();
    Camera::start(&cam, &mut sim);
    sim.run_until(1_000 * MS);
    cam.borrow_mut().stop();
    sim.run();
    let c = cam.borrow();
    (c.stats.payload_bytes as f64, c.stats.compression_ratio())
}

fn main() {
    banner(
        "E2",
        "ATM camera: raw vs Motion-JPEG bandwidth (1 s of 25 fps QCIF)",
        "Fig. 2; §2 'JPEG video ≤ 1 MB/s'",
    );
    for (scene, sname) in [(Scene::MovingGradient, "gradient"), (Scene::Noise, "noise")] {
        for (mode, mname) in [
            (VideoMode::Raw, "raw"),
            (VideoMode::Mjpeg(90), "mjpeg q90"),
            (VideoMode::Mjpeg(50), "mjpeg q50"),
            (VideoMode::Mjpeg(10), "mjpeg q10"),
        ] {
            let (bytes, ratio) = run_mode(scene, mode);
            row(&[
                ("scene", sname.to_string()),
                ("mode", mname.to_string()),
                ("stream", mbps(bytes)),
                ("compression", format!("{ratio:.1}x")),
            ]);
        }
    }
    println!("expect: raw ≈ 0.65 MB/s for QCIF (scales with area); mjpeg q50 on natural content well under 1 MB/s even at full 768x576 scaling");
}
