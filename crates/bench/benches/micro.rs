//! Micro-benchmarks (Criterion): the hot primitives under everything.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::{Cell as StdCell, RefCell};
use std::hint::black_box;
use std::rc::Rc;

use pegasus_atm::aal5::{Reassembler, Segmenter};
use pegasus_atm::cell::Cell;
use pegasus_atm::crc::crc32;
use pegasus_devices::codec::{decode_tile, encode_tile};
use pegasus_naming::namespace::NameWorld;
use pegasus_nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_sim::time::MS;
use pegasus_sim::{SharedHandler, Simulator};

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xA5u8; 4096];
    c.bench_function("crc32_4k", |b| b.iter(|| crc32(black_box(&data))));
}

fn bench_cell_roundtrip(c: &mut Criterion) {
    let cell = Cell::with_payload(1234, &[7u8; 48]);
    c.bench_function("cell_encode_decode", |b| {
        b.iter(|| Cell::from_bytes(&black_box(&cell).to_bytes()).unwrap())
    });
}

fn bench_aal5(c: &mut Criterion) {
    let frame = vec![3u8; 1024];
    let seg = Segmenter::new(1);
    c.bench_function("aal5_segment_1k", |b| {
        b.iter(|| seg.segment(black_box(&frame)).unwrap())
    });
    let cells = seg.segment(&frame).unwrap();
    c.bench_function("aal5_reassemble_1k", |b| {
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut out = None;
            for cell in &cells {
                if let Some(res) = r.push(cell) {
                    out = Some(res.unwrap());
                }
            }
            out.unwrap()
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut tile = [0u8; 64];
    for (i, p) in tile.iter_mut().enumerate() {
        *p = (i * 3) as u8;
    }
    c.bench_function("mjpeg_encode_tile_q50", |b| {
        b.iter(|| encode_tile(black_box(&tile), 50))
    });
    let coded = encode_tile(&tile, 50);
    c.bench_function("mjpeg_decode_tile_q50", |b| {
        b.iter(|| decode_tile(black_box(&coded), 50).unwrap())
    });
}

fn bench_name_resolution(c: &mut Criterion) {
    let mut w = NameWorld::new();
    let s = w.create_space();
    w.bind(s, "/dev/atm/camera0", pegasus_naming::maillon::ObjectRef(1))
        .unwrap();
    c.bench_function("resolve_three_components", |b| {
        b.iter(|| w.resolve(black_box(s), "/dev/atm/camera0").unwrap())
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("nemesis_edf_one_second", |b| {
        b.iter(|| {
            let mut sim = CpuSim::new(Policy::NemesisEdf);
            sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 3 * MS));
            sim.add_task(TaskSpec::guaranteed("v", 40 * MS, 16 * MS));
            sim.add_task(TaskSpec::best_effort("be", 10 * MS, 20 * MS));
            black_box(sim.run(1_000 * MS))
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    // Generic lane: schedule + fire 1k boxed one-shot events.
    c.bench_function("engine_schedule_run_1k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            for i in 0..1_000u64 {
                sim.schedule_at((i * 7919) % 503, |_| {});
            }
            sim.run();
            black_box(sim.events_executed())
        })
    });
    // O(1) cancellation: schedule 1k, cancel them all, drain the husks.
    c.bench_function("engine_cancel_1k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let ids: Vec<_> = (0..1_000u64).map(|i| sim.schedule_at(i, |_| {})).collect();
            for id in ids {
                sim.cancel(id);
            }
            sim.run();
            black_box(sim.events_executed())
        })
    });
    // Allocation-free lane: one shared handler carrying a 1k-tick chain.
    c.bench_function("engine_shared_chain_1k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let n = Rc::new(StdCell::new(0u32));
            let n2 = n.clone();
            let handler: SharedHandler = Rc::new(RefCell::new(move |sim: &mut Simulator| {
                n2.set(n2.get() + 1);
                if n2.get() < 1_000 {
                    Some(sim.now() + 1)
                } else {
                    None
                }
            }));
            sim.schedule_shared_at(0, handler);
            sim.run();
            black_box(n.get())
        })
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_cell_roundtrip,
    bench_aal5,
    bench_codec,
    bench_name_resolution,
    bench_scheduler,
    bench_engine
);
criterion_main!(benches);
