//! Micro-benchmarks (Criterion): the hot primitives under everything.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pegasus_atm::aal5::{Reassembler, Segmenter};
use pegasus_atm::cell::Cell;
use pegasus_atm::crc::crc32;
use pegasus_devices::codec::{decode_tile, encode_tile};
use pegasus_naming::namespace::NameWorld;
use pegasus_nemesis::sched::{CpuSim, Policy, TaskSpec};
use pegasus_sim::time::MS;

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xA5u8; 4096];
    c.bench_function("crc32_4k", |b| b.iter(|| crc32(black_box(&data))));
}

fn bench_cell_roundtrip(c: &mut Criterion) {
    let cell = Cell::with_payload(1234, &[7u8; 48]);
    c.bench_function("cell_encode_decode", |b| {
        b.iter(|| Cell::from_bytes(&black_box(&cell).to_bytes()).unwrap())
    });
}

fn bench_aal5(c: &mut Criterion) {
    let frame = vec![3u8; 1024];
    let seg = Segmenter::new(1);
    c.bench_function("aal5_segment_1k", |b| b.iter(|| seg.segment(black_box(&frame)).unwrap()));
    let cells = seg.segment(&frame).unwrap();
    c.bench_function("aal5_reassemble_1k", |b| {
        b.iter(|| {
            let mut r = Reassembler::new();
            let mut out = None;
            for cell in &cells {
                if let Some(res) = r.push(cell) {
                    out = Some(res.unwrap());
                }
            }
            out.unwrap()
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut tile = [0u8; 64];
    for (i, p) in tile.iter_mut().enumerate() {
        *p = (i * 3) as u8;
    }
    c.bench_function("mjpeg_encode_tile_q50", |b| {
        b.iter(|| encode_tile(black_box(&tile), 50))
    });
    let coded = encode_tile(&tile, 50);
    c.bench_function("mjpeg_decode_tile_q50", |b| {
        b.iter(|| decode_tile(black_box(&coded), 50).unwrap())
    });
}

fn bench_name_resolution(c: &mut Criterion) {
    let mut w = NameWorld::new();
    let s = w.create_space();
    w.bind(s, "/dev/atm/camera0", pegasus_naming::maillon::ObjectRef(1)).unwrap();
    c.bench_function("resolve_three_components", |b| {
        b.iter(|| w.resolve(black_box(s), "/dev/atm/camera0").unwrap())
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("nemesis_edf_one_second", |b| {
        b.iter(|| {
            let mut sim = CpuSim::new(Policy::NemesisEdf);
            sim.add_task(TaskSpec::guaranteed("a", 10 * MS, 3 * MS));
            sim.add_task(TaskSpec::guaranteed("v", 40 * MS, 16 * MS));
            sim.add_task(TaskSpec::best_effort("be", 10 * MS, 20 * MS));
            black_box(sim.run(1_000 * MS))
        })
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_cell_roundtrip,
    bench_aal5,
    bench_codec,
    bench_name_resolution,
    bench_scheduler
);
criterion_main!(benches);
