//! E14 — Write-behind against the Baker lifetime distribution.
//!
//! Paper, §5: client-copy + server-buffer "mechanisms obviate the need
//! for writing data to disk quickly. For normal file traffic, this is
//! not only beneficial for write performance — Baker et al. showed that
//! 70% of files are deleted or overwritten within 30 seconds — but also
//! for cleaning performance: ... garbage is created at a much lower
//! rate."

use pegasus_bench::{banner, row};
use pegasus_pfs::client::{WriteBehindSystem, WritePolicy};
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileId, LogFs};
use pegasus_pfs::workload::{generate, Op, WorkloadConfig};
use pegasus_sim::time::SEC;
use std::collections::HashMap;

fn run(policy: WritePolicy) -> (u64, u64, u64, usize) {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    fs.raid_mut().set_store(false);
    let mut sys = WriteBehindSystem::new(fs, policy);
    let trace = generate(WorkloadConfig::baker(), 600 * SEC);
    let mut files: HashMap<u64, FileId> = HashMap::new();
    let mut now = 0;
    for (t, op) in trace {
        sys.advance(t - now).unwrap();
        now = t;
        match op {
            Op::Create { handle, size } => {
                let f = sys.create();
                files.insert(handle, f);
                sys.write(f, &vec![0u8; size as usize]).unwrap();
            }
            Op::Delete { handle } => {
                if let Some(f) = files.remove(&handle) {
                    sys.delete(f).unwrap();
                }
            }
        }
    }
    sys.shutdown().unwrap();
    let garbage_bytes: u64 = sys.fs.garbage.iter().map(|g| g.len as u64).sum();
    (
        sys.stats.app_bytes,
        sys.stats.disk_bytes,
        sys.stats.absorbed_bytes,
        (garbage_bytes / 1024) as usize,
    )
}

fn main() {
    banner(
        "E14",
        "10 minutes of Baker-distributed file traffic: disk writes and garbage",
        "§5 delayed writes + Baker et al. [1991]",
    );
    for (label, policy) in [
        ("write-through", WritePolicy::WriteThrough),
        (
            "write-behind 5 s",
            WritePolicy::WriteBehind { delay: 5 * SEC },
        ),
        (
            "write-behind 30 s",
            WritePolicy::WriteBehind { delay: 30 * SEC },
        ),
        (
            "write-behind 120 s",
            WritePolicy::WriteBehind { delay: 120 * SEC },
        ),
    ] {
        let (app, disk, absorbed, garbage_kib) = run(policy);
        row(&[
            ("policy", label.to_string()),
            ("app MB", format!("{:.1}", app as f64 / 1e6)),
            ("disk MB", format!("{:.1}", disk as f64 / 1e6)),
            (
                "absorbed",
                format!("{:.0}%", 100.0 * absorbed as f64 / app as f64),
            ),
            ("log garbage KiB", garbage_kib.to_string()),
        ]);
    }
    println!("expect: 30 s write-behind absorbs a large share of bytes (files die in memory), slashing disk writes and garbage; longer delays absorb more");
}
