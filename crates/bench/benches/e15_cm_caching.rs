//! E15 — Caching continuous media is counterproductive.
//!
//! Paper, §5: "Most video sequences ... are larger than the cache, so,
//! by the time a user has seen ... a video to the end, the beginning has
//! already been evicted from the (LRU) cache" — while for ordinary data
//! "caching yields substantial performance gains".

use pegasus_bench::{banner, row};
use pegasus_pfs::cache::LruCache;
use pegasus_pfs::cm::CmScheduler;
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, LogFs, SEGMENT_BYTES};
use pegasus_sim::time::SEC;

fn main() {
    banner(
        "E15",
        "LRU hit rate: hot working set vs sequential video; guaranteed-rate path",
        "§5 'caching video and audio is usually not a good idea'",
    );
    // Hot ordinary-file working set (64-block set, 256-block cache).
    let mut cache = LruCache::new(256);
    for _round in 0..20 {
        for b in 0..64u32 {
            if cache.get(&b).is_none() {
                cache.put(b, ());
            }
        }
    }
    row(&[
        ("workload", "ordinary hot set (64 blocks)".into()),
        ("cache", "256 blocks".into()),
        ("hit rate", format!("{:.1}%", cache.hit_rate() * 100.0)),
    ]);

    // Sequential video, watched twice, various sizes around the cache.
    for video_blocks in [128u32, 256, 512, 2048] {
        let mut cache = LruCache::new(256);
        for _pass in 0..2 {
            for b in 0..video_blocks {
                if cache.get(&b).is_none() {
                    cache.put(b, ());
                }
            }
        }
        row(&[
            ("workload", format!("video {video_blocks} blocks ×2")),
            ("cache", "256 blocks".into()),
            ("hit rate", format!("{:.1}%", cache.hit_rate() * 100.0)),
        ]);
    }

    // What the paper does instead: admission-controlled guaranteed rate.
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    fs.raid_mut().set_store(false);
    let id = fs.create(FileClass::Continuous);
    for _ in 0..64 {
        fs.append(id, &vec![0u8; SEGMENT_BYTES]).unwrap();
    }
    fs.sync().unwrap();
    let mut sched = CmScheduler::new(SEC, 20_000_000);
    for _ in 0..4 {
        sched.admit(id, 2_000_000, 0).unwrap();
    }
    let report = sched.run_periods(&mut fs, 8).unwrap();
    row(&[
        ("guaranteed streams", "4 × 2 MB/s, uncached".into()),
        ("periods", report.periods.to_string()),
        ("deadline misses", report.missed.to_string()),
        (
            "delivered MB",
            format!("{:.0}", report.bytes_delivered as f64 / 1e6),
        ),
    ]);
    println!("expect: hot-set hit rate >90%; any video larger than the cache scores ~0%; the rate-guaranteed path delivers its fixed rate with zero misses, no cache needed");
}
