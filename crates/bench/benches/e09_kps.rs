//! E9 — Kernel-Privileged Sections vs whole-module kernel mode.
//!
//! Paper, §3.5: "The code that requires this access is often a tiny
//! proportion of the total module; however, most operating systems would
//! require that the whole module run in kernel mode."

use pegasus_bench::{banner, row};
use pegasus_nemesis::kps::{cpu, whole_module_kernel, with_kps, KpsCosts};
use pegasus_sim::time::fmt_ns;

fn main() {
    banner(
        "E9",
        "privileged time and interrupt-masked windows: KPS vs whole-module",
        "§3.5 Kernel-Privileged Sections (Fig. 5)",
    );
    // A driver doing 1 ms of work per invocation, of which `priv_frac`
    // genuinely needs privilege, invoked 100 times.
    let work: u64 = 1_000_000;
    for (costs, cname) in [
        (KpsCosts::mips_trap(), "mips-trap"),
        (KpsCosts::alpha_pal(), "alpha-pal"),
    ] {
        for priv_frac in [0.01f64, 0.05, 0.25] {
            let priv_work = (work as f64 * priv_frac) as u64;
            let kps = cpu(costs);
            for _ in 0..100 {
                kps.borrow_mut().execute((work - priv_work) / 2);
                with_kps(&kps, |c| c.borrow_mut().execute(priv_work));
                kps.borrow_mut().execute((work - priv_work) / 2);
            }
            let whole = cpu(costs);
            for _ in 0..100 {
                whole_module_kernel(&whole, work);
            }
            let (kp, km) = {
                let c = kps.borrow();
                (c.privileged_time, c.max_masked_window)
            };
            let (wp, wm) = {
                let c = whole.borrow();
                (c.privileged_time, c.max_masked_window)
            };
            row(&[
                ("trap", cname.to_string()),
                ("priv fraction", format!("{:.0}%", priv_frac * 100.0)),
                ("kps priv time", fmt_ns(kp)),
                ("whole priv time", fmt_ns(wp)),
                ("kps max masked", fmt_ns(km)),
                ("whole max masked", fmt_ns(wm)),
            ]);
        }
    }
    println!("expect: KPS privileged time tracks the privileged fraction; whole-module masks interrupts for the entire invocation");
}
