//! E3 — ATM display: descriptor demultiplexing and the video/graphics
//! unification.
//!
//! Paper, Figure 3: "the multiplexing is done via the display's window
//! descriptors"; tiles are "bit-blit operations of fixed size".

use std::time::Instant;

use pegasus_atm::aal5::Segmenter;
use pegasus_bench::{banner, row};
use pegasus_devices::codec;
use pegasus_devices::display::{Display, Rect, WindowManager};
use pegasus_devices::tile::{TileCoding, TileFrame};
use pegasus_sim::Simulator;

fn main() {
    banner(
        "E3",
        "display: tile blit rate and window-descriptor operations",
        "Fig. 3; §2.1 'unification of video and graphics'",
    );
    let display = Display::shared(1024, 768);
    let mut wm = WindowManager::new(display.clone(), 1);
    for w in 0..16u16 {
        wm.create(
            100 + w,
            Rect::new((w as i32 % 4) * 200, (w as i32 / 4) * 150, 200, 150),
        );
    }
    let mut sim = Simulator::new();

    // Raw tiles through AAL5 into the descriptor table.
    let n_frames = 2_000;
    let start = Instant::now();
    for i in 0..n_frames {
        let vci = 100 + (i % 16) as u16;
        let frame = TileFrame {
            coding: TileCoding::Raw,
            quality: 0,
            frame_seq: i,
            timestamp: 0,
            tiles: (0..8)
                .map(|t| (t * 8, ((i * 8) % 144) as u16, vec![7u8; 64]))
                .collect(),
        };
        for cell in Segmenter::new(vci).segment(&frame.encode()).unwrap() {
            use pegasus_atm::link::CellSink;
            display.borrow_mut().deliver(&mut sim, cell);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let blitted = display.borrow().stats.tiles_blitted;
    row(&[
        ("raw tiles blitted", blitted.to_string()),
        (
            "host blit rate",
            format!("{:.0} tiles/s", blitted as f64 / wall),
        ),
        (
            "pixels written",
            display.borrow().stats.pixels_written.to_string(),
        ),
    ]);

    // Compressed tiles (the decode is on the device).
    let display2 = Display::shared(1024, 768);
    let mut wm2 = WindowManager::new(display2.clone(), 1);
    wm2.create(50, Rect::new(0, 0, 1024, 768));
    let payload = codec::encode_tile(&[128u8; 64], 50);
    let start = Instant::now();
    for i in 0..n_frames {
        let frame = TileFrame {
            coding: TileCoding::Compressed,
            quality: 50,
            frame_seq: i,
            timestamp: 0,
            tiles: (0..8)
                .map(|t| (t * 8, ((i * 8) % 760) as u16, payload.clone()))
                .collect(),
        };
        for cell in Segmenter::new(50).segment(&frame.encode()).unwrap() {
            use pegasus_atm::link::CellSink;
            display2.borrow_mut().deliver(&mut sim, cell);
        }
    }
    let wall2 = start.elapsed().as_secs_f64();
    let blitted2 = display2.borrow().stats.tiles_blitted;
    row(&[
        ("mjpeg tiles blitted", blitted2.to_string()),
        (
            "host blit rate",
            format!("{:.0} tiles/s", blitted2 as f64 / wall2),
        ),
    ]);

    // Window-manager operations are descriptor writes: count, not copy.
    let ops = 10_000;
    let start = Instant::now();
    for i in 0..ops {
        wm.move_to(100 + (i % 16) as u16, i % 800, i % 600);
        wm.raise(100 + (i % 16) as u16);
    }
    let wall3 = start.elapsed().as_secs_f64();
    row(&[
        ("wm ops (move+raise)", (2 * ops).to_string()),
        ("rate", format!("{:.0} ops/s", 2.0 * ops as f64 / wall3)),
    ]);
    println!(
        "expect: blit scales with pixels; WM ops are orders of magnitude cheaper than repainting"
    );
}
