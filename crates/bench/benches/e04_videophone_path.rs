//! E4 — "No processors need to process any video data."
//!
//! Paper, §2/Fig. 1: with devices on the switch, a video-phone call
//! moves every media byte device-to-device; the bus-attached baseline
//! pushes it all through the host CPUs.

use pegasus::videophone::{VideoPath, VideoPhone, VideoPhoneConfig};
use pegasus_bench::{banner, row};
use pegasus_sim::time::{fmt_ns, MS};

fn main() {
    banner(
        "E4",
        "videophone: media bytes touched by workstation CPUs",
        "§2 'no processors need to process any video data'",
    );
    for (label, path) in [
        ("DAN (devices on switch)", VideoPath::Dan),
        ("bus-attached baseline", VideoPath::BusAttached),
    ] {
        let r = VideoPhone::run(VideoPhoneConfig {
            path,
            duration: 1_000 * MS,
            ..VideoPhoneConfig::default()
        });
        row(&[
            ("path", label.to_string()),
            ("cpu media bytes (A,B)", format!("{:?}", r.cpu_bytes)),
            ("cpu time burnt", fmt_ns(r.cpu_time.0 + r.cpu_time.1)),
            ("video p50", fmt_ns(r.video_latency_p50.0)),
            ("tiles", format!("{:?}", r.tiles_blitted)),
            ("audio underruns", format!("{:?}", r.audio_underruns)),
        ]);
    }
    println!("expect: DAN row shows cpu bytes (0, 0); baseline pushes the whole compressed stream (hundreds of KB/s) through each CPU and adds latency");
}
