//! E8 — Synchronous vs asynchronous event signalling.
//!
//! Paper, §3.4: "lowest latency for a client/server interaction will be
//! achieved by the client and server implementing the synchronous form
//! of notification. However, a domain performing demultiplexing of
//! incoming packets may be most efficient using the asynchronous means."

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_bench::{banner, row};
use pegasus_nemesis::events::{EventConfig, EventSystem, IdcChannel, SignalMode};
use pegasus_sim::time::fmt_ns;
use pegasus_sim::Simulator;

fn delivery_latency(mode: SignalMode) -> u64 {
    let sys = EventSystem::shared(EventConfig::default());
    let mut sim = Simulator::new();
    let rx = sys.borrow_mut().add_domain("rx");
    let chan = sys.borrow_mut().open_channel(rx);
    let t = Rc::new(RefCell::new(0u64));
    let t2 = t.clone();
    sys.borrow_mut().set_handler(
        rx,
        Box::new(move |sim, _s, _c, _n| *t2.borrow_mut() = sim.now()),
    );
    EventSystem::send(&sys, &mut sim, chan, mode);
    sim.run();
    let v = *t.borrow();
    v
}

fn demux_activations(mode: SignalMode, events: u64) -> u64 {
    let sys = EventSystem::shared(EventConfig::default());
    let mut sim = Simulator::new();
    let rx = sys.borrow_mut().add_domain("demux");
    let chan = sys.borrow_mut().open_channel(rx);
    sys.borrow_mut().set_handler(rx, Box::new(|_, _, _, _| {}));
    for i in 0..events {
        let sys = sys.clone();
        sim.schedule_at(i * 10_000, move |sim| {
            EventSystem::send(&sys, sim, chan, mode);
        });
    }
    sim.run();
    let n = sys.borrow().activations(rx);
    n
}

fn main() {
    banner(
        "E8",
        "event signalling: latency (sync wins) and batching (async wins)",
        "§3.4 'two types of event signalling: synchronous and asynchronous'",
    );
    for (label, mode) in [
        ("synchronous", SignalMode::Synchronous),
        ("asynchronous", SignalMode::Asynchronous),
    ] {
        let lat = delivery_latency(mode);
        let acts = demux_activations(mode, 1_000);
        row(&[
            ("mode", label.to_string()),
            ("single-event latency", fmt_ns(lat)),
            ("activations for 1000 packets", acts.to_string()),
        ]);
    }

    // IDC round trip with sync events (the paper's low-latency case).
    let sys = EventSystem::shared(EventConfig::default());
    let mut sim = Simulator::new();
    let client = sys.borrow_mut().add_domain("client");
    let server = sys.borrow_mut().add_domain("server");
    let t = Rc::new(RefCell::new(0u64));
    let t2 = t.clone();
    let idc = IdcChannel::new(
        &sys,
        client,
        server,
        SignalMode::Synchronous,
        |req| req.to_vec(),
        move |sim, _| *t2.borrow_mut() = sim.now(),
    );
    idc.call(&sys, &mut sim, vec![1, 2, 3], SignalMode::Synchronous);
    sim.run();
    row([("idc round trip (sync both ways)", fmt_ns(*t.borrow()))]
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect::<Vec<_>>()
        .as_slice());
    println!("expect: sync latency = switch+upcall (~7 µs), async = next quantum (~1 ms); async needs ~1 activation per batch, sync one per event");
}
