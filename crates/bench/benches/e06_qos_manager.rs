//! E6 — The QoS manager adapting shares on the long timescale.
//!
//! Paper, §3.3: weights are updated "not only in response to
//! applications entering or leaving the system, but also adaptively as
//! applications modify their behaviour ... on a longer time scale ...
//! to smooth out short-term variations in load."

use pegasus_bench::{banner, row};
use pegasus_nemesis::qosmgr::QosManager;

fn main() {
    banner(
        "E6",
        "QoS-manager share adaptation over epochs",
        "§3.3 'Quality-of-Service-manager domain ... updates the scheduler weights'",
    );
    let mut mgr = QosManager::new(0.9, 0.3);
    let video = mgr.add_app("video", 2.0);
    let batch = mgr.add_app("batch", 1.0);
    println!("  epoch  video_demand  video_grant  batch_grant  event");
    let mut audio = None;
    for epoch in 0..30 {
        // Video demand steps up at epoch 10; an audio app joins at 20.
        let vd = if epoch < 10 { 0.3 } else { 0.7 };
        mgr.observe(video, vd);
        mgr.observe(batch, 1.0);
        let mut event = "";
        if epoch == 20 {
            audio = Some(mgr.add_app("audio", 3.0));
            event = "audio app joins (weight 3)";
        }
        if let Some(a) = audio {
            mgr.observe(a, 0.2);
        }
        mgr.rebalance();
        let a_grant = audio.map(|a| mgr.granted(a)).unwrap_or(0.0);
        println!(
            "  {epoch:>5}  {vd:>12.2}  {:>11.3}  {:>11.3}  {}{}",
            mgr.granted(video),
            mgr.granted(batch),
            if a_grant > 0.0 {
                format!("audio={a_grant:.3}  ")
            } else {
                String::new()
            },
            event
        );
    }
    row(&[(
        "expect",
        "video grant ramps smoothly after the step (EWMA), batch yields; audio's arrival squeezes batch again".into(),
    )]);
}
