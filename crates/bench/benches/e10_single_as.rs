//! E10 — The single address space: context-switch cost and the
//! relocation cache.
//!
//! Paper, §3.1: the benefits are "simplified sharing ... and the removal
//! of virtual address aliases which can result in significant context
//! switch costs with caches accessed by virtual address"; the cost is
//! load-time relocation, amortized by reloading at the same address via
//! a 32-bit hash of the code.

use pegasus_bench::{banner, row};
use pegasus_nemesis::mem::{ImageLoader, SwitchCostModel};
use pegasus_sim::time::fmt_ns;

fn main() {
    banner(
        "E10",
        "context-switch cost and relocation-cache hit rate",
        "§3.1 memory model",
    );
    let m = SwitchCostModel::decstation();
    for dirty in [0.1f64, 0.5, 1.0] {
        row(&[
            ("dirty cache fraction", format!("{dirty:.1}")),
            ("aliased (per-process AS)", fmt_ns(m.aliased_switch(dirty))),
            ("single AS", fmt_ns(m.single_as_switch())),
            (
                "saving",
                format!(
                    "{:.1}x",
                    m.aliased_switch(dirty) as f64 / m.single_as_switch() as f64
                ),
            ),
        ]);
    }

    // Relocation cache: a day of running the same 30 applications.
    let mut loader = ImageLoader::new();
    let apps: Vec<String> = (0..30).map(|i| format!("app-{i}")).collect();
    let mut total_cost = 0u64;
    let launches = 500;
    for i in 0..launches {
        let app = &apps[(i * 7) % apps.len()];
        total_cost += loader.load(app, 4 << 20).cost;
    }
    row(&[
        ("image launches", launches.to_string()),
        ("relocation-cache hits", loader.hits.to_string()),
        ("full relocations", loader.misses.to_string()),
        (
            "hit rate",
            format!("{:.1}%", 100.0 * loader.hits as f64 / launches as f64),
        ),
        ("mean load cost", fmt_ns(total_cost / launches as u64)),
    ]);
    println!("expect: aliased switches cost tens of µs vs a flat 3 µs; relocation hit rate ≈ 94% makes the single-AS penalty negligible");
}
