//! E21 — Tiered content cache vs. raw log-store reads under Zipf load.
//!
//! The §5 pathology bench: a population of CM streams draws titles
//! under a Zipf popularity law and plays them through the CM scheduler
//! for several service periods — once straight off the log store, once
//! through the tiered cache — on byte-identical workloads and fresh
//! file systems. Each lane records the disk-time ratio
//! (`io_reduction`); the sweep over α ∈ {0.0, 0.5, 1.0} shows the
//! cache's advantage growing with popularity skew, and the α = 1.0
//! lane is the number CI gates at ≥ 2×.
//!
//! Usage:
//!   cargo bench --bench e21_cache_tiers [-- [--json PATH]]

use pegasus_bench::{banner, row};
use pegasus_pfs::cm::CmScheduler;
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs, SEGMENT_BYTES};
use pegasus_pfs::tier::{TierConfig, TierStats, TieredCache};
use pegasus_sim::rng::seeded;
use pegasus_sim::time::MS;
use rand::rngs::SmallRng;
use rand::Rng;

const TITLES: usize = 12;
const TITLE_SEGMENTS: usize = 4; // 4 MiB per title
const VIEWERS: usize = 48;
const PERIODS: u64 = 6;
const RATE: u64 = 1_000_000; // bytes/second per stream
const PERIOD: u64 = 500 * MS;
const ALPHAS: [u64; 3] = [0, 500, 1000];

fn zipf_pick(rng: &mut SmallRng, alpha_milli: u64) -> usize {
    let alpha = alpha_milli as f64 / 1000.0;
    let weights: Vec<f64> = (0..TITLES)
        .map(|k| 1.0 / ((k + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (k, w) in weights.iter().enumerate() {
        if u < *w {
            return k;
        }
        u -= *w;
    }
    TITLES - 1
}

fn fresh_fs() -> (LogFs, Vec<FileId>) {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    fs.raid_mut().set_store(false);
    let mut files = Vec::with_capacity(TITLES);
    for _ in 0..TITLES {
        let id = fs.create(FileClass::Continuous);
        for _ in 0..TITLE_SEGMENTS {
            fs.append(id, &vec![0u8; SEGMENT_BYTES]).expect("prerecord");
        }
        files.push(id);
    }
    fs.sync().expect("prerecord sync");
    (fs, files)
}

/// Plays the viewer population for [`PERIODS`] service periods and
/// returns the disk clock, with the cache's stats when one was used.
fn play(picks: &[usize], cached: bool) -> (u64, Option<TierStats>) {
    let (mut fs, files) = fresh_fs();
    let mut cm = CmScheduler::new(PERIOD, RATE * VIEWERS as u64 * 2 + 1_000_000);
    cm.set_max_streams(VIEWERS);
    // A cache deliberately smaller than the catalogue (24 chunks
    // against 48): with room for everything, every α measures the same
    // thing. Scarcity is what makes popularity skew show up as disk
    // time.
    let mut cache = cached.then(|| {
        TieredCache::new(TierConfig {
            hot_chunks: 8,
            warm_chunks: 16,
            ..TierConfig::default()
        })
    });
    for &title in picks {
        cm.admit(files[title], RATE, 0).expect("admit");
        if let Some(c) = &mut cache {
            c.register_stream(files[title], RATE);
        }
    }
    match &mut cache {
        Some(c) => {
            cm.run_periods_tiered(&mut fs, c, PERIODS).expect("replay");
            (fs.io_time, Some(c.stats()))
        }
        None => {
            cm.run_periods(&mut fs, PERIODS).expect("replay");
            (fs.io_time, None)
        }
    }
}

struct Lane {
    alpha_milli: u64,
    io_uncached_ns: u64,
    io_cached_ns: u64,
    io_reduction: f64,
    hot_milli: u64,
    warm_milli: u64,
    disk_io_saved_cells: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_path = Some(args.get(i + 1).expect("--json needs a path").clone());
                i += 2;
            }
            _ => i += 1, // ignore cargo-bench plumbing like --bench
        }
    }

    banner(
        "E21",
        "tiered cache vs raw log reads: Zipf alpha sweep, cached and uncached lanes",
        "ISSUE 'LRU continuous-media pathology' — disk time divided, not description",
    );
    row(&[
        ("titles", format!("{TITLES} x {TITLE_SEGMENTS} MiB")),
        ("viewers", format!("{VIEWERS}")),
        ("periods", format!("{PERIODS}")),
    ]);

    let mut lanes: Vec<Lane> = Vec::new();
    for alpha_milli in ALPHAS {
        // One title draw per viewer, shared by both lanes: the cached
        // and uncached runs replay the *same* workload.
        let mut rng = seeded(42 + alpha_milli);
        let picks: Vec<usize> = (0..VIEWERS)
            .map(|_| zipf_pick(&mut rng, alpha_milli))
            .collect();
        let (io_uncached_ns, _) = play(&picks, false);
        let (io_cached_ns, stats) = play(&picks, true);
        let stats = stats.expect("cached lane has stats");
        let io_reduction = io_uncached_ns as f64 / io_cached_ns.max(1) as f64;
        row(&[
            (
                &format!("alpha{:.1}", alpha_milli as f64 / 1000.0),
                format!("disk {io_uncached_ns} -> {io_cached_ns} ns"),
            ),
            ("reduction", format!("{io_reduction:.2}x")),
            (
                "tiers",
                format!("hot {}‰ warm {}‰", stats.hot_milli(), stats.warm_milli()),
            ),
        ]);
        lanes.push(Lane {
            alpha_milli,
            io_uncached_ns,
            io_cached_ns,
            io_reduction,
            hot_milli: stats.hot_milli(),
            warm_milli: stats.warm_milli(),
            disk_io_saved_cells: stats.disk_io_saved_cells(),
        });
    }

    let io_reduction_alpha1 = lanes
        .iter()
        .find(|l| l.alpha_milli == 1000)
        .expect("alpha 1.0 lane")
        .io_reduction;
    row(&[(
        "reduction @ alpha 1.0",
        format!("{io_reduction_alpha1:.2}x"),
    )]);

    if let Some(path) = json_path {
        let mut json = format!(
            "{{\n  \"bench\": \"e21_cache_tiers\",\n  \"titles\": {TITLES},\n  \"viewers\": {VIEWERS},\n  \"periods\": {PERIODS},\n  \"lanes\": [\n"
        );
        for (i, l) in lanes.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"label\": \"alpha{:.1}\", \"alpha_milli\": {}, \"io_uncached_ns\": {}, \"io_cached_ns\": {}, \"io_reduction\": {:.2}, \"hot_milli\": {}, \"warm_milli\": {}, \"disk_io_saved_cells\": {} }}{}\n",
                l.alpha_milli as f64 / 1000.0,
                l.alpha_milli,
                l.io_uncached_ns,
                l.io_cached_ns,
                l.io_reduction,
                l.hot_milli,
                l.warm_milli,
                l.disk_io_saved_cells,
                if i + 1 < lanes.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"io_reduction_alpha1\": {io_reduction_alpha1:.2}\n}}\n"
        ));
        std::fs::write(&path, json).expect("write bench json");
        println!("  wrote {path}");
    }
    println!(
        "expect: io_reduction grows with alpha; >=2.0x at alpha 1.0 (the CI floor) — \
         the tiers absorb the Zipf head the log store would otherwise re-read per viewer"
    );
}
