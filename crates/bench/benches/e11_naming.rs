//! E11 — Naming and invocation costs.
//!
//! Paper, §4: "name resolution should be most efficient for local names
//! ... local names should be shortest"; the maillon "imposes very little
//! overhead" once bound; invocation is procedure < protected < RPC.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus_bench::{banner, row};
use pegasus_naming::invoke::{DomainRelation, InvocationCosts, ObjectHandle, Service};
use pegasus_naming::maillon::{Maillon, ObjectRef};
use pegasus_naming::namespace::NameWorld;
use pegasus_sim::time::fmt_ns;

struct Noop;
impl Service for Noop {
    fn invoke(&mut self, _m: u32, _a: &[u8]) -> Vec<u8> {
        Vec::new()
    }
}

fn main() {
    banner(
        "E11",
        "resolution cost vs distance; maillon overhead; invocation hierarchy",
        "§4 naming and invocation",
    );
    // Resolution cost vs path shape.
    let mut w = NameWorld::new();
    let local = w.create_space();
    let global = w.create_space();
    let far = w.create_space();
    w.bind(local, "/fb", ObjectRef(1)).unwrap();
    w.bind(local, "/dev/cam", ObjectRef(2)).unwrap();
    w.bind(global, "/site/camera", ObjectRef(3)).unwrap();
    w.bind(far, "/x", ObjectRef(4)).unwrap();
    w.mount(global, "/far", far).unwrap();
    w.mount(local, "/global", global).unwrap();
    for path in ["/fb", "/dev/cam", "/global/site/camera", "/global/far/x"] {
        let r = w.resolve(local, path).unwrap();
        row(&[
            ("path", path.to_string()),
            ("components", r.components.to_string()),
            ("mount hops", r.mount_hops.to_string()),
            ("cost", fmt_ns(r.cost)),
        ]);
    }

    // Maillon: first dereference vs steady state.
    let mut m: Maillon<Noop> = Maillon::new(
        ObjectRef(9),
        Box::new(|_| (Rc::new(RefCell::new(Noop)), 2_000_000)),
    );
    m.interface();
    let first = m.time_spent;
    for _ in 0..1_000 {
        m.interface();
    }
    row(&[
        ("maillon first deref", fmt_ns(first)),
        ("steady-state deref", fmt_ns((m.time_spent - first) / 1_000)),
    ]);

    // Invocation hierarchy.
    let costs = InvocationCosts::default();
    for (label, rel) in [
        ("procedure (same domain)", DomainRelation::SameDomain),
        ("protected (same machine)", DomainRelation::SameMachine),
        ("rpc (remote)", DomainRelation::Remote),
    ] {
        let mut h = ObjectHandle::new(Rc::new(RefCell::new(Noop)), rel);
        for _ in 0..100 {
            h.invoke(0, &[]);
        }
        row(&[
            ("invocation", label.to_string()),
            ("per call", fmt_ns(costs.for_relation(rel))),
            ("100 calls mechanism time", fmt_ns(h.mechanism_time)),
        ]);
    }
    println!("expect: cost grows with components and especially mount hops; maillon steady state ≈ 20 ns; each invocation tier ~1-2 orders costlier");
}
