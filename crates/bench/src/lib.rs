//! Shared helpers for the experiment benches.
//!
//! Every `e*` bench target is a `harness = false` binary that regenerates
//! one figure/claim of the paper as a printed table — the README in this
//! crate lists all seventeen and the paper claim each one measures. These
//! helpers keep the output format uniform.

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, anchor: &str) {
    println!();
    println!("== {id}: {title}");
    println!("   paper anchor: {anchor}");
    println!("{}", "-".repeat(72));
}

/// Prints one row of `label: value` pairs.
pub fn row(cells: &[(&str, String)]) {
    let line: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("  {}", line.join("  "));
}

/// Formats a rate in MB/s.
pub fn mbps(bytes_per_sec: f64) -> String {
    format!("{:.2} MB/s", bytes_per_sec / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        banner("E0", "smoke", "§0");
        row(&[("a", "1".into()), ("b", mbps(2.5e7))]);
    }
}
