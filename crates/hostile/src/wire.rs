//! The wire front: structured mutation of AAL5 cell streams and a
//! random walk over the signalling state machine.
//!
//! # Cell mutation
//!
//! Each step builds a frame, segments it on a randomly chosen lane
//! (copying or zero-copy arena views), applies one structured mutation
//! to the cell stream, and drives it into a [`Reassembler`]. The oracle
//! is threefold:
//!
//! 1. **No panic** — any panic is a finding, and carries the triple.
//! 2. **Nothing corrupt accepted** — every delivered frame must be
//!    byte-for-byte a prefix of a frame that was actually sent (the
//!    documented trust boundary allows a tampered trailer to truncate,
//!    never to fabricate).
//! 3. **Classified fallback** — a mirror reassembler fed the same
//!    stream with every payload materialised (the copying+CRC path)
//!    must reach the same verdict, except where the fast path's trusted
//!    trailer bytes allow a prefix acceptance the CRC rejects; the fast
//!    path must never *lose* a frame the copying path accepts.
//!
//! After every mutated stream, clean probe frames assert the
//! reassembler's state fully reset — a corrupted frame never poisons
//! its successors.
//!
//! # Signalling
//!
//! [`run_signalling`] random-walks open/close/probe/switch-death/
//! re-route against invariants: reservations never exceed the
//! reservable fraction, a re-route pins the endpoint VCIs and avoids
//! the corpse, a dead switch admits nothing, and closing every circuit
//! returns every ledger to its initial headroom.

use pegasus_atm::aal5::{Aal5Error, FrameLease, Reassembler, Segmenter};
use pegasus_atm::cell::{Cell, Vci, HEADER_SIZE, PAYLOAD_SIZE};
use pegasus_atm::link::CaptureSink;
use pegasus_atm::network::{EndpointId, LinkConfig, Network, SwitchId, TopologyShape, VcHandle};
use pegasus_atm::signalling::QosSpec;
use pegasus_sim::arena::Arena;
use pegasus_sim::rng::seeded;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{Front, Repro};

/// The circuit every fuzzed frame rides.
const VCI: Vci = 77;

/// The structured corruptions [`CellMutator`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one bit of one cell's payload (copy-on-write materialises a
    /// view cell, forcing the CRC fallback).
    PayloadFlip,
    /// Flip one bit of a cell's 5-byte header on the wire; the receiving
    /// NIC's HEC check discards undecodable cells.
    HeaderCorrupt,
    /// Lose one cell in the fabric.
    Drop,
    /// Deliver one cell twice.
    Dup,
    /// Swap two cells (a misbehaving priority queue).
    Reorder,
    /// Cut the stream short (a flapping line mid-frame).
    Truncate,
    /// Re-label one cell onto another circuit; the per-VC reassembler
    /// never sees it.
    VciSwap,
    /// Toggle an end-of-frame marker (early termination or a lost one).
    LastFlip,
    /// Flip a byte in the final cell's trailer region (length/CRC/UU).
    TrailerTamper,
    /// Splice a second frame's cells into the middle of the stream.
    Splice,
}

const MUTATIONS: [Mutation; 10] = [
    Mutation::PayloadFlip,
    Mutation::HeaderCorrupt,
    Mutation::Drop,
    Mutation::Dup,
    Mutation::Reorder,
    Mutation::Truncate,
    Mutation::VciSwap,
    Mutation::LastFlip,
    Mutation::TrailerTamper,
    Mutation::Splice,
];

/// Seed-driven structured corruption of AAL5 cell streams.
pub struct CellMutator {
    rng: SmallRng,
}

impl CellMutator {
    /// A mutator drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        CellMutator { rng: seeded(seed) }
    }

    /// Applies one randomly chosen mutation to `cells` (donor cells feed
    /// splices). Returns what was done. The stream may end up without an
    /// end-of-frame marker; drivers must follow with clean probes.
    pub fn mutate(&mut self, cells: &mut Vec<Cell>, donor: &[Cell]) -> Mutation {
        let m = MUTATIONS[self.rng.gen_range(0..MUTATIONS.len())];
        if cells.is_empty() {
            return m;
        }
        let idx = self.rng.gen_range(0..cells.len());
        match m {
            Mutation::PayloadFlip => {
                let byte = self.rng.gen_range(0..PAYLOAD_SIZE);
                let bit = self.rng.gen_range(0..8u8);
                cells[idx].payload_mut()[byte] ^= 1 << bit;
            }
            Mutation::HeaderCorrupt => {
                let mut bytes = cells[idx].to_bytes();
                let byte = self.rng.gen_range(0..HEADER_SIZE);
                bytes[byte] ^= 1 << self.rng.gen_range(0..8u8);
                match Cell::from_bytes(&bytes) {
                    // A flip the HEC misses (e.g. in the HEC byte's own
                    // coset) still decodes; keep the decoded cell.
                    Some(c) => cells[idx] = c,
                    // The NIC drops cells failing the header checksum.
                    None => {
                        cells.remove(idx);
                    }
                }
            }
            Mutation::Drop => {
                cells.remove(idx);
            }
            Mutation::Dup => {
                let c = cells[idx].clone();
                cells.insert(idx, c);
            }
            Mutation::Reorder => {
                let jdx = self.rng.gen_range(0..cells.len());
                cells.swap(idx, jdx);
            }
            Mutation::Truncate => {
                cells.truncate(idx);
            }
            Mutation::VciSwap => {
                cells[idx].set_vci(VCI + 1);
            }
            Mutation::LastFlip => {
                let was = cells[idx].is_last();
                cells[idx].set_last(!was);
            }
            Mutation::TrailerTamper => {
                let last = cells.len() - 1;
                let byte = PAYLOAD_SIZE - 1 - self.rng.gen_range(0..8usize);
                cells[last].payload_mut()[byte] ^= 1 << self.rng.gen_range(0..8u8);
            }
            Mutation::Splice => {
                let mut spliced: Vec<Cell> = Vec::with_capacity(cells.len() + donor.len());
                spliced.extend_from_slice(&cells[..idx]);
                spliced.extend_from_slice(donor);
                spliced.extend_from_slice(&cells[idx..]);
                *cells = spliced;
            }
        }
        m
    }
}

/// Counters from a wire-front run.
#[derive(Debug, Default, Clone, Copy)]
pub struct WireStats {
    /// Mutated streams driven.
    pub steps: u64,
    /// Frames the reassembler delivered (all verified prefix-intact).
    pub delivered: u64,
    /// Frames rejected with a classified error.
    pub rejected: u64,
    /// Deliveries accepted through the trusted-trailer fast path that
    /// the copying path would have rejected (always prefix-exact).
    pub trust_accepts: u64,
}

fn random_frame(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// Segments `frame` on the chosen lane. The arena keeps view payloads
/// alive for the returned cells.
fn segment(frame: &[u8], arena: &Arena, zero_copy: bool) -> Vec<Cell> {
    let seg = Segmenter::new(VCI);
    if zero_copy {
        let buf = arena.frame_from(frame);
        let mut cells = Vec::new();
        seg.segment_frame(&buf.view_all(), &mut cells)
            .expect("frame under AAL5 maximum");
        cells
    } else {
        seg.segment(frame).expect("frame under AAL5 maximum")
    }
}

/// Drives `cells` through `r` (honouring per-VC demux) and collects the
/// end-of-frame verdicts.
fn drive(r: &mut Reassembler, cells: &[Cell]) -> Vec<Result<FrameLease, Aal5Error>> {
    let mut verdicts = Vec::new();
    for c in cells {
        if c.vci() != VCI {
            continue; // demuxed to another circuit's reassembler
        }
        if let Some(v) = r.push_frame(c) {
            verdicts.push(v);
        }
    }
    verdicts
}

/// The copying-path mirror of `cells`: every payload materialised, so
/// the mirror reassembler validates with the full CRC on every frame.
fn materialise(cells: &[Cell]) -> Vec<Cell> {
    cells
        .iter()
        .map(|c| {
            let mut m = Cell::with_payload(c.vci(), c.payload());
            m.set_last(c.is_last());
            m
        })
        .collect()
}

fn is_prefix_of(candidate: &[u8], of: &[u8]) -> bool {
    candidate.len() <= of.len() && candidate == &of[..candidate.len()]
}

/// Runs `steps` cell-mutation steps from `seed`. Panics with a
/// reproducing triple on any oracle violation.
pub fn run_wire(seed: u64, steps: u64) -> WireStats {
    let mut stats = WireStats::default();
    for step in 0..steps {
        let repro = Repro {
            seed,
            front: Front::Wire,
            step,
        };
        let mut rng = seeded(repro.step_seed());
        let arena = Arena::new();

        let frame = random_frame(&mut rng, 1800);
        let donor_frame = random_frame(&mut rng, 400);
        let zero_copy = rng.gen_range(0..2u32) == 0;
        let mut cells = segment(&frame, &arena, zero_copy);
        let donor = segment(&donor_frame, &arena, zero_copy);

        let mut mutator = CellMutator::new(repro.step_seed() ^ 0xDEAD_BEEF);
        let n_mut = rng.gen_range(1..4u32);
        for _ in 0..n_mut {
            mutator.mutate(&mut cells, &donor);
        }

        let mut fast = Reassembler::new();
        let mut mirror = Reassembler::new();
        let fast_verdicts = drive(&mut fast, &cells);
        let mirror_verdicts = drive(&mut mirror, &materialise(&cells));

        // End-of-frame markers sit at identical stream positions, so the
        // two lanes must produce pairwise-comparable verdicts.
        repro.check(
            fast_verdicts.len() == mirror_verdicts.len(),
            "fast and copying paths saw different frame boundaries",
        );
        for (f, m) in fast_verdicts.iter().zip(&mirror_verdicts) {
            match (f, m) {
                (Ok(a), Ok(b)) => {
                    repro.check(a == b, "fast and copying paths delivered different bytes");
                    repro.check(
                        is_prefix_of(a, &frame) || is_prefix_of(a, &donor_frame),
                        "copying path accepted bytes never sent",
                    );
                    stats.delivered += 1;
                }
                (Ok(a), Err(_)) => {
                    // The trusted-trailer acceptance: legal only as an
                    // exact prefix of a frame that was actually sent.
                    repro.check(
                        is_prefix_of(a, &frame) || is_prefix_of(a, &donor_frame),
                        "fast path accepted corrupt bytes",
                    );
                    stats.delivered += 1;
                    stats.trust_accepts += 1;
                }
                (Err(ea), Err(eb)) => {
                    repro.check(
                        ea == eb,
                        "fast and copying paths classified the anomaly differently",
                    );
                    stats.rejected += 1;
                }
                (Err(_), Ok(_)) => {
                    repro.check(false, "fast path lost a frame the copying path accepted");
                }
            }
        }

        // State-reset probes: the first clean frame flushes any partial
        // state left by the mutated stream; the second must always
        // deliver intact.
        let probe1 = segment(b"state-reset probe one", &arena, false);
        let probe2 = segment(b"state-reset probe two", &arena, zero_copy);
        let v1 = drive(&mut fast, &probe1);
        repro.check(v1.len() == 1, "clean probe produced no verdict");
        let p1_ok = matches!(&v1[0], Ok(l) if l.as_ref() == b"state-reset probe one");
        let v2 = drive(&mut fast, &probe2);
        repro.check(v2.len() == 1, "second clean probe produced no verdict");
        match &v2[0] {
            Ok(l) => repro.check(
                l.as_ref() == b"state-reset probe two",
                "reassembler state leaked across frames",
            ),
            Err(_) => repro.check(
                false,
                "a corrupted frame poisoned its successor past one boundary",
            ),
        }
        if !p1_ok {
            // Partial mutated state merged into probe 1 and was
            // correctly rejected; that is the classified-fallback
            // contract, not a finding.
            stats.rejected += 1;
        }
        stats.steps += 1;
    }
    stats
}

/// Counters from a signalling-front run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SignallingStats {
    /// Random-walk steps (one network each).
    pub steps: u64,
    /// Circuits opened.
    pub opened: u64,
    /// Circuits re-routed around a dead switch.
    pub rerouted: u64,
    /// Circuits stranded by a death.
    pub stranded: u64,
    /// Admission refusals observed.
    pub refused: u64,
}

/// Random-walks the signalling state machine: `steps` fresh networks,
/// each subjected to a burst of opens, closes, probes, switch deaths
/// and re-routes, with ledger and VCI-pinning invariants checked
/// throughout. Panics with a reproducing triple on violation.
pub fn run_signalling(seed: u64, steps: u64) -> SignallingStats {
    let mut stats = SignallingStats::default();
    for step in 0..steps {
        let repro = Repro {
            seed,
            front: Front::Wire,
            step,
        };
        let mut rng = seeded(repro.step_seed() ^ 0x5167_0A11);
        let shape = [
            TopologyShape::Star,
            TopologyShape::Ring,
            TopologyShape::FullMesh,
        ][rng.gen_range(0..3usize)];
        let n_switches = rng.gen_range(2..6usize);
        let cfg = LinkConfig::pegasus_default();
        let mut net = Network::new();
        let fabric = net.build_topology(shape, n_switches, "fz", 6, 0, cfg);
        let n_eps = rng.gen_range(4..9usize);
        let eps: Vec<EndpointId> = (0..n_eps)
            .map(|i| net.add_endpoint_auto(fabric[i % fabric.len()], cfg, CaptureSink::shared()))
            .collect();
        let initial: Vec<u64> = eps.iter().map(|&e| net.endpoint_tx_available(e)).collect();

        let mut held: Vec<VcHandle> = Vec::new();
        let mut dead: Vec<SwitchId> = Vec::new();
        for _ in 0..rng.gen_range(10..40u32) {
            match rng.gen_range(0..10u32) {
                // Open a circuit between random endpoints.
                0..=4 => {
                    let a = eps[rng.gen_range(0..eps.len())];
                    let b = eps[rng.gen_range(0..eps.len())];
                    let qos = if rng.gen_range(0..4u32) == 0 {
                        QosSpec::best_effort(1_000_000)
                    } else {
                        QosSpec::guaranteed(rng.gen_range(1..40u64) * 1_000_000)
                    };
                    match net.open_vc(a, b, qos) {
                        Ok(vc) => {
                            stats.opened += 1;
                            held.push(vc);
                        }
                        Err(_) => stats.refused += 1,
                    }
                    repro.check(
                        net.max_reservation_utilization() <= net.reservable_fraction + 1e-9,
                        "admission let a ledger exceed the reservable fraction",
                    );
                }
                // Close a random held circuit.
                5..=6 => {
                    if !held.is_empty() {
                        let i = rng.gen_range(0..held.len());
                        let vc = held.swap_remove(i);
                        net.close_vc(vc);
                    }
                }
                // Probe a random flow set: pure query, must not disturb.
                7 => {
                    let before = net.max_reservation_utilization();
                    let flows: Vec<(EndpointId, EndpointId, u64)> = (0..rng.gen_range(1..4usize))
                        .map(|_| {
                            (
                                eps[rng.gen_range(0..eps.len())],
                                eps[rng.gen_range(0..eps.len())],
                                rng.gen_range(1..100u64) * 1_000_000,
                            )
                        })
                        .collect();
                    let _ = net.probe_vcs(&flows);
                    repro.check(
                        (net.max_reservation_utilization() - before).abs() < 1e-12,
                        "probe_vcs mutated the ledgers",
                    );
                }
                // Kill a switch and repair the survivors via signalling.
                _ => {
                    if dead.len() + 1 >= fabric.len() {
                        continue; // leave at least one switch alive
                    }
                    let sw = fabric[rng.gen_range(0..fabric.len())];
                    if net.switch_is_dead(sw) {
                        continue;
                    }
                    net.fail_switch(sw);
                    dead.push(sw);
                    let walk = std::mem::take(&mut held);
                    for vc in walk {
                        if !vc.crosses_switch(sw) {
                            held.push(vc);
                            continue;
                        }
                        let (src_vci, dst_vci) = (vc.src_vci, vc.dst_vci);
                        match net.reroute_vc(vc) {
                            Ok(repaired) => {
                                repro.check(
                                    repaired.src_vci == src_vci && repaired.dst_vci == dst_vci,
                                    "re-route failed to pin the endpoint VCIs",
                                );
                                repro.check(
                                    !repaired.crosses_switch(sw),
                                    "re-route routed through the dead switch",
                                );
                                stats.rerouted += 1;
                                held.push(repaired);
                            }
                            Err(_) => stats.stranded += 1,
                        }
                    }
                }
            }
        }

        // A dead switch admits nothing, even same-switch pairs.
        if let Some(&sw) = dead.first() {
            let on_dead: Vec<EndpointId> = eps
                .iter()
                .copied()
                .filter(|&e| {
                    // Endpoint placement is round-robin over the fabric.
                    fabric[eps.iter().position(|&x| x == e).expect("own ep") % fabric.len()] == sw
                })
                .collect();
            for &e in &on_dead {
                repro.check(
                    net.open_vc(e, eps[0], QosSpec::best_effort(0)).is_err(),
                    "a dead switch admitted a new circuit",
                );
            }
        }

        // Tear everything down: every ledger must return to its initial
        // headroom — the leak check.
        for vc in held.drain(..) {
            net.close_vc(vc);
        }
        for (i, &e) in eps.iter().enumerate() {
            repro.check(
                net.endpoint_tx_available(e) == initial[i],
                "closing every circuit did not restore an endpoint ledger",
            );
        }
        repro.check(
            net.max_reservation_utilization() < 1e-12,
            "reservations leaked after closing every circuit",
        );
        stats.steps += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_smoke_budget_holds_all_oracles() {
        let s = run_wire(0xA11CE, 300);
        assert_eq!(s.steps, 300);
        assert!(s.rejected > 0, "mutations must provoke rejections");
        assert!(s.delivered + s.rejected > 0);
    }

    #[test]
    fn wire_is_deterministic_in_seed() {
        let a = run_wire(7, 50);
        let b = run_wire(7, 50);
        assert_eq!(
            (a.delivered, a.rejected, a.trust_accepts),
            (b.delivered, b.rejected, b.trust_accepts)
        );
    }

    #[test]
    fn signalling_walk_holds_invariants() {
        let s = run_signalling(0xBEE, 40);
        assert_eq!(s.steps, 40);
        assert!(s.opened > 0, "the walk must open circuits");
    }

    #[test]
    fn mutator_is_deterministic() {
        let frame: Vec<u8> = (0..500).map(|i| i as u8).collect();
        let arena = Arena::new();
        let build = || {
            let mut cells = segment(&frame, &arena, false);
            let mut m = CellMutator::new(99);
            let kind = m.mutate(&mut cells, &[]);
            (kind, cells)
        };
        let (ka, ca) = build();
        let (kb, cb) = build();
        assert_eq!(ka, kb);
        assert_eq!(ca.len(), cb.len());
        for (a, b) in ca.iter().zip(&cb) {
            assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }
}
