//! The control-plane front: random walks over the QoS feedback loop —
//! admit, congest, renegotiate down, recover, renegotiate up — with the
//! real broker, real credit windows and the real hysteresis controller,
//! checking the invariants that make overload *bounded and reversible*:
//!
//! * **Credit conservation.** Whatever mix of traffic, drops and
//!   renegotiation an epoch applies, every window still satisfies
//!   `consumed == in_flight + returned + reclaimed`.
//! * **Contract clamp.** A live session's quality never exceeds its
//!   originally admitted contract, and the CPU ledger tracks the sum of
//!   the granted vectors exactly after every verdict.
//! * **Monotone hysteresis.** `Down` fires only at the end of
//!   `down_after` consecutive pressured epochs, `Up` only after
//!   `up_after` consecutive clear ones, and the two strictly alternate
//!   — the controller can never flap.
//! * **Ledger restoration.** Releasing every session at the end of the
//!   walk returns the CPU and bandwidth ledgers to empty.
//!
//! Every step builds a fresh fabric and broker from `(seed, step)`
//! alone, so a failure replays in isolation from its printed triple.

use pegasus::broker::{FlowRequest, QosBroker, SessionClass, SessionGrant, SessionRequest};
use pegasus::congestion::{CongestionController, CongestionSignal, Verdict};
use pegasus_atm::credit::{CreditRef, CreditWindow};
use pegasus_atm::link::CaptureSink;
use pegasus_atm::network::{EndpointId, LinkConfig, Network, TopologyShape};
use pegasus_sim::rng::seeded;
use rand::Rng;

use crate::{Front, Repro};

/// Aggregate outcome of a control-front run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ControlStats {
    /// Walks completed.
    pub steps: u64,
    /// Sessions admitted across all walks.
    pub admitted: u64,
    /// Admission refusals (the broker said no; that is a valid verdict,
    /// not a failure).
    pub refused: u64,
    /// Down verdicts applied.
    pub downs: u64,
    /// Up verdicts applied.
    pub ups: u64,
    /// Credit stalls provoked.
    pub stalls: u64,
}

/// Fills a window with single-cell acquires until it stalls, then adds
/// `extra` more failed attempts: deterministic pressure with at least
/// one stall per call.
fn pressure_window(w: &CreditRef, extra: u64) {
    let mut w = w.borrow_mut();
    while w.try_acquire(1) {}
    let over = w.window() + 1;
    for _ in 0..extra {
        let refused = !w.try_acquire(over);
        debug_assert!(refused, "an over-window acquire can never succeed");
    }
}

/// Random-walks the admit → congest → down → recover → up loop.
pub fn run_control(seed: u64, steps: u64) -> ControlStats {
    let mut stats = ControlStats::default();
    for step in 0..steps {
        let repro = Repro {
            seed,
            front: Front::Control,
            step,
        };
        let mut rng = seeded(repro.step_seed() ^ 0x0C04_7201);

        // A fresh fabric and broker per step.
        let shape = [
            TopologyShape::Star,
            TopologyShape::Ring,
            TopologyShape::FullMesh,
        ][rng.gen_range(0..3usize)];
        let n_switches = rng.gen_range(2..5usize);
        let cfg = LinkConfig::pegasus_default();
        let mut net = Network::new();
        let fabric = net.build_topology(shape, n_switches, "ctl", 6, 0, cfg);
        let eps: Vec<EndpointId> = (0..rng.gen_range(4..8usize))
            .map(|i| net.add_endpoint_auto(fabric[i % fabric.len()], cfg, CaptureSink::shared()))
            .collect();
        let rung = [500u64, 600, 700, 800][rng.gen_range(0..4usize)];
        let mut broker = QosBroker::new(rng.gen_range(5_000..20_000u64), 0, 0, rung);

        // Admit a handful of sessions, each with its own credit window.
        let mut live: Vec<(SessionGrant, CreditRef)> = Vec::new();
        for _ in 0..rng.gen_range(2..6u32) {
            let flows = (0..rng.gen_range(1..3usize))
                .map(|_| FlowRequest {
                    src: eps[rng.gen_range(0..eps.len())],
                    dst: eps[rng.gen_range(0..eps.len())],
                    bps: rng.gen_range(1..20u64) * 1_000_000,
                })
                .collect();
            let req = SessionRequest {
                class: SessionClass::Videophone,
                media_flows: flows,
                fixed_flows: Vec::new(),
                cpu_micro: rng.gen_range(100..2_000u64),
                pfs_server: None,
            };
            let grant = broker.admit(&mut net, &req);
            if grant.is_admitted() {
                stats.admitted += 1;
                let w = CreditWindow::shared(rng.gen_range(8..64u64));
                live.push((grant, w));
            } else {
                stats.refused += 1;
            }
        }

        let ledger_ok = |broker: &QosBroker, live: &[(SessionGrant, CreditRef)]| {
            let sum: u64 = live.iter().map(|(g, _)| g.granted.cpu_micro).sum();
            broker.cpu.reserved_micro() == sum
        };
        repro.check(
            ledger_ok(&broker, &live),
            "CPU ledger disagrees with the granted contracts after admission",
        );

        let mut ctrl = CongestionController::new(
            rng.gen_range(1..4u32),
            rng.gen_range(1..4u32),
            rng.gen_range(1..6u64),
            rng.gen_range(16..128u64),
        );
        let headroom = ctrl.headroom_cells;

        // The walk: each epoch is pressured or calm, the controller
        // watches the real stall counters, verdicts drive the real
        // renegotiation path.
        let mut last_shift = None::<Verdict>;
        let mut clear_streak = 0u32;
        let mut pressured_streak = 0u32;
        for epoch in 0..rng.gen_range(10..40u64) {
            let pressured = rng.gen_range(0..2u32) == 0;
            let mut sig = CongestionSignal::default();
            if pressured {
                for (_, w) in &live {
                    pressure_window(w, rng.gen_range(1..4u64));
                }
                sig.peak_queue_cells = rng.gen_range(0..4 * headroom.max(1));
                sig.cm_slot_pressure = rng.gen_range(0..8u32) == 0;
            } else {
                sig.peak_queue_cells = rng.gen_range(0..=headroom);
            }
            // Traffic settles: some in-flight cells deliver, a few drop
            // in an outage and their credits come back via reclaim.
            for (_, w) in &live {
                let mut w = w.borrow_mut();
                let delivered = rng.gen_range(0..=w.in_flight());
                w.release(delivered);
                let dropped = rng.gen_range(0..=w.in_flight());
                w.reclaim(dropped);
            }
            for (_, w) in &live {
                sig.credit_stalls += w.borrow_mut().take_epoch_stalls();
            }
            stats.stalls += sig.credit_stalls;

            // Book-keep the streaks the controller is supposed to obey.
            let counts_pressured = sig.credit_stalls >= ctrl.stall_threshold
                || (sig.cm_slot_pressure && sig.credit_stalls > 0);
            let counts_clear =
                sig.credit_stalls == 0 && sig.peak_queue_cells <= ctrl.headroom_cells;
            pressured_streak = if counts_pressured {
                pressured_streak + 1
            } else {
                0
            };
            clear_streak = if counts_clear { clear_streak + 1 } else { 0 };

            let verdict = ctrl.observe(&sig);
            match verdict {
                Verdict::Down => {
                    repro.check(
                        pressured_streak >= ctrl.down_after,
                        "Down before down_after consecutive pressured epochs",
                    );
                    repro.check(
                        last_shift != Some(Verdict::Down),
                        "two Downs without an intervening Up",
                    );
                    last_shift = Some(Verdict::Down);
                    stats.downs += 1;
                    for (g, _) in &mut live {
                        let target = (g.quality_milli * rung / 1000).max(1);
                        broker
                            .renegotiate_live(&mut net, g, target, epoch)
                            .expect("a downward move always fits");
                    }
                }
                Verdict::Up => {
                    repro.check(
                        clear_streak >= ctrl.up_after,
                        "Up before up_after consecutive clear epochs",
                    );
                    repro.check(
                        last_shift == Some(Verdict::Down),
                        "Up without a preceding Down",
                    );
                    last_shift = Some(Verdict::Up);
                    stats.ups += 1;
                    for (g, _) in &mut live {
                        let restored = broker
                            .renegotiate_live(&mut net, g, g.admitted_milli, epoch)
                            .is_ok();
                        repro.check(restored, "restoring to admitted failed with free capacity");
                    }
                }
                Verdict::Hold => {}
            }

            for (g, w) in &live {
                repro.check(
                    g.quality_milli <= g.admitted_milli,
                    "live quality above the admitted contract",
                );
                repro.check(
                    w.borrow().conserved(),
                    "credit conservation broken by the epoch's traffic",
                );
            }
            repro.check(
                ledger_ok(&broker, &live),
                "CPU ledger drifted from the granted contracts",
            );
            repro.check(
                net.max_reservation_utilization() <= net.reservable_fraction + 1e-9,
                "renegotiation pushed a link past the reservable fraction",
            );
        }

        // Tear down: every ledger must return to empty.
        for (g, _) in live.drain(..) {
            broker.release(&mut net, g);
        }
        repro.check(
            broker.cpu.reserved_micro() == 0,
            "CPU ledger not restored after releasing every session",
        );
        repro.check(
            net.max_reservation_utilization() < 1e-12,
            "bandwidth reservations leaked after releasing every session",
        );
        stats.steps += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_walk_holds_invariants() {
        let s = run_control(0xC0B, 40);
        assert_eq!(s.steps, 40);
        assert!(s.admitted > 0, "the walk must admit sessions");
        assert!(s.stalls > 0, "pressured epochs must provoke stalls");
        assert!(s.downs > 0, "sustained pressure must degrade someone");
        assert!(s.ups > 0, "sustained clearance must restore someone");
    }

    #[test]
    fn control_walk_is_deterministic_in_seed() {
        let a = run_control(11, 20);
        let b = run_control(11, 20);
        assert_eq!(
            (a.admitted, a.refused, a.downs, a.ups, a.stalls),
            (b.admitted, b.refused, b.downs, b.ups, b.stalls)
        );
    }
}
