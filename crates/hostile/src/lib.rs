//! Hostile-input hardening: a deterministic, seed-driven structured
//! mutation engine for the repo's three trust seams.
//!
//! PR 5's zero-copy receive path deliberately trusts the arena (stitched
//! views are not re-CRC'd), and LogFs recovery trusts its on-disk image.
//! This crate puts sustained adversarial pressure on both, plus the
//! signalling control plane, without any external fuzzer: every input is
//! derived from a 64-bit seed through [`pegasus_sim::rng::seeded`], so a
//! failure reproduces from the one-line `(seed, front, step)` triple the
//! assertion prints — see `docs/HARDENING.md` for the full protocol.
//!
//! Three fronts:
//!
//! * [`wire`] — a [`wire::CellMutator`] flips, drops, duplicates,
//!   reorders, truncates and splices AAL5 cell streams into
//!   [`pegasus_atm::aal5::Reassembler`], with a copying-path mirror as
//!   the verdict oracle; plus a random-walk fuzz of the signalling state
//!   machine (open/close/probe/switch-death/re-route).
//! * [`disk`] — an [`disk::ImageMutator`] over checkpoint blobs, and a
//!   crash-point sweep that cuts simulated power at *every* operation
//!   boundary of a write-heavy LogFs run, recovers, and verifies no
//!   acknowledged record is lost and no torn record replayed.
//! * [`storm`] — the `nemesis-storm` scenario preset (link flaps, a
//!   switch death with signalling repair, a disk failure with a live
//!   RAID rebuild) rerun and compared byte-for-byte.
//! * [`control`] — random walks over the QoS feedback loop (admit,
//!   congest, renegotiate down, recover, renegotiate up) against the
//!   real broker, credit windows and hysteresis controller.
//!
//! Each front runs under plain `cargo test` with a small budget; the
//! `fuzz-gauntlet` binary (`scripts/fuzz_gauntlet.sh`) runs the CI-sized
//! budgets.

pub mod control;
pub mod disk;
pub mod storm;
pub mod wire;

/// Which mutation engine produced a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Front {
    /// Cell-stream and signalling mutations.
    Wire,
    /// Checkpoint-image mutations and crash-point injection.
    Disk,
    /// The golden-gated scenario storm.
    Storm,
    /// The QoS feedback loop: backpressure, hysteresis, renegotiation.
    Control,
}

impl std::fmt::Display for Front {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Front::Wire => write!(f, "wire"),
            Front::Disk => write!(f, "disk"),
            Front::Storm => write!(f, "storm"),
            Front::Control => write!(f, "control"),
        }
    }
}

/// The one-line reproduction coordinate every assertion prints: re-run
/// the named front with the same base seed and it fails at the same
/// step, because each step's RNG is derived from `(seed, step)` alone.
#[derive(Debug, Clone, Copy)]
pub struct Repro {
    /// Base seed of the run.
    pub seed: u64,
    /// Mutation engine.
    pub front: Front,
    /// Zero-based step within the run.
    pub step: u64,
}

impl std::fmt::Display for Repro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(seed={}, front={}, step={})",
            self.seed, self.front, self.step
        )
    }
}

impl Repro {
    /// The step's own RNG seed: a splitmix-style mix of `(seed, step)`,
    /// so step N's inputs never depend on steps 0..N and a single step
    /// replays in isolation.
    pub fn step_seed(&self) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(self.step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Asserts `cond`, panicking with the reproducing triple otherwise.
    #[track_caller]
    pub fn check(&self, cond: bool, what: &str) {
        if !cond {
            panic!("hostile failure {self}: {what}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_prints_one_line() {
        let r = Repro {
            seed: 42,
            front: Front::Wire,
            step: 17,
        };
        assert_eq!(r.to_string(), "(seed=42, front=wire, step=17)");
    }

    #[test]
    fn step_seeds_differ_and_reproduce() {
        let a = Repro {
            seed: 1,
            front: Front::Disk,
            step: 0,
        };
        let b = Repro {
            seed: 1,
            front: Front::Disk,
            step: 1,
        };
        assert_ne!(a.step_seed(), b.step_seed());
        assert_eq!(a.step_seed(), a.step_seed());
    }

    #[test]
    #[should_panic(expected = "hostile failure (seed=3, front=storm, step=9)")]
    fn check_panics_with_triple() {
        let r = Repro {
            seed: 3,
            front: Front::Storm,
            step: 9,
        };
        r.check(false, "example");
    }
}
