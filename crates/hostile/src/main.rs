//! `fuzz-gauntlet` — the CI-sized driver for the hostile fronts.
//!
//! ```text
//! fuzz-gauntlet [--front wire|signalling|disk|crash|storm|control|all]
//!               [--seed N] [--iters N]
//! ```
//!
//! Exit status 0 means every oracle held for every step; any violation
//! panics with its one-line `(seed, front, step)` reproduction triple.
//! `scripts/fuzz_gauntlet.sh` wraps this with the CI budgets.

use pegasus_hostile::{control, disk, storm, wire};

struct Args {
    front: String,
    seed: u64,
    iters: u64,
}

fn parse() -> Args {
    let mut args = Args {
        front: "all".to_string(),
        seed: 1994, // the paper's year; the smoke lane pins it
        iters: 0,   // 0 = per-front default
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--front" => args.front = grab("--front"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed takes a u64"),
            "--iters" => args.iters = grab("--iters").parse().expect("--iters takes a u64"),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz-gauntlet [--front wire|signalling|disk|crash|storm|control|all] \
                     [--seed N] [--iters N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse();
    let pick = |default: u64| if args.iters == 0 { default } else { args.iters };
    let all = args.front == "all";

    if all || args.front == "wire" {
        // Each step applies 1–3 mutations to a multi-cell stream, so the
        // default budget comfortably clears 10k individual mutations.
        let n = pick(6_000);
        let s = wire::run_wire(args.seed, n);
        println!(
            "wire: {} steps, {} delivered ({} via trusted trailer), {} rejected — ok",
            s.steps, s.delivered, s.trust_accepts, s.rejected
        );
    }
    if all || args.front == "signalling" {
        let n = pick(300);
        let s = wire::run_signalling(args.seed, n);
        println!(
            "signalling: {} walks, {} opened, {} rerouted, {} stranded, {} refused — ok",
            s.steps, s.opened, s.rerouted, s.stranded, s.refused
        );
    }
    if all || args.front == "disk" {
        let n = pick(400);
        let s = disk::run_images(args.seed, n);
        println!(
            "disk: {} images, {} rejected, {} survived — ok",
            s.steps, s.rejected, s.survived
        );
    }
    if all || args.front == "crash" {
        let n = pick(60);
        let s = disk::crash_sweep(args.seed, n as usize);
        println!(
            "crash: {} boundaries cut, {} acknowledged records verified — ok",
            s.crash_points, s.records_verified
        );
    }
    if all || args.front == "control" {
        let n = pick(300);
        let s = control::run_control(args.seed, n);
        println!(
            "control: {} walks, {} admitted, {} stalls, {} downs, {} ups — ok",
            s.steps, s.admitted, s.stalls, s.downs, s.ups
        );
    }
    if all || args.front == "storm" {
        let n = pick(2);
        let s = storm::run_storm(args.seed, n);
        println!(
            "storm: {} seeds, {} outage drops, {} circuits hit by the death — ok",
            s.steps, s.dropped_outage, s.vcs_hit
        );
    }
    println!("fuzz-gauntlet: all fronts held (seed={})", args.seed);
}
