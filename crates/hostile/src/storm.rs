//! The storm front: the full `nemesis-storm` scenario — flapping lines
//! mid-frame, a switch death repaired through signalling, a disk death
//! with a live RAID rebuild — rerun and compared byte-for-byte.
//!
//! Where [`crate::wire`] and [`crate::disk`] attack one seam at a time,
//! the storm is the integration oracle: every fault fires at once on a
//! live city-scale workload and the run must remain a pure function of
//! `(spec, seed)`. The golden snapshot in
//! `crates/scenario/tests/golden/` pins one instance; this front sweeps
//! fresh seeds.

use pegasus_scenario::{presets, run};

use crate::{Front, Repro};

/// Counters from a storm run.
#[derive(Debug, Default, Clone, Copy)]
pub struct StormStats {
    /// Seeds stormed.
    pub steps: u64,
    /// Cells dropped by link flaps, summed over seeds.
    pub dropped_outage: u64,
    /// Circuits re-routed plus stranded, summed over seeds.
    pub vcs_hit: u64,
}

/// Runs the storm preset at half scale for `steps` distinct seeds
/// derived from `seed`, asserting determinism and the survival
/// invariants each time. Panics with a reproducing triple on violation.
pub fn run_storm(seed: u64, steps: u64) -> StormStats {
    let mut stats = StormStats::default();
    for step in 0..steps {
        let repro = Repro {
            seed,
            front: Front::Storm,
            step,
        };
        let spec = presets::nemesis_storm()
            .scale_sessions(0.5)
            .with_seed(repro.step_seed());
        let a = run(&spec);
        let b = run(&spec);
        repro.check(
            a.to_json() == b.to_json(),
            "storm reran with different bytes: the report is not a pure function of (spec, seed)",
        );
        repro.check(a.pfs.rebuilds == 1, "the failed spindle was not rebuilt");
        repro.check(a.pfs.rebuild_ns > 0, "the rebuild took no time");
        repro.check(
            a.cells.dropped_outage > 0,
            "the link flap dropped no cells: the fault never bit",
        );
        repro.check(
            a.vcs_rerouted + a.vcs_stranded > 0,
            "the switch death hit no live circuit",
        );
        repro.check(
            a.peak_queue_cells <= 1024,
            "a queue grew unbounded under the storm",
        );
        repro.check(
            a.cells.delivered <= a.cells.sent,
            "cell conservation violated",
        );
        stats.dropped_outage += a.cells.dropped_outage;
        stats.vcs_hit += a.vcs_rerouted + a.vcs_stranded;
        stats.steps += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_storm_seed_survives() {
        let s = run_storm(0x5707, 1);
        assert_eq!(s.steps, 1);
        assert!(s.dropped_outage > 0);
        assert!(s.vcs_hit > 0);
    }
}
