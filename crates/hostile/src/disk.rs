//! The disk front: hostile checkpoint images and crash-point injection.
//!
//! Two attacks on the storage trust seam:
//!
//! * [`run_images`] — an [`ImageMutator`] corrupts serialized checkpoint
//!   blobs (bit flips, truncations, length-field inflation, splices of
//!   two valid images) and feeds them to [`Checkpoint::decode`]. The
//!   decoder must never panic and never over-allocate; an untampered
//!   blob must round-trip exactly.
//! * [`crash_sweep`] — the FITO protocol test: a deterministic
//!   write-heavy operation trace is cut at *every* operation boundary
//!   (simulated power loss), the server recovers from its last completed
//!   checkpoint, and every record acknowledged by that checkpoint must
//!   read back byte-exact — no acknowledged loss, no torn record
//!   replayed as if whole. `LogFs` is deliberately not `Clone`, so each
//!   crash point replays the trace from scratch; the sweep is O(n²) in
//!   trace length, which small traces keep cheap.

use pegasus_pfs::checkpoint::{write_checkpoint, Checkpoint, CheckpointError};
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs};
use pegasus_sim::rng::seeded;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{Front, Repro};

/// Seed-driven corruption of checkpoint images.
pub struct ImageMutator {
    rng: SmallRng,
}

/// What [`ImageMutator::mutate`] did to a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageMutation {
    /// One bit flipped somewhere in the blob.
    BitFlip,
    /// Blob cut short at a random boundary.
    Truncate,
    /// A big-endian u32 in the header region overwritten with a huge
    /// value — the classic length-field inflation that bursts naive
    /// `Vec::with_capacity` preallocation.
    LengthInflate,
    /// The tail of a second valid image grafted on at a random offset.
    Splice,
    /// Random garbage appended past the true end.
    Extend,
}

const IMAGE_MUTATIONS: [ImageMutation; 5] = [
    ImageMutation::BitFlip,
    ImageMutation::Truncate,
    ImageMutation::LengthInflate,
    ImageMutation::Splice,
    ImageMutation::Extend,
];

impl ImageMutator {
    /// A mutator drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        ImageMutator { rng: seeded(seed) }
    }

    /// Applies one corruption to `blob` (`donor` feeds splices).
    pub fn mutate(&mut self, blob: &mut Vec<u8>, donor: &[u8]) -> ImageMutation {
        let m = IMAGE_MUTATIONS[self.rng.gen_range(0..IMAGE_MUTATIONS.len())];
        if blob.is_empty() {
            return m;
        }
        match m {
            ImageMutation::BitFlip => {
                let i = self.rng.gen_range(0..blob.len());
                blob[i] ^= 1 << self.rng.gen_range(0..8u8);
            }
            ImageMutation::Truncate => {
                let keep = self.rng.gen_range(0..blob.len());
                blob.truncate(keep);
            }
            ImageMutation::LengthInflate => {
                let end = blob.len().min(64).saturating_sub(4);
                if end > 0 {
                    let at = self.rng.gen_range(0..end);
                    let huge: u32 = self.rng.gen_range(1 << 24..u32::MAX);
                    blob[at..at + 4].copy_from_slice(&huge.to_be_bytes());
                }
            }
            ImageMutation::Splice => {
                let at = self.rng.gen_range(0..blob.len());
                let from = self.rng.gen_range(0..donor.len().max(1));
                blob.truncate(at);
                blob.extend_from_slice(&donor[from.min(donor.len())..]);
            }
            ImageMutation::Extend => {
                let extra = self.rng.gen_range(1..256usize);
                for _ in 0..extra {
                    blob.push(self.rng.gen::<u8>());
                }
            }
        }
        m
    }
}

/// Counters from an image-mutation run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ImageStats {
    /// Mutated blobs decoded.
    pub steps: u64,
    /// Decodes that returned a classified error.
    pub rejected: u64,
    /// Mutated blobs the decoder still accepted (mutation landed in
    /// don't-care bytes, or produced a different-but-wellformed image).
    pub survived: u64,
}

/// Builds a modest file system and captures a checkpoint blob from it.
fn sample_blob(rng: &mut SmallRng) -> Vec<u8> {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    for _ in 0..rng.gen_range(1..6usize) {
        let class = if rng.gen_range(0..2u32) == 0 {
            FileClass::Normal
        } else {
            FileClass::Continuous
        };
        let f = fs.create(class);
        let n = rng.gen_range(1..4096usize);
        let data: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
        fs.append(f, &data).expect("fresh fs has room");
    }
    fs.sync().expect("sync");
    Checkpoint::capture(&fs).encode()
}

/// Runs `steps` checkpoint-image mutations from `seed`. Panics with a
/// reproducing triple if the decoder panics (caught by the test
/// harness), over-allocates, or an untampered image fails to round-trip.
pub fn run_images(seed: u64, steps: u64) -> ImageStats {
    let mut stats = ImageStats::default();
    for step in 0..steps {
        let repro = Repro {
            seed,
            front: Front::Disk,
            step,
        };
        let mut rng = seeded(repro.step_seed());
        let pristine = sample_blob(&mut rng);
        let donor = sample_blob(&mut rng);

        // The control arm: untampered blobs must round-trip exactly.
        match Checkpoint::decode(&pristine) {
            Ok(cp) => repro.check(
                cp.encode() == pristine,
                "pristine checkpoint failed to round-trip",
            ),
            Err(_) => repro.check(false, "pristine checkpoint failed to decode"),
        }

        let mut blob = pristine.clone();
        let mut mutator = ImageMutator::new(repro.step_seed() ^ 0x1D0_1D0);
        for _ in 0..rng.gen_range(1..4u32) {
            mutator.mutate(&mut blob, &donor);
        }
        match Checkpoint::decode(&blob) {
            // Accepting a mutated image is fine only if it is still a
            // well-formed image: re-encoding must reproduce its own
            // bytes' canonical form without panicking.
            Ok(cp) => {
                let _ = cp.encode();
                stats.survived += 1;
            }
            Err(
                CheckpointError::Truncated
                | CheckpointError::BadMagic
                | CheckpointError::BadVersion(_)
                | CheckpointError::Fs(_),
            ) => stats.rejected += 1,
        }
        stats.steps += 1;
    }
    stats
}

/// One operation of the crash-sweep trace.
#[derive(Debug, Clone)]
enum Op {
    /// Create a file of the given class.
    Create(FileClass),
    /// Append `data` to the `n`th created file.
    Append { nth: usize, data: Vec<u8> },
    /// Sync the log.
    Sync,
    /// Write a checkpoint (create+append+sync of the blob).
    Checkpoint,
}

/// Builds a deterministic write-heavy trace ending in a checkpoint, so
/// the final crash point exercises full recovery.
fn build_trace(rng: &mut SmallRng, ops: usize) -> Vec<Op> {
    let mut trace = vec![Op::Create(FileClass::Normal)];
    let mut files = 1usize;
    for _ in 0..ops {
        match rng.gen_range(0..10u32) {
            0 => {
                trace.push(Op::Create(if rng.gen_range(0..2u32) == 0 {
                    FileClass::Normal
                } else {
                    FileClass::Continuous
                }));
                files += 1;
            }
            1..=6 => {
                let n = rng.gen_range(16..2048usize);
                let data: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
                trace.push(Op::Append {
                    nth: rng.gen_range(0..files),
                    data,
                });
            }
            7..=8 => trace.push(Op::Sync),
            _ => trace.push(Op::Checkpoint),
        }
    }
    trace.push(Op::Checkpoint);
    trace
}

/// Replays `trace[..k]` from scratch. Returns the file system, the ids
/// of created files in creation order, and for each checkpoint taken:
/// its file id plus the byte content of every trace file at capture
/// time (the acknowledged set).
#[allow(clippy::type_complexity)]
fn replay(trace: &[Op], k: usize) -> (LogFs, Vec<FileId>, Vec<(FileId, Vec<(FileId, Vec<u8>)>)>) {
    let mut fs = LogFs::new(DiskConfig::hp_1994());
    let mut files: Vec<FileId> = Vec::new();
    let mut content: Vec<Vec<u8>> = Vec::new();
    let mut checkpoints = Vec::new();
    for op in &trace[..k] {
        match op {
            Op::Create(class) => {
                files.push(fs.create(*class));
                content.push(Vec::new());
            }
            Op::Append { nth, data } => {
                let f = files[*nth % files.len()];
                fs.append(f, data).expect("trace fits the array");
                content[*nth % files.len()].extend_from_slice(data);
            }
            Op::Sync => fs.sync().expect("sync"),
            Op::Checkpoint => {
                let cp = write_checkpoint(&mut fs).expect("checkpoint");
                let acked = files
                    .iter()
                    .copied()
                    .zip(content.iter().cloned())
                    .collect::<Vec<_>>();
                checkpoints.push((cp, acked));
            }
        }
    }
    (fs, files, checkpoints)
}

/// Counters from a crash sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrashStats {
    /// Crash points exercised (one per operation boundary).
    pub crash_points: u64,
    /// Acknowledged records verified byte-exact after recovery.
    pub records_verified: u64,
    /// Crash points that predate the first checkpoint (nothing was
    /// acknowledged yet; recovery trivially holds).
    pub pre_checkpoint: u64,
}

/// Cuts simulated power at every operation boundary of a deterministic
/// write-heavy run, recovers from the last completed checkpoint, and
/// verifies the acknowledged set. Panics with a reproducing triple on
/// any acknowledged-frame loss or torn record.
pub fn crash_sweep(seed: u64, trace_ops: usize) -> CrashStats {
    let mut stats = CrashStats::default();
    let repro0 = Repro {
        seed,
        front: Front::Disk,
        step: 0,
    };
    let trace = build_trace(&mut seeded(repro0.step_seed() ^ 0xC4A5), trace_ops);

    for k in 0..=trace.len() {
        let repro = Repro {
            seed,
            front: Front::Disk,
            step: k as u64,
        };
        let (mut fs, _files, checkpoints) = replay(&trace, k);
        stats.crash_points += 1;
        let Some((cp_file, acked)) = checkpoints.last() else {
            stats.pre_checkpoint += 1;
            continue;
        };

        // Power cut: all volatile metadata is gone except the superblock
        // pointer to the checkpoint file.
        fs.amnesia(*cp_file);
        match pegasus_pfs::checkpoint::recover(&mut fs, *cp_file) {
            Ok(()) => {}
            Err(_) => repro.check(false, "recovery from a completed checkpoint failed"),
        }

        for (file, bytes) in acked {
            let pnode = fs.pnode(*file);
            repro.check(
                pnode.is_some(),
                "an acknowledged file vanished after recovery",
            );
            let size = pnode.expect("checked").size;
            repro.check(
                size == bytes.len() as u64,
                "recovered size disagrees with the acknowledged bytes (torn record)",
            );
            if !bytes.is_empty() {
                match fs.read(*file, 0, bytes.len()) {
                    Ok(back) => {
                        repro.check(&back == bytes, "an acknowledged record came back corrupted");
                        stats.records_verified += 1;
                    }
                    Err(_) => repro.check(false, "an acknowledged record is unreadable"),
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_mutations_never_break_the_decoder() {
        let s = run_images(0xD15C, 150);
        assert_eq!(s.steps, 150);
        assert!(s.rejected > 0, "mutations must provoke rejections");
    }

    #[test]
    fn image_front_is_deterministic() {
        let a = run_images(11, 40);
        let b = run_images(11, 40);
        assert_eq!((a.rejected, a.survived), (b.rejected, b.survived));
    }

    #[test]
    fn crash_sweep_loses_nothing_acknowledged() {
        let s = crash_sweep(0xFACE, 40);
        assert_eq!(s.crash_points as usize, 43, "every boundary was cut");
        assert!(s.records_verified > 0, "the sweep verified real records");
        assert!(
            s.pre_checkpoint < s.crash_points,
            "most of the trace runs past the first checkpoint"
        );
    }
}
