//! `pegasus-scenario`: run declarative city-scale workloads.
//!
//! ```text
//! pegasus-scenario list
//! pegasus-scenario run <preset> [--seed N] [--seeds A,B,C]
//!                      [--scale F] [--shards N] [--canonical]
//!                      [--out FILE] [--quiet]
//! ```
//!
//! `run` prints the scenario's JSON report on stdout (one line per
//! seed) plus a human summary on stderr; `--out` writes the JSON to a
//! file instead. `--shards N` executes on up to N region shards (the
//! canonical report is byte-identical at any shard count; only the
//! `shards` block differs). `--canonical` prints the canonical
//! rendering with that block stripped — what CI diffs across shard
//! counts. CI consumes this through `scripts/run_scenarios.sh`.

use std::io::Write;
use std::process::ExitCode;

use pegasus_scenario::{presets, run_sharded, ScenarioReport};

fn usage() -> ExitCode {
    eprintln!("usage: pegasus-scenario list");
    eprintln!("       pegasus-scenario run <preset> [--seed N] [--seeds A,B,C]");
    eprintln!("                          [--scale F] [--shards N] [--canonical]");
    eprintln!("                          [--out FILE] [--quiet]");
    eprintln!("presets: {}", presets::PRESETS.join(", "));
    ExitCode::from(2)
}

fn summarize(r: &ScenarioReport) {
    eprintln!(
        "{}: seed {} — {} sessions on {} switches, {} endpoints",
        r.name,
        r.seed,
        r.sessions.0 + r.sessions.1 + r.sessions.2,
        r.switches,
        r.endpoints,
    );
    eprintln!(
        "  broker: {} admitted, {} degraded, {} rejected (cpu {}, bw {}, pfs {})",
        r.broker.admitted,
        r.broker.degraded,
        r.broker.rejected,
        r.broker.rejected_cpu,
        r.broker.rejected_bandwidth,
        r.broker.rejected_pfs,
    );
    eprintln!(
        "  cells: {} sent, {} delivered, {} dropped (peak queue {} cells)",
        r.cells.sent,
        r.cells.delivered,
        r.cells.dropped_overflow + r.cells.dropped_unroutable,
        r.peak_queue_cells,
    );
    eprintln!(
        "  video p50/p99 latency {}/{} µs, jitter p99 {} µs; audio jitter p99 {} µs",
        r.video.latency.p50 / 1_000,
        r.video.latency.p99 / 1_000,
        r.video.jitter.p99 / 1_000,
        r.audio.jitter.p99 / 1_000,
    );
    eprintln!(
        "  pfs: {} periods, {} missed, {} Mbit/s; nemesis: {}/{} epochs starved",
        r.pfs.periods,
        r.pfs.missed,
        r.pfs.throughput_bps / 1_000_000,
        r.nemesis.starved_epochs,
        r.nemesis.epochs,
    );
    eprintln!(
        "  deadline misses: {} ({} underruns, {} late, {} cm, {} starved)",
        r.deadline_misses,
        r.audio_underruns,
        r.playback_late,
        r.pfs.missed,
        r.nemesis.starved_epochs,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in presets::PRESETS {
                let spec = presets::by_name(name).expect("preset");
                println!(
                    "{name}: {} sessions, {} switches, {} ms",
                    spec.sessions,
                    spec.topology.switches,
                    spec.duration / 1_000_000
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(preset) = args.get(1) else {
                return usage();
            };
            let Some(mut spec) = presets::by_name(preset) else {
                eprintln!("unknown preset '{preset}'");
                return usage();
            };
            let mut seeds: Vec<u64> = Vec::new();
            let mut out: Option<String> = None;
            let mut quiet = false;
            let mut shards = 1usize;
            let mut canonical = false;
            let mut i = 2;
            while i < args.len() {
                let flag = args[i].as_str();
                let value = |i: &mut usize| -> Option<String> {
                    *i += 1;
                    args.get(*i).cloned()
                };
                match flag {
                    "--seed" => match value(&mut i).and_then(|v| v.parse().ok()) {
                        Some(s) => seeds.push(s),
                        None => return usage(),
                    },
                    "--seeds" => match value(&mut i) {
                        Some(list) => {
                            for part in list.split(',') {
                                match part.parse() {
                                    Ok(s) => seeds.push(s),
                                    Err(_) => return usage(),
                                }
                            }
                        }
                        None => return usage(),
                    },
                    "--scale" => match value(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                        Some(f) if f > 0.0 => spec = spec.scale_sessions(f),
                        _ => return usage(),
                    },
                    "--out" => match value(&mut i) {
                        Some(path) => out = Some(path),
                        None => return usage(),
                    },
                    "--shards" => match value(&mut i).and_then(|v| v.parse::<usize>().ok()) {
                        Some(n) if n >= 1 => shards = n,
                        _ => return usage(),
                    },
                    "--canonical" => canonical = true,
                    "--quiet" => quiet = true,
                    _ => return usage(),
                }
                i += 1;
            }
            if seeds.is_empty() {
                seeds.push(spec.seed);
            }
            // Clamping is visible, never silent: say why the run uses
            // fewer shards than asked for.
            let plan = pegasus_scenario::ExecPlan::partition(&spec, shards);
            if plan.shards < plan.requested {
                eprintln!(
                    "note: clamped to {} shard(s) of {} requested: {}",
                    plan.shards,
                    plan.requested,
                    plan.clamp_reason.unwrap_or("unknown"),
                );
            }
            let reports: Vec<ScenarioReport> = seeds
                .iter()
                .map(|&s| run_sharded(&spec.clone().with_seed(s), shards))
                .collect();
            let mut json = String::new();
            for r in &reports {
                if !quiet {
                    summarize(r);
                }
                json.push_str(&if canonical {
                    r.to_json_canonical()
                } else {
                    r.to_json()
                });
            }
            match out {
                Some(path) => {
                    let mut f = match std::fs::File::create(&path) {
                        Ok(f) => f,
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    f.write_all(json.as_bytes()).expect("report write");
                }
                None => print!("{json}"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
