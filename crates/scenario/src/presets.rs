//! Named scenario presets, from CI-sized `smoke` to `metropolis-100k`.
//!
//! Presets are ordinary [`ScenarioSpec`] values — the cookbook in
//! `docs/SCENARIOS.md` explains each one's intent and the knobs worth
//! turning. CI runs `smoke` and a scaled-down `metropolis-1k` on every
//! PR and asserts zero deadline misses (see `scripts/run_scenarios.sh`).

use pegasus_atm::network::{LinkConfig, TopologyShape};
use pegasus_sim::time::MS;

use crate::spec::{Arrival, FaultSpec, ScenarioSpec, SessionMix, TopologySpec};

/// A 622 Mbit/s trunk (OC-12-class), for city fabrics.
fn oc12() -> LinkConfig {
    LinkConfig {
        rate_bps: 622_000_000,
        prop_delay: 5_000, // 5 µs: a kilometre-scale metro run
    }
}

/// The CI-sized scenario: seconds of wall clock, all three classes,
/// zero expected deadline misses.
pub fn smoke() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("smoke");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 2,
        link: LinkConfig::pegasus_default(),
    };
    spec.sessions = 8;
    spec.mix = SessionMix::new(0.5, 0.25, 0.25);
    spec.duration = 150 * MS;
    spec
}

/// A wall of two-party calls on a campus star — the videophone workload
/// of §2 at density.
pub fn videophone_wall() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("videophone-wall");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 4,
        link: oc12(),
    };
    spec.sessions = 64;
    spec.mix = SessionMix::new(1.0, 0.0, 0.0);
    spec.arrival = Arrival::Uniform { window: 50 * MS };
    spec.duration = 300 * MS;
    spec
}

/// A rack of VoD streams off the file servers — the §5 continuous-media
/// service stack under fan-out.
pub fn vod_rack() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("vod-rack");
    spec.topology = TopologySpec {
        shape: TopologyShape::Ring,
        switches: 4,
        link: oc12(),
    };
    spec.sessions = 48;
    spec.mix = SessionMix::new(0.0, 1.0, 0.0);
    // One RAID stripe (~51 ms) per stream per 500 ms period: eight
    // servers keep each one at six streams, inside its deadline.
    spec.pfs_servers = 8;
    spec.arrival = Arrival::Poisson { mean_gap: 2 * MS };
    spec.duration = 300 * MS;
    spec
}

/// Studios feeding control rooms with a director cutting — the flagship
/// TV application, many rooms at once.
pub fn tv_studio() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("tv-studio");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 3,
        link: oc12(),
    };
    spec.sessions = 24;
    spec.mix = SessionMix::new(0.0, 0.0, 1.0);
    spec.tv_group = 4;
    spec.tv_cut_period = 80 * MS;
    spec.duration = 400 * MS;
    spec
}

/// A mixed district under scheduled faults: a rogue CPU hog, a degraded
/// line card, flapping lines mid-frame, a switch death repaired by
/// signalling, and a disk failure with a live RAID rebuild — every
/// layer's resilience probe at once.
pub fn nemesis_storm() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("nemesis-storm");
    spec.topology = TopologySpec {
        shape: TopologyShape::Ring,
        switches: 6,
        link: LinkConfig::pegasus_default(),
    };
    spec.sessions = 36;
    spec.pfs_servers = 2;
    spec.duration = 300 * MS;
    spec.faults = vec![
        FaultSpec::CpuLoadSpike {
            at: 100 * MS,
            until: 200 * MS,
            demand: 1.0,
            // Heavy enough that the media app's weighted share of the
            // CPU drops below its demand: the starvation must register.
            weight: 30.0,
        },
        FaultSpec::SwitchDegrade {
            at: 150 * MS,
            switch: 2,
            queue_capacity: 4,
        },
        // A member disk of server 0 dies early; streams ride parity
        // reconstruction until the swap, then the rebuild runs under
        // the same live load.
        FaultSpec::DiskFail {
            at: 50 * MS,
            server: 0,
            disk: 2,
            replace_at: 200 * MS,
        },
        // Switch 4's lines flap dark for 15 ms mid-run: frames in
        // flight lose cells mid-body and the receive path must fall
        // back and classify, never accept.
        FaultSpec::LinkFlap {
            at: 120 * MS,
            until: 135 * MS,
            switch: 4,
        },
        // Switch 1 dies outright; signalling re-routes the surviving
        // ring with endpoint VCIs pinned, strands the rest.
        FaultSpec::SwitchDeath {
            at: 180 * MS,
            switch: 1,
        },
    ];
    spec
}

/// The city: 1,000 concurrent sessions across a 16-switch metro mesh.
pub fn metropolis_1k() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("metropolis-1k");
    spec.topology = TopologySpec {
        shape: TopologyShape::FullMesh,
        switches: 16,
        link: oc12(),
    };
    spec.sessions = 1000;
    spec.mix = SessionMix::new(0.5, 0.3, 0.2);
    // 300 VoD streams: a 48-server cluster keeps every CM scheduler
    // under seven streams per 500 ms period (one ~51 ms stripe each).
    spec.pfs_servers = 48;
    spec.arrival = Arrival::Uniform { window: 100 * MS };
    spec.duration = 300 * MS;
    spec
}

/// The whole city at once: 100,000 session attempts on the 16-switch
/// metro mesh — the sharded executor's showcase workload. The QoS
/// broker is the city's front door: its CPU ledger (2.7 CPUs of media
/// budget at 300 µCPU per session, admit-or-reject) caps the admitted
/// population at 9,000 concurrent sessions, and the 48-server VoD
/// cluster caps streaming at its 384 slots — everyone else is turned
/// away with a reason, exactly as §3's broker argument demands.
/// Displays are headless (identical statistics, no framebuffers) and
/// streams run at a metro-realistic 2 Mbit/s so a single bench run
/// stays in memory and in budget. `scripts/bench_engine.sh` drives
/// this preset at `--shards` 1, 2 and 4 for the scaling lanes.
pub fn metropolis_100k() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("metropolis-100k");
    spec.topology = TopologySpec {
        shape: TopologyShape::FullMesh,
        switches: 16,
        link: oc12(),
    };
    spec.sessions = 100_000;
    spec.mix = SessionMix::new(0.5, 0.3, 0.2);
    spec.pfs_servers = 48;
    spec.arrival = Arrival::Uniform { window: 60 * MS };
    spec.duration = 120 * MS;
    spec.video_bps = 2_000_000;
    // 2.7 CPUs of reservable media budget; admit-or-reject (no degrade
    // rung) keeps the admitted count — and the network-wide VCI pool —
    // firmly bounded at city scale.
    spec.broker.cpu_capacity_micro = 2_700_000;
    spec.broker.degrade_milli = 1000;
    spec.headless_displays = true;
    spec
}

/// Twice-sustainable demand on a two-switch star: every session crosses
/// the single 100 Mbit/s trunk asking for double the nominal vector, so
/// the QoS broker must renegotiate some sessions down and turn the rest
/// away — overload as a measured, deterministic outcome instead of
/// every queue overflowing at once.
pub fn overload_2x() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("overload-2x");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 2,
        link: LinkConfig::pegasus_default(),
    };
    spec.sessions = 24;
    spec.mix = SessionMix::new(0.5, 0.25, 0.25).with_load(2.0);
    spec.pfs_servers = 1;
    spec.arrival = Arrival::Uniform { window: 40 * MS };
    spec.duration = 200 * MS;
    spec
}

/// A flash crowd: a burst of sessions arriving almost at once on a
/// small fabric with one file server and a deliberately tight CPU
/// budget, so all three layers — bandwidth, stream slots and the
/// Nemesis CPU ledger — end up the binding constraint for someone.
pub fn flash_crowd() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("flash-crowd");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 3,
        link: LinkConfig::pegasus_default(),
    };
    spec.sessions = 60;
    spec.mix = SessionMix::new(0.4, 0.4, 0.2);
    spec.pfs_servers = 1;
    // Everyone shows up inside 10 ms.
    spec.arrival = Arrival::Uniform { window: 10 * MS };
    spec.duration = 200 * MS;
    // A CPU budget sized so the crowd exhausts it on the late arrivals:
    // tight enough to bite after bandwidth has squeezed the videophone
    // wall and the lone server's slots have filled.
    spec.broker.cpu_capacity_micro = 11_000;
    spec
}

/// Three-times-sustainable best-effort load on a hub trunk of a
/// four-switch star, mid-run, with credit backpressure on: the blast is
/// credit-bounded so no queue can overflow, admitted media sessions
/// feel it as credit stalls, and the congestion controller renegotiates
/// them down a rung until the blast ends, then restores them. Overload
/// as explicit, bounded, reversible degradation — queues bounded by
/// construction, zero overflow drops, zero deadline misses. Four
/// switches so the heaviest backpressure preset shards for real:
/// `--shards 4` runs it unclamped, credits crossing the cuts as sealed
/// records.
pub fn sustained_3x() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("sustained-3x");
    spec.topology = TopologySpec {
        shape: TopologyShape::Star,
        switches: 4,
        link: LinkConfig::pegasus_default(),
    };
    spec.sessions = 16;
    spec.mix = SessionMix::new(0.5, 0.25, 0.25);
    spec.duration = 300 * MS;
    spec.backpressure.enabled = true;
    spec.backpressure.window_cells = 24;
    // Two spoke-to-spoke blasts transit the hub in opposite senses,
    // loading four of the six directed hub trunks (1→0, 0→2, 3→0,
    // 0→1) — most sessions source or sink behind a loaded trunk.
    // Each is 3× the 100 Mbit/s trunk, held to a standing queue of at
    // most 512 cells by its credit window; the queues build on
    // *different* hub output ports, so the per-port 1024-cell switch
    // queues never overflow.
    spec.faults = vec![
        FaultSpec::BestEffortBlast {
            at: 60 * MS,
            until: 200 * MS,
            from_switch: 1,
            to_switch: 2,
            rate_bps: 300_000_000,
            window: 512,
        },
        FaultSpec::BestEffortBlast {
            at: 60 * MS,
            until: 200 * MS,
            from_switch: 3,
            to_switch: 1,
            rate_bps: 300_000_000,
            window: 512,
        },
    ];
    spec
}

/// The full nemesis-storm fault schedule with credit backpressure on
/// top: the same rogue CPU hog, degraded line card, flapping lines,
/// switch death and disk failure, now with every media circuit
/// credit-gated. Dropped cells' credits are reclaimed each epoch so
/// producers never wedge, stranded circuits wedge *by design* (their
/// credits died with the corpse), and drops on admitted sessions are
/// attributed by cause instead of vanishing into a counter.
pub fn storm_backpressure() -> ScenarioSpec {
    let mut spec = nemesis_storm();
    spec.name = "storm-backpressure".to_string();
    spec.backpressure.enabled = true;
    spec.backpressure.window_cells = 64;
    spec
}

/// A VoD city with a hit catalogue: pure streaming load on a ring of
/// two servers, each holding eight titles drawn under a Zipf(α = 1)
/// popularity law, with the second half of the audience flash-crowding
/// onto title 0 — and the tiered content cache turned on in front of
/// the log stores. This is the §5 pathology preset: plain LRU would
/// evict every title sequentially and serve the crowd from disk N
/// times over; the tiers serve the crowd from one shared arena buffer
/// (`crowded_title_hot_milli` ≥ 900 with `fresh_allocs` flat) and the
/// Zipf head from the popularity-admitted warm tier. The hot tier is
/// deliberately small (four chunks against nine-odd live titles) so
/// the Zipf tail churns through warm, and the run is three full CM
/// service periods so steady-state hits dominate the cold first
/// touches. CI gates on the per-tier hit ratios and
/// `disk_io_saved_cells` staying positive.
pub fn vod_city() -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("vod-city");
    spec.topology = TopologySpec {
        shape: TopologyShape::Ring,
        switches: 4,
        link: oc12(),
    };
    spec.sessions = 16;
    spec.mix = SessionMix::new(0.0, 1.0, 0.0);
    spec.pfs_servers = 2;
    spec.arrival = Arrival::Poisson { mean_gap: 2 * MS };
    spec.duration = 1500 * MS;
    // 1 MB/s per stream: each viewer crosses a chunk (= RAID stripe)
    // boundary during the run, so the sequential prefetcher and the
    // warm tier both see real work.
    spec.vod_disk_rate = 1_000_000;
    spec.cache.enabled = true;
    spec.cache.titles_per_server = 8;
    spec.cache.zipf_alpha_milli = 1000;
    spec.cache.crowd_milli = 500;
    spec.cache.hot_chunks = 4;
    spec.cache.warm_chunks = 64;
    spec.cache.prefetch_chunks = 2;
    spec
}

/// Looks a preset up by name.
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    match name {
        "smoke" => Some(smoke()),
        "videophone-wall" => Some(videophone_wall()),
        "vod-rack" => Some(vod_rack()),
        "tv-studio" => Some(tv_studio()),
        "nemesis-storm" => Some(nemesis_storm()),
        "metropolis-1k" => Some(metropolis_1k()),
        "metropolis-100k" => Some(metropolis_100k()),
        "overload-2x" => Some(overload_2x()),
        "flash-crowd" => Some(flash_crowd()),
        "sustained-3x" => Some(sustained_3x()),
        "storm-backpressure" => Some(storm_backpressure()),
        "vod-city" => Some(vod_city()),
        _ => None,
    }
}

/// Every preset name, in menu order.
pub const PRESETS: [&str; 12] = [
    "smoke",
    "videophone-wall",
    "vod-rack",
    "tv-studio",
    "nemesis-storm",
    "metropolis-1k",
    "metropolis-100k",
    "overload-2x",
    "flash-crowd",
    "sustained-3x",
    "storm-backpressure",
    "vod-city",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_resolves() {
        for name in PRESETS {
            let spec = by_name(name).expect(name);
            assert_eq!(spec.name, name);
            assert!(spec.sessions >= 1);
        }
        assert!(by_name("nope").is_none());
    }
}
