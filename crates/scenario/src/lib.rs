//! The declarative scenario harness.
//!
//! The paper's argument is that one system carries many concurrent
//! multimedia sessions — videophone calls, TV distribution, VoD
//! playback — over ATM with predictable QoS. This crate makes that
//! claim testable at scale: a [`spec::ScenarioSpec`] declares a
//! topology, a session mix, an arrival process, a fault schedule, a run
//! length and a seed; [`build::run`] compiles it onto the real system
//! crates (atm fabric, devices, streams, pfs, nemesis), drives it on
//! the deterministic engine, and emits a [`report::ScenarioReport`]
//! whose JSON is byte-identical for identical `(spec, seed)`.
//!
//! * [`spec`] — the declarative inputs.
//! * [`presets`] — `smoke` through `metropolis-100k`, the named library.
//! * [`build`] — [`build::compile`]: spec → wired system → report.
//! * [`partition`] — region shards: who owns which switches.
//! * [`executor`] — [`executor::run_sharded`]: the same spec on worker
//!   threads under conservative lookahead, byte-identical canonical
//!   reports at any shard count.
//! * [`report`] — the structured results and their JSON rendering.
//! * [`json`] — the deterministic writer underneath.
//!
//! The `pegasus-scenario` binary wraps this for the command line and
//! CI (`scripts/run_scenarios.sh`).

pub mod build;
pub mod executor;
pub mod json;
pub mod partition;
pub mod presets;
pub mod report;
pub mod spec;

pub use build::{compile, compile_for, run, run_seeds, Scenario};
pub use executor::run_sharded;
pub use partition::{ExecPlan, ShardPlan};
pub use report::ScenarioReport;
pub use spec::{Arrival, FaultSpec, ScenarioSpec, SessionMix, TopologySpec};
