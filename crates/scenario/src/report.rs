//! The structured result of a scenario run.
//!
//! A [`ScenarioReport`] is the whole claim surface of a run: delivery
//! and drop counts, per-class latency/jitter percentiles, deadline
//! misses from every layer (audio DACs, playback control, the CM disk
//! scheduler, the Nemesis QoS manager), file-server throughput and peak
//! switch queue depths. [`ScenarioReport::to_json`] renders it with the
//! deterministic writer in [`crate::json`], so CI can diff two runs of
//! the same spec byte-for-byte.

use pegasus_sim::stats::Summary;
use pegasus_sim::time::Ns;

use crate::json::JsonWriter;

/// Latency/jitter distributions of one traffic class.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Sessions of this class.
    pub sessions: u64,
    /// End-to-end latency (capture to presentation), nanoseconds.
    pub latency: Summary,
    /// Per-stream jitter (latency in excess of the stream's floor),
    /// merged across the class's sessions. Multi-stream TV control
    /// rooms are excluded from the video class's jitter: their shared
    /// floor would misread constant path-delay differences between
    /// feeds as jitter.
    pub jitter: Summary,
}

/// Cell-level accounting across the whole fabric.
#[derive(Debug, Clone, Default)]
pub struct CellReport {
    /// Cells offered by every session source.
    pub sent: u64,
    /// Estimated deliveries: `sent` minus all drops (in-flight cells at
    /// the drain deadline also subtract; the drain is sized so that is
    /// negligible).
    pub delivered: u64,
    /// Cells dropped to full output queues.
    pub dropped_overflow: u64,
    /// Cells dropped for want of a route.
    pub dropped_unroutable: u64,
}

/// File-server activity of the VoD class.
#[derive(Debug, Clone, Default)]
pub struct PfsReport {
    /// Service periods simulated across all servers.
    pub periods: u64,
    /// Periods whose I/O exceeded the period (deadline misses).
    pub missed: u64,
    /// Bytes delivered from the log.
    pub bytes_delivered: u64,
    /// Delivered bytes per second of virtual time.
    pub throughput_bps: u64,
}

/// Nemesis control-plane health under the fault schedule.
#[derive(Debug, Clone, Default)]
pub struct NemesisReport {
    /// QoS-manager epochs replayed.
    pub epochs: u64,
    /// Epochs in which the media application was starved (deadline
    /// misses of the control plane).
    pub starved_epochs: u64,
    /// Median delivered quality (grant ÷ demand), in thousandths.
    pub quality_p50_milli: u64,
    /// Worst epoch's delivered quality, in thousandths.
    pub quality_min_milli: u64,
}

/// Everything a scenario run measured.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// Virtual run length (ns).
    pub duration: Ns,
    /// Switches in the network (fabric only; scenarios attach devices
    /// directly to fabric switches).
    pub switches: u64,
    /// Endpoints attached.
    pub endpoints: u64,
    /// Sessions by class: videophone, vod, tv.
    pub sessions: (u64, u64, u64),
    /// Video class (videophone + TV tiles onto displays).
    pub video: ClassReport,
    /// Audio class (DAC play-out).
    pub audio: ClassReport,
    /// VoD class (synchronized playback presentations).
    pub vod: ClassReport,
    /// Cell accounting.
    pub cells: CellReport,
    /// Guaranteed admissions that fell back to best effort.
    pub admission_fallbacks: u64,
    /// Most-reserved link as a fraction of its line rate.
    pub max_link_utilization: f64,
    /// Deepest output queue observed on any switch, in cells.
    pub peak_queue_cells: u64,
    /// Audio drop-outs (DAC underruns).
    pub audio_underruns: u64,
    /// VoD items presented after their play-out instant.
    pub playback_late: u64,
    /// Tiles painted across all displays.
    pub tiles_blitted: u64,
    /// VoD items presented.
    pub vod_presented: u64,
    /// File-server side of the VoD class.
    pub pfs: PfsReport,
    /// Control-plane health.
    pub nemesis: NemesisReport,
    /// Audio underruns + late playback + missed CM periods + starved
    /// epochs: the number every QoS claim reduces to.
    pub deadline_misses: u64,
    /// Events the engine executed.
    pub events_executed: u64,
}

impl ScenarioReport {
    /// Sums the per-layer misses into [`ScenarioReport::deadline_misses`].
    pub fn total_misses(&self) -> u64 {
        self.audio_underruns + self.playback_late + self.pfs.missed + self.nemesis.starved_epochs
    }

    /// Renders the report as deterministic JSON (trailing newline, no
    /// whitespace, fixed key order).
    pub fn to_json(&self) -> String {
        fn summary(w: &mut JsonWriter, k: &str, s: &Summary) {
            w.obj(k, |w| {
                w.u64("n", s.n);
                w.u64("min", s.min);
                w.u64("p50", s.p50);
                w.u64("p90", s.p90);
                w.u64("p99", s.p99);
                w.u64("max", s.max);
                w.f64("mean", s.mean);
            });
        }
        fn class(w: &mut JsonWriter, k: &str, c: &ClassReport) {
            w.obj(k, |w| {
                w.u64("sessions", c.sessions);
                summary(w, "latency_ns", &c.latency);
                summary(w, "jitter_ns", &c.jitter);
            });
        }
        JsonWriter::document(|w| {
            w.str("scenario", &self.name);
            w.u64("seed", self.seed);
            w.u64("duration_ns", self.duration);
            w.obj("topology", |w| {
                w.u64("switches", self.switches);
                w.u64("endpoints", self.endpoints);
                w.f64("max_link_utilization", self.max_link_utilization);
            });
            w.obj("sessions", |w| {
                w.u64("videophone", self.sessions.0);
                w.u64("vod", self.sessions.1);
                w.u64("tv", self.sessions.2);
                w.u64("total", self.sessions.0 + self.sessions.1 + self.sessions.2);
            });
            class(w, "video", &self.video);
            class(w, "audio", &self.audio);
            class(w, "vod", &self.vod);
            w.obj("cells", |w| {
                w.u64("sent", self.cells.sent);
                w.u64("delivered", self.cells.delivered);
                w.u64("dropped_overflow", self.cells.dropped_overflow);
                w.u64("dropped_unroutable", self.cells.dropped_unroutable);
            });
            w.obj("pfs", |w| {
                w.u64("periods", self.pfs.periods);
                w.u64("missed", self.pfs.missed);
                w.u64("bytes_delivered", self.pfs.bytes_delivered);
                w.u64("throughput_bps", self.pfs.throughput_bps);
            });
            w.obj("nemesis", |w| {
                w.u64("epochs", self.nemesis.epochs);
                w.u64("starved_epochs", self.nemesis.starved_epochs);
                w.u64("quality_p50_milli", self.nemesis.quality_p50_milli);
                w.u64("quality_min_milli", self.nemesis.quality_min_milli);
            });
            w.u64("admission_fallbacks", self.admission_fallbacks);
            w.u64("peak_queue_cells", self.peak_queue_cells);
            w.u64("audio_underruns", self.audio_underruns);
            w.u64("playback_late", self.playback_late);
            w.u64("tiles_blitted", self.tiles_blitted);
            w.u64("vod_presented", self.vod_presented);
            w.u64("deadline_misses", self.deadline_misses);
            w.u64("events_executed", self.events_executed);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_the_headline_fields() {
        let mut r = ScenarioReport {
            name: "unit".into(),
            seed: 9,
            ..ScenarioReport::default()
        };
        r.audio_underruns = 2;
        r.playback_late = 1;
        r.deadline_misses = r.total_misses();
        let s = r.to_json();
        assert!(s.starts_with("{\"scenario\":\"unit\",\"seed\":9,"));
        assert!(s.contains("\"deadline_misses\":3"));
        assert!(s.ends_with("}\n"));
        // Deterministic: rendering twice is identical.
        assert_eq!(s, r.to_json());
    }
}
