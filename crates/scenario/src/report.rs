//! The structured result of a scenario run.
//!
//! A [`ScenarioReport`] is the whole claim surface of a run: delivery
//! and drop counts, per-class latency/jitter percentiles, deadline
//! misses from every layer (audio DACs, playback control, the CM disk
//! scheduler, the Nemesis QoS manager), file-server throughput and peak
//! switch queue depths. [`ScenarioReport::to_json`] renders it with the
//! deterministic writer in [`crate::json`], so CI can diff two runs of
//! the same spec byte-for-byte.

use pegasus_sim::stats::Summary;
use pegasus_sim::time::Ns;

use crate::json::JsonWriter;

/// Version of the report's JSON schema. Bumped when fields are added,
/// removed or reordered, so downstream diffing tools can refuse to
/// compare across schema changes. History in `SCENARIOS.md`.
pub const SCHEMA_VERSION: u64 = 4;

/// What one region shard did during a sharded run. A classic
/// single-threaded run reports exactly one slice with zero barrier
/// waits and zero inter-shard cells.
#[derive(Debug, Clone, Default)]
pub struct ShardSlice {
    /// Shard index (0 = coordinator).
    pub shard: u64,
    /// Events this shard's engine executed. Summed across slices this
    /// equals the report's `events_executed` — the count is invariant
    /// under the shard count.
    pub events: u64,
    /// Lookahead-epoch barrier crossings this shard waited at.
    pub barrier_waits: u64,
    /// Sealed cells this shard published onto cut trunks.
    pub cells_exported: u64,
    /// Sealed cells this shard accepted from other shards.
    pub cells_imported: u64,
    /// The conservative lookahead the epoch loop ran under, in ns
    /// (zero on the classic path, which has no epochs).
    pub lookahead_ns: u64,
    /// Outbound cut trunks this shard exported on.
    pub cut_trunks: u64,
    /// Sealed credit-return records this shard published to peers.
    pub credits_crossed: u64,
    /// Circuits this shard's replica walked during replicated
    /// switch-death repair (identical on every shard by construction).
    pub repairs_replicated: u64,
}

/// Latency/jitter distributions of one traffic class.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Sessions of this class.
    pub sessions: u64,
    /// End-to-end latency (capture to presentation), nanoseconds.
    pub latency: Summary,
    /// Per-stream jitter (latency in excess of the stream's floor),
    /// merged across the class's sessions. Multi-stream TV control
    /// rooms are excluded from the video class's jitter: their shared
    /// floor would misread constant path-delay differences between
    /// feeds as jitter.
    pub jitter: Summary,
}

/// Cell-level accounting across the whole fabric.
#[derive(Debug, Clone, Default)]
pub struct CellReport {
    /// Cells offered by every session source.
    pub sent: u64,
    /// Estimated deliveries: `sent` minus all drops (in-flight cells at
    /// the drain deadline also subtract; the drain is sized so that is
    /// negligible).
    pub delivered: u64,
    /// Cells dropped to full output queues.
    pub dropped_overflow: u64,
    /// Cells dropped for want of a route.
    pub dropped_unroutable: u64,
    /// Cells dropped on dark lines during link-flap outages.
    pub dropped_outage: u64,
    /// Overflow drops attributed to an *admitted* session's circuit —
    /// the silent-degradation number. Under credit backpressure it must
    /// be zero: overload shows up as stalls and renegotiations instead.
    pub admitted_dropped_overflow: u64,
    /// Outage drops attributed to an admitted session's circuit (these
    /// are legitimate fault damage, reported by cause, never silent).
    pub admitted_dropped_outage: u64,
}

/// File-server activity of the VoD class.
#[derive(Debug, Clone, Default)]
pub struct PfsReport {
    /// Service periods simulated across all servers.
    pub periods: u64,
    /// Periods whose I/O exceeded the period (deadline misses).
    pub missed: u64,
    /// Bytes delivered from the log.
    pub bytes_delivered: u64,
    /// Delivered bytes per second of virtual time.
    pub throughput_bps: u64,
    /// RAID rebuilds completed after disk-failure incidents.
    pub rebuilds: u64,
    /// Total disk time the rebuilds took (charged at the RAID layer,
    /// not against the CM schedule).
    pub rebuild_ns: u64,
}

/// What the tiered content cache in front of the file servers did
/// (all zeros with `enabled` false when the spec leaves the cache off —
/// VoD reads then go straight to the log store).
///
/// Ratios are reported in thousandths so the report stays integer-only
/// and byte-stable. `crowded_title_hot_milli` is the §5 flash-crowd
/// claim: the fraction of accesses to the crowd-pinned title served
/// from the hot tier, where N concurrent viewers share one arena
/// buffer (`shared_attaches` grows with viewers, `fresh_allocs` does
/// not).
#[derive(Debug, Clone, Default)]
pub struct CacheReport {
    /// Whether the spec enabled the tiered cache.
    pub enabled: bool,
    /// Chunk reads served by the arena-resident hot tier (no disk I/O).
    pub hot_hits: u64,
    /// Chunk reads served by the SSD-class warm tier.
    pub warm_hits: u64,
    /// Chunk reads that went all the way to the log store.
    pub cold_misses: u64,
    /// Hot-tier share of all cache accesses, thousandths.
    pub hot_milli: u64,
    /// Warm-tier share of all cache accesses, thousandths.
    pub warm_milli: u64,
    /// Cold-miss share of all cache accesses, thousandths.
    pub cold_milli: u64,
    /// RAID cell reads the hot+warm tiers absorbed (48-byte payloads
    /// the log store never had to produce).
    pub disk_io_saved_cells: u64,
    /// Chunks staged ahead of registered streams by the broker-rate
    /// sequential prefetcher.
    pub prefetched_chunks: u64,
    /// Accesses that targeted the crowd-pinned title.
    pub crowd_accesses: u64,
    /// Hot-tier share of the crowd-pinned title's accesses, thousandths.
    pub crowded_title_hot_milli: u64,
    /// Shared leases handed out by the hot tier (one per viewer served
    /// from an already-resident buffer).
    pub shared_attaches: u64,
    /// Fresh arena allocations across the cache's arenas — the number
    /// that must stay independent of the viewer count.
    pub fresh_allocs: u64,
}

/// The QoS broker's admission record for one run.
///
/// `headroom_*` are "capacity headroom over time": each layer's free
/// capacity is sampled immediately after every admission decision, and
/// the sequence is summarized (so `min` is the tightest the layer ever
/// got during setup, `max` the loosest — session 1's view). Units:
/// CPU in micro-CPUs, bandwidth in thousandths of the most-loaded
/// link's line rate still reservable, PFS in free stream slots summed
/// across servers.
#[derive(Debug, Clone, Default)]
pub struct BrokerReport {
    /// Sessions admitted at their full requested vector.
    pub admitted: u64,
    /// Sessions admitted at the renegotiated-down rung.
    pub degraded: u64,
    /// Sessions refused outright.
    pub rejected: u64,
    /// Rejections whose binding constraint was the Nemesis CPU ledger.
    pub rejected_cpu: u64,
    /// Rejections bound by ATM link bandwidth.
    pub rejected_bandwidth: u64,
    /// Rejections bound by file-server stream slots.
    pub rejected_pfs: u64,
    /// Mean post-renegotiation quality per class (videophone, vod, tv)
    /// in thousandths of the requested vector: admitted = 1000,
    /// degraded = the rung, rejected = 0. 1000 when a class has no
    /// sessions (nothing was degraded).
    pub quality_milli: (u64, u64, u64),
    /// CPU-ledger headroom after each decision, micro-CPUs.
    pub headroom_cpu: Summary,
    /// Bandwidth headroom of the most-reserved link after each
    /// decision, thousandths of its line rate.
    pub headroom_bandwidth: Summary,
    /// Free stream slots across all servers after each decision.
    pub headroom_pfs: Summary,
}

/// What the credit flow-control plane did during the run (all zeros
/// when the spec leaves backpressure disabled).
#[derive(Debug, Clone, Default)]
pub struct BackpressureReport {
    /// Whether the spec enabled credit flow control.
    pub enabled: bool,
    /// Cumulative failed credit acquires per class (videophone, vod,
    /// tv) — each one a whole AAL5 frame held at its source.
    pub credit_stalls: (u64, u64, u64),
    /// Whole frames producers withheld for want of credits.
    pub frames_skipped: u64,
    /// Credits reclaimed for cells the fabric dropped (conservation:
    /// every spent credit is in flight, returned, or reclaimed).
    pub credits_reclaimed: u64,
    /// Live renegotiations down a quality rung.
    pub renegotiations_down: u64,
    /// Live renegotiations restoring quality.
    pub renegotiations_up: u64,
    /// Σ credit windows through the fabric: the constructive bound no
    /// queue can exceed on credited traffic alone.
    pub queue_bound_cells: u64,
}

/// Nemesis control-plane health under the fault schedule.
#[derive(Debug, Clone, Default)]
pub struct NemesisReport {
    /// QoS-manager epochs replayed.
    pub epochs: u64,
    /// Epochs in which the media application was starved (deadline
    /// misses of the control plane).
    pub starved_epochs: u64,
    /// Median delivered quality (grant ÷ demand), in thousandths.
    pub quality_p50_milli: u64,
    /// Worst epoch's delivered quality, in thousandths.
    pub quality_min_milli: u64,
}

/// Everything a scenario run measured.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scenario name.
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// Virtual run length (ns).
    pub duration: Ns,
    /// Switches in the network (fabric only; scenarios attach devices
    /// directly to fabric switches).
    pub switches: u64,
    /// Endpoints attached.
    pub endpoints: u64,
    /// Sessions by class: videophone, vod, tv.
    pub sessions: (u64, u64, u64),
    /// Video class (videophone + TV tiles onto displays).
    pub video: ClassReport,
    /// Audio class (DAC play-out).
    pub audio: ClassReport,
    /// VoD class (synchronized playback presentations).
    pub vod: ClassReport,
    /// Cell accounting.
    pub cells: CellReport,
    /// The QoS broker's admission record (counts, per-class quality,
    /// capacity headroom over setup time).
    pub broker: BrokerReport,
    /// Credit flow control and live renegotiation.
    pub backpressure: BackpressureReport,
    /// Most-reserved link as a fraction of its line rate.
    pub max_link_utilization: f64,
    /// Circuits signalling repaired around a dead switch (endpoint
    /// VCIs pinned, interior hops replaced).
    pub vcs_rerouted: u64,
    /// Circuits signalling could not repair (an endpoint on the dead
    /// switch, or no spare capacity on the survivors).
    pub vcs_stranded: u64,
    /// Deepest output queue observed on any switch, in cells.
    pub peak_queue_cells: u64,
    /// Audio drop-outs (DAC underruns).
    pub audio_underruns: u64,
    /// VoD items presented after their play-out instant.
    pub playback_late: u64,
    /// Tiles painted across all displays.
    pub tiles_blitted: u64,
    /// VoD items presented.
    pub vod_presented: u64,
    /// File-server side of the VoD class.
    pub pfs: PfsReport,
    /// Tiered content cache in front of the file servers.
    pub cache: CacheReport,
    /// Control-plane health.
    pub nemesis: NemesisReport,
    /// Audio underruns + late playback + missed CM periods + starved
    /// epochs: the number every QoS claim reduces to.
    pub deadline_misses: u64,
    /// Events the engine executed.
    pub events_executed: u64,
    /// Per-shard execution record. Length equals the effective shard
    /// count; the measurements above are its shard-count-independent
    /// merge. Excluded from canonical JSON so runs at different shard
    /// counts can be diffed byte-for-byte.
    pub shards: Vec<ShardSlice>,
}

impl ScenarioReport {
    /// Sums the per-layer misses into [`ScenarioReport::deadline_misses`].
    pub fn total_misses(&self) -> u64 {
        self.audio_underruns + self.playback_late + self.pfs.missed + self.nemesis.starved_epochs
    }

    /// Renders the report as deterministic JSON (trailing newline, no
    /// whitespace, fixed key order), including the per-shard block.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// Renders the *canonical* JSON: everything except the `shards`
    /// block, which is the one section that legitimately depends on the
    /// shard count. Two runs of the same `(spec, seed)` must produce
    /// byte-identical canonical JSON at any `--shards`; golden reports
    /// store this form.
    pub fn to_json_canonical(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_shards: bool) -> String {
        fn summary(w: &mut JsonWriter, k: &str, s: &Summary) {
            w.obj(k, |w| {
                w.u64("n", s.n);
                w.u64("min", s.min);
                w.u64("p50", s.p50);
                w.u64("p90", s.p90);
                w.u64("p99", s.p99);
                w.u64("max", s.max);
                w.f64("mean", s.mean);
            });
        }
        fn class(w: &mut JsonWriter, k: &str, c: &ClassReport) {
            w.obj(k, |w| {
                w.u64("sessions", c.sessions);
                summary(w, "latency_ns", &c.latency);
                summary(w, "jitter_ns", &c.jitter);
            });
        }
        JsonWriter::document(|w| {
            w.u64("schema_version", self.schema_version);
            w.str("scenario", &self.name);
            w.u64("seed", self.seed);
            w.u64("duration_ns", self.duration);
            w.obj("topology", |w| {
                w.u64("switches", self.switches);
                w.u64("endpoints", self.endpoints);
                w.f64("max_link_utilization", self.max_link_utilization);
            });
            w.obj("sessions", |w| {
                w.u64("videophone", self.sessions.0);
                w.u64("vod", self.sessions.1);
                w.u64("tv", self.sessions.2);
                w.u64("total", self.sessions.0 + self.sessions.1 + self.sessions.2);
            });
            class(w, "video", &self.video);
            class(w, "audio", &self.audio);
            class(w, "vod", &self.vod);
            w.obj("cells", |w| {
                w.u64("sent", self.cells.sent);
                w.u64("delivered", self.cells.delivered);
                w.u64("dropped_overflow", self.cells.dropped_overflow);
                w.u64("dropped_unroutable", self.cells.dropped_unroutable);
                w.u64("dropped_outage", self.cells.dropped_outage);
                w.u64(
                    "admitted_dropped_overflow",
                    self.cells.admitted_dropped_overflow,
                );
                w.u64(
                    "admitted_dropped_outage",
                    self.cells.admitted_dropped_outage,
                );
            });
            w.obj("signalling", |w| {
                w.u64("vcs_rerouted", self.vcs_rerouted);
                w.u64("vcs_stranded", self.vcs_stranded);
            });
            w.obj("pfs", |w| {
                w.u64("periods", self.pfs.periods);
                w.u64("missed", self.pfs.missed);
                w.u64("bytes_delivered", self.pfs.bytes_delivered);
                w.u64("throughput_bps", self.pfs.throughput_bps);
                w.u64("rebuilds", self.pfs.rebuilds);
                w.u64("rebuild_ns", self.pfs.rebuild_ns);
            });
            w.obj("cache", |w| {
                w.bool("enabled", self.cache.enabled);
                w.obj("hit_ratio_per_tier", |w| {
                    w.u64("hot_milli", self.cache.hot_milli);
                    w.u64("warm_milli", self.cache.warm_milli);
                    w.u64("cold_milli", self.cache.cold_milli);
                });
                w.u64("hot_hits", self.cache.hot_hits);
                w.u64("warm_hits", self.cache.warm_hits);
                w.u64("cold_misses", self.cache.cold_misses);
                w.u64("disk_io_saved_cells", self.cache.disk_io_saved_cells);
                w.u64("prefetched_chunks", self.cache.prefetched_chunks);
                w.u64("crowd_accesses", self.cache.crowd_accesses);
                w.u64(
                    "crowded_title_hot_milli",
                    self.cache.crowded_title_hot_milli,
                );
                w.u64("shared_attaches", self.cache.shared_attaches);
                w.u64("fresh_allocs", self.cache.fresh_allocs);
            });
            w.obj("nemesis", |w| {
                w.u64("epochs", self.nemesis.epochs);
                w.u64("starved_epochs", self.nemesis.starved_epochs);
                w.u64("quality_p50_milli", self.nemesis.quality_p50_milli);
                w.u64("quality_min_milli", self.nemesis.quality_min_milli);
            });
            w.obj("broker", |w| {
                w.u64("admitted", self.broker.admitted);
                w.u64("degraded", self.broker.degraded);
                w.u64("rejected", self.broker.rejected);
                w.obj("rejected_by_layer", |w| {
                    w.u64("cpu", self.broker.rejected_cpu);
                    w.u64("bandwidth", self.broker.rejected_bandwidth);
                    w.u64("pfs", self.broker.rejected_pfs);
                });
                w.obj("quality_milli", |w| {
                    w.u64("videophone", self.broker.quality_milli.0);
                    w.u64("vod", self.broker.quality_milli.1);
                    w.u64("tv", self.broker.quality_milli.2);
                });
                w.obj("headroom", |w| {
                    summary(w, "cpu_micro", &self.broker.headroom_cpu);
                    summary(w, "bandwidth_milli", &self.broker.headroom_bandwidth);
                    summary(w, "pfs_slots", &self.broker.headroom_pfs);
                });
            });
            w.obj("backpressure", |w| {
                w.bool("enabled", self.backpressure.enabled);
                w.obj("credit_stalls", |w| {
                    w.u64("videophone", self.backpressure.credit_stalls.0);
                    w.u64("vod", self.backpressure.credit_stalls.1);
                    w.u64("tv", self.backpressure.credit_stalls.2);
                });
                w.u64("frames_skipped", self.backpressure.frames_skipped);
                w.u64("credits_reclaimed", self.backpressure.credits_reclaimed);
                w.u64("renegotiations_down", self.backpressure.renegotiations_down);
                w.u64("renegotiations_up", self.backpressure.renegotiations_up);
                w.u64("queue_bound_cells", self.backpressure.queue_bound_cells);
            });
            w.u64("peak_queue_cells", self.peak_queue_cells);
            w.u64("audio_underruns", self.audio_underruns);
            w.u64("playback_late", self.playback_late);
            w.u64("tiles_blitted", self.tiles_blitted);
            w.u64("vod_presented", self.vod_presented);
            w.u64("deadline_misses", self.deadline_misses);
            w.u64("events_executed", self.events_executed);
            if with_shards {
                w.arr("shards", &self.shards, |w, s| {
                    w.u64("shard", s.shard);
                    w.u64("events", s.events);
                    w.u64("barrier_waits", s.barrier_waits);
                    w.u64("cells_exported", s.cells_exported);
                    w.u64("cells_imported", s.cells_imported);
                    w.u64("lookahead_ns", s.lookahead_ns);
                    w.u64("cut_trunks", s.cut_trunks);
                    w.u64("credits_crossed", s.credits_crossed);
                    w.u64("repairs_replicated", s.repairs_replicated);
                });
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_the_headline_fields() {
        let mut r = ScenarioReport {
            schema_version: SCHEMA_VERSION,
            name: "unit".into(),
            seed: 9,
            ..ScenarioReport::default()
        };
        r.audio_underruns = 2;
        r.playback_late = 1;
        r.deadline_misses = r.total_misses();
        r.broker.admitted = 5;
        r.broker.degraded = 2;
        r.broker.rejected = 1;
        r.broker.rejected_bandwidth = 1;
        r.broker.quality_milli = (1000, 750, 500);
        let s = r.to_json();
        assert!(s.starts_with("{\"schema_version\":4,\"scenario\":\"unit\",\"seed\":9,"));
        assert!(s.contains(
            "\"cache\":{\"enabled\":false,\"hit_ratio_per_tier\":\
             {\"hot_milli\":0,\"warm_milli\":0,\"cold_milli\":0},"
        ));
        assert!(s.contains("\"deadline_misses\":3"));
        assert!(s.contains("\"broker\":{\"admitted\":5,\"degraded\":2,\"rejected\":1,"));
        assert!(s.contains("\"rejected_by_layer\":{\"cpu\":0,\"bandwidth\":1,\"pfs\":0}"));
        assert!(s.contains("\"quality_milli\":{\"videophone\":1000,\"vod\":750,\"tv\":500}"));
        assert!(s.contains("\"headroom\":{\"cpu_micro\":{"));
        assert!(s.ends_with("}\n"));
        // Deterministic: rendering twice is identical.
        assert_eq!(s, r.to_json());
    }

    #[test]
    fn canonical_json_strips_only_the_shards_block() {
        let mut r = ScenarioReport {
            schema_version: SCHEMA_VERSION,
            name: "unit".into(),
            ..ScenarioReport::default()
        };
        r.shards.push(ShardSlice {
            shard: 0,
            events: 100,
            barrier_waits: 4,
            cells_exported: 7,
            cells_imported: 3,
            lookahead_ns: 2120,
            cut_trunks: 1,
            credits_crossed: 5,
            repairs_replicated: 2,
        });
        let full = r.to_json();
        let canonical = r.to_json_canonical();
        assert!(full.contains(
            "\"shards\":[{\"shard\":0,\"events\":100,\"barrier_waits\":4,\
             \"cells_exported\":7,\"cells_imported\":3,\"lookahead_ns\":2120,\
             \"cut_trunks\":1,\"credits_crossed\":5,\"repairs_replicated\":2}]"
        ));
        assert!(!canonical.contains("\"shards\""));
        // Canonical is a strict prefix apart from the shards suffix.
        let cut = full.find(",\"shards\":").unwrap();
        assert_eq!(&full[..cut], &canonical[..cut]);
        // Different shard layouts, same canonical bytes.
        let mut r2 = r.clone();
        r2.shards[0].barrier_waits = 99;
        assert_eq!(canonical, r2.to_json_canonical());
    }
}
