//! A minimal, deterministic JSON writer.
//!
//! Scenario reports must serialize byte-identically run-to-run (the CI
//! determinism gate diffs them), and the build environment is offline,
//! so rather than a serde dependency the report uses this writer: keys
//! are emitted in call order, floats with a fixed `{:.3}` format, and
//! nothing (maps, pointers, times-of-day) can leak nondeterminism in.

/// An in-progress JSON document.
pub struct JsonWriter {
    buf: String,
    /// Whether the current aggregate already has a first element.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Renders a whole document as one object built by `f`.
    pub fn document(f: impl FnOnce(&mut JsonWriter)) -> String {
        let mut w = JsonWriter {
            buf: String::new(),
            need_comma: Vec::new(),
        };
        w.open('{');
        f(&mut w);
        w.close('}');
        w.buf.push('\n');
        w.buf
    }

    fn open(&mut self, c: char) {
        self.buf.push(c);
        self.need_comma.push(false);
    }

    fn close(&mut self, c: char) {
        self.need_comma.pop();
        self.buf.push(c);
    }

    fn element(&mut self) {
        if let Some(first) = self.need_comma.last_mut() {
            if *first {
                self.buf.push(',');
            }
            *first = true;
        }
    }

    fn key(&mut self, k: &str) {
        self.element();
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes a float field with three decimals (fixed, deterministic).
    pub fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&format!("{v:.3}"));
    }

    /// Writes a string field (escapes quotes and backslashes; report
    /// strings are ASCII identifiers, control characters are rejected).
    pub fn str(&mut self, k: &str, v: &str) {
        assert!(
            !v.chars().any(|c| c.is_control()),
            "control characters in report strings are unsupported"
        );
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            if c == '"' || c == '\\' {
                self.buf.push('\\');
            }
            self.buf.push(c);
        }
        self.buf.push('"');
    }

    /// Writes a nested object field.
    pub fn obj(&mut self, k: &str, f: impl FnOnce(&mut JsonWriter)) {
        self.key(k);
        self.open('{');
        f(self);
        self.close('}');
    }

    /// Writes an array field of objects, one per item of `items`.
    pub fn arr<T>(&mut self, k: &str, items: &[T], mut f: impl FnMut(&mut JsonWriter, &T)) {
        self.key(k);
        self.open('[');
        for item in items {
            self.element();
            self.open('{');
            f(self, item);
            self.close('}');
        }
        self.close(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders() {
        let s = JsonWriter::document(|w| {
            w.str("name", "smoke");
            w.u64("seed", 7);
            w.f64("mean", 1.0 / 3.0);
            w.obj("inner", |w| {
                w.u64("a", 1);
                w.u64("b", 2);
            });
            w.arr("items", &[1u64, 2], |w, &v| w.u64("v", v));
        });
        assert_eq!(
            s,
            "{\"name\":\"smoke\",\"seed\":7,\"mean\":0.333,\
             \"inner\":{\"a\":1,\"b\":2},\
             \"items\":[{\"v\":1},{\"v\":2}]}\n"
        );
    }

    #[test]
    fn strings_escape_quotes() {
        let s = JsonWriter::document(|w| w.str("k", "a\"b\\c"));
        assert_eq!(s, "{\"k\":\"a\\\"b\\\\c\"}\n");
    }

    #[test]
    fn empty_aggregates() {
        let s = JsonWriter::document(|w| {
            w.obj("o", |_| {});
            w.arr::<u64>("a", &[], |_, _| {});
        });
        assert_eq!(s, "{\"o\":{},\"a\":[]}\n");
    }
}
