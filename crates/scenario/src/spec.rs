//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is everything a city-scale workload needs to be
//! reproducible: topology shape and link rates, the session mix and how
//! sessions arrive, the fault schedule, the run length and the seed.
//! [`crate::build`] compiles one into a wired [`pegasus::system::System`]
//! and runs it; the same spec and seed always produce byte-identical
//! reports.

use pegasus_atm::network::{LinkConfig, TopologyShape};
use pegasus_devices::camera::CameraConfig;
use pegasus_sim::time::{Ns, MS};

/// The switch fabric a scenario runs on.
#[derive(Debug, Clone, Copy)]
pub struct TopologySpec {
    /// Wiring pattern of the fabric.
    pub shape: TopologyShape,
    /// Number of fabric switches.
    pub switches: usize,
    /// Link parameters for every link (inter-switch and device).
    pub link: LinkConfig,
}

/// Relative weights of the session classes (normalized internally),
/// plus the mix's demand load factor.
#[derive(Debug, Clone, Copy)]
pub struct SessionMix {
    /// Two-party calls: camera→display plus audio, device to device.
    pub videophone: f64,
    /// Video-on-demand: the file server streams an indexed file to a
    /// synchronized playback client.
    pub vod: f64,
    /// TV distribution: studio cameras into a control-room window
    /// stack, with periodic cuts.
    pub tv: f64,
    /// Demand multiplier on every session's requested resource vector
    /// (CPU share, guaranteed video bandwidth, per-stream disk rate).
    /// 1.0 is nominal; the overload presets ask for more than the plant
    /// holds, so the QoS broker has to degrade or reject the surplus.
    pub load: f64,
}

impl SessionMix {
    /// A mix at nominal (1.0) load.
    pub fn new(videophone: f64, vod: f64, tv: f64) -> SessionMix {
        SessionMix {
            videophone,
            vod,
            tv,
            load: 1.0,
        }
    }

    /// The same class weights at a different load factor.
    pub fn with_load(mut self, load: f64) -> SessionMix {
        assert!(load > 0.0, "load factor must be positive");
        self.load = load;
        self
    }

    /// Splits `total` sessions into per-class counts by largest
    /// remainder, so the counts always sum to `total`.
    pub fn counts(&self, total: usize) -> (usize, usize, usize) {
        let sum = self.videophone + self.vod + self.tv;
        assert!(sum > 0.0, "session mix must have positive weight");
        let exact = [
            self.videophone / sum * total as f64,
            self.vod / sum * total as f64,
            self.tv / sum * total as f64,
        ];
        let mut counts = [0usize; 3];
        let mut assigned = 0;
        for (c, e) in counts.iter_mut().zip(exact) {
            *c = e.floor() as usize;
            assigned += *c;
        }
        // Hand leftovers to the largest fractional parts (ties by class
        // order — deterministic).
        let mut order: Vec<usize> = (0..3).collect();
        order.sort_by(|&a, &b| {
            let fa = exact[a] - exact[a].floor();
            let fb = exact[b] - exact[b].floor();
            fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
        });
        for &i in order.iter().cycle().take(total - assigned) {
            counts[i] += 1;
        }
        (counts[0], counts[1], counts[2])
    }
}

/// How session start times are drawn over the run.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Every session starts at t = 0.
    Immediate,
    /// Starts drawn uniformly over `[0, window)`.
    Uniform {
        /// Width of the start window.
        window: Ns,
    },
    /// Poisson arrivals: exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Ns,
    },
}

/// One scheduled incident of the scenario's fault schedule.
#[derive(Debug, Clone, Copy)]
pub enum FaultSpec {
    /// A rogue domain demands CPU from the Nemesis QoS manager between
    /// `at` and `until` (replayed through
    /// [`pegasus_nemesis::faults::EpochDriver`]).
    CpuLoadSpike {
        /// Onset.
        at: Ns,
        /// End of the incident.
        until: Ns,
        /// CPU fraction demanded.
        demand: f64,
        /// Rogue's user weight (media baseline is 1.0).
        weight: f64,
    },
    /// Fabric switch `switch` has its output-queue capacity clamped to
    /// `queue_capacity` cells at time `at` (a degraded line card);
    /// overflow drops follow.
    SwitchDegrade {
        /// When the degradation hits.
        at: Ns,
        /// Index into the fabric switch list.
        switch: usize,
        /// The clamped per-output queue capacity, in cells.
        queue_capacity: u64,
    },
    /// Every output line of fabric switch `switch` goes dark between
    /// `at` and `until`: cells offered while the line is down drop on
    /// the floor mid-frame, exactly as a flapping transceiver would.
    LinkFlap {
        /// When the lines go dark.
        at: Ns,
        /// When they come back.
        until: Ns,
        /// Index into the fabric switch list.
        switch: usize,
    },
    /// Fabric switch `switch` dies at `at`: routing tables gone,
    /// adjacent lines cut. Signalling re-routes established circuits
    /// around the corpse with their endpoint VCIs pinned (devices keep
    /// sending and receiving on the VCIs they were configured with);
    /// circuits terminating on the dead switch are stranded.
    SwitchDeath {
        /// Time of death.
        at: Ns,
        /// Index into the fabric switch list.
        switch: usize,
    },
    /// A best-effort bulk transfer blasts cells at `rate_bps` from an
    /// injector endpoint on `from_switch` toward a sink endpoint on
    /// `to_switch` between `at` and `until` — several times the trunk
    /// rate, the classic congestion source. The blast itself runs under
    /// a credit window of `window` cells, so its standing queue in the
    /// fabric is bounded by construction: pressure without overflow.
    BestEffortBlast {
        /// Onset.
        at: Ns,
        /// End of the blast.
        until: Ns,
        /// Fabric switch the injector endpoint attaches to.
        from_switch: usize,
        /// Fabric switch the discard endpoint attaches to.
        to_switch: usize,
        /// Injector link rate — size it above the trunk to congest.
        rate_bps: u64,
        /// The blast's credit window, in cells. Keep it below the
        /// switch queue capacity and the blast can never overflow.
        window: u64,
    },
    /// Member disk `disk` of VoD server `server`'s RAID array
    /// fail-stops at `at`; reads run degraded (parity reconstruction)
    /// until a fresh spindle is swapped in at `replace_at`, when a full
    /// rebuild runs while the CM scheduler keeps serving streams. At
    /// most one incident per server.
    DiskFail {
        /// Fail-stop time.
        at: Ns,
        /// Index into the VoD server list.
        server: usize,
        /// RAID member index (0..=4; 4 is the parity disk).
        disk: usize,
        /// When the replacement spindle arrives.
        replace_at: Ns,
    },
}

/// End-to-end backpressure policy: per-VC credit windows on the media
/// circuits plus the congestion feedback loop that renegotiates live
/// sessions ([`pegasus::congestion`]). Disabled by default so the
/// classic presets run exactly as before; the overload presets switch
/// it on to show explicit, bounded, reversible degradation instead of
/// queue growth and drops.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureSpec {
    /// Master switch. Off: no credit gating, no epoch monitor, and the
    /// run's event schedule is byte-identical to the pre-credit world.
    pub enabled: bool,
    /// Credits the consuming endpoint grants each media circuit, in
    /// cells — the hard cap on that circuit's in-flight cells.
    pub window_cells: u64,
    /// Congestion sampling period: every epoch the run collects credit
    /// stalls, epoch-peak queue depth and CM slot pressure, reconciles
    /// dropped cells' credits, and consults the hysteresis controller.
    pub epoch: Ns,
    /// Consecutive pressured epochs before renegotiating down.
    pub down_after: u32,
    /// Consecutive clear epochs before renegotiating back up.
    pub up_after: u32,
    /// Stalls per epoch at or above which an epoch counts as pressured.
    pub stall_threshold: u64,
    /// An epoch is clear only if the fabric's epoch-peak queue stayed
    /// at or below this — the anti-flap headroom condition.
    pub headroom_cells: u64,
}

impl Default for BackpressureSpec {
    fn default() -> Self {
        BackpressureSpec {
            enabled: false,
            window_cells: 64,
            epoch: 10 * MS,
            down_after: 3,
            up_after: 3,
            stall_threshold: 4,
            headroom_cells: 64,
        }
    }
}

/// The tiered content cache fronting each VoD server's log store
/// ([`pegasus_pfs::tier::TieredCache`]): an arena-backed hot tier whose
/// hits are shared-lease attaches, a popularity-admitted warm tier, the
/// RAID array as cold tier, and broker-rate-driven sequential prefetch.
/// Disabled by default: the classic presets replay their CM schedules
/// straight against the array, byte-identical to the pre-cache world.
#[derive(Debug, Clone, Copy)]
pub struct CacheSpec {
    /// Master switch. Off: per-period reads go straight to the log
    /// store and the report's cache section stays all-zero.
    pub enabled: bool,
    /// Hot-tier capacity per server, in chunks (one chunk = one RAID
    /// stripe).
    pub hot_chunks: usize,
    /// Warm-tier capacity per server, in chunks.
    pub warm_chunks: usize,
    /// Prefetch horizon per served read, in chunks (0 disables).
    pub prefetch_chunks: u64,
    /// Distinct titles pre-recorded per server. With 1 title every VoD
    /// session plays the same file (the classic world, no extra RNG
    /// draws); more titles make sessions draw theirs from a Zipf law.
    pub titles_per_server: usize,
    /// Zipf exponent α in thousandths (1000 = α 1.0) for the title
    /// draw. 0 is uniform popularity.
    pub zipf_alpha_milli: u64,
    /// Fraction of VoD sessions, in thousandths, pinned to title 0 of
    /// their server — the flash crowd, taken from the *last* arrivals
    /// (a crowd piles onto a hit that is already playing). The rest
    /// draw Zipf.
    pub crowd_milli: u64,
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec {
            enabled: false,
            hot_chunks: 16,
            warm_chunks: 64,
            prefetch_chunks: 2,
            titles_per_server: 1,
            zipf_alpha_milli: 1000,
            crowd_milli: 0,
        }
    }
}

/// Capacity and policy knobs of the cross-layer QoS broker
/// ([`pegasus::broker::QosBroker`]) a scenario's sessions are admitted
/// through.
#[derive(Debug, Clone, Copy)]
pub struct BrokerSpec {
    /// Reservable Nemesis CPU for media sessions, in micro-CPUs. The
    /// default (350,000 = 0.35 CPUs) plus the 0.05 control-plane
    /// baseline stays under the media app's 0.45 fair share against the
    /// synthetic batch competitor, so admitted load can never starve.
    pub cpu_capacity_micro: u64,
    /// Per-session CPU demand at nominal load, micro-CPUs.
    pub cpu_per_session_micro: u64,
    /// The renegotiation rung, in thousandths of the requested vector
    /// (500 = a degraded session runs at half bitrate / frame rate /
    /// CPU). 1000 disables degradation: admit or reject only.
    pub degrade_milli: u64,
    /// Concurrent stream slots per file server. One small read costs a
    /// whole RAID stripe (~51 ms) per 500 ms CM period, so eight slots
    /// keep every server inside its deadline with margin.
    pub pfs_slots_per_server: usize,
}

impl Default for BrokerSpec {
    fn default() -> Self {
        BrokerSpec {
            cpu_capacity_micro: 350_000,
            cpu_per_session_micro: 300,
            degrade_milli: 500,
            pfs_slots_per_server: 8,
        }
    }
}

/// A complete, reproducible workload description.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (lands in the report).
    pub name: String,
    /// RNG seed; the report is a pure function of (spec, seed).
    pub seed: u64,
    /// Virtual run length: sources stop at this time.
    pub duration: Ns,
    /// Extra virtual time for in-flight cells to drain.
    pub drain: Ns,
    /// Switch fabric.
    pub topology: TopologySpec,
    /// Total concurrent sessions.
    pub sessions: usize,
    /// Class mix.
    pub mix: SessionMix,
    /// Session start process.
    pub arrival: Arrival,
    /// Scheduled incidents.
    pub faults: Vec<FaultSpec>,
    /// Bandwidth requested per video stream (guaranteed, with
    /// best-effort fallback when a hop is full).
    pub video_bps: u64,
    /// Camera settings for every video source.
    pub camera: CameraConfig,
    /// Audio jitter-buffer depth in samples.
    pub audio_jitter_buffer: usize,
    /// Synchronized play-out latency for VoD clients.
    pub vod_target_latency: Ns,
    /// Bytes/second each VoD stream draws from the file server.
    pub vod_disk_rate: u64,
    /// Number of file servers VoD streams are spread across.
    pub pfs_servers: usize,
    /// Tiered content cache fronting each VoD server.
    pub cache: CacheSpec,
    /// Camera feeds per TV control room.
    pub tv_group: usize,
    /// Time between TV director cuts.
    pub tv_cut_period: Ns,
    /// QoS-broker capacities and renegotiation policy.
    pub broker: BrokerSpec,
    /// Credit flow control and the live-renegotiation feedback loop.
    pub backpressure: BackpressureSpec,
    /// Build displays without framebuffers: identical statistics, no
    /// pixel memory. City-scale presets turn this on — 100k sessions'
    /// framebuffers would cost gigabytes nobody reads.
    pub headless_displays: bool,
}

impl ScenarioSpec {
    /// A neutral baseline other specs (and tests) derive from: one
    /// backbone switch, a handful of mixed sessions, no faults.
    pub fn base(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            seed: 1,
            duration: 200 * MS,
            drain: 50 * MS,
            topology: TopologySpec {
                shape: TopologyShape::Star,
                switches: 1,
                link: LinkConfig::pegasus_default(),
            },
            sessions: 4,
            mix: SessionMix::new(0.5, 0.25, 0.25),
            arrival: Arrival::Immediate,
            faults: Vec::new(),
            video_bps: 8_000_000,
            camera: CameraConfig::default(),
            audio_jitter_buffer: 120,
            vod_target_latency: 80 * MS,
            vod_disk_rate: 250_000,
            pfs_servers: 1,
            cache: CacheSpec::default(),
            tv_group: 4,
            tv_cut_period: 400 * MS,
            broker: BrokerSpec::default(),
            backpressure: BackpressureSpec::default(),
            headless_displays: false,
        }
    }

    /// Scales the session count by `factor` (at least one session
    /// remains), for CI-sized renditions of big presets.
    pub fn scale_sessions(mut self, factor: f64) -> ScenarioSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        self.sessions = ((self.sessions as f64 * factor).round() as usize).max(1);
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioSpec {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_counts_sum_to_total() {
        let mix = SessionMix::new(0.5, 0.3, 0.2);
        for total in [0usize, 1, 7, 100, 1000] {
            let (a, b, c) = mix.counts(total);
            assert_eq!(a + b + c, total, "total {total}");
        }
        let (a, b, c) = mix.counts(1000);
        assert_eq!((a, b, c), (500, 300, 200));
    }

    #[test]
    fn single_class_mix() {
        let mix = SessionMix::new(1.0, 0.0, 0.0);
        assert_eq!(mix.counts(17), (17, 0, 0));
    }

    #[test]
    fn load_factor_defaults_to_nominal_and_scales() {
        let mix = SessionMix::new(1.0, 0.0, 0.0);
        assert_eq!(mix.load, 1.0);
        assert_eq!(mix.with_load(2.0).load, 2.0);
    }

    #[test]
    #[should_panic(expected = "load factor must be positive")]
    fn zero_load_rejected() {
        let _ = SessionMix::new(1.0, 0.0, 0.0).with_load(0.0);
    }

    #[test]
    fn scale_sessions_floors_at_one() {
        let spec = ScenarioSpec::base("t").scale_sessions(0.001);
        assert_eq!(spec.sessions, 1);
    }
}
