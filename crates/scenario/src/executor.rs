//! The sharded executor: conservative parallel simulation of one city.
//!
//! [`run_sharded`] partitions the spec's fabric into region shards
//! ([`crate::partition::ExecPlan`]), compiles a full replica of the
//! world on each worker thread ([`crate::build::compile_for`]), and
//! drives them in lockstep lookahead epochs:
//!
//! 1. Every shard runs its engine up to (but not into) the epoch
//!    boundary `t + L`, where the lookahead `L` is the minimum over cut
//!    trunks of cell serialization time plus propagation delay. A cell
//!    sent on a cut trunk at or after `t` cannot arrive before `t + L`,
//!    so nothing a peer does during the epoch can affect this shard
//!    before the boundary — the classic conservative-synchronization
//!    argument, with the trunk itself supplying the lookahead.
//! 2. Cells that crossed a cut during the epoch were captured by the
//!    transmit link's export buffer ([`pegasus_atm::link::Link`]
//!    `set_export`) with their exact arrival times. Each shard seals
//!    them to wire bytes and posts them to per-pair mailboxes. Credit
//!    returns for cut-crossing circuits ride the same mailboxes as
//!    sealed [`CreditReturn`] records: their application time is the
//!    delivery event time plus the circuit's return delay, which is
//!    never below the trunk lookahead, so a record sealed in epoch
//!    `[t, b)` always applies at or after `b` — the conservative bound
//!    covers the control plane for free.
//! 3. A barrier; then every shard drains its inbox in sender order,
//!    injecting each sealed cell into its own replica of the
//!    transmitting link (delivery lands on the trunk's own scheduling
//!    lane, reproducing the exact per-lane event order the single-shard
//!    run would have used) and parking each credit record on its
//!    window. A second barrier closes the epoch.
//!
//! The epoch boundaries also stop at every *control mark* — switch
//! deaths and congestion-epoch boundaries, the same timeline the
//! classic path pauses at (`control_marks` in `build.rs`). Death
//! repair replays identically on every shard's full `Network` replica;
//! congestion epochs sample a per-shard [`EpochSignal`], exchange the
//! samples (and any cross-shard drop reclaims) through per-shard
//! control slots at a barrier, and feed every replica's controller the
//! identical merged signal — so renegotiation verdicts, broker ledgers
//! and grants stay byte-identical at any shard count.
//!
//! Determinism: ownership, lane assignment, the lookahead and the mark
//! timeline are pure functions of the spec, arrival times come from the
//! sending link's serialization arithmetic (identical in every mode),
//! and ties at equal timestamps break on compile-time lane ids. The
//! canonical report is therefore byte-identical at any `--shards`; CI
//! diffs it.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Barrier, Mutex};
use std::thread;

use pegasus::congestion::EpochSignal;
use pegasus_atm::cell::{Cell, Vci, CELL_SIZE};
use pegasus_atm::credit::CreditReturn;
use pegasus_atm::link::ExportBuffer;
use pegasus_atm::network::TrunkDir;
use pegasus_sim::time::Ns;

use crate::build::{
    assemble, compile_for, control_marks, run, ControlMark, ShardOutcome, ShardRuntime,
};
use crate::partition::{ExecPlan, ShardPlan};
use crate::report::ScenarioReport;
use crate::spec::ScenarioSpec;

/// A cell in flight between shards: sealed to its 53 wire bytes, tagged
/// with the cut trunk it crossed and the arrival time the sending
/// link's serialization already fixed.
struct SealedCell {
    trunk: u32,
    arrival: Ns,
    bytes: [u8; CELL_SIZE],
}

/// One sealed record crossing an epoch boundary: a data cell on a cut
/// trunk, or a credit return for a circuit whose window lives on the
/// receiving shard.
enum SealedMsg {
    Cell(SealedCell),
    Credit(CreditReturn),
}

/// `mailboxes[from][to]` carries sealed records from shard `from` to
/// shard `to` across one epoch boundary.
type Mailboxes = Vec<Vec<Mutex<Vec<SealedMsg>>>>;

/// One shard's contribution to a congestion-epoch exchange: its slice
/// of the epoch signal and any reclaim records for drops it observed on
/// circuits whose windows live elsewhere. Written by the owner before
/// the exchange barrier, read by everyone after it.
#[derive(Default)]
struct ControlSlot {
    signal: EpochSignal,
    reclaims: Vec<(Vci, u64)>,
}

/// Runs `spec` across up to `requested` region shards and reports.
///
/// The effective shard count may be lower (see
/// [`ExecPlan::partition`] for the clamping rules); at one shard this
/// is exactly the classic [`crate::build::run`]. The report's canonical
/// JSON is byte-identical at every shard count; only its `shards`
/// block differs.
pub fn run_sharded(spec: &ScenarioSpec, requested: usize) -> ScenarioReport {
    let plan = ExecPlan::partition(spec, requested);
    if plan.shards == 1 {
        return run(spec);
    }
    let k = plan.shards;
    let mailboxes: Mailboxes = (0..k)
        .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let control: Vec<Mutex<ControlSlot>> =
        (0..k).map(|_| Mutex::new(ControlSlot::default())).collect();
    let barrier = Barrier::new(k);
    let mut outcomes: Vec<ShardOutcome> = thread::scope(|s| {
        let handles: Vec<_> = (1..k)
            .map(|i| {
                let sp = plan.shard_plan(i);
                let mb = &mailboxes;
                let ct = &control;
                let ba = &barrier;
                s.spawn(move || run_shard(spec, sp, mb, ct, ba))
            })
            .collect();
        // The coordinator (shard 0) runs on this thread.
        let mut outs = vec![run_shard(
            spec,
            plan.shard_plan(0),
            &mailboxes,
            &control,
            &barrier,
        )];
        for h in handles {
            outs.push(h.join().expect("shard thread panicked"));
        }
        outs
    });
    outcomes.sort_by_key(|o| o.shard());
    assemble(spec, outcomes)
}

/// Compiles and drives one shard's replica through the epoch loop.
fn run_shard(
    spec: &ScenarioSpec,
    plan: ShardPlan,
    mailboxes: &Mailboxes,
    control: &[Mutex<ControlSlot>],
    barrier: &Barrier,
) -> ShardOutcome {
    let me = plan.shard;
    let shards = plan.shards;
    let mut sc = compile_for(spec, plan);
    let owner = sc.plan().owner.clone();
    let coordinator = sc.plan().materialize_pfs;
    let trunks: Vec<TrunkDir> = sc.sys.net.trunks().to_vec();

    // Redirect the transmit side of every outbound cut trunk into an
    // export buffer: cells this shard sends to a peer's switch are
    // captured with their arrival times instead of delivered locally.
    // Pre-sized so the steady-state epoch loop never grows them.
    let mut outbound: Vec<(usize, ExportBuffer, usize)> = Vec::new();
    for (ti, t) in trunks.iter().enumerate() {
        if owner[t.from] == me && owner[t.to] != me {
            let buf: ExportBuffer = Rc::new(RefCell::new(Vec::with_capacity(256)));
            sc.sys
                .net
                .with_switch_output(t.from, t.port, |l| l.set_export(buf.clone()));
            outbound.push((ti, buf, owner[t.to]));
        }
    }
    // Outbound credit-return records, addressed by producer shard. The
    // consumer-side gates filled the buffers during the epoch; the slot
    // for this shard stays empty by construction (a locally-owned
    // window gets a delayed in-process return, not an export).
    let credit_out: Vec<_> = (0..shards).map(|d| sc.credit_export(d)).collect();
    for buf in &credit_out {
        buf.borrow_mut().reserve(64);
    }

    // Conservative lookahead: the global minimum over *all* cut trunks
    // (every shard computes the same value), never the local outbound
    // set — shards must agree on the epoch boundaries.
    let lookahead = trunks
        .iter()
        .filter(|t| owner[t.from] != owner[t.to])
        .map(|t| (CELL_SIZE as u64 * 8 * pegasus_sim::time::SEC / t.rate_bps) + t.prop_delay)
        .min()
        .expect("a multi-shard plan over a connected fabric has cut trunks")
        .max(1);

    // The control-plane timeline: identical on every shard, so the
    // extra boundaries (and the barriers some of them cost) align.
    let marks = control_marks(spec);
    let mut mark_idx = 0usize;
    let mut controller = sc.make_controller();
    let mut vcs_rerouted = 0u64;
    let mut vcs_stranded = 0u64;
    let mut admitted_dropped = (0u64, 0u64); // (overflow, outage)
    let mut remote: Vec<(Vci, u64)> = Vec::new();

    let end = sc.end_time();
    let mut rt = ShardRuntime {
        lookahead_ns: lookahead,
        cut_trunks: outbound.len() as u64,
        ..ShardRuntime::default()
    };
    // Reusable drain buffer: swap a mailbox's contents out under the
    // lock, process outside it. `clear` + `append` retains both
    // vectors' capacities, so the steady-state loop allocates nothing.
    let mut drain_buf: Vec<SealedMsg> = Vec::new();
    let mut t: Ns = 0;
    while t < end {
        let next_mark = marks.get(mark_idx).map_or(Ns::MAX, |&(at, _)| at);
        let next = (t + lookahead).min(end).min(next_mark);
        // Run this epoch: strictly before the boundary, then park the
        // clock exactly on it so injected arrivals can never precede it.
        sc.sim.run_before(next);

        // Publish: seal and post this epoch's cut crossings. Trunk
        // order, and send order within a trunk, are deterministic.
        for (ti, buf, dest) in &outbound {
            let mut cells = buf.borrow_mut();
            if cells.is_empty() {
                continue;
            }
            let mut mb = mailboxes[me][*dest].lock().expect("mailbox lock");
            for (arrival, cell) in cells.drain(..) {
                rt.cells_exported += 1;
                mb.push(SealedMsg::Cell(SealedCell {
                    trunk: *ti as u32,
                    arrival,
                    bytes: cell.to_bytes(),
                }));
            }
        }
        // Credit returns for windows living on other shards ride the
        // same mailboxes. Their application times already clear the
        // next boundary: delivery happened strictly before `next`, and
        // the return delay is never below the trunk lookahead.
        for (dest, buf) in credit_out.iter().enumerate() {
            let mut records = buf.borrow_mut();
            if dest == me {
                debug_assert!(records.is_empty(), "no export path to our own windows");
                continue;
            }
            if records.is_empty() {
                continue;
            }
            let mut mb = mailboxes[me][dest].lock().expect("mailbox lock");
            for r in records.drain(..) {
                debug_assert!(r.apply_at >= next, "credit return clears the boundary");
                rt.credits_crossed += 1;
                mb.push(SealedMsg::Credit(r));
            }
        }
        barrier.wait();
        rt.barrier_waits += 1;

        // Drain: accept peers' records in sender order. Cells are
        // injected into this shard's replica of the transmitting link —
        // delivery lands on the trunk's own lane, so per-lane order
        // matches the single-shard schedule exactly. Credit records are
        // parked on their windows until their application times.
        for (sender, from_sender) in mailboxes.iter().enumerate().take(shards) {
            if sender == me {
                continue;
            }
            {
                let mut mb = from_sender[me].lock().expect("mailbox lock");
                drain_buf.clear();
                drain_buf.append(&mut mb);
            }
            for msg in drain_buf.drain(..) {
                match msg {
                    SealedMsg::Cell(sealed) => {
                        rt.cells_imported += 1;
                        let cell =
                            Cell::from_bytes(&sealed.bytes).expect("sealed cell round-trips");
                        let tr = &trunks[sealed.trunk as usize];
                        let sim = &mut sc.sim;
                        sc.sys.net.with_switch_output(tr.from, tr.port, |l| {
                            l.inject(sim, sealed.arrival, cell)
                        });
                    }
                    SealedMsg::Credit(r) => {
                        let found = sc.apply_credit_return(r.dst_vci, r.apply_at, r.n);
                        debug_assert!(found, "credit record addressed to the window's owner");
                    }
                }
            }
        }
        // Close the epoch only once every shard has drained: a fast
        // peer must not start publishing the next epoch's cells into a
        // mailbox that is still being read.
        barrier.wait();
        rt.barrier_waits += 1;

        // Control marks at this boundary, in the classic order (deaths
        // before a same-time epoch sample). Events parked exactly on
        // the mark — injected arrivals included — run first, matching
        // the classic path's inclusive `run_until(at)`.
        while marks.get(mark_idx).is_some_and(|&(at, _)| at == next) {
            sc.sim.run_until(next);
            match marks[mark_idx].1 {
                ControlMark::Death(switch) => {
                    // Repair replays identically on every shard's full
                    // replica; the report's totals count it once, on
                    // the coordinator.
                    let (r, s) = sc.apply_death(switch);
                    rt.repairs_replicated += r + s;
                    if coordinator {
                        vcs_rerouted += r;
                        vcs_stranded += s;
                    }
                }
                ControlMark::Epoch => {
                    // Sample locally, settle local drops (emitting
                    // reclaim records for windows living elsewhere),
                    // publish both through this shard's control slot...
                    let sig = sc.sample_epoch_signal();
                    let (ov, ou) = sc.settle_drops(&mut remote);
                    admitted_dropped.0 += ov;
                    admitted_dropped.1 += ou;
                    {
                        let mut slot = control[me].lock().expect("control slot lock");
                        slot.signal = sig;
                        slot.reclaims.clear();
                        slot.reclaims.append(&mut remote);
                    }
                    barrier.wait();
                    rt.barrier_waits += 1;
                    // ...then fold every shard's sample (the merge is
                    // associative and commutative, folded in shard
                    // order) and apply peers' reclaims to any window
                    // this shard owns.
                    let mut merged = EpochSignal::default();
                    for (i, slot) in control.iter().enumerate().take(shards) {
                        let slot = slot.lock().expect("control slot lock");
                        merged.merge(&slot.signal);
                        if i != me {
                            for &(vci, n) in &slot.reclaims {
                                sc.apply_remote_reclaim(vci, n);
                            }
                        }
                    }
                    barrier.wait();
                    rt.barrier_waits += 1;
                    // Every replica's controller observes the identical
                    // merged signal, so every replica applies the
                    // identical verdict to its replicated ledgers.
                    let verdict = controller.observe(&merged.into_signal());
                    sc.apply_verdict(verdict, next);
                }
            }
            mark_idx += 1;
        }
        t = next;
    }
    // The final boundary equals `end`: one last pass executes any
    // event parked exactly on it (injected arrivals included).
    sc.sim.run_until(end);

    // Final settle exchange: drops from the drain window may still sit
    // on circuits whose windows live elsewhere, and the reclaim ledger
    // feeds the report — so the records cross once more before collect.
    let (ov, ou) = sc.settle_drops(&mut remote);
    admitted_dropped.0 += ov;
    admitted_dropped.1 += ou;
    {
        let mut slot = control[me].lock().expect("control slot lock");
        slot.reclaims.clear();
        slot.reclaims.append(&mut remote);
    }
    barrier.wait();
    rt.barrier_waits += 1;
    for (i, slot) in control.iter().enumerate().take(shards) {
        if i == me {
            continue;
        }
        let slot = slot.lock().expect("control slot lock");
        for &(vci, n) in &slot.reclaims {
            sc.apply_remote_reclaim(vci, n);
        }
    }
    barrier.wait();
    rt.barrier_waits += 1;

    sc.collect(vcs_rerouted, vcs_stranded, admitted_dropped, rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// The tentpole's determinism bar, in-crate: the canonical report
    /// of a small preset is byte-identical at 1, 2 and 4 shards, and
    /// the per-shard event counts sum to the 1-shard total.
    #[test]
    fn preset_is_shard_count_invariant() {
        // videophone-wall: four fabric switches, so four real shards.
        let spec = presets::by_name("videophone-wall").expect("preset");
        let base = run_sharded(&spec, 1);
        let two = run_sharded(&spec, 2);
        let four = run_sharded(&spec, 4);
        assert_eq!(base.to_json_canonical(), two.to_json_canonical());
        assert_eq!(base.to_json_canonical(), four.to_json_canonical());
        assert_eq!(two.shards.len(), 2);
        assert_eq!(four.shards.len(), 4);
        for r in [&two, &four] {
            let sum: u64 = r.shards.iter().map(|s| s.events).sum();
            assert_eq!(sum, base.events_executed, "event count is invariant");
            assert!(r.shards.iter().all(|s| s.barrier_waits > 0));
            assert!(r.shards.iter().all(|s| s.lookahead_ns > 0));
            let exported: u64 = r.shards.iter().map(|s| s.cells_exported).sum();
            let imported: u64 = r.shards.iter().map(|s| s.cells_imported).sum();
            assert_eq!(exported, imported, "no cell lost between shards");
            assert!(exported > 0, "a mesh city must cross the cut");
        }
    }

    /// The control plane shards: a sustained-overload preset — live
    /// backpressure, congestion epochs, renegotiation and a best-effort
    /// blast — runs unclamped at four shards, crosses credits at the
    /// cut, and produces the byte-identical canonical report.
    #[test]
    fn backpressure_preset_shards_without_clamping() {
        let spec = presets::by_name("sustained-3x").expect("preset");
        let plan = ExecPlan::partition(&spec, 4);
        assert_eq!(plan.shards, 4);
        assert!(plan.clamp_reason.is_none(), "no feature clamp remains");
        let base = run_sharded(&spec, 1);
        let four = run_sharded(&spec, 4);
        assert_eq!(base.to_json_canonical(), four.to_json_canonical());
        assert_eq!(four.shards.len(), 4);
        let crossed: u64 = four.shards.iter().map(|s| s.credits_crossed).sum();
        assert!(crossed > 0, "cut-crossing circuits sealed credit returns");
    }
}
