//! The sharded executor: conservative parallel simulation of one city.
//!
//! [`run_sharded`] partitions the spec's fabric into region shards
//! ([`crate::partition::ExecPlan`]), compiles a full replica of the
//! world on each worker thread ([`crate::build::compile_for`]), and
//! drives them in lockstep lookahead epochs:
//!
//! 1. Every shard runs its engine up to (but not into) the epoch
//!    boundary `t + L`, where the lookahead `L` is the minimum over cut
//!    trunks of cell serialization time plus propagation delay. A cell
//!    sent on a cut trunk at or after `t` cannot arrive before `t + L`,
//!    so nothing a peer does during the epoch can affect this shard
//!    before the boundary — the classic conservative-synchronization
//!    argument, with the trunk itself supplying the lookahead.
//! 2. Cells that crossed a cut during the epoch were captured by the
//!    transmit link's export buffer ([`pegasus_atm::link::Link`]
//!    `set_export`) with their exact arrival times. Each shard seals
//!    them to wire bytes and posts them to per-pair mailboxes.
//! 3. A barrier; then every shard drains its inbox in sender order and
//!    injects each sealed cell into its own replica of the transmitting
//!    link, which delivers into the receiving switch on the trunk's own
//!    scheduling lane — reproducing the exact per-lane event order the
//!    single-shard run would have used. A second barrier closes the
//!    epoch.
//!
//! Determinism: ownership, lane assignment and the lookahead are pure
//! functions of the spec, arrival times come from the sending link's
//! serialization arithmetic (identical in every mode), and ties at
//! equal timestamps break on compile-time lane ids. The canonical
//! report is therefore byte-identical at any `--shards`; CI diffs it.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Barrier, Mutex};
use std::thread;

use pegasus_atm::cell::{Cell, CELL_SIZE};
use pegasus_atm::link::ExportBuffer;
use pegasus_atm::network::TrunkDir;
use pegasus_sim::time::Ns;

use crate::build::{assemble, compile_for, run, ShardOutcome, ShardRuntime};
use crate::partition::{ExecPlan, ShardPlan};
use crate::report::ScenarioReport;
use crate::spec::ScenarioSpec;

/// A cell in flight between shards: sealed to its 53 wire bytes, tagged
/// with the cut trunk it crossed and the arrival time the sending
/// link's serialization already fixed.
struct SealedCell {
    trunk: u32,
    arrival: Ns,
    bytes: [u8; CELL_SIZE],
}

/// `mailboxes[from][to]` carries sealed cells from shard `from` to
/// shard `to` across one epoch boundary.
type Mailboxes = Vec<Vec<Mutex<Vec<SealedCell>>>>;

/// Runs `spec` across up to `requested` region shards and reports.
///
/// The effective shard count may be lower (see
/// [`ExecPlan::partition`] for the clamping rules); at one shard this
/// is exactly the classic [`crate::build::run`]. The report's canonical
/// JSON is byte-identical at every shard count; only its `shards`
/// block differs.
pub fn run_sharded(spec: &ScenarioSpec, requested: usize) -> ScenarioReport {
    let plan = ExecPlan::partition(spec, requested);
    if plan.shards == 1 {
        return run(spec);
    }
    let k = plan.shards;
    let mailboxes: Mailboxes = (0..k)
        .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = Barrier::new(k);
    let mut outcomes: Vec<ShardOutcome> = thread::scope(|s| {
        let handles: Vec<_> = (1..k)
            .map(|i| {
                let sp = plan.shard_plan(i);
                let mb = &mailboxes;
                let ba = &barrier;
                s.spawn(move || run_shard(spec, sp, mb, ba))
            })
            .collect();
        // The coordinator (shard 0) runs on this thread.
        let mut outs = vec![run_shard(spec, plan.shard_plan(0), &mailboxes, &barrier)];
        for h in handles {
            outs.push(h.join().expect("shard thread panicked"));
        }
        outs
    });
    outcomes.sort_by_key(|o| o.shard());
    assemble(spec, outcomes)
}

/// Compiles and drives one shard's replica through the epoch loop.
fn run_shard(
    spec: &ScenarioSpec,
    plan: ShardPlan,
    mailboxes: &Mailboxes,
    barrier: &Barrier,
) -> ShardOutcome {
    let me = plan.shard;
    let shards = plan.shards;
    let mut sc = compile_for(spec, plan);
    let owner = sc.plan().owner.clone();
    let trunks: Vec<TrunkDir> = sc.sys.net.trunks().to_vec();

    // Redirect the transmit side of every outbound cut trunk into an
    // export buffer: cells this shard sends to a peer's switch are
    // captured with their arrival times instead of delivered locally.
    let mut outbound: Vec<(usize, ExportBuffer, usize)> = Vec::new();
    for (ti, t) in trunks.iter().enumerate() {
        if owner[t.from] == me && owner[t.to] != me {
            let buf: ExportBuffer = Rc::new(RefCell::new(Vec::new()));
            sc.sys
                .net
                .with_switch_output(t.from, t.port, |l| l.set_export(buf.clone()));
            outbound.push((ti, buf, owner[t.to]));
        }
    }

    // Conservative lookahead: the global minimum over *all* cut trunks
    // (every shard computes the same value), never the local outbound
    // set — shards must agree on the epoch boundaries.
    let lookahead = trunks
        .iter()
        .filter(|t| owner[t.from] != owner[t.to])
        .map(|t| (CELL_SIZE as u64 * 8 * pegasus_sim::time::SEC / t.rate_bps) + t.prop_delay)
        .min()
        .expect("a multi-shard plan over a connected fabric has cut trunks")
        .max(1);

    let end = sc.end_time();
    let mut rt = ShardRuntime::default();
    let mut t: Ns = 0;
    while t < end {
        let next = (t + lookahead).min(end);
        // Run this epoch: strictly before the boundary, then park the
        // clock exactly on it so injected arrivals can never precede it.
        sc.sim.run_before(next);

        // Publish: seal and post this epoch's cut crossings. Trunk
        // order, and send order within a trunk, are deterministic.
        for (ti, buf, dest) in &outbound {
            let mut cells = buf.borrow_mut();
            if cells.is_empty() {
                continue;
            }
            let mut mb = mailboxes[me][*dest].lock().expect("mailbox lock");
            for (arrival, cell) in cells.drain(..) {
                rt.cells_exported += 1;
                mb.push(SealedCell {
                    trunk: *ti as u32,
                    arrival,
                    bytes: cell.to_bytes(),
                });
            }
        }
        barrier.wait();
        rt.barrier_waits += 1;

        // Drain: accept peers' cells in sender order, injecting each
        // into this shard's replica of the transmitting link — delivery
        // lands on the trunk's own lane, so per-lane order matches the
        // single-shard schedule exactly.
        for (sender, from_sender) in mailboxes.iter().enumerate().take(shards) {
            if sender == me {
                continue;
            }
            let batch: Vec<SealedCell> =
                std::mem::take(&mut *from_sender[me].lock().expect("mailbox lock"));
            for sealed in batch {
                rt.cells_imported += 1;
                let cell = Cell::from_bytes(&sealed.bytes).expect("sealed cell round-trips");
                let tr = &trunks[sealed.trunk as usize];
                let sim = &mut sc.sim;
                sc.sys
                    .net
                    .with_switch_output(tr.from, tr.port, |l| l.inject(sim, sealed.arrival, cell));
            }
        }
        // Close the epoch only once every shard has drained: a fast
        // peer must not start publishing the next epoch's cells into a
        // mailbox that is still being read.
        barrier.wait();
        rt.barrier_waits += 1;
        t = next;
    }
    // The final boundary equals `end`: one last pass executes any
    // event parked exactly on it (injected arrivals included).
    sc.sim.run_until(end);

    let admitted_dropped = sc.settle_drops();
    sc.collect(0, 0, admitted_dropped, rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// The tentpole's determinism bar, in-crate: the canonical report
    /// of a small preset is byte-identical at 1, 2 and 4 shards, and
    /// the per-shard event counts sum to the 1-shard total.
    #[test]
    fn preset_is_shard_count_invariant() {
        // videophone-wall: four fabric switches, so four real shards.
        let spec = presets::by_name("videophone-wall").expect("preset");
        let base = run_sharded(&spec, 1);
        let two = run_sharded(&spec, 2);
        let four = run_sharded(&spec, 4);
        assert_eq!(base.to_json_canonical(), two.to_json_canonical());
        assert_eq!(base.to_json_canonical(), four.to_json_canonical());
        assert_eq!(two.shards.len(), 2);
        assert_eq!(four.shards.len(), 4);
        for r in [&two, &four] {
            let sum: u64 = r.shards.iter().map(|s| s.events).sum();
            assert_eq!(sum, base.events_executed, "event count is invariant");
            assert!(r.shards.iter().all(|s| s.barrier_waits > 0));
            let exported: u64 = r.shards.iter().map(|s| s.cells_exported).sum();
            let imported: u64 = r.shards.iter().map(|s| s.cells_imported).sum();
            assert_eq!(exported, imported, "no cell lost between shards");
            assert!(exported > 0, "a mesh city must cross the cut");
        }
    }

    /// Backpressure clamps to one shard and still reports one slice.
    #[test]
    fn clamped_spec_still_runs_and_reports_one_slice() {
        let mut spec = presets::by_name("smoke").expect("preset");
        spec.backpressure.enabled = true;
        let r = run_sharded(&spec, 4);
        assert_eq!(r.shards.len(), 1);
        assert_eq!(r.shards[0].barrier_waits, 0);
        let classic = crate::build::run(&spec);
        assert_eq!(r.to_json(), classic.to_json());
    }
}
