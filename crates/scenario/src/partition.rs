//! Topology partitioning for sharded execution.
//!
//! An [`ExecPlan`] splits the fabric switches of a [`ScenarioSpec`]
//! into contiguous region shards at compile time. Each shard owns a
//! range of fabric switches plus every endpoint attached to them; the
//! only state shards exchange at runtime is sealed cells crossing *cut
//! trunks* (inter-switch links whose two ends land in different
//! shards), exchanged at conservative-lookahead epoch barriers by the
//! executor (`crate::executor`).
//!
//! The plan is a pure function of `(spec, requested shards)`, so every
//! shard — and every shard *count* — agrees on who owns what without
//! communicating. Determinism across shard counts rests on that, plus
//! the per-trunk scheduling lanes assigned at wiring time
//! (`pegasus_atm::network::TrunkDir`).
//!
//! The control plane shards too. Credit returns on cut-crossing
//! circuits ride the same sealed mailboxes as data cells (their return
//! delay is never below the trunk lookahead, so the conservative
//! argument covers them); congestion epochs are sampled per shard into
//! a mergeable `EpochSignal` and exchanged at the barrier; and switch
//! death repair replays identically on every shard's full `Network`
//! replica at the fault's mark. None of those features clamps the plan
//! any more — the only remaining clamp is geometric: a plan can never
//! have more shards than fabric switches.
//!
//! Clamping is *visible* (the plan records it, and the CLI prints the
//! reason), never an error: a spec that cannot use every requested
//! shard still runs on the clamped count.

use crate::spec::ScenarioSpec;

/// The partition of a scenario into region shards.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Effective shard count after clamping.
    pub shards: usize,
    /// `owner[s]` = the shard owning fabric switch `s`. In the
    /// spec-driven path fabric switch index and network switch index
    /// coincide (the fabric is built first and nothing else adds
    /// switches).
    pub owner: Vec<usize>,
    /// The shard count the caller asked for, before clamping.
    pub requested: usize,
    /// Why the plan clamped to fewer shards than requested, if it did.
    pub clamp_reason: Option<&'static str>,
}

impl ExecPlan {
    /// Partitions `spec`'s fabric into at most `requested` shards.
    pub fn partition(spec: &ScenarioSpec, requested: usize) -> ExecPlan {
        let n = spec.topology.switches.max(1);
        let requested = requested.max(1);
        let mut shards = requested;
        let mut clamp_reason = None;
        let mut clamp = |k: &mut usize, to: usize, why: &'static str| {
            if to < *k {
                *k = to;
                clamp_reason = Some(why);
            }
        };
        clamp(&mut shards, n, "more shards than fabric switches");
        // Contiguous balanced ranges: switch s goes to shard s·k/n.
        let owner = (0..n).map(|s| s * shards / n).collect();
        ExecPlan {
            shards,
            owner,
            requested,
            clamp_reason,
        }
    }

    /// The single-shard plan every classic entry point uses.
    pub fn single(spec: &ScenarioSpec) -> ExecPlan {
        ExecPlan::partition(spec, 1)
    }

    /// The view shard `shard` compiles and runs with.
    pub fn shard_plan(&self, shard: usize) -> ShardPlan {
        assert!(shard < self.shards, "shard index within plan");
        ShardPlan {
            shard,
            shards: self.shards,
            owner: self.owner.clone(),
            // Shard 0 is the coordinator: it alone materializes the PFS
            // servers (prerecord + CM replay), replays the Nemesis
            // epoch schedule, and contributes the broker/topology
            // sections every shard computes identically.
            materialize_pfs: shard == 0,
        }
    }
}

/// One shard's compile-time view of an [`ExecPlan`]: which switches it
/// owns and whether it is the coordinator.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// This shard's index.
    pub shard: usize,
    /// Total effective shards.
    pub shards: usize,
    /// Switch index → owning shard.
    pub owner: Vec<usize>,
    /// Whether this shard materializes PFS servers and the post-run
    /// replays (true exactly for the coordinator, shard 0).
    pub materialize_pfs: bool,
}

impl ShardPlan {
    /// The trivial plan: one shard owning everything.
    pub fn single() -> ShardPlan {
        ShardPlan {
            shard: 0,
            shards: 1,
            owner: Vec::new(),
            materialize_pfs: true,
        }
    }

    /// Whether this shard owns fabric switch `s` — and therefore every
    /// endpoint attached to it and every event those endpoints run.
    pub fn owns(&self, s: usize) -> bool {
        self.shards == 1 || self.owner.get(s).copied().unwrap_or(0) == self.shard
    }

    /// The shard owning fabric switch `s` (shard 0 under the trivial
    /// plan). Credit records for a cut-crossing circuit are addressed
    /// to the shard owning the *producer's* switch, which is where the
    /// circuit's window lives.
    pub fn owner_of(&self, s: usize) -> usize {
        if self.shards == 1 {
            0
        } else {
            self.owner.get(s).copied().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BackpressureSpec, FaultSpec, ScenarioSpec};
    use pegasus_sim::time::MS;

    fn mesh_spec(switches: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::base("part");
        spec.topology.switches = switches;
        spec
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let plan = ExecPlan::partition(&mesh_spec(16), 4);
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.owner.len(), 16);
        // Contiguous, non-decreasing, every shard non-empty.
        for w in plan.owner.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        for k in 0..4 {
            assert_eq!(plan.owner.iter().filter(|&&o| o == k).count(), 4);
        }
    }

    #[test]
    fn more_shards_than_switches_clamps() {
        let plan = ExecPlan::partition(&mesh_spec(3), 8);
        assert_eq!(plan.shards, 3);
        assert!(plan.clamp_reason.is_some());
        // Every switch still owned by a distinct live shard.
        assert_eq!(plan.owner, vec![0, 1, 2]);
    }

    #[test]
    fn backpressure_no_longer_clamps() {
        let mut spec = mesh_spec(8);
        spec.backpressure = BackpressureSpec {
            enabled: true,
            ..spec.backpressure
        };
        let plan = ExecPlan::partition(&spec, 4);
        assert_eq!(plan.shards, 4, "cut-crossing credits shard");
        assert!(plan.clamp_reason.is_none());
    }

    #[test]
    fn switch_death_and_blasts_no_longer_clamp() {
        let mut spec = mesh_spec(8);
        spec.faults.push(FaultSpec::SwitchDeath {
            at: 10 * MS,
            switch: 2,
        });
        spec.faults.push(FaultSpec::BestEffortBlast {
            at: MS,
            until: 5 * MS,
            from_switch: 1,
            to_switch: 6,
            rate_bps: 100_000_000,
            window: 64,
        });
        let plan = ExecPlan::partition(&spec, 4);
        assert_eq!(plan.shards, 4, "repair replicates, blasts export credits");
        assert!(plan.clamp_reason.is_none());
    }

    #[test]
    fn owner_is_identical_across_shard_views() {
        let plan = ExecPlan::partition(&mesh_spec(10), 3);
        for i in 0..plan.shards {
            let sp = plan.shard_plan(i);
            assert_eq!(sp.owner, plan.owner);
            assert_eq!(sp.materialize_pfs, i == 0);
        }
    }
}
