//! Compiling a [`ScenarioSpec`] into a wired system and running it.
//!
//! The builder assembles a [`System`] piecewise — fabric from the
//! topology spec, then per-session devices attached directly to fabric
//! switches — schedules every session's start/stop on the engine,
//! applies the fault schedule, runs to the drain deadline, and folds
//! every layer's statistics into a [`ScenarioReport`].
//!
//! Every session is admitted through the cross-layer QoS broker
//! ([`pegasus::broker::QosBroker`]): its requested resource vector —
//! CPU share, guaranteed video bandwidth (both scaled by the mix's
//! `load` factor) and a file-server stream slot for VoD — is checked
//! against the Nemesis CPU ledger, every ATM hop, and the per-server
//! slot ledgers. Admitted sessions run at full quality; degraded ones
//! at the broker's rung (halved bitrate, frame rate, codec quality and
//! CPU by default); rejected ones are not wired at all. The per-session
//! [`SessionContract`]s, outcome counts and capacity-headroom samples
//! land in the report's `broker` section.
//!
//! Everything stochastic (placement, start times, scenes) draws from
//! one RNG seeded by the spec, so a report is a pure function of
//! `(spec, seed)` — the property the CI determinism gate enforces.
//! Admission is part of that function: which sessions are admitted,
//! degraded or rejected is byte-for-byte reproducible.

use std::cell::RefCell;
use std::rc::Rc;

use pegasus::broker::{
    FlowRequest, Outcome, QosBroker, RejectLayer, ResourceVector, SessionClass, SessionGrant,
    SessionRequest,
};
use pegasus::congestion::{CongestionController, EpochSignal, Verdict};
use pegasus::system::{HostNic, System, SystemBuilder};
use pegasus_atm::cell::{Cell, Vci, CELL_SIZE};
use pegasus_atm::credit::{CreditExportBuf, CreditRef, CreditSink, CreditWindow};
use pegasus_atm::link::{CellSink, Link};
use pegasus_atm::network::{LinkConfig, Network, VcHandle};
use pegasus_atm::signalling::QosSpec;
use pegasus_devices::audio::{AudioConfig, AudioSink, AudioSource};
use pegasus_devices::camera::{Camera, CameraConfig, VideoMode};
use pegasus_devices::display::{Display, Rect, WindowManager};
use pegasus_devices::tile::TileFrame;
use pegasus_devices::video::Scene;
use pegasus_nemesis::faults::{EpochDriver, Fault, FaultSchedule};
use pegasus_nemesis::qosmgr::QosManager;
use pegasus_pfs::cm::CmScheduler;
use pegasus_pfs::disk::DiskConfig;
use pegasus_pfs::log::{FileClass, FileId, LogFs, SEGMENT_BYTES};
use pegasus_pfs::tier::{TierConfig, TieredCache};
use pegasus_sim::rng::{exponential, seeded};
use pegasus_sim::stats::Histogram;
use pegasus_sim::time::{tx_time, Ns, MS, SEC};
use pegasus_sim::Simulator;
use pegasus_streams::playback::{ArrivalSink, PlaybackControl, PlaybackPolicy, StreamId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::partition::ShardPlan;
use crate::report::{
    BackpressureReport, BrokerReport, CacheReport, CellReport, ClassReport, NemesisReport,
    PfsReport, ScenarioReport, ShardSlice, SCHEMA_VERSION,
};
use crate::spec::{Arrival, FaultSpec, ScenarioSpec};

/// Bandwidth reserved for a videophone session's audio flow, never
/// degraded: a call with unintelligible audio is a failed call.
const AUDIO_BPS: u64 = 128_000;

/// CM service period for VoD disk scheduling. A small read still costs
/// a whole RAID stripe (~51 ms on the 1994 array), so the period is
/// sized to amortize one stripe per stream; a server meets its
/// deadlines while `streams × stripe_time < period`.
const VOD_PERIOD: Ns = 500 * MS;

/// CM periods replayed for a run of `duration`.
fn vod_periods(duration: Ns) -> u64 {
    (duration / VOD_PERIOD).max(1)
}

/// One VoD file server: a log file system with pre-recorded
/// continuous-media titles, a rate-guaranteed scheduler over it, and —
/// when the spec enables it — a tiered content cache in front of the
/// log store.
struct VodServer {
    fs: LogFs,
    cm: CmScheduler,
    /// Pre-recorded titles; sessions pick one (title 0 when the spec
    /// records a single title, the classic world).
    files: Vec<FileId>,
    cache: Option<TieredCache>,
}

/// One VoD client's receive side: controller, its stream id, and the
/// cell sink feeding it.
type VodClient = (
    Rc<RefCell<PlaybackControl>>,
    StreamId,
    Rc<RefCell<ArrivalSink>>,
);

/// The blast's discard endpoint: cells vanish here, their credits
/// already returned by the [`CreditSink`] wrapped around it.
struct NullSink;

impl NullSink {
    fn shared() -> Rc<RefCell<NullSink>> {
        Rc::new(RefCell::new(NullSink))
    }
}

impl CellSink for NullSink {
    fn deliver(&mut self, _sim: &mut Simulator, _cell: Cell) {}

    /// Reads no clocks: trains may collapse to one delivery event.
    fn batch_capable(&self) -> bool {
        true
    }
}

/// One live session's running state, kept for the whole run: the
/// broker's grant (whose `vcs` the congestion loop resizes in place),
/// the producer to retune after a renegotiation, and the media
/// circuit's credit window. Also the set signalling walks when a switch
/// dies — `stranded[i]` marks circuits repair gave up on, so no later
/// renegotiation touches their released reservations.
struct SessionBook {
    grant: SessionGrant,
    class: SessionClass,
    /// The media producer (camera, or the VoD paced pusher).
    camera: Option<Rc<RefCell<Camera>>>,
    /// The media circuit's credit window, when backpressure is on.
    credit: Option<CreditRef>,
    /// Parallel to `grant.vcs`: circuit `i` was stranded by a switch
    /// death (reservations already released — never resize it again).
    stranded: Vec<bool>,
}

/// One session's admission record: what it asked for, what the broker
/// granted, and the verdict. The property tests hold the broker to
/// these (ledgers never exceeded, renegotiation only lowers, outcomes
/// a pure function of `(spec, seed)`).
#[derive(Debug, Clone, Copy)]
pub struct SessionContract {
    /// The session's class.
    pub class: SessionClass,
    /// The broker's verdict.
    pub outcome: Outcome,
    /// Requested resource vector (at the mix's load factor).
    pub requested: ResourceVector,
    /// Granted vector (all zeros when rejected).
    pub granted: ResourceVector,
}

/// Outcome counts, per-class quality sums and capacity-headroom samples
/// accumulated while sessions are admitted, folded into
/// [`BrokerReport`] at report time.
#[derive(Default)]
struct BrokerTally {
    admitted: u64,
    degraded: u64,
    rejected: u64,
    rejected_cpu: u64,
    rejected_bandwidth: u64,
    rejected_pfs: u64,
    quality_sum: [u64; 3],
    quality_n: [u64; 3],
    headroom_cpu: Histogram,
    headroom_bw: Histogram,
    headroom_pfs: Histogram,
}

impl BrokerTally {
    /// Records one decision and samples every layer's headroom — the
    /// "capacity headroom over time" series of the report.
    fn record(
        &mut self,
        grant: &SessionGrant,
        class: SessionClass,
        net: &Network,
        broker: &QosBroker,
    ) {
        match grant.outcome {
            Outcome::Admitted => self.admitted += 1,
            Outcome::Degraded => self.degraded += 1,
            Outcome::Rejected(layer) => {
                self.rejected += 1;
                match layer {
                    RejectLayer::Cpu => self.rejected_cpu += 1,
                    RejectLayer::Bandwidth => self.rejected_bandwidth += 1,
                    RejectLayer::PfsSlots => self.rejected_pfs += 1,
                }
            }
        }
        let idx = match class {
            SessionClass::Videophone => 0,
            SessionClass::Vod => 1,
            SessionClass::Tv => 2,
        };
        self.quality_sum[idx] += grant.quality_milli;
        self.quality_n[idx] += 1;
        self.headroom_cpu.record(broker.cpu_headroom_micro());
        let bw = (net.reservable_fraction - net.max_reservation_utilization()) * 1000.0;
        self.headroom_bw.record(bw.max(0.0).floor() as u64);
        self.headroom_pfs.record(broker.pfs_headroom_slots());
    }

    fn quality(&self, idx: usize) -> u64 {
        // A class with no sessions degraded nothing: full quality.
        self.quality_sum[idx]
            .checked_div(self.quality_n[idx])
            .unwrap_or(1000)
    }

    fn into_report(mut self) -> BrokerReport {
        BrokerReport {
            admitted: self.admitted,
            degraded: self.degraded,
            rejected: self.rejected,
            rejected_cpu: self.rejected_cpu,
            rejected_bandwidth: self.rejected_bandwidth,
            rejected_pfs: self.rejected_pfs,
            quality_milli: (self.quality(0), self.quality(1), self.quality(2)),
            headroom_cpu: self.headroom_cpu.summarize(),
            headroom_bandwidth: self.headroom_bw.summarize(),
            headroom_pfs: self.headroom_pfs.summarize(),
        }
    }
}

/// A compiled scenario, ready to run.
pub struct Scenario {
    spec: ScenarioSpec,
    /// The shard this compilation materialized: which switches it owns,
    /// how many peers it has, whether it is the coordinator. The
    /// classic path compiles under [`ShardPlan::single`].
    plan: ShardPlan,
    /// The assembled installation.
    pub sys: System,
    /// The engine that will drive it.
    pub sim: Simulator,
    /// Per-class session counts (videophone, vod, tv) — requested, not
    /// admitted; the broker section of the report gives the outcomes.
    pub counts: (usize, usize, usize),
    /// The QoS broker holding the run's capacity ledgers.
    pub broker: QosBroker,
    /// One contract per requested session, in setup order.
    pub contracts: Vec<SessionContract>,
    tally: BrokerTally,
    /// Single-stream displays (one videophone session each).
    displays: Vec<Rc<RefCell<Display>>>,
    /// Control-room displays merging a whole TV group's feeds.
    tv_displays: Vec<Rc<RefCell<Display>>>,
    audio_sinks: Vec<Rc<RefCell<AudioSink>>>,
    vod_clients: Vec<VodClient>,
    tx_links: Vec<Rc<RefCell<Link>>>,
    vod_servers: Vec<VodServer>,
    /// One book entry per admitted session: the grant (held live so the
    /// congestion loop can renegotiate it), the producer, the credit
    /// window, and the circuits signalling repairs after a switch death.
    books: Vec<SessionBook>,
    /// Best-effort blast circuits (congestion sources), with their own
    /// credit windows: pressure by construction, never overflow. Every
    /// shard carries an entry per blast (the route is replicated state
    /// switch-death repair walks); the window is `Some` only on the
    /// shard owning the pump. The bool marks a blast stranded by a
    /// switch death.
    blasts: Vec<(VcHandle, Option<CreditRef>, bool)>,
    /// Outbound credit-return records, one buffer per *producer* shard:
    /// a consumer-side [`CreditSink`] in export mode appends here, and
    /// the executor seals the records into that shard's mailbox at the
    /// next epoch boundary. Empty buffers (and an empty vec on the
    /// classic path) cost nothing.
    credit_out: Vec<CreditExportBuf>,
    /// Registry of credit windows whose producer this shard owns,
    /// keyed by delivery VCI and sorted for binary search — the lookup
    /// table for applying sealed credit returns and remote reclaims.
    credit_windows: Vec<(Vci, CreditRef)>,
}

/// Runtime counters of one shard's epoch loop — all zero on the
/// classic single-threaded path, which never waits at a barrier.
#[derive(Debug, Default)]
pub struct ShardRuntime {
    /// Barrier crossings the shard waited at.
    pub barrier_waits: u64,
    /// Sealed cells published onto outbound cut trunks.
    pub cells_exported: u64,
    /// Sealed cells accepted from other shards.
    pub cells_imported: u64,
    /// The conservative lookahead the epoch loop ran under, in ns.
    pub lookahead_ns: u64,
    /// Outbound cut trunks this shard exports on.
    pub cut_trunks: u64,
    /// Sealed credit-return records published to other shards.
    pub credits_crossed: u64,
    /// Circuits this shard's replica walked during replicated
    /// switch-death repair (rerouted + stranded; identical on every
    /// shard by construction).
    pub repairs_replicated: u64,
}

/// Everything one shard measured, in `Send` form — plain counters,
/// histograms and report fragments, no `Rc`. [`assemble`] folds a
/// vector of these into the final [`ScenarioReport`]. The classic
/// single-shard path produces exactly one, so both paths share the
/// fold and cannot drift apart.
pub struct ShardOutcome {
    shard: usize,
    events_executed: u64,
    runtime: ShardRuntime,
    tiles_blitted: u64,
    video_lat: Histogram,
    video_jit: Histogram,
    audio_underruns: u64,
    audio_lat: Histogram,
    audio_jit: Histogram,
    vod_presented: u64,
    playback_late: u64,
    vod_lat: Histogram,
    vod_jit: Histogram,
    /// `delivered` is left zero here; [`assemble`] computes it from the
    /// summed totals.
    cells: CellReport,
    peak_queue_cells: u64,
    vcs_rerouted: u64,
    vcs_stranded: u64,
    bp: BackpressureReport,
    coord: Option<CoordinatorOutcome>,
}

impl ShardOutcome {
    /// This outcome's shard index.
    pub(crate) fn shard(&self) -> usize {
        self.shard
    }
}

/// Sections only the coordinator (shard 0) contributes: either
/// identical on every shard by replication (broker ledgers, topology
/// counts) or requiring state only it materializes (the PFS CM replay)
/// or replays (the Nemesis epoch schedule).
struct CoordinatorOutcome {
    switches: u64,
    endpoints: u64,
    max_link_utilization: f64,
    broker: BrokerReport,
    pfs: PfsReport,
    cache: CacheReport,
    nemesis: NemesisReport,
}

/// The camera settings a session runs at after renegotiation: frame
/// rate and Motion-JPEG quality scale with the granted rung (floored,
/// never below 1), so a degraded session offers the network less load
/// — the whole point of renegotiating down instead of dropping cells.
fn camera_for(cfg: CameraConfig, quality_milli: u64) -> CameraConfig {
    if quality_milli >= 1000 {
        return cfg;
    }
    let mut degraded = cfg;
    degraded.fps = ((cfg.fps as u64 * quality_milli / 1000).max(1)) as u32;
    if let VideoMode::Mjpeg(q) = cfg.mode {
        degraded.mode = VideoMode::Mjpeg(((q as u64 * quality_milli / 1000).max(1)) as u8);
    }
    degraded
}

/// Draws a title index from a Zipf law over `titles` titles with
/// exponent `alpha_milli / 1000` — title 0 the most popular. α = 0
/// degenerates to uniform. Only called when a spec records more than
/// one title, so single-title specs keep their RNG streams untouched.
fn zipf_pick(rng: &mut SmallRng, titles: usize, alpha_milli: u64) -> usize {
    let alpha = alpha_milli as f64 / 1000.0;
    let weights: Vec<f64> = (0..titles)
        .map(|k| 1.0 / ((k + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for (k, w) in weights.iter().enumerate() {
        if u < *w {
            return k;
        }
        u -= *w;
    }
    titles - 1
}

fn pick_scene(rng: &mut SmallRng) -> Scene {
    if rng.gen_range(0..2u32) == 0 {
        Scene::MovingGradient
    } else {
        Scene::TestCard
    }
}

fn start_time(rng: &mut SmallRng, arrival: Arrival, poisson_clock: &mut Ns) -> Ns {
    match arrival {
        Arrival::Immediate => 0,
        Arrival::Uniform { window } => rng.gen_range(0..window.max(1)),
        Arrival::Poisson { mean_gap } => {
            *poisson_clock += exponential(rng, mean_gap as f64) as Ns;
            *poisson_clock
        }
    }
}

/// Wires one credited circuit's two halves as this shard sees them.
///
/// The producer half (the window, created iff this shard owns the
/// source switch) is returned and recorded in the registry so sealed
/// returns and remote reclaims can find it. The consumer half — how
/// drained cells' credits travel back — is registered on `sink` (which
/// the caller built iff it owns the destination switch) by geometry
/// and ownership: same switch → immediate; cross-switch with the
/// window in this address space → delayed by `ret_delay`; cross-shard
/// → sealed export records addressed to the producer's shard.
#[allow(clippy::too_many_arguments)]
fn wire_credit(
    plan: &ShardPlan,
    ret_delay: Ns,
    window_cells: u64,
    dst_vci: Vci,
    src_switch: usize,
    dst_switch: usize,
    sink: Option<&Rc<RefCell<CreditSink>>>,
    registry: &mut Vec<(Vci, CreditRef)>,
    credit_out: &[CreditExportBuf],
) -> Option<CreditRef> {
    let window = plan.owns(src_switch).then(|| {
        let w = CreditWindow::shared(window_cells);
        registry.push((dst_vci, w.clone()));
        w
    });
    if let Some(cs) = sink {
        let mut cs = cs.borrow_mut();
        if src_switch == dst_switch {
            // Same switch ⇒ same owner: the window is always local and
            // the return is a same-host wire.
            cs.register(dst_vci, window.clone().expect("same switch, same shard"));
        } else if let Some(w) = &window {
            cs.register_delayed(dst_vci, w.clone(), ret_delay);
        } else {
            let producer = plan.owner_of(src_switch);
            cs.register_export(dst_vci, ret_delay, credit_out[producer].clone());
        }
    }
    window
}

/// Compiles `spec` into a wired, scheduled [`Scenario`] that owns the
/// whole city (the classic single-threaded path).
pub fn compile(spec: &ScenarioSpec) -> Scenario {
    compile_for(spec, ShardPlan::single())
}

/// Compiles `spec` into the world as shard `plan.shard` sees it.
///
/// Every shard builds the *full* city — same RNG draws, same admission
/// decisions, same VCIs, same broker ledgers — so all shards agree on
/// every compile-time fact without communicating. Only runtime activity
/// is partitioned: an event is armed on the one shard owning the
/// switch its device hangs off, and statistics are collected only from
/// owned devices, so the per-shard measurements sum to exactly the
/// single-shard ones. Remote replicas of switches and devices exist but
/// stay silent — no event ever touches them.
pub fn compile_for(spec: &ScenarioSpec, plan: ShardPlan) -> Scenario {
    let mut rng = seeded(spec.seed);
    let mut sys = SystemBuilder::new()
        .topology(spec.topology.shape, spec.topology.switches)
        .link(spec.topology.link)
        .build();
    let mut sim = Simulator::new();
    let n_fabric = sys.fabric.len();
    let counts = spec.mix.counts(spec.sessions);
    let (n_vp, n_vod, n_tv) = counts;

    // Requested per-session demand at the mix's load factor.
    let load = spec.mix.load;
    let req_bps = (spec.video_bps as f64 * load).round() as u64;
    let req_cpu = (spec.broker.cpu_per_session_micro as f64 * load).round() as u64;
    let req_disk = (spec.vod_disk_rate as f64 * load).round() as u64;

    let n_servers = spec.pfs_servers.max(1).min(n_vod.max(1));
    let mut broker = QosBroker::new(
        spec.broker.cpu_capacity_micro,
        if n_vod > 0 { n_servers } else { 0 },
        spec.broker.pfs_slots_per_server,
        spec.broker.degrade_milli,
    );

    let mut scenario = Scenario {
        spec: spec.clone(),
        plan: ShardPlan::single(), // replaced by `plan` below
        counts,
        contracts: Vec::new(),
        tally: BrokerTally::default(),
        displays: Vec::new(),
        tv_displays: Vec::new(),
        audio_sinks: Vec::new(),
        vod_clients: Vec::new(),
        tx_links: Vec::new(),
        vod_servers: Vec::new(),
        books: Vec::new(),
        blasts: Vec::new(),
        credit_out: (0..plan.shards)
            .map(|_| Rc::new(RefCell::new(Vec::new())))
            .collect(),
        credit_windows: Vec::new(),
        // Placeholders, replaced below once sessions are wired.
        broker: QosBroker::new(0, 0, 0, 1000),
        sys: System::new(),
        sim: Simulator::new(),
    };

    let decide = |scenario: &mut Scenario,
                  sys: &mut System,
                  broker: &mut QosBroker,
                  req: &SessionRequest|
     -> SessionGrant {
        let grant = sys.admit_session(broker, req);
        scenario.tally.record(&grant, req.class, &sys.net, broker);
        scenario.contracts.push(SessionContract {
            class: req.class,
            outcome: grant.outcome,
            requested: grant.requested,
            granted: grant.granted,
        });
        grant
    };
    let bp = spec.backpressure;
    // Cross-switch circuits return credits one reverse trunk crossing
    // later: serialization (ceiling division, so never below the
    // executor's floored lookahead) plus propagation. A pure function
    // of the spec — identical at every shard count, and applied on the
    // classic path too, so the physics don't depend on the plan.
    let ret_delay: Ns =
        tx_time(CELL_SIZE, spec.topology.link.rate_bps) + spec.topology.link.prop_delay;
    let make_display = || {
        if spec.headless_displays {
            Display::shared_headless(176, 144)
        } else {
            Display::shared(176, 144)
        }
    };

    let mut poisson_clock: Ns = 0;
    let pick_pair = |rng: &mut SmallRng| -> (usize, usize) {
        let src = rng.gen_range(0..n_fabric);
        let dst = if n_fabric > 1 {
            // Different switch: sessions should cross the fabric.
            let d = rng.gen_range(0..n_fabric - 1);
            if d >= src {
                d + 1
            } else {
                d
            }
        } else {
            src
        };
        (src, dst)
    };

    // ---- Videophone sessions: camera→display plus audio, one way. ----
    for _ in 0..n_vp {
        let (src, dst) = pick_pair(&mut rng);
        let (owns_src, owns_dst) = (plan.owns(src), plan.owns(dst));
        let t0 = start_time(&mut rng, spec.arrival, &mut poisson_clock).min(spec.duration);
        let scene = pick_scene(&mut rng);

        let cam_ep = sys.device(src, HostNic::shared());
        // Remote-silent pruning: heavy device state (framebuffers,
        // synthetic video, jitter buffers) is built only on the shard
        // owning its switch. An unowned endpoint never receives a cell,
        // so a null sink keeps the endpoint (and VCI) numbering
        // identical while the replica costs nothing.
        let display = owns_dst.then(&make_display);
        // With backpressure on, the consuming endpoint fronts its sink
        // with a credit gate — built only where the consumer lives; the
        // gate's return path (immediate, delayed, or cross-shard
        // export) is wired after admission fixes the delivery VCI.
        let credit_sink = (bp.enabled && owns_dst)
            .then(|| CreditSink::wrap(display.clone().expect("owner builds the display")));
        let disp_ep = match (&credit_sink, &display) {
            (Some(cs), _) => sys.device(dst, cs.clone()),
            (None, Some(d)) => sys.device(dst, d.clone()),
            (None, None) => sys.device(dst, NullSink::shared()),
        };
        let audio_src_ep = sys.device(src, HostNic::shared());
        let audio_sink =
            owns_dst.then(|| AudioSink::shared(AudioConfig::telephony(), spec.audio_jitter_buffer));
        let audio_sink_ep = match &audio_sink {
            Some(s) => sys.device(dst, s.clone()),
            None => sys.device(dst, NullSink::shared()),
        };

        let req = SessionRequest {
            class: SessionClass::Videophone,
            media_flows: vec![FlowRequest {
                src: cam_ep,
                dst: disp_ep,
                bps: req_bps,
            }],
            fixed_flows: vec![FlowRequest {
                src: audio_src_ep,
                dst: audio_sink_ep,
                bps: AUDIO_BPS,
            }],
            cpu_micro: req_cpu,
            pfs_server: None,
        };
        let grant = decide(&mut scenario, &mut sys, &mut broker, &req);
        if !grant.is_admitted() {
            continue;
        }
        let (vc_src, vc_dst, avc_src) = (
            grant.vcs[0].src_vci,
            grant.vcs[0].dst_vci,
            grant.vcs[1].src_vci,
        );

        if let Some(display) = &display {
            let mut wm = WindowManager::new(display.clone(), 1);
            wm.create(vc_dst, Rect::new(0, 0, 176, 144));
            scenario.displays.push(display.clone());
        }
        let cam_cfg = camera_for(spec.camera, grant.quality_milli);
        let cam = owns_src.then(|| sys.camera_on(cam_ep, scene, cam_cfg, vc_src));
        let credit = bp.enabled.then(|| {
            let w = wire_credit(
                &plan,
                ret_delay,
                bp.window_cells,
                vc_dst,
                src,
                dst,
                credit_sink.as_ref(),
                &mut scenario.credit_windows,
                &scenario.credit_out,
            );
            if let (Some(w), Some(cam)) = (&w, &cam) {
                cam.borrow_mut().set_credit(w.clone());
            }
            w
        });
        let credit = credit.flatten();
        if owns_src {
            scenario.tx_links.push(sys.net.endpoint_tx(cam_ep));
        }
        let stranded = vec![false; grant.vcs.len()];
        scenario.books.push(SessionBook {
            grant,
            class: SessionClass::Videophone,
            camera: cam.clone(),
            credit,
            stranded,
        });
        if let Some(cam) = cam {
            let (cam_start, cam_stop) = (cam.clone(), cam);
            sim.schedule_at(t0, move |sim| Camera::start(&cam_start, sim));
            sim.schedule_at(spec.duration, move |_| cam_stop.borrow_mut().stop());
        }

        let audio =
            owns_src.then(|| sys.audio_source_on(audio_src_ep, AudioConfig::telephony(), avc_src));
        if owns_src {
            scenario.tx_links.push(sys.net.endpoint_tx(audio_src_ep));
        }
        let duration = spec.duration;
        // The source's start and the sink's play-out start are separate
        // events — each lands on the shard owning its end of the call.
        if let Some(audio) = audio {
            let (a_start, a_stop) = (audio.clone(), audio);
            sim.schedule_at(t0, move |sim| AudioSource::start(&a_start, sim));
            sim.schedule_at(spec.duration, move |_| a_stop.borrow_mut().stop());
        }
        if let Some(audio_sink) = audio_sink {
            scenario.audio_sinks.push(audio_sink.clone());
            sim.schedule_at(t0, move |sim| {
                AudioSink::start_playout(&audio_sink, sim, duration)
            });
        }
    }

    // ---- VoD sessions: file server → synchronized playback client. ----
    // The servers' disk state (prerecord + CM replay) lives only on the
    // coordinator: the replay is post-hoc and global, not event-driven.
    if n_vod > 0 && plan.materialize_pfs {
        // Rate ceiling sized to a slot-full server at the requested
        // rate: the stream *slots* are the binding capacity, enforced
        // by the broker's ledger and the scheduler's own cap.
        let slots = spec.broker.pfs_slots_per_server;
        let per_server_rate = req_disk * slots.max(1) as u64;
        let titles = spec.cache.titles_per_server.max(1);
        for _ in 0..n_servers {
            let mut fs = LogFs::new(DiskConfig::hp_1994());
            fs.raid_mut().set_store(false);
            // Pre-record enough media per title for every stream to read
            // the whole replay from offset 0, even at the full requested
            // rate.
            let replay = vod_periods(spec.duration) * VOD_PERIOD;
            let need = (req_disk as u128 * replay as u128 / SEC as u128) as usize;
            let mut files = Vec::with_capacity(titles);
            for _ in 0..titles {
                let file = fs.create(FileClass::Continuous);
                for _ in 0..need.div_ceil(SEGMENT_BYTES).max(1) {
                    fs.append(file, &vec![0u8; SEGMENT_BYTES])
                        .expect("prerecord");
                }
                files.push(file);
            }
            fs.sync().expect("prerecord sync");
            let mut cm = CmScheduler::new(VOD_PERIOD, per_server_rate * 2 + 1_000_000);
            cm.set_max_streams(slots);
            let cache = spec.cache.enabled.then(|| {
                let mut c = TieredCache::new(TierConfig {
                    hot_chunks: spec.cache.hot_chunks,
                    warm_chunks: spec.cache.warm_chunks,
                    prefetch_chunks: spec.cache.prefetch_chunks,
                    ..TierConfig::default()
                });
                // Title 0 is the most popular under the Zipf draw and
                // the flash crowd's target — the one the report's
                // crowd-hit gate watches.
                c.set_crowd_file(files[0]);
                c
            });
            scenario.vod_servers.push(VodServer {
                fs,
                cm,
                files,
                cache,
            });
        }
    }
    let titles = spec.cache.titles_per_server.max(1);
    for i in 0..n_vod {
        let (src, dst) = pick_pair(&mut rng);
        let (owns_src, owns_dst) = (plan.owns(src), plan.owns(dst));
        let t0 = start_time(&mut rng, spec.arrival, &mut poisson_clock).min(spec.duration);
        let scene = pick_scene(&mut rng);
        // Which title this viewer plays: the flash-crowd fraction —
        // the *last* arrivals, as a real flash crowd piles onto an
        // already-playing hit — is pinned to title 0; the rest draw
        // from the Zipf law. With one recorded title there is no draw
        // at all — the classic RNG stream is untouched.
        let title = if titles > 1 {
            if (i as u64) * 1000 >= n_vod as u64 * (1000 - spec.cache.crowd_milli) {
                0
            } else {
                zipf_pick(&mut rng, titles, spec.cache.zipf_alpha_milli)
            }
        } else {
            0
        };

        let client = owns_dst.then(|| {
            let ctl = PlaybackControl::shared(PlaybackPolicy::Synchronized {
                target_latency: spec.vod_target_latency,
            });
            let stream = ctl.borrow_mut().add_stream("vod");
            let sink = ArrivalSink::shared(ctl.clone(), stream, |bytes| {
                TileFrame::decode(bytes).ok().map(|tf| tf.timestamp)
            });
            (ctl, stream, sink)
        });
        let credit_sink = (bp.enabled && owns_dst)
            .then(|| CreditSink::wrap(client.as_ref().expect("owner builds the client").2.clone()));
        let client_ep = match (&credit_sink, &client) {
            (Some(cs), _) => sys.device(dst, cs.clone()),
            (None, Some((_, _, sink))) => sys.device(dst, sink.clone()),
            (None, None) => sys.device(dst, NullSink::shared()),
        };
        let server_ep = sys.device(src, HostNic::shared());

        let req = SessionRequest {
            class: SessionClass::Vod,
            media_flows: vec![FlowRequest {
                src: server_ep,
                dst: client_ep,
                bps: req_bps,
            }],
            fixed_flows: Vec::new(),
            cpu_micro: req_cpu,
            pfs_server: Some(i % n_servers),
        };
        let grant = decide(&mut scenario, &mut sys, &mut broker, &req);
        if !grant.is_admitted() {
            continue;
        }
        let (vc_src, vc_dst) = (grant.vcs[0].src_vci, grant.vcs[0].dst_vci);

        // The continuous-media stack pushes tiles at frame rate; the
        // camera model doubles as that paced pusher, renegotiated down
        // with the rest of the session when degraded.
        let cam_cfg = camera_for(spec.camera, grant.quality_milli);
        let cam = owns_src.then(|| sys.camera_on(server_ep, scene, cam_cfg, vc_src));
        let credit = bp.enabled.then(|| {
            let w = wire_credit(
                &plan,
                ret_delay,
                bp.window_cells,
                vc_dst,
                src,
                dst,
                credit_sink.as_ref(),
                &mut scenario.credit_windows,
                &scenario.credit_out,
            );
            if let (Some(w), Some(cam)) = (&w, &cam) {
                cam.borrow_mut().set_credit(w.clone());
            }
            w
        });
        let credit = credit.flatten();
        if owns_src {
            scenario.tx_links.push(sys.net.endpoint_tx(server_ep));
        }
        if let Some((ctl, stream, sink)) = client {
            scenario.vod_clients.push((ctl, stream, sink));
        }
        // Disk side: admit the stream on its granted server at the rate
        // the broker's contract actually buys — the same hint drives
        // the CM reservation and the cache's prefetch horizon.
        let granted_disk = grant.disk_rate_hint(req_disk);
        let stranded = vec![false; grant.vcs.len()];
        scenario.books.push(SessionBook {
            grant,
            class: SessionClass::Vod,
            camera: cam.clone(),
            credit,
            stranded,
        });
        if let Some(cam) = cam {
            let (c_start, c_stop) = (cam.clone(), cam);
            sim.schedule_at(t0, move |sim| Camera::start(&c_start, sim));
            sim.schedule_at(spec.duration, move |_| c_stop.borrow_mut().stop());
        }
        if plan.materialize_pfs {
            let server = &mut scenario.vod_servers[i % n_servers];
            let fid = server.files[title.min(server.files.len() - 1)];
            server
                .cm
                .admit(fid, granted_disk, 0)
                .expect("broker slot grant implies CM capacity");
            if let Some(cache) = &mut server.cache {
                cache.register_stream(fid, granted_disk);
            }
        }
    }

    // ---- TV distribution: studio cameras into control-room stacks. ----
    let group = spec.tv_group.max(1);
    let mut tv_left = n_tv;
    while tv_left > 0 {
        let feeds = group.min(tv_left);
        tv_left -= feeds;
        let dst = rng.gen_range(0..n_fabric);
        let owns_dst = plan.owns(dst);
        let display = owns_dst.then(&make_display);
        // One credit gate per control room: every admitted feed
        // registers its own window on it, keyed by delivery VCI.
        let credit_sink = (bp.enabled && owns_dst)
            .then(|| CreditSink::wrap(display.clone().expect("owner builds the display")));
        let disp_ep = match (&credit_sink, &display) {
            (Some(cs), _) => sys.device(dst, cs.clone()),
            (None, Some(d)) => sys.device(dst, d.clone()),
            (None, None) => sys.device(dst, NullSink::shared()),
        };
        let wm = display.as_ref().map(|d| {
            scenario.tv_displays.push(d.clone());
            Rc::new(RefCell::new(WindowManager::new(d.clone(), 1)))
        });
        let mut feed_vcis = Vec::new();
        let mut group_t0 = spec.duration;
        for _ in 0..feeds {
            let src = rng.gen_range(0..n_fabric);
            let owns_src = plan.owns(src);
            let t0 = start_time(&mut rng, spec.arrival, &mut poisson_clock).min(spec.duration);
            let scene = pick_scene(&mut rng);
            let cam_ep = sys.device(src, HostNic::shared());

            let req = SessionRequest {
                class: SessionClass::Tv,
                media_flows: vec![FlowRequest {
                    src: cam_ep,
                    dst: disp_ep,
                    bps: req_bps,
                }],
                fixed_flows: Vec::new(),
                cpu_micro: req_cpu,
                pfs_server: None,
            };
            let grant = decide(&mut scenario, &mut sys, &mut broker, &req);
            if !grant.is_admitted() {
                continue;
            }
            let (vc_src, vc_dst) = (grant.vcs[0].src_vci, grant.vcs[0].dst_vci);
            group_t0 = group_t0.min(t0);

            if let Some(wm) = &wm {
                wm.borrow_mut().create(vc_dst, Rect::new(0, 0, 176, 144));
            }
            feed_vcis.push(vc_dst);
            let cam_cfg = camera_for(spec.camera, grant.quality_milli);
            let cam = owns_src.then(|| sys.camera_on(cam_ep, scene, cam_cfg, vc_src));
            let credit = bp.enabled.then(|| {
                let w = wire_credit(
                    &plan,
                    ret_delay,
                    bp.window_cells,
                    vc_dst,
                    src,
                    dst,
                    credit_sink.as_ref(),
                    &mut scenario.credit_windows,
                    &scenario.credit_out,
                );
                if let (Some(w), Some(cam)) = (&w, &cam) {
                    cam.borrow_mut().set_credit(w.clone());
                }
                w
            });
            let credit = credit.flatten();
            if owns_src {
                scenario.tx_links.push(sys.net.endpoint_tx(cam_ep));
            }
            let stranded = vec![false; grant.vcs.len()];
            scenario.books.push(SessionBook {
                grant,
                class: SessionClass::Tv,
                camera: cam.clone(),
                credit,
                stranded,
            });
            if let Some(cam) = cam {
                let (c_start, c_stop) = (cam.clone(), cam);
                sim.schedule_at(t0, move |sim| Camera::start(&c_start, sim));
                sim.schedule_at(spec.duration, move |_| c_stop.borrow_mut().stop());
            }
        }
        // The director cuts round-robin through the admitted feeds: one
        // window raise per cut, pure control, run where the control
        // room's display lives. A room whose every feed was rejected
        // has nothing to cut between.
        if let Some(wm) = wm.filter(|_| !feed_vcis.is_empty()) {
            let mut cut_no = 0usize;
            let mut t = group_t0 + spec.tv_cut_period;
            while t < spec.duration {
                let wm = wm.clone();
                let vci = feed_vcis[cut_no % feed_vcis.len()];
                sim.schedule_at(t, move |_| wm.borrow_mut().raise(vci));
                cut_no += 1;
                t += spec.tv_cut_period;
            }
        }
    }

    // ---- Fault schedule: network incidents armed on the engine. ----
    // `SwitchDeath` and `DiskFail` are not armed here: the first needs
    // the (exclusively owned) `Network` for signalling repair, so
    // [`Scenario::run`] applies it between engine segments at the fault
    // time; the second lands on the post-hoc CM replay.
    for fault in &spec.faults {
        match *fault {
            FaultSpec::SwitchDegrade {
                at,
                switch,
                queue_capacity,
            } => {
                assert!(switch < sys.fabric.len(), "fault names a fabric switch");
                // Armed only on the owner: the degradation bites where
                // cells transit the switch, and only the owner's
                // replica carries traffic.
                if plan.owns(switch) {
                    let sw = sys.net.switch(sys.fabric[switch]).clone();
                    sim.schedule_at(at.min(spec.duration), move |_| {
                        sw.borrow_mut().queue_capacity = queue_capacity;
                    });
                }
            }
            FaultSpec::LinkFlap { at, until, switch } => {
                assert!(switch < sys.fabric.len(), "fault names a fabric switch");
                assert!(until >= at, "flap must end after it starts");
                // Outage drops happen at send time on the transmitting
                // switch's output links, so the owner arms the flap —
                // including on cut trunks, whose tx side it owns.
                if plan.owns(switch) {
                    let sw = sys.net.switch(sys.fabric[switch]).clone();
                    sim.schedule_at(at.min(spec.duration), move |_| {
                        for link in sw.borrow_mut().output_links_mut() {
                            link.set_outage_until(until);
                        }
                    });
                }
            }
            FaultSpec::BestEffortBlast {
                at,
                until,
                from_switch,
                to_switch,
                rate_bps,
                window,
            } => {
                assert!(
                    from_switch < sys.fabric.len() && to_switch < sys.fabric.len(),
                    "blast names fabric switches"
                );
                assert!(until >= at, "blast must end after it starts");
                assert!(rate_bps > 0 && window > 0, "blast needs rate and credits");
                // The injector gets its own fat access link so the
                // bottleneck is the shared trunk, not its first hop; the
                // sink end discards, its credit gate returning credits
                // as cells drain — which is exactly what bounds the
                // standing queue the blast builds in the fabric. The
                // pump lives with the source switch's owner, the gate
                // with the sink's; when those are different shards the
                // returns cross as sealed records like any other
                // cut-crossing circuit's.
                let blast_link = LinkConfig {
                    rate_bps,
                    prop_delay: spec.topology.link.prop_delay,
                };
                let (owns_from, owns_to) = (plan.owns(from_switch), plan.owns(to_switch));
                let csink = owns_to.then(|| CreditSink::wrap(NullSink::shared()));
                let src_ep = sys.net.add_endpoint_auto(
                    sys.fabric[from_switch],
                    blast_link,
                    NullSink::shared(),
                );
                let dst_ep = match &csink {
                    Some(cs) => sys.net.add_endpoint_auto(
                        sys.fabric[to_switch],
                        spec.topology.link,
                        cs.clone(),
                    ),
                    None => sys.net.add_endpoint_auto(
                        sys.fabric[to_switch],
                        spec.topology.link,
                        NullSink::shared(),
                    ),
                };
                let vc = sys
                    .net
                    .open_vc(src_ep, dst_ep, QosSpec::best_effort(0))
                    .expect("best-effort blast needs only a route");
                let w = wire_credit(
                    &plan,
                    ret_delay,
                    window,
                    vc.dst_vci,
                    from_switch,
                    to_switch,
                    csink.as_ref(),
                    &mut scenario.credit_windows,
                    &scenario.credit_out,
                );
                if owns_from {
                    let tx = sys.net.endpoint_tx(src_ep);
                    scenario.tx_links.push(tx.clone());
                    // Offer bursts at the injector's line rate; an empty
                    // window holds the whole burst at the source.
                    const BURST: u64 = 32;
                    let tick: Ns = BURST * CELL_SIZE as u64 * 8 * SEC / rate_bps;
                    let vci = vc.src_vci;
                    let until_t = until.min(spec.duration);
                    let pump_w = w.clone().expect("pump owner holds the window");
                    sim.schedule_at(at.min(spec.duration), move |sim| {
                        let pump_w = pump_w.clone();
                        let tx = tx.clone();
                        sim.schedule_chain(move |sim| {
                            if sim.now() >= until_t {
                                return None;
                            }
                            if pump_w.borrow_mut().try_acquire_at(sim.now(), BURST) {
                                let mut l = tx.borrow_mut();
                                for _ in 0..BURST {
                                    l.send(sim, Cell::new(vci));
                                }
                            }
                            Some(sim.now() + tick.max(1))
                        });
                    });
                }
                scenario.blasts.push((vc, w, false));
            }
            FaultSpec::SwitchDeath { switch, .. } => {
                assert!(switch < sys.fabric.len(), "fault names a fabric switch");
            }
            FaultSpec::DiskFail { server, disk, .. } => {
                // Validated against the planned server count, not the
                // materialized set — worker shards materialize none.
                let planned = if n_vod > 0 { n_servers } else { 0 };
                assert!(server < planned.max(1), "fault names a VoD server");
                assert!(
                    disk <= pegasus_pfs::raid::DATA_DISKS,
                    "fault names a RAID member"
                );
            }
            FaultSpec::CpuLoadSpike { .. } => {}
        }
    }

    // Sealed credit returns and remote reclaims look windows up by
    // delivery VCI; sort once so application is a binary search.
    scenario.credit_windows.sort_by_key(|e| e.0);
    scenario.sys = sys;
    scenario.sim = sim;
    scenario.broker = broker;
    scenario.plan = plan;
    scenario
}

/// A point on the control-plane timeline where the engine must pause:
/// a switch death (structural repair) or a congestion epoch boundary
/// (sampling + renegotiation). Every shard computes the same marks
/// from the spec, so the executor's epoch loop and the classic path
/// pause at identical instants.
pub(crate) enum ControlMark {
    /// `SwitchDeath` fault on this fabric switch.
    Death(usize),
    /// Backpressure congestion-epoch boundary.
    Epoch,
}

/// The sorted control-plane timeline of `spec`: deaths at their fault
/// times, epoch boundaries on the backpressure grid. Stable by
/// `(time, kind)` with deaths first, so a death at an epoch boundary
/// lands before the sample — on every shard, and on the classic path.
pub(crate) fn control_marks(spec: &ScenarioSpec) -> Vec<(Ns, ControlMark)> {
    let bp = spec.backpressure;
    let mut marks: Vec<(Ns, u8, ControlMark)> = spec
        .faults
        .iter()
        .filter_map(|f| match *f {
            FaultSpec::SwitchDeath { at, switch } => {
                Some((at.min(spec.duration), 0u8, ControlMark::Death(switch)))
            }
            _ => None,
        })
        .collect();
    if bp.enabled {
        let mut t = bp.epoch.max(1);
        while t <= spec.duration {
            marks.push((t, 1, ControlMark::Epoch));
            t += bp.epoch.max(1);
        }
    }
    marks.sort_by_key(|&(t, tag, _)| (t, tag));
    marks.into_iter().map(|(t, _, m)| (t, m)).collect()
}

impl Scenario {
    /// The shard plan this scenario was compiled under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The spec this scenario was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// When the engine stops: the run length plus a drain long enough
    /// for held playback items to present. Every shard computes the
    /// same deadline, so the epoch loops agree on the final barrier.
    pub fn end_time(&self) -> Ns {
        self.spec.duration + self.spec.drain.max(self.spec.vod_target_latency + 20 * MS)
    }

    /// Settles the fabric's per-VCI drop counters against the session
    /// books (see [`reconcile_drops`]). Reclaims against windows this
    /// shard owns happen in place; drops on circuits whose window lives
    /// on another shard are appended to `remote` as `(delivery VCI, n)`
    /// reclaim records for the executor to broadcast. The classic path
    /// never produces any (one shard owns every window).
    pub(crate) fn settle_drops(&self, remote: &mut Vec<(Vci, u64)>) -> (u64, u64) {
        reconcile_drops(
            &self.sys,
            &self.books,
            &self.blasts,
            self.spec.backpressure.enabled,
            remote,
        )
    }

    /// The congestion controller the spec's hysteresis constants
    /// define. Every shard builds an identical replica.
    pub(crate) fn make_controller(&self) -> CongestionController {
        let bp = self.spec.backpressure;
        CongestionController::new(
            bp.down_after,
            bp.up_after,
            bp.stall_threshold,
            bp.headroom_cells,
        )
    }

    /// Samples this shard's slice of one epoch's congestion evidence:
    /// stalls from the credit windows it owns, the peak backlog of its
    /// switches (unowned replicas are silent and read zero), and slot
    /// pressure from the replicated broker ledgers. Merging every
    /// shard's sample reproduces the single-shard signal exactly.
    pub(crate) fn sample_epoch_signal(&mut self) -> EpochSignal {
        let mut sig = EpochSignal::default();
        for b in &mut self.books {
            if let Some(w) = &b.credit {
                sig.credit_stalls += w.borrow_mut().take_epoch_stalls();
            }
        }
        for i in 0..self.sys.net.switch_count() {
            let sw = self.sys.net.switch(pegasus_atm::network::SwitchId(i));
            sig.peak_queue_cells = sig
                .peak_queue_cells
                .max(sw.borrow_mut().stats.take_epoch_peak());
        }
        sig.cm_slot_pressure = self.counts.1 > 0 && self.broker.pfs_headroom_slots() == 0;
        sig
    }

    /// Kills fabric switch `switch` and repairs the circuits that
    /// crossed it. Signalling walks every live circuit: those crossing
    /// the corpse are re-routed with their endpoint VCIs pinned so the
    /// attached devices (and their credit registrations, keyed by
    /// delivery VCI) never notice; circuits that cannot be repaired are
    /// stranded, their reservations released and their book slot marked
    /// so no later renegotiation resizes a dead circuit. Runs on every
    /// shard's full `Network` replica — route state is replicated, so
    /// the walk is identical everywhere. Returns `(rerouted, stranded)`.
    pub(crate) fn apply_death(&mut self, switch: usize) -> (u64, u64) {
        let sw = self.sys.fabric[switch];
        self.sys.net.fail_switch(sw);
        let mut rerouted = 0u64;
        let mut stranded_n = 0u64;
        for b in &mut self.books {
            for (i, slot) in b.grant.vcs.iter_mut().enumerate() {
                if b.stranded[i] || !slot.crosses_switch(sw) {
                    continue;
                }
                match self.sys.net.reroute_vc(slot.clone()) {
                    Ok(repaired) => {
                        rerouted += 1;
                        *slot = repaired;
                    }
                    Err(_) => {
                        stranded_n += 1;
                        b.stranded[i] = true;
                    }
                }
            }
        }
        for (vc, _, stranded) in &mut self.blasts {
            if *stranded || !vc.crosses_switch(sw) {
                continue;
            }
            match self.sys.net.reroute_vc(vc.clone()) {
                Ok(repaired) => {
                    rerouted += 1;
                    *vc = repaired;
                }
                Err(_) => {
                    stranded_n += 1;
                    *stranded = true;
                }
            }
        }
        (rerouted, stranded_n)
    }

    /// Acts on one epoch's hysteresis verdict: one rung down under
    /// sustained pressure, back toward the admitted contract once the
    /// fabric has drained. Every shard calls this with the identical
    /// merged verdict against its replicated broker and network, so
    /// ledgers and grants stay byte-identical everywhere; producers are
    /// retuned only where they exist (the owner's shard).
    pub(crate) fn apply_verdict(&mut self, verdict: Verdict, at: Ns) {
        if verdict == Verdict::Hold {
            return;
        }
        let rung = self.spec.broker.degrade_milli;
        let camera_cfg = self.spec.camera;
        for b in &mut self.books {
            if b.stranded.iter().any(|&s| s) {
                continue;
            }
            let target = match verdict {
                Verdict::Down => (b.grant.quality_milli * rung / 1000).max(1),
                Verdict::Up => b.grant.admitted_milli,
                Verdict::Hold => unreachable!(),
            };
            if self
                .broker
                .renegotiate_live(&mut self.sys.net, &mut b.grant, target, at)
                .is_ok()
            {
                if let Some(cam) = &b.camera {
                    let cfg = camera_for(camera_cfg, b.grant.quality_milli);
                    let mut cam = cam.borrow_mut();
                    cam.set_fps(cfg.fps);
                    cam.set_mode(cfg.mode);
                }
            }
        }
    }

    /// Applies a sealed cross-shard credit return to the circuit's
    /// window, parked until `apply_at`. Returns whether the window was
    /// found — records are addressed to the producer's shard, so a miss
    /// is an executor routing bug.
    pub(crate) fn apply_credit_return(&self, dst_vci: Vci, apply_at: Ns, n: u64) -> bool {
        match self.credit_windows.binary_search_by_key(&dst_vci, |e| e.0) {
            Ok(idx) => {
                self.credit_windows[idx]
                    .1
                    .borrow_mut()
                    .release_at(apply_at, n);
                true
            }
            Err(_) => false,
        }
    }

    /// Applies a broadcast reclaim record (credits for cells another
    /// shard watched the fabric drop). Returns whether this shard owns
    /// the window; exactly one shard does, the rest ignore the record.
    pub(crate) fn apply_remote_reclaim(&self, dst_vci: Vci, n: u64) -> bool {
        match self.credit_windows.binary_search_by_key(&dst_vci, |e| e.0) {
            Ok(idx) => {
                self.credit_windows[idx].1.borrow_mut().reclaim(n);
                true
            }
            Err(_) => false,
        }
    }

    /// The buffer where consumer-side gates on this shard seal credit
    /// returns addressed to `shard`'s windows.
    pub(crate) fn credit_export(&self, shard: usize) -> CreditExportBuf {
        self.credit_out[shard].clone()
    }

    /// Runs the compiled scenario to completion and reports — the
    /// classic single-threaded path. Multi-shard scenarios are driven
    /// by `crate::executor`, which runs the epoch loop itself and calls
    /// `Scenario::collect` directly.
    pub fn run(mut self) -> ScenarioReport {
        assert_eq!(
            self.plan.shards, 1,
            "multi-shard scenarios run under the executor"
        );
        // Two kinds of timeline mark need the owned `Network`, so the
        // engine runs in segments split at each one: switch deaths
        // (structural — routing state plus signalling repair) and, when
        // backpressure is on, congestion epochs (sampling, credit
        // reconciliation, renegotiation). Splitting at an event boundary
        // preserves determinism — the engine's schedule is identical
        // whether or not it pauses there. The executor's epoch loop
        // pauses at exactly the same marks and calls the same helpers,
        // so the two paths cannot drift apart.
        let mut controller = self.make_controller();
        let mut vcs_rerouted = 0u64;
        let mut vcs_stranded = 0u64;
        let mut admitted_dropped = (0u64, 0u64); // (overflow, outage)
        let mut remote: Vec<(Vci, u64)> = Vec::new();
        for (at, mark) in control_marks(&self.spec) {
            self.sim.run_until(at);
            match mark {
                ControlMark::Death(switch) => {
                    let (r, s) = self.apply_death(switch);
                    vcs_rerouted += r;
                    vcs_stranded += s;
                }
                ControlMark::Epoch => {
                    // Sample the epoch's congestion evidence, settle
                    // dropped cells' credits so producers never wedge
                    // on cells that will never arrive, and act on the
                    // hysteresis verdict.
                    let sig = self.sample_epoch_signal();
                    let (ov, ou) = self.settle_drops(&mut remote);
                    debug_assert!(remote.is_empty(), "one shard owns every window");
                    admitted_dropped.0 += ov;
                    admitted_dropped.1 += ou;
                    let verdict = controller.observe(&sig.into_signal());
                    self.apply_verdict(verdict, at);
                }
            }
        }
        self.sim.run_until(self.end_time());
        // Settle drops from the drain window (and, with the monitor
        // off, the whole run) so attribution covers every dropped cell.
        let (ov, ou) = self.settle_drops(&mut remote);
        debug_assert!(remote.is_empty(), "one shard owns every window");
        admitted_dropped.0 += ov;
        admitted_dropped.1 += ou;

        let spec = self.spec.clone();
        let outcome = self.collect(
            vcs_rerouted,
            vcs_stranded,
            admitted_dropped,
            ShardRuntime::default(),
        );
        assemble(&spec, vec![outcome])
    }

    /// Folds this shard's owned devices and switches into a portable
    /// [`ShardOutcome`]. Consumes the scenario: the `Rc`-laden world
    /// stays on its thread, only plain measurements cross.
    pub(crate) fn collect(
        mut self,
        vcs_rerouted: u64,
        vcs_stranded: u64,
        admitted_dropped: (u64, u64),
        runtime: ShardRuntime,
    ) -> ShardOutcome {
        // Video class: every owned display (videophone windows + TV
        // stacks). Jitter is a per-stream quantity (latency in excess
        // of the stream's own floor), so only single-stream displays
        // feed it: a TV control room merges feeds with different hop
        // counts, and subtracting one shared floor would read the
        // constant path-delay differences as jitter.
        let mut tiles_blitted = 0u64;
        let mut video_lat = Histogram::new();
        let mut video_jit = Histogram::new();
        for d in &self.displays {
            let d = d.borrow();
            tiles_blitted += d.stats.tiles_blitted;
            video_lat.merge(&d.stats.latency);
            video_jit.merge(&d.stats.latency.jitter_histogram());
        }
        for d in &self.tv_displays {
            let d = d.borrow();
            tiles_blitted += d.stats.tiles_blitted;
            video_lat.merge(&d.stats.latency);
        }

        // Audio class: DAC play-out.
        let mut audio_underruns = 0u64;
        let mut audio_lat = Histogram::new();
        let mut audio_jit = Histogram::new();
        for s in &self.audio_sinks {
            let s = s.borrow();
            audio_underruns += s.stats.underruns;
            audio_lat.merge(&s.stats.playout_latency);
            audio_jit.merge(&s.stats.playout_latency.jitter_histogram());
        }

        // VoD class: synchronized presentations.
        let mut vod_presented = 0u64;
        let mut playback_late = 0u64;
        let mut vod_lat = Histogram::new();
        let mut vod_jit = Histogram::new();
        for (ctl, stream, _sink) in &self.vod_clients {
            let ctl = ctl.borrow();
            let st = ctl.stats(*stream);
            vod_presented += st.presented;
            playback_late += ctl.late_total();
            vod_lat.merge(&st.latency);
            vod_jit.merge(&st.latency.jitter_histogram());
        }

        // Cell accounting and queue depths. Only owned switches carried
        // traffic — remote replicas are silent, so iterating all of
        // them adds zeros and the per-shard numbers sum to the
        // single-shard totals.
        let mut cells = CellReport::default();
        for link in &self.tx_links {
            cells.sent += link.borrow().cells_sent();
        }
        let mut peak_queue_cells = 0u64;
        for i in 0..self.sys.net.switch_count() {
            let sw = self
                .sys
                .net
                .switch(pegasus_atm::network::SwitchId(i))
                .borrow();
            cells.dropped_overflow += sw.stats.overflowed;
            cells.dropped_unroutable += sw.stats.unroutable;
            cells.dropped_outage += sw.cells_dropped_outage();
            peak_queue_cells = peak_queue_cells.max(sw.stats.peak_queue_cells);
        }
        cells.admitted_dropped_overflow = admitted_dropped.0;
        cells.admitted_dropped_outage = admitted_dropped.1;

        // The flow-control plane's own ledger: stalls by class, frames
        // held at source, reclaimed credits, renegotiation history and
        // the constructive queue bound.
        let mut bp_rep = BackpressureReport {
            enabled: self.spec.backpressure.enabled,
            ..BackpressureReport::default()
        };
        for b in &self.books {
            if let Some(w) = &b.credit {
                let w = w.borrow();
                match b.class {
                    SessionClass::Videophone => bp_rep.credit_stalls.0 += w.stalls(),
                    SessionClass::Vod => bp_rep.credit_stalls.1 += w.stalls(),
                    SessionClass::Tv => bp_rep.credit_stalls.2 += w.stalls(),
                }
                bp_rep.credits_reclaimed += w.reclaimed();
                bp_rep.queue_bound_cells += w.window();
            }
            if let Some(cam) = &b.camera {
                bp_rep.frames_skipped += cam.borrow().stats.frames_skipped;
                // Renegotiation replays on every shard's replicated
                // grant; count each session's history exactly once, on
                // the shard owning its producer.
                for r in &b.grant.history {
                    if r.to_milli < r.from_milli {
                        bp_rep.renegotiations_down += 1;
                    } else {
                        bp_rep.renegotiations_up += 1;
                    }
                }
            }
        }
        for (_, w, _) in &self.blasts {
            if let Some(w) = w {
                let w = w.borrow();
                bp_rep.credits_reclaimed += w.reclaimed();
                bp_rep.queue_bound_cells += w.window();
            }
        }

        // Coordinator-only sections: the replays and the
        // replicated-identical ledgers.
        let coord = if self.plan.materialize_pfs {
            let pfs = self.replay_pfs();
            // Read the cache counters only after the replay: the tiers
            // fill during it, not during the live network run.
            let cache = self.cache_report();
            let nemesis = self.replay_nemesis();
            Some(CoordinatorOutcome {
                switches: self.sys.net.switch_count() as u64,
                endpoints: self.sys.net.endpoint_count() as u64,
                max_link_utilization: self.sys.net.max_reservation_utilization(),
                broker: std::mem::take(&mut self.tally).into_report(),
                pfs,
                cache,
                nemesis,
            })
        } else {
            None
        };

        ShardOutcome {
            shard: self.plan.shard,
            events_executed: self.sim.events_executed(),
            runtime,
            tiles_blitted,
            video_lat,
            video_jit,
            audio_underruns,
            audio_lat,
            audio_jit,
            vod_presented,
            playback_late,
            vod_lat,
            vod_jit,
            cells,
            peak_queue_cells,
            vcs_rerouted,
            vcs_stranded,
            bp: bp_rep,
            coord,
        }
    }

    /// File-server side of VoD: replay the CM schedule. A server
    /// with a scheduled disk incident replays in three spans —
    /// healthy, degraded (one member fail-stopped, reads
    /// reconstructing through parity), healthy again after the
    /// spindle swap and rebuild. `run_periods` keeps no state across
    /// calls except the per-stream offsets, so the split replay is
    /// byte-identical to an unsplit one at the same health.
    fn replay_pfs(&mut self) -> PfsReport {
        /// One replay span, through the tiered cache when the server
        /// has one. The cache only changes *where* bytes come from
        /// (and so the disk clock), never which bytes a stream gets.
        fn play(
            cm: &mut CmScheduler,
            fs: &mut LogFs,
            cache: &mut Option<TieredCache>,
            n: u64,
        ) -> Result<pegasus_pfs::cm::CmReport, pegasus_pfs::log::FsError> {
            match cache {
                Some(c) => cm.run_periods_tiered(fs, c, n),
                None => cm.run_periods(fs, n),
            }
        }
        let spec = &self.spec;
        let periods = vod_periods(spec.duration);
        let mut pfs = PfsReport::default();
        for (si, server) in self.vod_servers.iter_mut().enumerate() {
            let incident = spec.faults.iter().find_map(|f| match *f {
                FaultSpec::DiskFail {
                    at,
                    server: s,
                    disk,
                    replace_at,
                } if s == si => {
                    let fail_p = at / VOD_PERIOD;
                    // The replacement lands on the next period boundary
                    // at the earliest: every incident spends at least
                    // one period degraded.
                    let rep_p = (replace_at / VOD_PERIOD).max(fail_p + 1);
                    Some((fail_p, rep_p, disk))
                }
                _ => None,
            });
            let mut fold = |r: &pegasus_pfs::cm::CmReport| {
                pfs.periods += r.periods;
                pfs.missed += r.missed;
                pfs.bytes_delivered += r.bytes_delivered;
            };
            let VodServer { fs, cm, cache, .. } = server;
            match incident {
                Some((fail_p, rep_p, disk)) if fail_p < periods => {
                    let rep_p = rep_p.min(periods);
                    let r = play(cm, fs, cache, fail_p).expect("prerecorded file");
                    fold(&r);
                    fs.raid_mut().disk_mut(disk).fail();
                    let r = play(cm, fs, cache, rep_p - fail_p)
                        .expect("degraded reads reconstruct through parity");
                    fold(&r);
                    // Swap the spindle and rebuild it from the
                    // survivors. Rebuild I/O is charged at the RAID
                    // layer, not against the log's clock, so the
                    // remaining periods' deadline accounting is clean —
                    // the array is simply whole again.
                    fs.raid_mut().disk_mut(disk).replace();
                    let stripes = fs.used_segments() as u64;
                    let t = fs
                        .raid_mut()
                        .rebuild_disk(disk, stripes)
                        .expect("single failure is rebuildable");
                    pfs.rebuilds += 1;
                    pfs.rebuild_ns += t;
                    let r = play(cm, fs, cache, periods - rep_p).expect("prerecorded file");
                    fold(&r);
                }
                _ => {
                    let r = play(cm, fs, cache, periods).expect("prerecorded file");
                    fold(&r);
                }
            }
        }
        // Throughput over the replayed window (which may exceed a short
        // run's duration: at least one full service period is played).
        let replay = periods * VOD_PERIOD;
        pfs.throughput_bps =
            (pfs.bytes_delivered as u128 * 8 * SEC as u128 / replay as u128) as u64;
        pfs
    }

    /// Tiered-cache section: counters summed across servers, ratios
    /// recomputed from the sums so busy servers weigh what they served,
    /// not one vote each. All zeros (enabled false) when the spec left
    /// the cache off.
    fn cache_report(&self) -> CacheReport {
        let mut r = CacheReport {
            enabled: self.spec.cache.enabled,
            ..CacheReport::default()
        };
        let mut bytes_saved = 0u64;
        let mut crowd_hot = 0u64;
        for server in &self.vod_servers {
            if let Some(cache) = &server.cache {
                let s = cache.stats();
                r.hot_hits += s.hot_hits;
                r.warm_hits += s.warm_hits;
                r.cold_misses += s.cold_misses;
                r.prefetched_chunks += s.prefetched_chunks;
                r.crowd_accesses += s.crowd_accesses;
                crowd_hot += s.crowd_hot_hits;
                bytes_saved += s.bytes_saved;
                let a = cache.arena().stats();
                r.shared_attaches += a.shared_attaches;
                r.fresh_allocs += a.fresh_allocs;
            }
        }
        let total = r.hot_hits + r.warm_hits + r.cold_misses;
        if let Some(hot) = (r.hot_hits * 1000).checked_div(total) {
            r.hot_milli = hot;
            r.warm_milli = r.warm_hits * 1000 / total;
            r.cold_milli = 1000 - r.hot_milli - r.warm_milli;
        }
        r.crowded_title_hot_milli = (crowd_hot * 1000).checked_div(r.crowd_accesses).unwrap_or(0);
        r.disk_io_saved_cells = bytes_saved / 48;
        r
    }

    /// Control plane: replay the CPU fault schedule against the QoS
    /// manager. Media demand is exactly what the broker's CPU ledger
    /// granted (plus a control baseline): rejected and degraded
    /// sessions demand less, which is the broker's whole point.
    fn replay_nemesis(&self) -> NemesisReport {
        let spec = &self.spec;
        let mut mgr = QosManager::new(0.9, 1.0);
        let media = mgr.add_app("media-control", 1.0);
        let batch = mgr.add_app("batch", 1.0);
        mgr.observe(batch, 1.0);
        // The default broker capacity (0.35) plus the 0.05 baseline
        // stays below the media app's fair share against the synthetic
        // batch competitor (0.9 capacity split 1:1 = 0.45), so a
        // healthy, fault-free run can never report starvation no matter
        // the session count; only scheduled incidents push it under.
        let media_demand = 0.05 + self.broker.cpu.reserved_fraction();
        let schedule = FaultSchedule {
            faults: spec
                .faults
                .iter()
                .filter_map(|f| match *f {
                    FaultSpec::CpuLoadSpike {
                        at,
                        until,
                        demand,
                        weight,
                    } => Some(Fault::LoadSpike {
                        at,
                        until,
                        demand,
                        weight,
                    }),
                    _ => None,
                })
                .collect(),
        };
        let er = EpochDriver::run(
            &mut mgr,
            media,
            media_demand,
            &schedule,
            10 * MS,
            spec.duration,
        );
        let mut quality = er.quality_milli.clone();
        NemesisReport {
            epochs: er.epochs,
            starved_epochs: er.starved_epochs,
            quality_p50_milli: quality.percentile(50.0).unwrap_or(1000),
            quality_min_milli: quality.min().unwrap_or(1000),
        }
    }
}

/// Merges per-shard outcomes into the final [`ScenarioReport`].
///
/// With one outcome this reproduces the classic report exactly; with
/// several, counters sum, peaks take the max, and histograms merge in
/// shard order. Summaries are insensitive to that merge order — the
/// percentile pass sorts the samples and the mean is computed over the
/// sorted data — so the canonical JSON is identical at any shard count.
pub fn assemble(spec: &ScenarioSpec, mut outcomes: Vec<ShardOutcome>) -> ScenarioReport {
    outcomes.sort_by_key(|o| o.shard);
    let coord = outcomes
        .iter_mut()
        .find_map(|o| o.coord.take())
        .expect("one outcome carries the coordinator sections");
    let counts = spec.mix.counts(spec.sessions);
    let mut report = ScenarioReport {
        schema_version: SCHEMA_VERSION,
        name: spec.name.clone(),
        seed: spec.seed,
        duration: spec.duration,
        switches: coord.switches,
        endpoints: coord.endpoints,
        sessions: (counts.0 as u64, counts.1 as u64, counts.2 as u64),
        broker: coord.broker,
        max_link_utilization: coord.max_link_utilization,
        pfs: coord.pfs,
        cache: coord.cache,
        nemesis: coord.nemesis,
        ..ScenarioReport::default()
    };

    let mut video_lat = Histogram::new();
    let mut video_jit = Histogram::new();
    let mut audio_lat = Histogram::new();
    let mut audio_jit = Histogram::new();
    let mut vod_lat = Histogram::new();
    let mut vod_jit = Histogram::new();
    let mut cells = CellReport::default();
    let mut bp_rep = BackpressureReport {
        enabled: spec.backpressure.enabled,
        ..BackpressureReport::default()
    };
    for o in &outcomes {
        report.events_executed += o.events_executed;
        report.tiles_blitted += o.tiles_blitted;
        video_lat.merge(&o.video_lat);
        video_jit.merge(&o.video_jit);
        report.audio_underruns += o.audio_underruns;
        audio_lat.merge(&o.audio_lat);
        audio_jit.merge(&o.audio_jit);
        report.vod_presented += o.vod_presented;
        report.playback_late += o.playback_late;
        vod_lat.merge(&o.vod_lat);
        vod_jit.merge(&o.vod_jit);
        cells.sent += o.cells.sent;
        cells.dropped_overflow += o.cells.dropped_overflow;
        cells.dropped_unroutable += o.cells.dropped_unroutable;
        cells.dropped_outage += o.cells.dropped_outage;
        cells.admitted_dropped_overflow += o.cells.admitted_dropped_overflow;
        cells.admitted_dropped_outage += o.cells.admitted_dropped_outage;
        report.peak_queue_cells = report.peak_queue_cells.max(o.peak_queue_cells);
        report.vcs_rerouted += o.vcs_rerouted;
        report.vcs_stranded += o.vcs_stranded;
        bp_rep.credit_stalls.0 += o.bp.credit_stalls.0;
        bp_rep.credit_stalls.1 += o.bp.credit_stalls.1;
        bp_rep.credit_stalls.2 += o.bp.credit_stalls.2;
        bp_rep.frames_skipped += o.bp.frames_skipped;
        bp_rep.credits_reclaimed += o.bp.credits_reclaimed;
        bp_rep.renegotiations_down += o.bp.renegotiations_down;
        bp_rep.renegotiations_up += o.bp.renegotiations_up;
        bp_rep.queue_bound_cells += o.bp.queue_bound_cells;
    }
    report.video = ClassReport {
        sessions: (counts.0 + counts.2) as u64,
        latency: video_lat.summarize(),
        jitter: video_jit.summarize(),
    };
    report.audio = ClassReport {
        sessions: counts.0 as u64,
        latency: audio_lat.summarize(),
        jitter: audio_jit.summarize(),
    };
    report.vod = ClassReport {
        sessions: counts.1 as u64,
        latency: vod_lat.summarize(),
        jitter: vod_jit.summarize(),
    };
    cells.delivered = cells
        .sent
        .saturating_sub(cells.dropped_overflow + cells.dropped_unroutable + cells.dropped_outage);
    report.cells = cells;
    report.backpressure = bp_rep;
    report.deadline_misses = report.total_misses();
    report.shards = outcomes
        .iter()
        .map(|o| ShardSlice {
            shard: o.shard as u64,
            events: o.events_executed,
            barrier_waits: o.runtime.barrier_waits,
            cells_exported: o.runtime.cells_exported,
            cells_imported: o.runtime.cells_imported,
            lookahead_ns: o.runtime.lookahead_ns,
            cut_trunks: o.runtime.cut_trunks,
            credits_crossed: o.runtime.credits_crossed,
            repairs_replicated: o.runtime.repairs_replicated,
        })
        .collect();
    report
}

/// Where a dropped cell's credit goes when the fabric is settled.
#[derive(Clone)]
enum Target {
    /// The circuit's window lives in this address space: reclaim here.
    Local(CreditRef),
    /// The window lives on the shard owning the producer's switch:
    /// emit a reclaim record keyed by delivery VCI for the executor to
    /// broadcast.
    Remote(Vci),
    /// No credit to move — an uncredited flow, or a stranded circuit
    /// whose producer is wedged by design (its credits leak with the
    /// corpse). Attribution still applies.
    Skip,
}

/// Settles the fabric's per-VCI drop counters against the session
/// books: every dropped cell on a credited circuit has its credit
/// reclaimed (the consumer will never see the cell, so it can never
/// return it), and drops on an *admitted* session's circuits are
/// attributed by cause. Returns `(admitted overflow, admitted outage)`
/// for the cells report; reclaims against windows living on other
/// shards land in `remote` as `(delivery VCI, n)` records. VCIs are
/// allocated from one network-wide counter, so any hop's label
/// identifies exactly one circuit — on every shard.
fn reconcile_drops(
    sys: &System,
    books: &[SessionBook],
    blasts: &[(VcHandle, Option<CreditRef>, bool)],
    bp_enabled: bool,
    remote: &mut Vec<(Vci, u64)>,
) -> (u64, u64) {
    let mut table: Vec<(Vci, Target, bool)> = Vec::new();
    for b in books {
        for (i, vc) in b.grant.vcs.iter().enumerate() {
            // Media flow 0 carries the credit window.
            let target = if i == 0 && !b.stranded[i] {
                match &b.credit {
                    Some(w) => Target::Local(w.clone()),
                    None if bp_enabled => Target::Remote(vc.dst_vci),
                    None => Target::Skip,
                }
            } else {
                Target::Skip
            };
            for vci in vc.vcis() {
                table.push((vci, target.clone(), true));
            }
        }
    }
    for (vc, w, stranded) in blasts {
        // Blasts are always credited, whatever the backpressure spec.
        let target = if *stranded {
            Target::Skip
        } else {
            match w {
                Some(w) => Target::Local(w.clone()),
                None => Target::Remote(vc.dst_vci),
            }
        };
        for vci in vc.vcis() {
            table.push((vci, target.clone(), false));
        }
    }
    table.sort_by_key(|e| e.0);
    let mut acc = (0u64, 0u64);
    let mut settle = |drops: Vec<(Vci, u64)>, overflow: bool, acc: &mut (u64, u64)| {
        for (vci, n) in drops {
            if let Ok(idx) = table.binary_search_by_key(&vci, |e| e.0) {
                let (_, target, admitted) = &table[idx];
                match target {
                    Target::Local(w) => w.borrow_mut().reclaim(n),
                    Target::Remote(dst_vci) => remote.push((*dst_vci, n)),
                    Target::Skip => {}
                }
                if *admitted {
                    if overflow {
                        acc.0 += n;
                    } else {
                        acc.1 += n;
                    }
                }
            }
        }
    };
    for i in 0..sys.net.switch_count() {
        let sw = sys.net.switch(pegasus_atm::network::SwitchId(i));
        let mut sw = sw.borrow_mut();
        settle(sw.take_dropped_by_vci(), true, &mut acc);
        let mut outage: Vec<(Vci, u64)> = Vec::new();
        for link in sw.output_links_mut() {
            outage.extend(link.take_dropped_by_vci());
        }
        settle(outage, false, &mut acc);
    }
    acc
}

/// Compiles and runs `spec` in one call.
pub fn run(spec: &ScenarioSpec) -> ScenarioReport {
    compile(spec).run()
}

/// Runs the spec once per seed — the multi-seed sweep used by soak
/// jobs. Each run is independent and deterministic for its seed.
pub fn run_seeds(spec: &ScenarioSpec, seeds: &[u64]) -> Vec<ScenarioReport> {
    seeds
        .iter()
        .map(|&s| run(&spec.clone().with_seed(s)))
        .collect()
}
