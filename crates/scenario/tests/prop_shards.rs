//! Property test for the tentpole determinism claim: for *any*
//! generated small city — shape, fabric size, session mix, arrival
//! process, seed — the canonical report is byte-identical whether the
//! scenario runs single-threaded or split across 2 or 4 region shards.
//!
//! This is the executable form of the conservative-synchronization
//! argument in `crates/scenario/src/executor.rs`: ownership, lane
//! assignment and lookahead are pure functions of the spec, so sharding
//! may only change *where* events run, never their order-visible
//! effects. Runs are kept to a few simulated milliseconds so the case
//! budget stays inside CI time.

use proptest::prelude::*;

use pegasus_atm::network::TopologyShape;
use pegasus_scenario::spec::{Arrival, FaultSpec, ScenarioSpec, SessionMix, TopologySpec};
use pegasus_scenario::{run_sharded, ExecPlan};
use pegasus_sim::time::MS;

fn shape_for(tag: u8) -> TopologyShape {
    match tag % 3 {
        0 => TopologyShape::Star,
        1 => TopologyShape::Ring,
        _ => TopologyShape::FullMesh,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn canonical_report_is_invariant_under_sharding(
        tag in 0u8..3,
        switches in 2usize..7,
        sessions in 1usize..16,
        vp in 0u8..4,
        vod in 0u8..4,
        tv in 0u8..4,
        window_ms in 1u64..8,
        seed in 0u64..1000,
    ) {
        let mut spec = ScenarioSpec::base("prop-shards").with_seed(seed);
        spec.topology = TopologySpec {
            shape: shape_for(tag),
            switches,
            ..spec.topology
        };
        spec.sessions = sessions;
        // A zero-weight mix is invalid; nudge videophone in that case.
        let (vp, vod, tv) = if vp + vod + tv == 0 {
            (1, 0, 0)
        } else {
            (vp, vod, tv)
        };
        spec.mix = SessionMix::new(vp as f64, vod as f64, tv as f64);
        spec.arrival = Arrival::Uniform { window: window_ms * MS };
        spec.duration = 8 * MS;
        spec.drain = 5 * MS;

        let base = run_sharded(&spec, 1).to_json_canonical();
        for shards in [2usize, 4] {
            let plan = ExecPlan::partition(&spec, shards);
            let got = run_sharded(&spec, shards);
            prop_assert_eq!(got.shards.len(), plan.shards, "one slice per shard");
            let canon = got.to_json_canonical();
            prop_assert!(
                canon == base,
                "canonical report diverged at {} shards (plan ran {}):\n--- 1 shard ---\n{}\n--- {} shards ---\n{}",
                shards, plan.shards, base, shards, canon
            );
        }
    }

    /// The sharded *control plane*'s determinism claim: backpressure
    /// (credit gates, congestion epochs, renegotiation, cross-shard
    /// credit returns) and switch death (replicated signalling repair)
    /// no longer clamp the plan, and the canonical report stays
    /// byte-identical at any shard count with both in play.
    #[test]
    fn control_plane_is_invariant_under_sharding(
        tag in 0u8..3,
        switches in 2usize..7,
        sessions in 1usize..12,
        epoch_ms in 1u64..3,
        window in 8u64..48,
        death_ms in 1u64..8,
        dead_switch in 0usize..7,
        seed in 0u64..1000,
    ) {
        let mut spec = ScenarioSpec::base("prop-control").with_seed(seed);
        spec.topology = TopologySpec {
            shape: shape_for(tag),
            switches,
            ..spec.topology
        };
        spec.sessions = sessions;
        spec.mix = SessionMix::new(2.0, 1.0, 1.0);
        spec.arrival = Arrival::Uniform { window: 2 * MS };
        spec.duration = 8 * MS;
        spec.drain = 5 * MS;
        spec.backpressure.enabled = true;
        spec.backpressure.epoch = epoch_ms * MS;
        spec.backpressure.window_cells = window;
        spec.faults.push(FaultSpec::SwitchDeath {
            at: death_ms * MS,
            switch: dead_switch % switches,
        });

        let plan = ExecPlan::partition(&spec, 4);
        prop_assert!(
            plan.clamp_reason.is_none() || plan.shards == switches.min(4),
            "only the geometric clamp may fire"
        );
        let base = run_sharded(&spec, 1).to_json_canonical();
        for shards in [2usize, 4] {
            let got = run_sharded(&spec, shards);
            let canon = got.to_json_canonical();
            prop_assert!(
                canon == base,
                "control plane diverged at {} shards:\n--- 1 shard ---\n{}\n--- {} shards ---\n{}",
                shards, base, shards, canon
            );
        }
    }
}
