//! The harness's load-bearing guarantee: a report is a pure function of
//! `(spec, seed)` — running twice yields byte-identical JSON, and a
//! different seed yields a different (but equally reproducible) run.

use pegasus_scenario::{presets, run, run_seeds};
use pegasus_sim::time::MS;

#[test]
fn same_spec_same_seed_is_byte_identical() {
    let spec = presets::smoke().with_seed(7);
    let a = run(&spec).to_json();
    let b = run(&spec).to_json();
    assert_eq!(a, b, "smoke must serialize identically run-to-run");
    assert!(a.contains("\"seed\":7"));
}

#[test]
fn faulted_poisson_spec_is_byte_identical() {
    // The hardest determinism case: Poisson arrivals, faults, every
    // session class, a ring fabric.
    let mut spec = presets::nemesis_storm().with_seed(99);
    spec.duration = 120 * MS;
    let a = run(&spec).to_json();
    let b = run(&spec).to_json();
    assert_eq!(a, b);
}

#[test]
fn full_storm_is_byte_identical_and_survives() {
    // The whole fault schedule fires — flapping lines, a switch death
    // with signalling repair, a disk failure with a live rebuild — and
    // the run must still be a pure function of (spec, seed).
    let spec = presets::nemesis_storm().scale_sessions(0.5).with_seed(3);
    let a = run(&spec);
    let b = run(&spec);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "storm must rerun byte-identically"
    );
    assert_eq!(a.pfs.rebuilds, 1, "the failed spindle was rebuilt");
    assert!(a.pfs.rebuild_ns > 0);
    assert!(
        a.cells.dropped_outage > 0,
        "the flap dropped cells mid-frame"
    );
    assert!(
        a.vcs_rerouted + a.vcs_stranded > 0,
        "the switch death hit at least one live circuit"
    );
    assert!(
        a.peak_queue_cells <= 1024,
        "queues stay bounded under the storm (peak {})",
        a.peak_queue_cells
    );
}

#[test]
fn sustained_overload_is_bounded_reversible_and_byte_identical() {
    // The backpressure contract, nailed down as a unit of record: a 3x
    // best-effort blast over the shared trunk produces *explicit,
    // bounded, reversible* degradation — credit stalls and quality
    // rungs, never queue growth or silent drops — and the whole feedback
    // loop stays a pure function of (spec, seed).
    let spec = presets::sustained_3x();
    let a = run(&spec);
    let b = run(&spec);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "the feedback loop must rerun byte-identically"
    );

    let bp = &a.backpressure;
    assert!(bp.enabled);
    let stalls = bp.credit_stalls.0 + bp.credit_stalls.1 + bp.credit_stalls.2;
    assert!(stalls > 0, "the blast must make producers stall");
    assert!(
        bp.renegotiations_down > 0,
        "sustained pressure must degrade"
    );
    assert!(bp.renegotiations_up > 0, "clearance must restore");
    assert_eq!(
        bp.renegotiations_down, bp.renegotiations_up,
        "every degraded session is restored before the run ends"
    );
    // Bounded by construction: zero drops of any kind, zero misses, and
    // the peak queue stays under the sum of the credit windows plus the
    // (uncredited) audio flows' train.
    assert_eq!(a.cells.dropped_overflow, 0);
    assert_eq!(a.cells.admitted_dropped_overflow, 0);
    assert_eq!(a.cells.admitted_dropped_outage, 0);
    assert_eq!(a.deadline_misses, 0);
    assert!(
        a.peak_queue_cells <= bp.queue_bound_cells + 64,
        "peak queue {} above the credit bound {}",
        a.peak_queue_cells,
        bp.queue_bound_cells
    );
}

#[test]
fn different_seeds_differ_but_each_reproduces() {
    let spec = presets::smoke();
    let first = run_seeds(&spec, &[1, 2]);
    let second = run_seeds(&spec, &[1, 2]);
    assert_eq!(first[0].to_json(), second[0].to_json());
    assert_eq!(first[1].to_json(), second[1].to_json());
    assert_ne!(
        first[0].to_json(),
        first[1].to_json(),
        "different seeds must place sessions differently"
    );
}

#[test]
fn smoke_meets_its_qos_budget() {
    // The CI gate (scripts/run_scenarios.sh) asserts this from the
    // outside; keep the same claim nailed down as a unit of record.
    let r = run(&presets::smoke());
    assert_eq!(r.deadline_misses, 0, "smoke must run clean");
    assert_eq!(r.cells.dropped_overflow, 0);
    assert!(r.tiles_blitted > 1_000);
    assert!(r.vod_presented > 100);
    assert!(r.video.latency.n > 0 && r.audio.latency.n > 0);
}

#[test]
fn scaled_metropolis_reports_the_right_shape() {
    // CI-sized rendition of the city: 5% of the sessions, same fabric.
    let spec = presets::metropolis_1k().scale_sessions(0.05).with_seed(7);
    let r = run(&spec);
    assert_eq!(r.switches, 16);
    assert_eq!(r.sessions.0 + r.sessions.1 + r.sessions.2, 50);
    assert_eq!(r.deadline_misses, 0);
    assert!(r.video.jitter.n > 0, "per-class jitter percentiles present");
}
