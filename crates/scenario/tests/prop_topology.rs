//! Property tests for the scenario topology builder: any generated
//! `(shape, switches, sessions)` must wire a connected fabric, and the
//! sessions admitted onto it must never oversubscribe a link beyond the
//! network's declared reservable budget.

use proptest::prelude::*;

use pegasus_atm::network::TopologyShape;
use pegasus_scenario::spec::{ScenarioSpec, TopologySpec};
use pegasus_sim::time::MS;

fn shape_for(tag: u8) -> TopologyShape {
    match tag % 3 {
        0 => TopologyShape::Star,
        1 => TopologyShape::Ring,
        _ => TopologyShape::FullMesh,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated topologies are connected: every session's VC opens
    /// (the builder would panic on `NoRoute` because the best-effort
    /// fallback expects a path), and the fabric BFS reaches everything.
    #[test]
    fn generated_topologies_are_connected(
        tag in 0u8..3,
        switches in 1usize..10,
        sessions in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut spec = ScenarioSpec::base("prop-topo").with_seed(seed);
        spec.topology = TopologySpec {
            shape: shape_for(tag),
            switches,
            ..spec.topology
        };
        spec.sessions = sessions;
        spec.duration = MS; // wiring is the subject, not traffic
        let scenario = pegasus_scenario::compile(&spec);
        prop_assert!(scenario.sys.net.is_connected());
        prop_assert_eq!(scenario.sys.net.switch_count(), switches);
        let (vp, vod, tv) = scenario.counts;
        prop_assert_eq!(vp + vod + tv, sessions);
    }

    /// Admission control keeps every link inside its declared
    /// reservable budget no matter how many sessions the spec asks for
    /// — overload falls back to best effort instead of overbooking.
    #[test]
    fn reservations_stay_within_link_budgets(
        tag in 0u8..3,
        switches in 1usize..6,
        sessions in 1usize..64,
        video_mbps in 1u64..40,
        seed in 0u64..1000,
    ) {
        let mut spec = ScenarioSpec::base("prop-budget").with_seed(seed);
        spec.topology = TopologySpec {
            shape: shape_for(tag),
            switches,
            ..spec.topology
        };
        spec.sessions = sessions;
        spec.video_bps = video_mbps * 1_000_000;
        spec.duration = MS;
        let scenario = pegasus_scenario::compile(&spec);
        let u = scenario.sys.net.max_reservation_utilization();
        let budget = scenario.sys.net.reservable_fraction;
        prop_assert!(
            u <= budget + 1e-9,
            "utilization {} exceeds reservable budget {}", u, budget
        );
    }
}
