//! Property tests for the QoS broker's cross-layer invariants, driven
//! through the scenario compiler so that every generated overload —
//! any topology, session count, load factor, slot budget and CPU
//! budget — exercises the real admission path:
//!
//! 1. no layer's capacity ledger is ever exceeded, and the sum of the
//!    granted contracts is exactly what the ledgers say is reserved;
//! 2. admission outcomes are a pure function of `(spec, seed)`;
//! 3. renegotiation only ever lowers a session's resource vector.

use proptest::prelude::*;

use pegasus::broker::{FlowRequest, Outcome, QosBroker, SessionClass, SessionRequest};
use pegasus_atm::link::CaptureSink;
use pegasus_atm::network::{LinkConfig, Network};
use pegasus_scenario::build::SessionContract;
use pegasus_scenario::spec::{ScenarioSpec, SessionMix};
use pegasus_sim::time::MS;

/// An overload-prone spec from raw generator values. Wiring (not
/// traffic) is the subject, so the duration is minimal.
fn overload_spec(
    switches: usize,
    sessions: usize,
    load_pct: u64,
    video_mbps: u64,
    slots: usize,
    cpu_capacity: u64,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("prop-broker").with_seed(seed);
    spec.topology.switches = switches;
    spec.sessions = sessions;
    spec.mix = SessionMix::new(0.4, 0.4, 0.2).with_load(load_pct as f64 / 100.0);
    spec.video_bps = video_mbps * 1_000_000;
    spec.pfs_servers = 2;
    spec.broker.pfs_slots_per_server = slots;
    spec.broker.cpu_capacity_micro = cpu_capacity;
    spec.duration = MS;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: whatever the overload, the sum of admitted
    /// contracts never exceeds any layer's capacity ledger — and the
    /// ledgers agree exactly with the contracts (conservation, both
    /// directions).
    #[test]
    fn admitted_contracts_never_exceed_any_ledger(
        switches in 1usize..5,
        sessions in 1usize..48,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let scenario = pegasus_scenario::compile(&spec);

        // CPU ledger: inside capacity, and exactly the contract sum.
        let broker = &scenario.broker;
        prop_assert!(broker.cpu.reserved_micro() <= broker.cpu.capacity_micro());
        let cpu_sum: u64 = scenario.contracts.iter().map(|c| c.granted.cpu_micro).sum();
        prop_assert_eq!(cpu_sum, broker.cpu.reserved_micro());

        // Stream slots: every server inside capacity, totals agree.
        for server in &broker.pfs {
            prop_assert!(server.used() <= server.capacity());
        }
        let slot_sum: u64 = scenario.contracts.iter().map(|c| c.granted.pfs_slots as u64).sum();
        let ledger_sum: u64 = broker.pfs.iter().map(|s| s.used() as u64).sum();
        prop_assert_eq!(slot_sum, ledger_sum);

        // Bandwidth: no link past its reservable budget.
        let u = scenario.sys.net.max_reservation_utilization();
        let budget = scenario.sys.net.reservable_fraction;
        prop_assert!(u <= budget + 1e-9, "utilization {} over budget {}", u, budget);
    }

    /// Invariant 2: the admit/degrade/reject verdict of every session —
    /// not just the counts — is deterministic in `(spec, seed)`.
    #[test]
    fn rejection_is_deterministic_in_spec_and_seed(
        switches in 1usize..5,
        sessions in 1usize..32,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let outcomes = |contracts: &[SessionContract]| -> Vec<Outcome> {
            contracts.iter().map(|c| c.outcome).collect()
        };
        let a = pegasus_scenario::compile(&spec);
        let b = pegasus_scenario::compile(&spec);
        prop_assert_eq!(outcomes(&a.contracts), outcomes(&b.contracts));
        prop_assert_eq!(a.contracts.len(), spec.sessions);
    }

    /// Invariant 3: renegotiation only ever lowers a session's resource
    /// vector — a degraded grant is component-wise at or below the
    /// request (and strictly below somewhere), an admitted grant is the
    /// request, a rejected session holds nothing.
    #[test]
    fn renegotiation_only_lowers_the_vector(
        switches in 1usize..5,
        sessions in 1usize..48,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let scenario = pegasus_scenario::compile(&spec);
        for c in &scenario.contracts {
            prop_assert!(
                c.granted.le(&c.requested),
                "granted {:?} above requested {:?}", c.granted, c.requested
            );
            match c.outcome {
                Outcome::Admitted => prop_assert_eq!(c.granted, c.requested),
                Outcome::Degraded => {
                    prop_assert!(c.granted != c.requested, "degraded but nothing lowered");
                    // Slots are never the degraded dimension.
                    prop_assert_eq!(c.granted.pfs_slots, c.requested.pfs_slots);
                }
                Outcome::Rejected(_) => {
                    prop_assert_eq!(c.granted, Default::default());
                }
            }
        }
    }

    /// Invariant 4 (live renegotiation): however the congestion loop
    /// walks a live session's quality up and down, it never exceeds the
    /// originally admitted contract, the CPU ledger tracks the granted
    /// vector exactly at every step, and releasing the session restores
    /// every ledger to its pre-admission state.
    #[test]
    fn live_renegotiation_clamps_to_admitted_and_restores_ledgers(
        video_mbps in 1u64..40,
        cpu_micro in 100u64..5_000,
        walk in prop::collection::vec(1u64..2_000, 1..24),
    ) {
        let mut net = Network::new();
        let a = net.add_switch("a", 8, 100);
        let b = net.add_switch("b", 8, 100);
        net.connect_switches_auto(a, b, LinkConfig::pegasus_default());
        let src = net.add_endpoint_auto(a, LinkConfig::pegasus_default(), CaptureSink::shared());
        let dst = net.add_endpoint_auto(b, LinkConfig::pegasus_default(), CaptureSink::shared());

        let mut broker = QosBroker::new(10_000, 0, 0, 700);
        let req = SessionRequest {
            class: SessionClass::Videophone,
            media_flows: vec![FlowRequest { src, dst, bps: video_mbps * 1_000_000 }],
            fixed_flows: Vec::new(),
            cpu_micro,
            pfs_server: None,
        };
        let mut grant = broker.admit(&mut net, &req);
        prop_assert!(grant.is_admitted(), "this request always fits");
        let admitted = grant.admitted_milli;

        for (i, target) in walk.iter().enumerate() {
            let from = grant.quality_milli;
            let transitions = grant.history.len();
            if broker
                .renegotiate_live(&mut net, &mut grant, *target, i as u64)
                .is_ok()
            {
                // Up is clamped to the admitted contract, down lands
                // exactly on the target.
                prop_assert_eq!(grant.quality_milli, (*target).min(admitted));
                prop_assert!(grant.quality_milli <= admitted, "quality above contract");
                // Every real move is in the history; a no-op is not.
                let expect = transitions + (grant.quality_milli != from) as usize;
                prop_assert_eq!(grant.history.len(), expect);
            } else {
                // A refusal has no side effects.
                prop_assert_eq!(grant.quality_milli, from);
                prop_assert_eq!(grant.history.len(), transitions);
            }
            // The CPU ledger is exactly the one granted vector.
            prop_assert_eq!(broker.cpu.reserved_micro(), grant.granted.cpu_micro);
        }

        broker.release(&mut net, grant);
        prop_assert_eq!(broker.cpu.reserved_micro(), 0, "CPU ledger restored");
        let u = net.max_reservation_utilization();
        prop_assert!(u.abs() < 1e-12, "bandwidth ledger restored, got {}", u);
    }
}
