//! Property tests for the QoS broker's cross-layer invariants, driven
//! through the scenario compiler so that every generated overload —
//! any topology, session count, load factor, slot budget and CPU
//! budget — exercises the real admission path:
//!
//! 1. no layer's capacity ledger is ever exceeded, and the sum of the
//!    granted contracts is exactly what the ledgers say is reserved;
//! 2. admission outcomes are a pure function of `(spec, seed)`;
//! 3. renegotiation only ever lowers a session's resource vector.

use proptest::prelude::*;

use pegasus::broker::Outcome;
use pegasus_scenario::build::SessionContract;
use pegasus_scenario::spec::{ScenarioSpec, SessionMix};
use pegasus_sim::time::MS;

/// An overload-prone spec from raw generator values. Wiring (not
/// traffic) is the subject, so the duration is minimal.
fn overload_spec(
    switches: usize,
    sessions: usize,
    load_pct: u64,
    video_mbps: u64,
    slots: usize,
    cpu_capacity: u64,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::base("prop-broker").with_seed(seed);
    spec.topology.switches = switches;
    spec.sessions = sessions;
    spec.mix = SessionMix::new(0.4, 0.4, 0.2).with_load(load_pct as f64 / 100.0);
    spec.video_bps = video_mbps * 1_000_000;
    spec.pfs_servers = 2;
    spec.broker.pfs_slots_per_server = slots;
    spec.broker.cpu_capacity_micro = cpu_capacity;
    spec.duration = MS;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 1: whatever the overload, the sum of admitted
    /// contracts never exceeds any layer's capacity ledger — and the
    /// ledgers agree exactly with the contracts (conservation, both
    /// directions).
    #[test]
    fn admitted_contracts_never_exceed_any_ledger(
        switches in 1usize..5,
        sessions in 1usize..48,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let scenario = pegasus_scenario::compile(&spec);

        // CPU ledger: inside capacity, and exactly the contract sum.
        let broker = &scenario.broker;
        prop_assert!(broker.cpu.reserved_micro() <= broker.cpu.capacity_micro());
        let cpu_sum: u64 = scenario.contracts.iter().map(|c| c.granted.cpu_micro).sum();
        prop_assert_eq!(cpu_sum, broker.cpu.reserved_micro());

        // Stream slots: every server inside capacity, totals agree.
        for server in &broker.pfs {
            prop_assert!(server.used() <= server.capacity());
        }
        let slot_sum: u64 = scenario.contracts.iter().map(|c| c.granted.pfs_slots as u64).sum();
        let ledger_sum: u64 = broker.pfs.iter().map(|s| s.used() as u64).sum();
        prop_assert_eq!(slot_sum, ledger_sum);

        // Bandwidth: no link past its reservable budget.
        let u = scenario.sys.net.max_reservation_utilization();
        let budget = scenario.sys.net.reservable_fraction;
        prop_assert!(u <= budget + 1e-9, "utilization {} over budget {}", u, budget);
    }

    /// Invariant 2: the admit/degrade/reject verdict of every session —
    /// not just the counts — is deterministic in `(spec, seed)`.
    #[test]
    fn rejection_is_deterministic_in_spec_and_seed(
        switches in 1usize..5,
        sessions in 1usize..32,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let outcomes = |contracts: &[SessionContract]| -> Vec<Outcome> {
            contracts.iter().map(|c| c.outcome).collect()
        };
        let a = pegasus_scenario::compile(&spec);
        let b = pegasus_scenario::compile(&spec);
        prop_assert_eq!(outcomes(&a.contracts), outcomes(&b.contracts));
        prop_assert_eq!(a.contracts.len(), spec.sessions);
    }

    /// Invariant 3: renegotiation only ever lowers a session's resource
    /// vector — a degraded grant is component-wise at or below the
    /// request (and strictly below somewhere), an admitted grant is the
    /// request, a rejected session holds nothing.
    #[test]
    fn renegotiation_only_lowers_the_vector(
        switches in 1usize..5,
        sessions in 1usize..48,
        load_pct in 50u64..300,
        video_mbps in 1u64..40,
        slots in 1usize..6,
        cpu_capacity in 1_000u64..20_000,
        seed in 0u64..1000,
    ) {
        let spec = overload_spec(
            switches, sessions, load_pct, video_mbps, slots, cpu_capacity, seed,
        );
        let scenario = pegasus_scenario::compile(&spec);
        for c in &scenario.contracts {
            prop_assert!(
                c.granted.le(&c.requested),
                "granted {:?} above requested {:?}", c.granted, c.requested
            );
            match c.outcome {
                Outcome::Admitted => prop_assert_eq!(c.granted, c.requested),
                Outcome::Degraded => {
                    prop_assert!(c.granted != c.requested, "degraded but nothing lowered");
                    // Slots are never the degraded dimension.
                    prop_assert_eq!(c.granted.pfs_slots, c.requested.pfs_slots);
                }
                Outcome::Rejected(_) => {
                    prop_assert_eq!(c.granted, Default::default());
                }
            }
        }
    }
}
